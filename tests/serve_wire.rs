//! Wire-level tests for `dvafs serve` (ROADMAP item 3): a golden
//! request/reply transcript, a served-vs-in-process equivalence sweep
//! over the whole scenario registry, a proptest that serving is just
//! another execution strategy (any thread count, any queue depth — same
//! bytes), and a TCP round trip.
//!
//! The transcript fixture pins the exact reply bytes — envelope shapes,
//! error messages, escaped scenario renderings — the way
//! `tests/golden/*.json` pin figure data. After an *intentional*
//! protocol or model change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test serve_wire
//! git diff tests/golden/serve_transcript.jsonl   # review, then commit
//! ```

use dvafs::report::json;
use dvafs::scenario::{self, Format, ScenarioCtx};
use dvafs::serve::{serve_session, ServeOpts, ServeState, SessionOutcome};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Cursor, Write};
use std::path::PathBuf;

/// Serves `input` from an in-memory session and returns the reply bytes.
fn serve_lines(input: &str, threads: usize, queue: usize) -> (String, SessionOutcome) {
    let state = ServeState::new();
    let mut out = Vec::new();
    let outcome = serve_session(
        Cursor::new(input.to_string()),
        &mut out,
        &ServeOpts {
            threads,
            queue,
            ..ServeOpts::default()
        },
        &state,
    )
    .expect("in-memory serve cannot fail on io");
    (String::from_utf8(out).expect("replies are utf-8"), outcome)
}

/// The transcript exercises every op, every defaulting rule, and every
/// error path whose message is part of the protocol: explicit ids,
/// model-cache reuse (two identical predicts must produce identical
/// replies modulo id), scenario rendering in two formats, malformed
/// JSON, unknown ops/scenarios, the `bench_sweep` determinism rejection,
/// invalid model geometry, and the post-`shutdown` fuse (the trailing
/// ping must never be answered).
const TRANSCRIPT_REQUESTS: &str = concat!(
    "{\"op\":\"ping\"}\n",
    "{\"id\":42,\"op\":\"list\"}\n",
    "{\"op\":\"predict\",\"model\":\"lenet5\",\"samples\":4,\"wbits\":6,\"abits\":8}\n",
    "{\"op\":\"predict\",\"model\":\"lenet5\",\"samples\":4,\"wbits\":6,\"abits\":8}\n",
    "\n",
    "{\"op\":\"run\",\"scenario\":\"table1\",\"format\":\"csv\",\"fast\":true}\n",
    "{\"op\":\"run\",\"scenario\":\"fig2\",\"format\":\"json\",\"fast\":true,\"threads\":2}\n",
    "this is not json\n",
    "{\"op\":\"warp\"}\n",
    "{\"op\":\"run\",\"scenario\":\"nope\"}\n",
    "{\"op\":\"run\",\"scenario\":\"bench_sweep\"}\n",
    "{\"id\":7,\"op\":\"predict\",\"model\":\"lenet5\",\"input\":99}\n",
    "{\"op\":\"shutdown\"}\n",
    "{\"op\":\"ping\"}\n",
);

fn transcript_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/serve_transcript.jsonl")
}

#[test]
fn transcript_matches_golden() {
    let (actual, outcome) = serve_lines(TRANSCRIPT_REQUESTS, 2, 4);
    // 12 answered requests: the blank line is a keep-alive and the
    // post-shutdown ping is behind the fuse.
    assert_eq!(outcome.served, 12);
    assert!(outcome.shutdown);

    let path = transcript_path();
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(&path, &actual).expect("write transcript fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden transcript {}: {e}\n\
             regenerate with: UPDATE_GOLDEN=1 cargo test --test serve_wire",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "serve replies drifted from tests/golden/serve_transcript.jsonl — \
         if the protocol change is intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test serve_wire and commit the diff"
    );
}

/// The acceptance criterion, literally: for every registered scenario a
/// served `run` reply carries byte-for-byte the rendering `dvafs run`
/// produces in-process. `bench_sweep` is the deliberate exception — it
/// measures wall time, so serve refuses it instead of replying
/// nondeterministically.
#[test]
fn served_run_output_matches_in_process_rendering_for_every_scenario() {
    let mut requests = String::new();
    for s in scenario::registry() {
        requests.push_str(&format!(
            "{{\"op\":\"run\",\"scenario\":\"{}\",\"format\":\"json\",\
             \"fast\":true,\"threads\":2}}\n",
            s.id()
        ));
    }
    let (out, outcome) = serve_lines(&requests, 3, 4);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(outcome.served, scenario::registry().len());
    assert_eq!(lines.len(), scenario::registry().len());

    for (line, s) in lines.iter().zip(scenario::registry()) {
        let reply = json::parse(line).expect("reply is valid JSON");
        if s.id() == "bench_sweep" {
            assert_eq!(
                reply.get("ok").and_then(json::JsonValue::as_bool),
                Some(false)
            );
            let err = reply
                .get("error")
                .and_then(json::JsonValue::as_str)
                .expect("error message");
            assert!(err.contains("bench_sweep"), "unexpected error: {err}");
            continue;
        }
        let served = reply
            .get("output")
            .and_then(json::JsonValue::as_str)
            .unwrap_or_else(|| panic!("{}: reply carries no output: {line}", s.id()));
        let ctx = ScenarioCtx::new().with_threads(2).with_fast(true);
        let expected = scenario::render(s.label(), s.title(), &s.run(&ctx), Format::Json);
        assert_eq!(served, expected, "{} served bytes drifted", s.id());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Serving is an execution choice: whatever the worker count and
    /// queue depth, a session's reply stream is byte-identical to the
    /// serial baseline, and a `run` reply's output is byte-identical to
    /// the in-process rendering (the same bytes `dvafs run` writes).
    #[test]
    fn served_replies_are_invariant_in_threads_and_queue(
        scenario_idx in 0usize..4,
        threads in 1usize..=4,
        queue in 1usize..=8,
        format_idx in 0usize..3,
    ) {
        let id = ["fig2", "table1", "table2", "fig4"][scenario_idx];
        let (wire_name, format) = [
            ("json", Format::Json),
            ("csv", Format::Csv),
            ("text", Format::Text),
        ][format_idx];
        let requests = format!(
            "{{\"op\":\"predict\",\"samples\":3,\"wbits\":5,\"abits\":7}}\n\
             {{\"op\":\"run\",\"scenario\":\"{id}\",\"format\":\"{wire_name}\",\
             \"fast\":true}}\n\
             {{\"op\":\"shutdown\"}}\n"
        );
        let (baseline, _) = serve_lines(&requests, 1, 1);
        let (out, outcome) = serve_lines(&requests, threads, queue);
        prop_assert_eq!(&out, &baseline,
            "reply stream changed with threads={}, queue={}", threads, queue);
        prop_assert_eq!(outcome.served, 3);

        let run_reply = json::parse(out.lines().nth(1).expect("run reply"))
            .expect("reply is valid JSON");
        let served = run_reply
            .get("output")
            .and_then(json::JsonValue::as_str)
            .expect("run reply carries output");
        let s = scenario::find(id).expect("scenario registered");
        let ctx = ScenarioCtx::new().with_threads(1).with_fast(true);
        let expected = scenario::render(s.label(), s.title(), &s.run(&ctx), format);
        prop_assert_eq!(served, expected.as_str());
    }
}

/// A real socket round trip: the accept loop serves a connection, model
/// caches live in the loop (not the connection), and a client `shutdown`
/// stops the server thread.
#[test]
fn tcp_round_trip_serves_and_shuts_down() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("bound address");
    let server = std::thread::spawn(move || {
        dvafs::serve::serve_tcp(
            &listener,
            &ServeOpts {
                threads: 2,
                queue: 4,
                ..ServeOpts::default()
            },
        )
    });

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    writer
        .write_all(
            b"{\"op\":\"ping\"}\n\
              {\"op\":\"predict\",\"samples\":2,\"wbits\":4,\"abits\":4}\n\
              {\"op\":\"shutdown\"}\n",
        )
        .expect("send requests");
    writer.flush().expect("flush requests");

    let mut replies = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        replies.push(line.trim_end().to_string());
    }
    assert_eq!(
        replies[0],
        "{\"id\":0,\"ok\":true,\"op\":\"ping\",\"protocol\":1}"
    );
    let predict = json::parse(&replies[1]).expect("predict reply is valid JSON");
    assert_eq!(
        predict.get("ok").and_then(json::JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(
        predict.get("model").and_then(json::JsonValue::as_str),
        Some("lenet5")
    );
    assert_eq!(
        replies[2],
        "{\"id\":2,\"ok\":true,\"op\":\"shutdown\",\"served\":3}"
    );

    // The in-memory session over the same bytes produces the same reply
    // stream: transport is not an execution choice either.
    let (in_memory, _) = serve_lines(
        "{\"op\":\"ping\"}\n{\"op\":\"predict\",\"samples\":2,\"wbits\":4,\"abits\":4}\n{\"op\":\"shutdown\"}\n",
        1,
        1,
    );
    assert_eq!(in_memory.lines().collect::<Vec<_>>(), replies);

    server
        .join()
        .expect("server thread")
        .expect("accept loop exits cleanly after shutdown");
}
