//! Property tests for the executor's determinism contract: for random
//! thread counts and random root seeds, the parallel multiplier sweeps are
//! **bit-identical** (`==`, not approximately equal) to the serial ones.
//!
//! This is what licenses every other test and figure in the workspace to
//! run parallel by default — parallelism can never silently move the
//! paper's numbers.

use dvafs::executor::Executor;
use dvafs::sweep::MultiplierSweep;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn fig3a_and_fig3b_bit_identical_across_thread_counts(
        threads in 1usize..=8,
        seed in any::<u64>(),
    ) {
        // Reduced Monte-Carlo volume (multiple chunks, last one partial)
        // keeps a case affordable; the chunk layout is identical to the
        // paper-scale configuration.
        let sweep = MultiplierSweep::with_seed(seed).with_samples(600);
        let serial = sweep.clone().with_executor(Executor::serial());
        let parallel = sweep.with_executor(Executor::new(threads));

        let fig3a_serial = serial.fig3a();
        let fig3a_parallel = parallel.fig3a();
        prop_assert_eq!(&fig3a_serial, &fig3a_parallel);
        // Strict equality must hold down to the bit pattern of every float.
        for (s, p) in fig3a_serial.iter().zip(&fig3a_parallel) {
            prop_assert_eq!(s.relative.to_bits(), p.relative.to_bits());
            prop_assert_eq!(s.picojoules.to_bits(), p.picojoules.to_bits());
        }

        let fig3b_serial = serial.fig3b();
        let fig3b_parallel = parallel.fig3b();
        prop_assert_eq!(&fig3b_serial, &fig3b_parallel);
        for (s, p) in fig3b_serial.iter().zip(&fig3b_parallel) {
            prop_assert_eq!(s.rmse.to_bits(), p.rmse.to_bits());
            prop_assert_eq!(s.energy.to_bits(), p.energy.to_bits());
        }
    }

    #[test]
    fn fig2_bit_identical_across_thread_counts(
        threads in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let sweep = MultiplierSweep::with_seed(seed);
        let serial = sweep.clone().with_executor(Executor::serial()).fig2();
        let parallel = sweep.with_executor(Executor::new(threads)).fig2();
        prop_assert_eq!(serial, parallel);
    }
}
