//! The equivalence proof net for the bitsliced netlist engine.
//!
//! The bitsliced evaluator ([`BitSimulator`]) replaces the scalar
//! [`Simulator`] on every hot path, so this suite pins the refactor's
//! contract from three directions:
//!
//! 1. **Random netlists** (random gate mix, depth and fanin) × random
//!    operand streams × ragged lengths `1..=200`: primary-output values
//!    *and per-gate toggle counters* must equal the scalar oracle's.
//! 2. **Real multipliers**: the batched `evaluate_packed` entry points
//!    must reproduce the behavioral products pair by pair.
//! 3. **Extraction**: activity profiles must be bit-identical across
//!    engines (scalar vs bitsliced) and across executor thread counts
//!    `1..=8` (bitsliced-parallel == bitsliced-serial).
//!
//! Together with the golden JSON fixtures (which pin fig2/fig3a/fig3b/
//! table3 byte-for-byte) this is what licenses the bitsliced engine to be
//! the default: it can be fast, but it cannot move a number.

use dvafs::executor::Executor;
use dvafs_arith::activity::{
    extract_das_profile_booth_with, extract_das_profile_with, extract_dvafs_profile_with,
};
use dvafs_arith::metrics::pack_stimuli;
use dvafs_arith::multiplier::{DvafsMultiplier, ExactMultiplier};
use dvafs_arith::netlist::{BitSimulator, Engine, Netlist, NodeId, Simulator, LANES};
use dvafs_arith::SubwordMode;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Builds a random combinational netlist: `inputs` primary inputs,
/// optionally the constant nodes, then `gates` cells of random kind whose
/// fanins are drawn from everything built so far (so depth and fanin vary
/// freely), and 1..=8 outputs picked anywhere (repeats allowed).
fn random_netlist(seed: u64, inputs: usize, gates: usize) -> Netlist {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new();
    let mut nodes: Vec<NodeId> = nl.input_bus(inputs);
    if rng.gen_bool(0.5) {
        nodes.push(nl.zero());
    }
    if rng.gen_bool(0.5) {
        nodes.push(nl.one());
    }
    for _ in 0..gates {
        let a = nodes[rng.gen_range(0..nodes.len())];
        let b = nodes[rng.gen_range(0..nodes.len())];
        let c = nodes[rng.gen_range(0..nodes.len())];
        let node = match rng.gen_range(0..7u32) {
            0 => nl.not(a),
            1 => nl.and(a, b),
            2 => nl.or(a, b),
            3 => nl.xor(a, b),
            4 => nl.nand(a, b),
            5 => nl.nor(a, b),
            _ => nl.mux(c, a, b),
        };
        nodes.push(node);
    }
    for _ in 0..rng.gen_range(1..=8usize) {
        nl.mark_output(nodes[rng.gen_range(0..nodes.len())]);
    }
    nl
}

/// Drives both engines over the same stream and asserts per-sample output
/// values, per-gate toggle counters and aggregate stats all agree.
fn assert_engines_agree(nl: &Netlist, stream: &[Vec<bool>]) -> Result<(), TestCaseError> {
    let mut scalar = Simulator::new(nl.clone());
    let mut scalar_out = Vec::with_capacity(stream.len());
    for stim in stream {
        scalar_out.push(scalar.eval(stim).expect("stimulus width"));
    }

    let mut packed = BitSimulator::new(nl.clone());
    let mut packed_out: Vec<Vec<bool>> = Vec::with_capacity(stream.len());
    for chunk in stream.chunks(LANES) {
        let words = packed
            .eval_packed(&pack_stimuli(chunk), chunk.len())
            .expect("stimulus width");
        for lane in 0..chunk.len() {
            packed_out.push(words.iter().map(|w| (w >> lane) & 1 == 1).collect());
        }
    }

    prop_assert_eq!(&scalar_out, &packed_out, "primary-output values");
    prop_assert_eq!(scalar.toggles(), packed.toggles(), "per-gate toggles");
    prop_assert_eq!(scalar.stats(), packed.stats(), "aggregate stats");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Direction 1: random netlists × random streams × ragged lengths.
    #[test]
    fn random_netlists_evaluate_bit_identically(
        seed in any::<u64>(),
        inputs in 1usize..=12,
        gates in 1usize..=120,
        samples in 1usize..=200,
    ) {
        let nl = random_netlist(seed, inputs, gates);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
        let stream: Vec<Vec<bool>> = (0..samples)
            .map(|_| (0..nl.input_count()).map(|_| rng.gen()).collect())
            .collect();
        assert_engines_agree(&nl, &stream)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Direction 2: the batched multiplier entry points reproduce the
    /// behavioral products across word boundaries and modes.
    #[test]
    fn multiplier_evaluate_packed_matches_behavioral(
        seed in any::<u64>(),
        pairs in 1usize..=150,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let stream: Vec<(u16, u16)> = (0..pairs).map(|_| (rng.gen(), rng.gen())).collect();
        let m = DvafsMultiplier::new();
        for mode in SubwordMode::ALL {
            let expected: Vec<u32> =
                stream.iter().map(|&(a, b)| m.mul_packed(a, b, mode)).collect();
            prop_assert_eq!(m.evaluate_packed(&stream, mode), expected);
        }
        let signed: Vec<(i64, i64)> = stream
            .iter()
            .map(|&(a, b)| (i64::from(a as i16), i64::from(b as i16)))
            .collect();
        let bw = ExactMultiplier::booth_wallace(16);
        let expected: Vec<i64> = signed.iter().map(|&(x, y)| x * y).collect();
        prop_assert_eq!(bw.evaluate_packed(&signed), expected);
    }

    /// Direction 3a: scalar and bitsliced engines extract bit-identical
    /// activity profiles at ragged stream lengths. Streams start at 2
    /// samples: a single sample only primes the simulator, so every
    /// profile ratio is 0/0 = NaN and `==` can't witness agreement.
    #[test]
    fn extraction_engines_agree(
        seed in any::<u64>(),
        samples in 2usize..=200,
    ) {
        let serial = Executor::serial();
        let das_scalar = extract_das_profile_with(samples, seed, Engine::Scalar, &serial);
        let das_packed = extract_das_profile_with(samples, seed, Engine::Bitsliced, &serial);
        prop_assert_eq!(das_scalar, das_packed);
        let dvafs_scalar = extract_dvafs_profile_with(samples, seed, Engine::Scalar, &serial);
        let dvafs_packed = extract_dvafs_profile_with(samples, seed, Engine::Bitsliced, &serial);
        prop_assert_eq!(dvafs_scalar, dvafs_packed);
        let booth_scalar = extract_das_profile_booth_with(samples, seed, Engine::Scalar, &serial);
        let booth_packed = extract_das_profile_booth_with(samples, seed, Engine::Bitsliced, &serial);
        prop_assert_eq!(booth_scalar, booth_packed);
    }

    /// Direction 3b: bitsliced-parallel == bitsliced-serial for every
    /// thread count 1..=8 (streams start at 2 samples; see 3a).
    #[test]
    fn parallel_extraction_matches_serial(
        seed in any::<u64>(),
        threads in 1usize..=8,
        samples in 2usize..=200,
    ) {
        let serial = Executor::serial();
        let pool = Executor::new(threads);
        prop_assert_eq!(
            extract_das_profile_with(samples, seed, Engine::Bitsliced, &serial),
            extract_das_profile_with(samples, seed, Engine::Bitsliced, &pool)
        );
        prop_assert_eq!(
            extract_dvafs_profile_with(samples, seed, Engine::Bitsliced, &serial),
            extract_dvafs_profile_with(samples, seed, Engine::Bitsliced, &pool)
        );
    }
}
