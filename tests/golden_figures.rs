//! Golden snapshot tests: the paper's figure data, serialized to JSON and
//! compared byte-for-byte against checked-in fixtures.
//!
//! The fixtures pin the *exact* floating-point values of Fig. 2, Fig. 3a,
//! Fig. 3b and Table III at the default seed, so any change to the models,
//! the activity extraction, the Monte-Carlo chunking or the executor that
//! moves a figure — even in the last bit — fails loudly here instead of
//! drifting silently.
//!
//! Since the scenario-registry refactor the JSON comes from the **generic
//! scenario serializer** (`dvafs::scenario::render`), invoked in-process —
//! the same path `dvafs run <id> --format json` serves — so these tests
//! also pin the CLI's machine-readable output.
//!
//! ## Regenerating
//!
//! After an *intentional* model change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_figures
//! git diff tests/golden/   # review the numeric drift, then commit it
//! ```
//!
//! Fixtures are written with shortest-roundtrip float formatting (see
//! `dvafs::report::json`), so a byte-level diff is a bit-level diff of the
//! computed values.

use dvafs::scenario::{self, Format, ScenarioCtx};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn assert_matches_golden(id: &str) {
    let s = scenario::find(id).expect("scenario registered");
    // Paper-scale configuration on a small worker pool: determinism makes
    // the thread count irrelevant to the bytes produced.
    let result = s.run(&ScenarioCtx::new().with_threads(2));
    let actual = scenario::render(s.label(), s.title(), &result, Format::Json);

    let path = fixture_path(id);
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             regenerate with: UPDATE_GOLDEN=1 cargo test --test golden_figures",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{id} drifted from tests/golden/{id}.json — if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1 cargo test --test \
         golden_figures and commit the diff"
    );
}

#[test]
fn fig2_matches_golden() {
    assert_matches_golden("fig2");
}

#[test]
fn fig3a_matches_golden() {
    assert_matches_golden("fig3a");
}

#[test]
fn fig3b_matches_golden() {
    // Paper-scale Monte-Carlo volume: the fixture pins the full stream.
    assert_matches_golden("fig3b");
}

#[test]
fn table3_matches_golden() {
    assert_matches_golden("table3");
}

#[test]
fn fig6_vgg_matches_golden() {
    // The VGG16-scale search the incremental strategy unlocks; the search
    // strategy never moves a number, so this fixture also pins the
    // rescan oracle (see the equivalence net in crates/nn).
    assert_matches_golden("fig6_vgg");
}

#[test]
fn cnn_layerwise_matches_golden() {
    // The Section IV/V end-to-end flow (formerly the `cnn_layerwise`
    // example). The batch forward path never moves a number, so this
    // fixture also pins the sample-major oracle against the layer-major
    // default (see crates/nn/tests/batch_equivalence.rs).
    assert_matches_golden("cnn_layerwise");
}
