//! Golden snapshot tests: the paper's figure data, serialized to JSON and
//! compared byte-for-byte against checked-in fixtures.
//!
//! The fixtures pin the *exact* floating-point values of Fig. 2, Fig. 3a,
//! Fig. 3b and Table III at the default seed, so any change to the models,
//! the activity extraction, the Monte-Carlo chunking or the executor that
//! moves a figure — even in the last bit — fails loudly here instead of
//! drifting silently.
//!
//! ## Regenerating
//!
//! After an *intentional* model change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_figures
//! git diff tests/golden/   # review the numeric drift, then commit it
//! ```
//!
//! Fixtures are written with shortest-roundtrip float formatting (see
//! `dvafs::report::json`), so a byte-level diff is a bit-level diff of the
//! computed values.

use dvafs::report::json;
use dvafs::sweep::MultiplierSweep;
use dvafs_envision::chip::EnvisionChip;
use dvafs_envision::measure::table3;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             regenerate with: UPDATE_GOLDEN=1 cargo test --test golden_figures",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from tests/golden/{name}.json — if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1 cargo test --test \
         golden_figures and commit the diff"
    );
}

#[test]
fn fig2_matches_golden() {
    let sweep = MultiplierSweep::new();
    assert_matches_golden("fig2", &json::fig2_to_json(&sweep.fig2()));
}

#[test]
fn fig3a_matches_golden() {
    let sweep = MultiplierSweep::new();
    assert_matches_golden("fig3a", &json::fig3a_to_json(&sweep.fig3a()));
}

#[test]
fn fig3b_matches_golden() {
    // Paper-scale Monte-Carlo volume: the fixture pins the full stream.
    let sweep = MultiplierSweep::new();
    assert_matches_golden("fig3b", &json::fig3b_to_json(&sweep.fig3b()));
}

#[test]
fn table3_matches_golden() {
    let chip = EnvisionChip::new();
    assert_matches_golden("table3", &json::table3_to_json(&table3(&chip)));
}
