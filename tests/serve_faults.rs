//! Fault-isolation tests for `dvafs serve` (PR 10's tentpole proof).
//!
//! The serving layer claims the paper's own contract — degrade
//! per-request, never per-process — and this file is where the claim is
//! tested *under fault*. The centerpiece is the chaos proptest: random
//! seeded [`FaultPlan`]s × thread counts 1..=4 × queue depths 1..=8, with
//! three invariants that must hold for every combination:
//!
//! 1. **the process survives** — `serve_session` returns `Ok`, never
//!    panics, never aborts;
//! 2. **non-faulted requests are untouched** — their replies are
//!    byte-identical to the fault-free golden run of the same batch
//!    (injected *delays* must also leave bytes untouched when no
//!    deadline is set);
//! 3. **faulted requests fail well** — an ordered, well-formed
//!    `{"ok":false}` reply at exactly the faulted request's position.
//!
//! Around it: deterministic pins for the error paths the wire protocol
//! already had but nothing exercised (deep JSON, predict sample bounds,
//! shutdown-mid-queue draining) and a TCP idle-timeout round trip.

use dvafs::faultplan::FaultPlan;
use dvafs::report::json;
use dvafs::serve::{
    serve_session, ServeOpts, ServeState, SessionOutcome, MAX_PREDICT_SAMPLES, MAX_REQUEST_BYTES,
};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Cursor, Read, Write};

fn serve_with(input: &str, opts: &ServeOpts) -> (String, SessionOutcome) {
    let state = ServeState::new();
    let mut out = Vec::new();
    let outcome = serve_session(Cursor::new(input.to_string()), &mut out, opts, &state)
        .expect("in-memory serve cannot fail on io");
    (String::from_utf8(out).expect("replies are utf-8"), outcome)
}

/// The chaos request batch: every op kind the protocol has (minus
/// `shutdown`, which would fuse the stream and hide later faults), plus
/// a malformed line — cheap enough to run many plan × schedule combos.
fn chaos_requests() -> String {
    let mut requests = String::new();
    for i in 0..12 {
        let line = match i % 4 {
            0 => "{\"op\":\"ping\"}".to_string(),
            1 => format!(
                "{{\"op\":\"predict\",\"samples\":{},\"wbits\":5,\"abits\":7}}",
                2 + i % 3
            ),
            2 => "{\"op\":\"list\"}".to_string(),
            _ => "{\"op\":\"nonsense\"}".to_string(),
        };
        requests.push_str(&line);
        requests.push('\n');
    }
    requests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance criterion, literally: for random seeded fault
    /// plans × threads 1..=4 × queue 1..=8, the session never aborts,
    /// faulted requests get ordered well-formed error replies, and every
    /// non-faulted reply is byte-identical to the fault-free golden
    /// transcript of the same batch.
    #[test]
    fn chaos_plans_degrade_per_request_never_per_process(
        seed in 0u64..=u64::from(u32::MAX),
        threads in 1usize..=4,
        queue in 1usize..=8,
    ) {
        let requests = chaos_requests();
        let n = requests.lines().count();
        let plan = FaultPlan::seeded(seed, n);

        // The fault-free golden transcript (serial: the determinism net
        // in serve_wire.rs already proves schedule-invariance).
        let (golden, _) = serve_with(&requests, &ServeOpts {
            threads: 1,
            queue: 1,
            ..ServeOpts::default()
        });
        let golden: Vec<&str> = golden.lines().collect();
        prop_assert_eq!(golden.len(), n);

        let (out, outcome) = serve_with(&requests, &ServeOpts {
            threads,
            queue,
            fault_plan: Some(plan.clone()),
            ..ServeOpts::default()
        });
        let lines: Vec<&str> = out.lines().collect();

        // 1. Survival: one ordered reply per request, no aborts.
        prop_assert_eq!(outcome.served, n,
            "plan {} dropped replies at threads={} queue={}", plan, threads, queue);
        prop_assert_eq!(lines.len(), n);

        for (seq, line) in lines.iter().enumerate() {
            if plan.faults_reply_of(seq, None) {
                // 3. Faulted requests fail well: well-formed JSON,
                // ok:false, the default id echoed at the right position.
                let reply = json::parse(line).unwrap_or_else(|e| {
                    panic!("plan {plan}: faulted reply {seq} is not JSON ({e}): {line}")
                });
                prop_assert_eq!(
                    reply.get("ok").and_then(json::JsonValue::as_bool),
                    Some(false),
                    "plan {}: faulted request {} not an error reply: {}", plan, seq, line
                );
                prop_assert_eq!(
                    reply.get("id").and_then(json::JsonValue::as_u64),
                    Some(seq as u64),
                    "plan {}: faulted request {} lost its id: {}", plan, seq, line
                );
            } else {
                // 2. Non-faulted (and delay-only) requests: exact bytes.
                prop_assert_eq!(*line, golden[seq],
                    "plan {}: non-faulted request {} drifted at threads={} queue={}",
                    plan, seq, threads, queue);
            }
        }
    }
}

/// A fixed mixed plan as a deterministic regression pin next to the
/// proptest: one panic, one oversize, one garble, one (reply-preserving)
/// delay, all mid-stream.
#[test]
fn fixed_mixed_plan_matches_golden_outside_faults() {
    let requests = chaos_requests();
    let plan = FaultPlan::parse("panic@2,delay@4:20,oversize@6,garble@9").unwrap();
    let (golden, _) = serve_with(&requests, &ServeOpts::default());
    let (out, _) = serve_with(
        &requests,
        &ServeOpts {
            threads: 3,
            queue: 4,
            fault_plan: Some(plan),
            ..ServeOpts::default()
        },
    );
    for (seq, (faulted, clean)) in out.lines().zip(golden.lines()).enumerate() {
        match seq {
            2 => assert!(
                faulted.contains("internal: injected fault: panic at request 2"),
                "{faulted}"
            ),
            6 => assert!(
                faulted.contains(&format!("exceeds {MAX_REQUEST_BYTES} bytes")),
                "{faulted}"
            ),
            9 => assert!(faulted.contains("unparseable request"), "{faulted}"),
            _ => assert_eq!(faulted, clean, "request {seq} drifted"),
        }
    }
}

/// Satellite pin: JSON nested deeper than the parser's `MAX_DEPTH` (64)
/// is an ordered error reply naming the limit, not a crash or a hang —
/// and the session keeps serving.
#[test]
fn deep_json_gets_error_reply() {
    let deep = format!(
        "{{\"op\":\"ping\",\"x\":{}0{}}}",
        "[".repeat(70),
        "]".repeat(70)
    );
    let input = format!("{deep}\n{{\"op\":\"ping\"}}\n");
    let (out, outcome) = serve_with(
        &input,
        &ServeOpts {
            threads: 2,
            queue: 2,
            ..ServeOpts::default()
        },
    );
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].contains("\"ok\":false"), "{}", lines[0]);
    assert!(lines[0].contains("deeper than 64"), "{}", lines[0]);
    assert!(lines[1].contains("\"ok\":true"), "{}", lines[1]);
    assert_eq!(outcome.served, 2);
}

/// Satellite pin: both `predict` sample bounds — 0 and
/// `MAX_PREDICT_SAMPLES + 1` — are rejected with the range in the
/// message, and the boundary value itself is accepted at parse level
/// (it fails later only if the model/dataset cannot satisfy it).
#[test]
fn predict_sample_bounds_are_pinned() {
    let input = format!(
        "{{\"op\":\"predict\",\"samples\":0}}\n\
         {{\"op\":\"predict\",\"samples\":{}}}\n",
        MAX_PREDICT_SAMPLES + 1
    );
    let (out, _) = serve_with(&input, &ServeOpts::default());
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2);
    for line in &lines {
        assert!(line.contains("\"ok\":false"), "{line}");
        assert!(
            line.contains(&format!("1..={MAX_PREDICT_SAMPLES}")),
            "{line}"
        );
    }
}

/// Satellite pin: `shutdown` arriving while earlier requests are still
/// in the queue drains them **in request order** — every request before
/// the shutdown is answered, the shutdown reply is last, nothing after
/// it is ever read.
#[test]
fn shutdown_mid_queue_drains_in_request_order() {
    let mut input = String::new();
    for _ in 0..6 {
        input.push_str("{\"op\":\"predict\",\"samples\":2,\"wbits\":4,\"abits\":4}\n");
    }
    input.push_str("{\"op\":\"shutdown\"}\n{\"op\":\"ping\"}\n{\"op\":\"ping\"}\n");
    let (serial, _) = serve_with(
        &input,
        &ServeOpts {
            threads: 1,
            queue: 1,
            ..ServeOpts::default()
        },
    );
    let (out, outcome) = serve_with(
        &input,
        &ServeOpts {
            threads: 4,
            queue: 8,
            ..ServeOpts::default()
        },
    );
    assert!(outcome.shutdown);
    assert_eq!(outcome.served, 7);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 7);
    for (i, line) in lines.iter().enumerate() {
        assert!(line.starts_with(&format!("{{\"id\":{i},")), "{line}");
    }
    assert!(lines[6].contains("\"op\":\"shutdown\""));
    assert_eq!(out, serial, "drain order diverged from serial");
}

/// The idle-timeout satellite at the socket level: a client that goes
/// quiet is closed cleanly after the read timeout — and the sequential
/// accept loop moves on to serve the *next* connection instead of
/// hanging forever behind the hung one.
#[test]
fn tcp_idle_client_is_closed_and_accept_loop_continues() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("bound address");
    let server = std::thread::spawn(move || {
        dvafs::serve::serve_tcp(
            &listener,
            &ServeOpts {
                threads: 2,
                queue: 4,
                idle_timeout_ms: Some(150),
                ..ServeOpts::default()
            },
        )
    });

    // Client 1: one request, then silence — never closes its socket.
    let stream = std::net::TcpStream::connect(addr).expect("connect idle client");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"{\"op\":\"ping\"}\n").expect("send ping");
    writer.flush().expect("flush ping");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read ping reply");
    assert!(line.contains("\"op\":\"ping\""), "{line}");
    // The server must hang up on us (EOF), not block forever.
    let mut rest = Vec::new();
    reader
        .read_to_end(&mut rest)
        .expect("connection closed cleanly");
    assert!(rest.is_empty(), "unexpected trailing bytes: {rest:?}");

    // Client 2: the accept loop is still alive; shutdown stops it.
    let stream = std::net::TcpStream::connect(addr).expect("connect second client");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .expect("send shutdown");
    writer.flush().expect("flush shutdown");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read shutdown reply");
    assert!(line.contains("\"op\":\"shutdown\""), "{line}");

    server
        .join()
        .expect("server thread")
        .expect("accept loop exits cleanly after shutdown");
}
