//! Smoke tests: every paper-reproduction binary in `crates/bench` must build
//! and exit 0, so the figure/table entry points cannot silently rot — and
//! every binary must print **byte-identical stdout at `--threads 1` and
//! `--threads 4`**, which is the end-to-end enforcement of the parallel
//! executor's determinism guarantee.
//!
//! Each binary is invoked through `cargo run --release`: the gate-level
//! simulators are orders of magnitude slower unoptimized, and the tier-1
//! pipeline (`cargo build --release && cargo test -q`) leaves a warm release
//! cache. Output is captured and only shown on failure.

use std::path::Path;
use std::process::Command;

/// Every `[[bin]]` target of `dvafs-bench`, one per paper artefact (plus
/// the `BENCH_sweep.json` performance emitter).
const FIGURE_BINARIES: &[&str] = &[
    "fig2",
    "fig3a",
    "fig3b",
    "fig4",
    "fig6",
    "fig8",
    "table1",
    "table2",
    "table3",
    "ablations",
    "bench_sweep",
];

/// Runs one binary at a thread count, returning its stdout.
fn run_at_threads(name: &str, threads: &str) -> String {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let output = Command::new(cargo)
        .args([
            "run",
            "--quiet",
            "--release",
            "-p",
            "dvafs-bench",
            "--bin",
            name,
        ])
        // Binaries with an expensive default configuration honour --fast
        // (fig6, bench_sweep); the rest ignore the flag. Every binary
        // honours --threads.
        .args(["--", "--fast", "--threads", threads])
        .current_dir(workspace_root)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo run --bin {name}: {e}"));
    assert!(
        output.status.success(),
        "binary {name} (--threads {threads}) exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "binary {name} exited 0 but printed nothing"
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn run_bench_binary(name: &str) {
    let serial = run_at_threads(name, "1");
    let parallel = run_at_threads(name, "4");
    assert_eq!(
        serial, parallel,
        "binary {name}: stdout differs between --threads 1 and --threads 4 \
         (parallel execution must be bit-identical to serial)"
    );
}

macro_rules! smoke {
    ($($name:ident),* $(,)?) => {$(
        #[test]
        fn $name() {
            run_bench_binary(stringify!($name));
        }
    )*};
}

smoke!(
    fig2,
    fig3a,
    fig3b,
    fig4,
    fig6,
    fig8,
    table1,
    table2,
    table3,
    ablations,
    bench_sweep
);

#[test]
fn smoke_list_matches_bench_bin_dir() {
    // Guard the guard: if a new binary is added under crates/bench/src/bin,
    // it must be added to FIGURE_BINARIES above (and the smoke! list).
    let bin_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/bench/src/bin");
    let mut on_disk: Vec<String> = std::fs::read_dir(bin_dir)
        .expect("crates/bench/src/bin exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .map(|p| {
            p.file_stem()
                .expect("file has a stem")
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = FIGURE_BINARIES.iter().map(ToString::to_string).collect();
    listed.sort();
    assert_eq!(
        listed, on_disk,
        "smoke-test list out of sync with crates/bench/src/bin"
    );
}
