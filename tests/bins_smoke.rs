//! Smoke tests: every experiment entry point in `crates/bench` must build
//! and exit 0 — and every **legacy shim** must print stdout byte-identical
//! to the in-process scenario rendering (`dvafs::scenario::render`), at a
//! *different* thread count. One subprocess run per binary is enough to
//! pin both properties:
//!
//! * the shim really delegates to the registry (same bytes), and
//! * output is thread-count invariant (subprocess at `--threads 2` vs
//!   in-process at `--threads 1`) — the end-to-end enforcement of the
//!   parallel executor's determinism guarantee.
//!
//! This replaces the pre-registry scheme of running every binary twice
//! and diffing the two runs: the suite now spawns half the subprocesses
//! and additionally checks shim fidelity, which subprocess-vs-subprocess
//! diffing never could.
//!
//! Each binary is invoked through `cargo run --release`: the gate-level
//! simulators are orders of magnitude slower unoptimized, and the tier-1
//! pipeline (`cargo build --release && cargo test -q`) leaves a warm
//! release cache. Output is captured and only shown on failure.

use dvafs::nn::SearchStrategy;
use dvafs::scenario::{self, Format, ScenarioCtx};
use std::path::Path;
use std::process::Command;

/// Every legacy `[[bin]]` target of `dvafs-bench`, one per paper artefact
/// (plus the `BENCH_sweep.json` performance emitter). The `dvafs` CLI
/// binary is covered separately below.
const FIGURE_BINARIES: &[&str] = &[
    "fig2",
    "fig3a",
    "fig3b",
    "fig4",
    "fig6",
    "fig8",
    "table1",
    "table2",
    "table3",
    "ablations",
    "bench_sweep",
];

/// Runs one bench binary with the given trailing args, returning stdout.
fn run_bin(name: &str, args: &[&str]) -> String {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let output = Command::new(cargo)
        .args([
            "run",
            "--quiet",
            "--release",
            "-p",
            "dvafs-bench",
            "--bin",
            name,
            "--",
        ])
        .args(args)
        .current_dir(workspace_root)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo run --bin {name}: {e}"));
    assert!(
        output.status.success(),
        "binary {name} {args:?} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "binary {name} exited 0 but printed nothing"
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// The smoke check for one legacy shim: subprocess stdout at `--threads 2`
/// (with an unknown flag thrown in, which legacy shims must keep
/// ignoring) equals the in-process scenario rendering at `--threads 1`.
fn run_bench_binary(name: &str) {
    if name == "bench_sweep" {
        // bench_sweep gets its own invocation: no `--threads` (its
        // parallel column must default to the *host* parallelism, not a
        // count this test happens to pick — a hardcoded 2 on a 1-CPU
        // runner recorded a meaningless slowdown artifact) and one timed
        // repeat (the scenario runs every experiment 4 ways; medians are
        // CI's job). Timings make a second full run pointless; the
        // scenario itself asserts serial == parallel == scalar == naive
        // for every registered experiment. Pin the stable parts of the
        // presentation instead.
        let stdout = run_bin(name, &["--fast", "--repeats", "1", "--legacy-noise"]);
        assert!(stdout.starts_with("=== DVAFS reproduction | BENCH sweep"));
        for s in scenario::registry() {
            if s.id() != "bench_sweep" {
                assert!(
                    stdout.contains(&format!(
                        "measured {}: serial and parallel runs bit-identical",
                        s.id()
                    )),
                    "bench_sweep stdout missing {}",
                    s.id()
                );
            }
        }
        assert!(stdout.ends_with("wrote BENCH_sweep.json\n"));
        return;
    }
    let stdout = run_bin(name, &["--fast", "--threads", "2", "--legacy-noise"]);
    let s = scenario::find(name).expect("every legacy binary has a scenario");
    let result = s.run(&ScenarioCtx::new().with_threads(1).with_fast(true));
    let expected = scenario::render(s.label(), s.title(), &result, Format::Text);
    assert_eq!(
        stdout, expected,
        "binary {name}: stdout differs from the in-process scenario \
         rendering (shim drift, or thread-count dependent output)"
    );
}

macro_rules! smoke {
    ($($name:ident),* $(,)?) => {$(
        #[test]
        fn $name() {
            run_bench_binary(stringify!($name));
        }
    )*};
}

smoke!(
    fig2,
    fig3a,
    fig3b,
    fig4,
    fig6,
    fig8,
    table1,
    table2,
    table3,
    ablations,
    bench_sweep
);

#[test]
fn fig6_stdout_unchanged_by_search_strategy() {
    // The incremental precision search is the new default; it must never
    // move a byte of presentation text. In-process: both strategies render
    // identically for the fig6-family scenarios...
    for id in ["fig6", "fig6_vgg"] {
        let s = scenario::find(id).expect("registered");
        let ctx = ScenarioCtx::new().with_threads(1).with_fast(true);
        let incremental = s.run(&ctx.clone().with_search(SearchStrategy::Incremental));
        let rescan = s.run(&ctx.with_search(SearchStrategy::Rescan));
        assert_eq!(
            scenario::render(s.label(), s.title(), &incremental, Format::Text),
            scenario::render(s.label(), s.title(), &rescan, Format::Text),
            "{id}: search strategy moved the rendered text"
        );
    }
    // ...and the legacy fig6 shim pinned to the old rescan path prints
    // stdout byte-identical to the in-process rendering under the new
    // default (at a different thread count, like every shim smoke).
    let stdout = run_bin("fig6", &["--fast", "--threads", "2", "--search", "rescan"]);
    let s = scenario::find("fig6").expect("registered");
    let result = s.run(&ScenarioCtx::new().with_threads(1).with_fast(true));
    assert_eq!(
        stdout,
        scenario::render(s.label(), s.title(), &result, Format::Text),
        "fig6 shim stdout changed under the default incremental strategy"
    );
}

#[test]
fn dvafs_cli_lists_every_scenario() {
    let stdout = run_bin("dvafs", &["list"]);
    for s in scenario::registry() {
        assert!(stdout.contains(s.id()), "dvafs list missing {}", s.id());
        assert!(
            stdout.contains(s.fast_note()),
            "dvafs list missing --fast note for {}",
            s.id()
        );
    }
}

#[test]
fn dvafs_cli_rejects_bad_invocations() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for (args, needle) in [
        (vec!["run"], "no scenarios"),
        (vec!["run", "fig99"], "unknown scenario"),
        (vec!["run", "fig2", "--out"], "--out requires a value"),
        (vec!["run", "fig2", "--format", "yaml"], "unknown format"),
    ] {
        let output = Command::new(&cargo)
            .args([
                "run",
                "--quiet",
                "--release",
                "-p",
                "dvafs-bench",
                "--bin",
                "dvafs",
                "--",
            ])
            .args(&args)
            .current_dir(workspace_root)
            .output()
            .expect("spawn dvafs");
        assert!(
            !output.status.success(),
            "dvafs {args:?} should exit nonzero"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(needle),
            "dvafs {args:?}: stderr {stderr:?} missing {needle:?}"
        );
    }
}

#[test]
fn smoke_list_matches_bench_bin_dir() {
    // Guard the guard: if a new binary is added under crates/bench/src/bin,
    // it must be added to FIGURE_BINARIES above (and the smoke! list) —
    // or be the `dvafs` CLI itself, which has its own tests here.
    let bin_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/bench/src/bin");
    let mut on_disk: Vec<String> = std::fs::read_dir(bin_dir)
        .expect("crates/bench/src/bin exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .map(|p| {
            p.file_stem()
                .expect("file has a stem")
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = FIGURE_BINARIES.iter().map(ToString::to_string).collect();
    listed.push("dvafs".to_string());
    listed.sort();
    assert_eq!(
        listed, on_disk,
        "smoke-test list out of sync with crates/bench/src/bin"
    );
    // And every legacy binary must be a registered scenario.
    for name in FIGURE_BINARIES {
        assert!(
            scenario::find(name).is_some(),
            "binary {name} has no registered scenario"
        );
    }
}
