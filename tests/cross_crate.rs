//! Cross-crate integration: the SIMD processor, the CNN substrate and the
//! arithmetic library agree with each other.

use dvafs_arith::multiplier::DvafsMultiplier;
use dvafs_arith::subword::{pack_lanes, unpack_lanes, SubwordMode};
use dvafs_nn::dataset::SyntheticDataset;
use dvafs_nn::models;
use dvafs_nn::network::QuantConfig;
use dvafs_simd::energy::SimdEnergyModel;
use dvafs_simd::kernels::ConvKernel;
use dvafs_simd::processor::{ProcConfig, Processor};
use dvafs_tech::scaling::ScalingMode;
use rand::{Rng, SeedableRng};

#[test]
fn simd_processor_outputs_bit_exact_across_all_configs() {
    // The cycle-level machine and the software reference must agree in
    // every regime x precision x width combination.
    let model = SimdEnergyModel::new();
    let kernel = ConvKernel::random(11, 512, 77);
    for sw in [4usize, 8] {
        for scaling in ScalingMode::ALL {
            for bits in [16u32, 12, 8, 4] {
                let cfg = ProcConfig::new(sw, scaling, bits).expect("valid");
                let r = Processor::with_model(cfg, model.clone())
                    .run_kernel(&kernel)
                    .expect("runs");
                assert!(
                    r.outputs_match(&kernel),
                    "sw={sw} {scaling:?} {bits}b mismatch"
                );
            }
        }
    }
}

#[test]
fn gate_level_and_behavioral_multipliers_agree_in_the_processor_modes() {
    // The SIMD lanes use behavioral subword MACs; the netlist is the
    // physical model. They must be the same function.
    let m = DvafsMultiplier::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for mode in SubwordMode::ALL {
        for _ in 0..20 {
            let a: u16 = rng.gen();
            let b: u16 = rng.gen();
            assert_eq!(
                m.mul_packed_via_netlist(a, b, mode),
                m.mul_packed(a, b, mode),
                "mode {mode}"
            );
        }
    }
}

#[test]
fn packing_roundtrips_through_the_whole_stack() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    for mode in SubwordMode::ALL {
        let w = mode.lane_bits();
        let lo = -(1i32 << (w - 1));
        let hi = (1i32 << (w - 1)) - 1;
        for _ in 0..50 {
            let lanes: Vec<i32> = (0..mode.lanes()).map(|_| rng.gen_range(lo..=hi)).collect();
            let word = pack_lanes(&lanes, mode).expect("in range");
            assert_eq!(unpack_lanes(word, mode), lanes);
        }
    }
}

#[test]
fn quantized_lenet_matches_full_precision_on_most_inputs() {
    // 8-bit uniform quantization should barely perturb classification —
    // the observation that makes DVAFS useful for CNNs at all.
    let net = models::lenet5(123);
    let data = SyntheticDataset::digits(32, 321);
    let full = QuantConfig::uniform(net.layer_count(), 16, 16);
    let eight = QuantConfig::uniform(net.layer_count(), 8, 8);
    let acc = net.relative_accuracy(&data, &eight, &full);
    assert!(acc >= 0.9, "8-bit agreement only {acc}");
}

#[test]
fn energy_decreases_monotonically_down_the_dvafs_precision_ladder() {
    let model = SimdEnergyModel::new();
    let kernel = ConvKernel::random(9, 512, 88);
    let mut prev = f64::INFINITY;
    for bits in [16u32, 8, 4] {
        let cfg = ProcConfig::new(8, ScalingMode::Dvafs, bits).expect("valid");
        let e = Processor::with_model(cfg, model.clone())
            .run_kernel(&kernel)
            .expect("runs")
            .energy_per_word();
        assert!(e < prev, "{bits}b energy {e} >= previous {prev}");
        prev = e;
    }
}
