//! Integration tests asserting the paper's headline *shapes* end to end:
//! who wins, by roughly what factor, and where the crossovers fall.

use dvafs::controller::DvafsController;
use dvafs::sweep::MultiplierSweep;
use dvafs_arith::Precision;
use dvafs_envision::chip::EnvisionChip;
use dvafs_envision::measure::{table3, Fig8Sweep};
use dvafs_tech::scaling::ScalingMode;

#[test]
fn multiplier_energy_ordering_and_dynamic_range() {
    // Fig. 3a: DAS >= DVAS >= DVAFS at every reduced precision, ~20x range.
    let sweep = MultiplierSweep::new();
    let samples = sweep.fig3a();
    let get = |m: ScalingMode, b: u32| {
        samples
            .iter()
            .find(|s| s.mode == m && s.bits == b)
            .expect("sample exists")
            .relative
    };
    for bits in [4u32, 8, 12] {
        assert!(get(ScalingMode::Das, bits) >= get(ScalingMode::Dvas, bits));
        assert!(get(ScalingMode::Dvas, bits) >= get(ScalingMode::Dvafs, bits));
    }
    let range = get(ScalingMode::Dvafs, 16) / get(ScalingMode::Dvafs, 4);
    assert!(
        range > 10.0,
        "multiplier dynamic range {range} (paper ~20x)"
    );
    // >95% saving at 4x4b.
    assert!(get(ScalingMode::Dvafs, 4) < 0.05);
}

#[test]
fn fig2_paper_anchor_points() {
    let sweep = MultiplierSweep::new();
    let points = sweep.fig2();
    let dvafs4 = points
        .iter()
        .find(|p| p.mode == ScalingMode::Dvafs && p.bits == 4)
        .expect("point exists");
    // 125 MHz, ~7 ns slack, ~0.75 V — the paper's most-quoted numbers.
    assert_eq!(dvafs4.frequency_mhz, 125.0);
    assert!((dvafs4.positive_slack_ns - 7.0).abs() < 1.0);
    assert!((dvafs4.v_as - 0.75).abs() < 0.07);
    let dvas4 = points
        .iter()
        .find(|p| p.mode == ScalingMode::Dvas && p.bits == 4)
        .expect("point exists");
    assert!((dvas4.v_as - 0.90).abs() < 0.07);
}

#[test]
fn controller_tracks_the_multiplier_model() {
    // The controller's relative energies must reproduce the DVAFS curve.
    let controller = DvafsController::new();
    let sweep = MultiplierSweep::new();
    for bits in [4u32, 8, 16] {
        let plan = controller
            .plan(Precision::new(bits).expect("valid"))
            .expect("plan succeeds");
        let fig = sweep
            .fig3a()
            .into_iter()
            .find(|s| s.mode == ScalingMode::Dvafs && s.bits == bits)
            .expect("sample exists");
        // fig3a includes the 21% reconfiguration overhead.
        let ratio = fig.relative / (plan.relative_energy_per_word * 1.21);
        assert!((ratio - 1.0).abs() < 0.05, "bits={bits} ratio={ratio}");
    }
}

#[test]
fn envision_constant_throughput_beats_constant_frequency() {
    // Fig. 8: at 4x4b, constant-throughput DVAFS (50 MHz) must beat the
    // constant-frequency point (200 MHz).
    let sweep = Fig8Sweep::new(EnvisionChip::new());
    let const_f = sweep.at_constant_frequency(ScalingMode::Dvafs, 4);
    let const_t = sweep.at_constant_throughput(ScalingMode::Dvafs, 4);
    assert!(const_t.energy_rel < const_f.energy_rel);
    assert!(const_t.power_mw < const_f.power_mw);
}

#[test]
fn envision_efficiency_spans_paper_range() {
    // Paper: 0.3 TOPS/W (16b) up to ~4.2 TOPS/W dense (and >10 sparse).
    let chip = EnvisionChip::new();
    let full = dvafs_envision::workload::LayerRun::dense(
        dvafs_arith::SubwordMode::X1,
        200.0,
        16,
        16,
        100.0,
    );
    let quad =
        dvafs_envision::workload::LayerRun::dense(dvafs_arith::SubwordMode::X4, 50.0, 4, 4, 100.0);
    let e_full = chip.tops_per_w(&full);
    let e_quad = chip.tops_per_w(&quad);
    assert!(e_full > 0.15 && e_full < 0.6, "16b efficiency {e_full}");
    assert!(e_quad > 2.5 && e_quad < 8.0, "4x4b efficiency {e_quad}");
    // Sparse LeNet-style layer exceeds the dense efficiency several-fold.
    let sparse = quad.clone().with_sparsity(0.35, 0.87).expect("valid");
    assert!(chip.tops_per_w(&sparse) > 2.0 * e_quad);
}

#[test]
fn table3_network_ordering() {
    // LeNet (deep scaling) must beat AlexNet/VGG16 (shallower scaling) in
    // efficiency, and frame rates must be ordered VGG < AlexNet < LeNet.
    let chip = EnvisionChip::new();
    let t = table3(&chip);
    let find = |n: &str| t.iter().find(|s| s.name == n).expect("network exists");
    let (vgg, alex, lenet) = (find("VGG16"), find("AlexNet"), find("LeNet-5"));
    assert!(vgg.fps < alex.fps && alex.fps < lenet.fps);
    assert!(lenet.avg_tops_per_w > alex.avg_tops_per_w);
}
