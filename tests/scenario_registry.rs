//! Registry- and serializer-level tests of the scenario subsystem:
//!
//! * every scenario id is unique, findable and documented;
//! * `run --all --fast --threads 1` succeeds end to end through the real
//!   CLI code path (writing one JSON file per scenario plus the
//!   `BENCH_sweep.json` artifact), and the CLI's fig2 JSON is
//!   byte-identical to the golden fixture;
//! * the generic serializer keeps its agreement contract: JSON, CSV and
//!   the generic text table of any `DataTable` have the same shape and
//!   the same values (property-tested over randomized tables, plus the
//!   real Fig. 2 result).

use dvafs::scenario::{self, DataTable, ScenarioCtx, ScenarioResult, Value};
use dvafs_bench::cli;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

#[test]
fn registry_ids_unique_and_documented() {
    let reg = scenario::registry();
    assert_eq!(reg.len(), 13, "all 13 experiments must be registered");
    let mut ids: Vec<&str> = reg.iter().map(|s| s.id()).collect();
    ids.sort_unstable();
    let mut deduped = ids.clone();
    deduped.dedup();
    assert_eq!(ids, deduped, "duplicate scenario ids");
    for s in reg {
        assert!(scenario::find(s.id()).is_some());
        assert!(!s.label().is_empty() && !s.title().is_empty());
        // Satellite: --fast is uniformly accepted and documented — every
        // scenario says what it shrinks (or that it is a no-op).
        assert!(!s.fast_note().is_empty(), "{} lacks a --fast note", s.id());
    }
}

#[test]
fn run_all_fast_single_threaded_succeeds() {
    let out = std::env::temp_dir().join("dvafs_run_all_test");
    let _ = std::fs::remove_dir_all(&out);
    let argv: Vec<String> = [
        "run",
        "--all",
        "--fast",
        "--threads",
        "1",
        // One timed repeat: this test checks the end-to-end path, not the
        // medians — bench_sweep at the default 3 would triple its runtime.
        "--repeats",
        "1",
        "--format",
        "json",
        "--out",
        out.to_str().expect("utf-8 temp dir"),
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let (cmd, warnings) = cli::parse(&argv).expect("parses");
    assert!(warnings.is_empty());
    let stdout = cli::execute(&cmd).expect("run --all succeeds");
    for s in scenario::registry() {
        let path = out.join(format!("{}.json", s.id()));
        assert!(path.is_file(), "missing {}", path.display());
        assert!(stdout.contains(&format!("{}.json", s.id())));
    }
    // The bench_sweep scenario's artifact lands in the same directory.
    assert!(out.join("BENCH_sweep.json").is_file());

    // The CLI-written fig2 JSON byte-matches the golden fixture: the CLI,
    // the golden tests and the serializer are one code path.
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fig2.json");
    // --fast is a no-op for fig2, so even the fast run must match.
    assert_eq!(
        std::fs::read_to_string(out.join("fig2.json")).expect("written"),
        std::fs::read_to_string(golden).expect("fixture"),
        "CLI fig2 JSON drifted from the golden fixture"
    );
    let _ = std::fs::remove_dir_all(&out);
}

/// Builds a randomized flat table: `cols` columns of seeded-random kind,
/// `rows` rows of seeded-random cells (comma- and quote-bearing strings
/// included, to exercise CSV escaping).
fn random_table(seed: u64, rows: usize, cols: usize) -> DataTable {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let kinds: Vec<u32> = (0..cols).map(|_| rng.gen_range(0u32..3)).collect();
    let names: Vec<String> = (0..cols).map(|c| format!("col{c}")).collect();
    let mut t = DataTable::new("random", names);
    for _ in 0..rows {
        t.push_row(
            kinds
                .iter()
                .map(|kind| match kind {
                    0 => {
                        let raw: u32 = rng.gen_range(0..4);
                        Value::Str(
                            ["plain", "with,comma", "with\"quote", "x y"][raw as usize].into(),
                        )
                    }
                    1 => Value::Int(i64::from(rng.gen_range(-1000i32..1000))),
                    _ => Value::Float(f64::from(rng.gen_range(-1.0e6f32..1.0e6)) / 7.0),
                })
                .collect(),
        );
    }
    t
}

/// Un-escapes one RFC-4180 CSV line into fields (enough for the dialect
/// the serializer emits: quotes only when needed, doubled inner quotes).
fn split_csv(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' => quoted = true,
            ',' if !quoted => fields.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// JSON, CSV and the generic text table of one `DataTable` agree on
    /// shape (row/column counts) and on every value's canonical text.
    #[test]
    fn serializer_formats_agree(seed in any::<u64>(), rows in 1usize..=8, cols in 1usize..=5) {
        let table = random_table(seed, rows, cols);
        let mut result = ScenarioResult::new();
        result.push_table(table.clone());

        let json = scenario::render::render_json(&result);
        let csv = scenario::render::render_csv(&result);
        let text = scenario::render::table_to_text(&table).to_string();

        // Shape: one JSON object line, one CSV line and one text line per row.
        let json_rows = json.matches("{\"col0\":").count();
        let csv_lines: Vec<&str> = csv.lines().collect();
        prop_assert_eq!(json_rows, rows);
        prop_assert_eq!(csv_lines.len(), rows + 1);
        prop_assert_eq!(text.lines().count(), rows + 2); // header + rule
        prop_assert_eq!(split_csv(csv_lines[0]).len(), cols);

        // Values: every cell's canonical text appears in the CSV field and
        // in the JSON rendering (strings JSON-escaped, numbers verbatim).
        for (i, row) in table.rows().iter().enumerate() {
            let fields = split_csv(csv_lines[i + 1]);
            prop_assert_eq!(fields.len(), cols);
            for (cell, field) in row.iter().zip(&fields) {
                prop_assert_eq!(&cell.to_text(), field);
                let json_fragment = match cell {
                    Value::Str(s) => format!("\"{}\"", s.replace('"', "\\\"")),
                    other => other.to_text(),
                };
                prop_assert!(json.contains(&json_fragment));
            }
        }

        // Round-trip: float cells parse back bit-identically from the CSV.
        for (i, row) in table.rows().iter().enumerate() {
            let fields = split_csv(csv_lines[i + 1]);
            for (cell, field) in row.iter().zip(&fields) {
                if let Value::Float(v) = cell {
                    prop_assert_eq!(field.parse::<f64>().unwrap().to_bits(), v.to_bits());
                }
            }
        }
    }
}

#[test]
fn fig2_formats_agree_end_to_end() {
    let s = scenario::find("fig2").expect("registered");
    let result = s.run(&ScenarioCtx::new().with_threads(1));
    let [table] = result.tables() else {
        panic!("fig2 produces one data table")
    };
    assert_eq!(table.rows().len(), 12, "3 regimes x 4 precisions");

    let json = scenario::render::render_json(&result);
    let csv = scenario::render::render_csv(&result);
    let text = scenario::render::table_to_text(table).to_string();
    assert_eq!(json.matches("\"mode\":").count(), 12);
    assert_eq!(csv.lines().count(), 13);
    assert_eq!(text.lines().count(), 14);

    // Spot-check one row across all three renderings.
    let row = &table.rows()[0];
    let freq = row[3].to_text();
    assert!(json.contains(&format!("\"frequency_mhz\":{freq}")));
    assert!(csv.lines().nth(1).unwrap().contains(&freq));
    assert!(text.lines().nth(2).unwrap().contains(&freq));
}

#[test]
fn nested_table3_flattens_consistently() {
    let s = scenario::find("table3").expect("registered");
    let result = s.run(&ScenarioCtx::new().with_threads(1));
    let [table] = result.tables() else {
        panic!("table3 produces one data table")
    };
    assert!(table.has_nested());
    let flat = scenario::render::flatten_table(table);
    let layer_total: usize = table
        .rows()
        .iter()
        .map(|r| match &r[5] {
            Value::Nested(t) => t.rows().len(),
            _ => 0,
        })
        .sum();
    assert_eq!(flat.rows().len(), layer_total, "one flat row per layer");
    // CSV and JSON carry the same layer count.
    let csv = scenario::render::render_csv(&result);
    assert_eq!(csv.lines().count(), layer_total + 1);
    let json = scenario::render::render_json(&result);
    assert_eq!(json.matches("\"layer\":").count(), layer_total);
}
