//! Minimum-supply search under a timing budget.
//!
//! DVAS and DVAFS convert positive timing slack into energy savings by
//! lowering the supply until the (shortened or relaxed) critical path just
//! meets the clock period (paper Fig. 2c). [`VoltageSolver`] performs that
//! search on a calibrated [`DelayModel`], with rail quantization and a
//! functional minimum voltage as real power grids have.

use crate::delay::DelayModel;
use crate::error::TechError;
use serde::{Deserialize, Serialize};

/// Searches the lowest viable supply voltage for a given delay budget.
///
/// # Example
///
/// ```
/// use dvafs_tech::delay::DelayModel;
/// use dvafs_tech::voltage::VoltageSolver;
///
/// let model = DelayModel::calibrate(1.1, &[(0.9, 2.0), (0.75, 8.0)])?;
/// let solver = VoltageSolver::new(model, 0.6, 0.01);
/// // With no slack the rail stays nominal.
/// assert!((solver.min_voltage(1.0) - 1.1).abs() < 1e-9);
/// // With 2x budget the rail drops to roughly the paper's 0.9 V.
/// let v = solver.min_voltage(2.0);
/// assert!(v > 0.8 && v < 1.0, "v = {v}");
/// # Ok::<(), dvafs_tech::TechError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageSolver {
    model: DelayModel,
    vmin: f64,
    vstep: f64,
}

impl VoltageSolver {
    /// Creates a solver bounded below by `vmin` (the lowest functional
    /// rail) and quantized to `vstep` volts.
    ///
    /// `vmin` is clamped to stay safely above the model's fitted threshold
    /// voltage — no rail can operate at or below `Vth`.
    ///
    /// # Panics
    ///
    /// Panics if `vmin` is not below the nominal voltage or `vstep` is not
    /// positive.
    #[must_use]
    pub fn new(model: DelayModel, vmin: f64, vstep: f64) -> Self {
        assert!(
            vmin < model.nominal_voltage(),
            "vmin must lie below the nominal voltage"
        );
        assert!(vstep > 0.0, "voltage step must be positive");
        let floor = model.threshold_voltage() + 2.0 * vstep;
        VoltageSolver {
            model,
            vmin: vmin.max(floor),
            vstep,
        }
    }

    /// The underlying delay model.
    #[must_use]
    pub fn model(&self) -> &DelayModel {
        &self.model
    }

    /// Lowest functional rail in volts.
    #[must_use]
    pub fn min_rail(&self) -> f64 {
        self.vmin
    }

    /// Finds the lowest quantized supply such that the circuit delay at
    /// that supply is at most `slack_ratio` times the nominal delay, i.e.
    /// the critical path still fits a clock period `slack_ratio` times the
    /// path's nominal length.
    ///
    /// A `slack_ratio <= 1` (no usable slack) returns the nominal voltage;
    /// a huge budget saturates at the functional minimum rail.
    #[must_use]
    pub fn min_voltage(&self, slack_ratio: f64) -> f64 {
        let vnom = self.model.nominal_voltage();
        if slack_ratio <= 1.0 {
            return vnom;
        }
        // delay_factor is monotone decreasing in v: bisect for
        // delay_factor(v) = slack_ratio.
        let fits = |v: f64| {
            self.model
                .delay_factor(v)
                .map(|d| d <= slack_ratio)
                .unwrap_or(false)
        };
        if fits(self.vmin) {
            return self.quantize_up(self.vmin);
        }
        let (mut lo, mut hi) = (self.vmin, vnom);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if fits(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        self.quantize_up(hi)
    }

    /// Resulting slack utilization: the delay factor actually incurred at
    /// the chosen rail for a given budget.
    ///
    /// # Errors
    ///
    /// Propagates [`TechError::VoltageOutOfRange`] from the delay model.
    pub fn delay_at(&self, v: f64) -> Result<f64, TechError> {
        self.model.delay_factor(v)
    }

    fn quantize_up(&self, v: f64) -> f64 {
        let vnom = self.model.nominal_voltage();
        let steps = ((v - 1e-9) / self.vstep).ceil();
        (steps * self.vstep).min(vnom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver() -> VoltageSolver {
        let model = DelayModel::calibrate(1.1, &[(0.9, 2.0), (0.75, 8.0)]).unwrap();
        VoltageSolver::new(model, 0.6, 0.01)
    }

    #[test]
    fn no_slack_keeps_nominal() {
        let s = solver();
        assert!((s.min_voltage(1.0) - 1.1).abs() < 1e-9);
        assert!((s.min_voltage(0.5) - 1.1).abs() < 1e-9);
    }

    #[test]
    fn voltage_monotone_in_slack() {
        let s = solver();
        let mut prev = f64::INFINITY;
        for ratio in [1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 16.0] {
            let v = s.min_voltage(ratio);
            assert!(v <= prev + 1e-12, "ratio {ratio} gave {v} > {prev}");
            prev = v;
        }
    }

    #[test]
    fn paper_anchor_voltages_recovered() {
        let s = solver();
        let v2 = s.min_voltage(2.0);
        let v8 = s.min_voltage(8.0);
        // Paper: 0.9 V at 2x, 0.75 V at 8x (DVAS / DVAFS at 4 bit).
        assert!((v2 - 0.9).abs() < 0.06, "v2={v2}");
        assert!((v8 - 0.75).abs() < 0.06, "v8={v8}");
    }

    #[test]
    fn saturates_at_min_rail() {
        let s = solver();
        assert!((s.min_voltage(1e9) - s.min_rail()).abs() < 0.011);
    }

    #[test]
    fn quantization_rounds_up() {
        let model = DelayModel::calibrate(1.1, &[(0.9, 2.0), (0.75, 8.0)]).unwrap();
        let coarse = VoltageSolver::new(model, 0.6, 0.05);
        let v = coarse.min_voltage(2.0);
        assert!((v / 0.05 - (v / 0.05).round()).abs() < 1e-9, "on-grid: {v}");
        // Rounding up means timing is still met.
        assert!(coarse.delay_at(v).unwrap() <= 2.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "vmin must lie")]
    fn rejects_vmin_above_vnom() {
        let model = DelayModel::new(1.1, 0.5, 1.5).unwrap();
        let _ = VoltageSolver::new(model, 1.2, 0.01);
    }

    #[test]
    fn vmin_is_clamped_above_threshold() {
        let model = DelayModel::new(1.1, 0.675, 1.4).unwrap();
        let s = VoltageSolver::new(model, 0.3, 0.01);
        assert!(s.min_rail() > 0.675);
    }

    #[test]
    fn chosen_voltage_always_meets_timing() {
        let s = solver();
        for ratio in [1.1, 1.3, 2.0, 4.0, 7.9] {
            let v = s.min_voltage(ratio);
            assert!(
                s.delay_at(v).unwrap() <= ratio + 1e-9,
                "ratio {ratio}: v={v} violates budget"
            );
        }
    }
}
