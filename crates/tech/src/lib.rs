//! # dvafs-tech — circuit-level technology and power models
//!
//! This crate substitutes the silicon side of the DVAFS paper (Moons et
//! al., DATE 2017): where the authors synthesize into 40 nm LP and measure
//! a 28 nm FDSOI chip, we model
//!
//! * **gate delay vs. supply voltage** with an alpha-power-law model
//!   ([`delay`]), calibrated against the voltage/slack anchor points the
//!   paper publishes;
//! * **minimum supply search** under a timing constraint ([`voltage`]) —
//!   the mechanism by which precision-induced slack becomes energy;
//! * **the dynamic-power equations (1), (2) and (3)** of the paper and the
//!   k-parameter extraction of Table I ([`power`]);
//! * **operating-point derivation** at constant computational throughput
//!   ([`scaling`]) — frequency, rail voltages and slack per mode, the data
//!   behind Fig. 2;
//! * **power domains** (`Vas`/`Vnas`/`Vmem`, [`domains`]) and per-component
//!   energy accounting ([`energy`]).
//!
//! ## Example
//!
//! ```
//! use dvafs_tech::technology::Technology;
//!
//! let tech = Technology::lp40();
//! // More timing slack allows a lower rail.
//! let relaxed = tech.voltage_solver().min_voltage(8.0);
//! let tight = tech.voltage_solver().min_voltage(1.0);
//! assert!(relaxed < tight);
//! ```

#![warn(missing_docs)]

pub mod delay;
pub mod domains;
pub mod energy;
pub mod error;
pub mod power;
pub mod scaling;
pub mod technology;
pub mod voltage;

pub use delay::DelayModel;
pub use domains::{DomainRails, PowerDomain};
pub use error::TechError;
pub use power::{KParams, PowerParams};
pub use scaling::{OperatingPoint, ScalingMode};
pub use technology::Technology;
pub use voltage::VoltageSolver;
