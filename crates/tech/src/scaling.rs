//! Operating-point derivation at constant computational throughput.
//!
//! The paper's Fig. 2 sweeps the multiplier across 16/12/8/4 bits in three
//! scaling regimes and reads off, at constant 500 MOPS:
//!
//! * **Fig. 2a** — the clock: `f / N` in DVAFS (subwords keep throughput);
//! * **Fig. 2b** — positive slack at the nominal rail (critical path
//!   shrinks with precision, period grows with `N`);
//! * **Fig. 2c** — the supply that re-zeroes that slack;
//! * **Fig. 2d** — relative switching activity.
//!
//! [`OperatingPoint::derive`] reproduces all four quantities from the
//! gate-level activity profiles and the calibrated delay model.

use crate::technology::Technology;
use dvafs_arith::activity::ActivityProfile;
use dvafs_arith::subword::SubwordMode;
use dvafs_arith::Precision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three dynamic precision-scaling regimes compared throughout the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ScalingMode {
    /// Dynamic-Accuracy-Scaling: input gating only (activity drops).
    Das,
    /// DAS plus voltage scaling of the accuracy-scalable logic.
    Dvas,
    /// Subword-parallel DVAFS: activity, frequency and voltage all scale.
    Dvafs,
}

impl ScalingMode {
    /// All regimes in presentation order.
    pub const ALL: [ScalingMode; 3] = [ScalingMode::Das, ScalingMode::Dvas, ScalingMode::Dvafs];

    /// The paper's precision axis in presentation order (16 → 4 bits).
    pub const PRECISIONS: [u32; 4] = [16, 12, 8, 4];

    /// The full regime × precision evaluation grid behind Fig. 2, Fig. 3a,
    /// Fig. 4 and Fig. 8, mode-major in presentation order.
    ///
    /// **Contract:** cell 0 is always `(Das, 16)` — the figures'
    /// normalization baseline. Sweeps that evaluate this grid in parallel
    /// index their baseline as cell 0, so the ordering here is load-bearing.
    #[must_use]
    pub fn precision_grid() -> Vec<(ScalingMode, u32)> {
        Self::ALL
            .into_iter()
            .flat_map(|mode| Self::PRECISIONS.into_iter().map(move |bits| (mode, bits)))
            .collect()
    }
}

impl fmt::Display for ScalingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalingMode::Das => "DAS",
            ScalingMode::Dvas => "DVAS",
            ScalingMode::Dvafs => "DVAFS",
        };
        f.write_str(s)
    }
}

/// A fully-derived operating point of a precision-scaled data path at
/// constant computational throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Scaling regime.
    pub mode: ScalingMode,
    /// Operand precision per word in bits.
    pub bits: u32,
    /// Subword lanes (`> 1` only for DVAFS at 8 or 4 bits).
    pub lanes: usize,
    /// Clock frequency in MHz (`f_nom / lanes`).
    pub frequency_mhz: f64,
    /// Accuracy-scalable domain rail in volts.
    pub v_as: f64,
    /// Non-accuracy-scalable domain rail in volts (only DVAFS lowers it).
    pub v_nas: f64,
    /// Positive timing slack at the nominal rail, in nanoseconds (Fig. 2b).
    pub positive_slack_ns: f64,
    /// Switching activity per processed word relative to full precision
    /// (Fig. 2d; per-cycle equals this times `lanes`).
    pub activity_per_word: f64,
    /// Active critical-path depth relative to full precision.
    pub depth_ratio: f64,
}

impl OperatingPoint {
    /// Derives the operating point for `mode` at `bits` from gate-level
    /// activity profiles and a technology's delay model.
    ///
    /// `das_profile` must contain the requested precision;
    /// `dvafs_profile` must contain the subword mode selected for it.
    ///
    /// # Panics
    ///
    /// Panics if a profile lacks the requested precision entry.
    #[must_use]
    pub fn derive(
        tech: &Technology,
        mode: ScalingMode,
        bits: u32,
        das_profile: &ActivityProfile,
        dvafs_profile: &ActivityProfile,
    ) -> OperatingPoint {
        let das = das_profile
            .at_bits(bits)
            .expect("DAS profile must cover the requested precision");
        let subword = SubwordMode::for_precision(
            Precision::new(bits).expect("precision validated by caller"),
        );
        // DVAFS falls back to DAS behaviour where no subword mode exists
        // (12-bit operation stays 1x, as N = 1 in the paper's Table I).
        let (lanes, activity_per_word, depth_ratio) = match mode {
            ScalingMode::Das | ScalingMode::Dvas => (1, das.activity_per_cycle, das.depth_ratio),
            ScalingMode::Dvafs => {
                if subword.lanes() > 1 {
                    let e = dvafs_profile
                        .at_bits(bits)
                        .expect("DVAFS profile must cover the subword precision");
                    (e.lanes, e.activity_per_word, e.depth_ratio)
                } else {
                    (1, das.activity_per_cycle, das.depth_ratio)
                }
            }
        };
        let frequency_mhz = tech.nominal_frequency_mhz() / lanes as f64;
        let period_ns = 1e3 / frequency_mhz;
        let path_ns = tech.nominal_period_ns() * depth_ratio;
        let positive_slack_ns = (period_ns - path_ns).max(0.0);
        let solver = tech.voltage_solver();
        let vnom = tech.nominal_voltage();
        let (v_as, v_nas) = match mode {
            ScalingMode::Das => (vnom, vnom),
            ScalingMode::Dvas => (solver.min_voltage(1.0 / depth_ratio), vnom),
            ScalingMode::Dvafs => (
                solver.min_voltage(lanes as f64 / depth_ratio),
                solver.min_voltage(lanes as f64),
            ),
        };
        OperatingPoint {
            mode,
            bits,
            lanes,
            frequency_mhz,
            v_as,
            v_nas,
            positive_slack_ns,
            activity_per_word,
            depth_ratio,
        }
    }

    /// Derives the full 16/12/8/4-bit sweep for one regime.
    #[must_use]
    pub fn sweep(
        tech: &Technology,
        mode: ScalingMode,
        das_profile: &ActivityProfile,
        dvafs_profile: &ActivityProfile,
    ) -> Vec<OperatingPoint> {
        [16u32, 12, 8, 4]
            .iter()
            .map(|&b| OperatingPoint::derive(tech, mode, b, das_profile, dvafs_profile))
            .collect()
    }

    /// Relative dynamic energy per word of the accuracy-scalable logic at
    /// this point: `activity_per_word * (v_as / vnom)^2`.
    #[must_use]
    pub fn energy_per_word_relative(&self, tech: &Technology) -> f64 {
        self.activity_per_word * tech.voltage_energy_factor(self.v_as)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvafs_arith::activity::{extract_das_profile, extract_dvafs_profile};

    fn profiles() -> (ActivityProfile, ActivityProfile) {
        (extract_das_profile(100, 7), extract_dvafs_profile(100, 7))
    }

    #[test]
    fn frequency_follows_fig2a() {
        let tech = Technology::lp40();
        let (das, dvafs) = profiles();
        let sweep = OperatingPoint::sweep(&tech, ScalingMode::Dvafs, &das, &dvafs);
        let freqs: Vec<f64> = sweep.iter().map(|p| p.frequency_mhz).collect();
        // Fig. 2a: 500, 500, 250, 125 MHz for 16, 12, 8, 4 bits.
        assert_eq!(freqs, vec![500.0, 500.0, 250.0, 125.0]);
        // DAS/DVAS keep 500 MHz everywhere.
        for p in OperatingPoint::sweep(&tech, ScalingMode::Das, &das, &dvafs) {
            assert_eq!(p.frequency_mhz, 500.0);
        }
    }

    #[test]
    fn slack_follows_fig2b_shape() {
        let tech = Technology::lp40();
        let (das, dvafs) = profiles();
        let das_4 = OperatingPoint::derive(&tech, ScalingMode::Das, 4, &das, &dvafs);
        let dvafs_4 = OperatingPoint::derive(&tech, ScalingMode::Dvafs, 4, &das, &dvafs);
        // Paper: ~1 ns DAS slack at 4b, ~7 ns DVAFS slack at 4x4b.
        assert!(
            das_4.positive_slack_ns > 0.6 && das_4.positive_slack_ns < 1.5,
            "DAS 4b slack {}",
            das_4.positive_slack_ns
        );
        assert!(
            dvafs_4.positive_slack_ns > 6.0 && dvafs_4.positive_slack_ns < 7.9,
            "DVAFS 4x4b slack {}",
            dvafs_4.positive_slack_ns
        );
        // 16-bit operation has (near-)zero slack by construction.
        let full = OperatingPoint::derive(&tech, ScalingMode::Dvafs, 16, &das, &dvafs);
        assert!(full.positive_slack_ns < 1e-9);
    }

    #[test]
    fn voltages_follow_fig2c_shape() {
        let tech = Technology::lp40();
        let (das, dvafs) = profiles();
        let dvas_4 = OperatingPoint::derive(&tech, ScalingMode::Dvas, 4, &das, &dvafs);
        let dvafs_4 = OperatingPoint::derive(&tech, ScalingMode::Dvafs, 4, &das, &dvafs);
        // Paper: DVAS reaches ~0.9 V, DVAFS ~0.75 V at 4 bits.
        assert!(
            (dvas_4.v_as - 0.9).abs() < 0.07,
            "DVAS v_as {}",
            dvas_4.v_as
        );
        assert!(
            (dvafs_4.v_as - 0.75).abs() < 0.07,
            "DVAFS v_as {}",
            dvafs_4.v_as
        );
        // DAS never scales voltage.
        let das_4 = OperatingPoint::derive(&tech, ScalingMode::Das, 4, &das, &dvafs);
        assert_eq!(das_4.v_as, tech.nominal_voltage());
        // Only DVAFS lowers the nas rail.
        assert_eq!(dvas_4.v_nas, tech.nominal_voltage());
        assert!(dvafs_4.v_nas < tech.nominal_voltage());
    }

    #[test]
    fn dvafs_beats_dvas_energy_at_low_precision() {
        let tech = Technology::lp40();
        let (das, dvafs) = profiles();
        for bits in [4u32, 8] {
            let dvas = OperatingPoint::derive(&tech, ScalingMode::Dvas, bits, &das, &dvafs);
            let dv = OperatingPoint::derive(&tech, ScalingMode::Dvafs, bits, &das, &dvafs);
            assert!(
                dv.energy_per_word_relative(&tech) < dvas.energy_per_word_relative(&tech),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn energy_ordering_das_dvas_dvafs() {
        let tech = Technology::lp40();
        let (das, dvafs) = profiles();
        let e = |m: ScalingMode| {
            OperatingPoint::derive(&tech, m, 4, &das, &dvafs).energy_per_word_relative(&tech)
        };
        let (e_das, e_dvas, e_dvafs) = (
            e(ScalingMode::Das),
            e(ScalingMode::Dvas),
            e(ScalingMode::Dvafs),
        );
        assert!(
            e_das > e_dvas && e_dvas > e_dvafs,
            "{e_das} {e_dvas} {e_dvafs}"
        );
        // Paper: >95% saving vs the 16b baseline at 4x4b.
        assert!(e_dvafs < 0.08, "DVAFS 4b relative energy {e_dvafs}");
    }

    #[test]
    fn twelve_bit_dvafs_degenerates_to_single_lane() {
        let tech = Technology::lp40();
        let (das, dvafs) = profiles();
        let p = OperatingPoint::derive(&tech, ScalingMode::Dvafs, 12, &das, &dvafs);
        assert_eq!(p.lanes, 1);
        assert_eq!(p.frequency_mhz, 500.0);
    }

    #[test]
    fn mode_display() {
        assert_eq!(ScalingMode::Dvafs.to_string(), "DVAFS");
        assert_eq!(ScalingMode::Das.to_string(), "DAS");
    }
}
