//! Per-component energy accounting and report rendering.
//!
//! Table II of the paper breaks the SIMD processor's power into `mem`,
//! `nas` and `as` shares; Table III does the same per CNN layer on
//! Envision. [`EnergyBreakdown`] is the shared accounting structure both
//! simulators fill in.

use crate::domains::PowerDomain;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Energy attributed to the three power domains, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    mem: f64,
    nas: f64,
    r#as: f64,
}

impl EnergyBreakdown {
    /// An empty breakdown.
    #[must_use]
    pub fn new() -> Self {
        EnergyBreakdown::default()
    }

    /// Adds `joules` to a domain.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn add(&mut self, domain: PowerDomain, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "energy must be non-negative"
        );
        match domain {
            PowerDomain::Memory => self.mem += joules,
            PowerDomain::NonScalable => self.nas += joules,
            PowerDomain::AccuracyScalable => self.r#as += joules,
        }
    }

    /// Energy of one domain in joules.
    #[must_use]
    pub fn domain(&self, domain: PowerDomain) -> f64 {
        match domain {
            PowerDomain::Memory => self.mem,
            PowerDomain::NonScalable => self.nas,
            PowerDomain::AccuracyScalable => self.r#as,
        }
    }

    /// Total energy in joules.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.mem + self.nas + self.r#as
    }

    /// Share of one domain in percent (0 when the total is zero).
    #[must_use]
    pub fn percentage(&self, domain: PowerDomain) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            100.0 * self.domain(domain) / t
        }
    }

    /// Average power in watts over a runtime in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive.
    #[must_use]
    pub fn average_power(&self, seconds: f64) -> f64 {
        assert!(seconds > 0.0, "runtime must be positive");
        self.total() / seconds
    }

    /// Sums two breakdowns.
    #[must_use]
    pub fn combined(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            mem: self.mem + other.mem,
            nas: self.nas + other.nas,
            r#as: self.r#as + other.r#as,
        }
    }

    /// Scales all components (e.g. to extrapolate from a sampled run).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> EnergyBreakdown {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        EnergyBreakdown {
            mem: self.mem * factor,
            nas: self.nas * factor,
            r#as: self.r#as * factor,
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mem {:.1}% | nas {:.1}% | as {:.1}% | total {:.3e} J",
            self.percentage(PowerDomain::Memory),
            self.percentage(PowerDomain::NonScalable),
            self.percentage(PowerDomain::AccuracyScalable),
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut b = EnergyBreakdown::new();
        b.add(PowerDomain::Memory, 1.0);
        b.add(PowerDomain::NonScalable, 2.0);
        b.add(PowerDomain::AccuracyScalable, 1.0);
        assert_eq!(b.total(), 4.0);
        assert_eq!(b.percentage(PowerDomain::NonScalable), 50.0);
    }

    #[test]
    fn empty_breakdown_has_zero_percentages() {
        let b = EnergyBreakdown::new();
        for d in PowerDomain::ALL {
            assert_eq!(b.percentage(d), 0.0);
        }
    }

    #[test]
    fn average_power() {
        let mut b = EnergyBreakdown::new();
        b.add(PowerDomain::Memory, 3.6e-3);
        assert!((b.average_power(0.1) - 3.6e-2).abs() < 1e-12);
    }

    #[test]
    fn combined_and_scaled() {
        let mut a = EnergyBreakdown::new();
        a.add(PowerDomain::Memory, 1.0);
        let mut b = EnergyBreakdown::new();
        b.add(PowerDomain::AccuracyScalable, 2.0);
        let c = a.combined(&b).scaled(2.0);
        assert_eq!(c.domain(PowerDomain::Memory), 2.0);
        assert_eq!(c.domain(PowerDomain::AccuracyScalable), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_energy() {
        let mut b = EnergyBreakdown::new();
        b.add(PowerDomain::Memory, -1.0);
    }

    #[test]
    fn display_contains_percentages() {
        let mut b = EnergyBreakdown::new();
        b.add(PowerDomain::Memory, 1.0);
        b.add(PowerDomain::NonScalable, 1.0);
        let s = b.to_string();
        assert!(s.contains("mem 50.0%"));
    }
}
