//! Power domains with independent rails.
//!
//! A DVAFS-compatible design is split into separate power domains
//! (Section II-B/III-B): the accuracy-scalable arithmetic (`Vas`), the
//! non-scalable control and decode logic (`Vnas`) and the memories
//! (`Vmem`, held at a safe retention voltage in the SIMD processor).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one of the three power domains of a DVAFS system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PowerDomain {
    /// Accuracy-scalable arithmetic (multipliers, adders, MAC arrays).
    AccuracyScalable,
    /// Non-accuracy-scalable logic (fetch, decode, control, address gen).
    NonScalable,
    /// On-chip memories.
    Memory,
}

impl PowerDomain {
    /// All domains in reporting order (`mem`, `nas`, `as` as in Table II).
    pub const ALL: [PowerDomain; 3] = [
        PowerDomain::Memory,
        PowerDomain::NonScalable,
        PowerDomain::AccuracyScalable,
    ];

    /// Short label used in the paper's tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PowerDomain::AccuracyScalable => "as",
            PowerDomain::NonScalable => "nas",
            PowerDomain::Memory => "mem",
        }
    }
}

impl fmt::Display for PowerDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The rail voltages of the three domains at one operating point.
///
/// # Example
///
/// ```
/// use dvafs_tech::domains::{DomainRails, PowerDomain};
///
/// let rails = DomainRails::uniform(1.1);
/// assert_eq!(rails.voltage(PowerDomain::Memory), 1.1);
/// let scaled = DomainRails::new(0.7, 0.8, 1.1);
/// assert!(scaled.voltage(PowerDomain::AccuracyScalable) < 1.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainRails {
    v_as: f64,
    v_nas: f64,
    v_mem: f64,
}

impl DomainRails {
    /// Creates rails for the three domains.
    ///
    /// # Panics
    ///
    /// Panics if any voltage is not positive.
    #[must_use]
    pub fn new(v_as: f64, v_nas: f64, v_mem: f64) -> Self {
        assert!(
            v_as > 0.0 && v_nas > 0.0 && v_mem > 0.0,
            "rail voltages must be positive"
        );
        DomainRails { v_as, v_nas, v_mem }
    }

    /// All three rails at one voltage (the unscaled baseline).
    #[must_use]
    pub fn uniform(v: f64) -> Self {
        DomainRails::new(v, v, v)
    }

    /// The rail of one domain, in volts.
    #[must_use]
    pub fn voltage(&self, domain: PowerDomain) -> f64 {
        match domain {
            PowerDomain::AccuracyScalable => self.v_as,
            PowerDomain::NonScalable => self.v_nas,
            PowerDomain::Memory => self.v_mem,
        }
    }

    /// Dynamic-energy factor of a domain relative to a nominal voltage:
    /// `(v / vnom)^2`.
    #[must_use]
    pub fn energy_factor(&self, domain: PowerDomain, vnom: f64) -> f64 {
        let r = self.voltage(domain) / vnom;
        r * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(PowerDomain::AccuracyScalable.label(), "as");
        assert_eq!(PowerDomain::NonScalable.label(), "nas");
        assert_eq!(PowerDomain::Memory.label(), "mem");
    }

    #[test]
    fn uniform_rails() {
        let r = DomainRails::uniform(0.9);
        for d in PowerDomain::ALL {
            assert_eq!(r.voltage(d), 0.9);
        }
    }

    #[test]
    fn energy_factor_quadratic() {
        let r = DomainRails::new(0.55, 1.1, 1.1);
        assert!((r.energy_factor(PowerDomain::AccuracyScalable, 1.1) - 0.25).abs() < 1e-12);
        assert!((r.energy_factor(PowerDomain::Memory, 1.1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_rail() {
        let _ = DomainRails::new(0.0, 1.0, 1.0);
    }

    #[test]
    fn ordering_mem_nas_as() {
        assert_eq!(PowerDomain::ALL.map(|d| d.label()), ["mem", "nas", "as"]);
    }
}
