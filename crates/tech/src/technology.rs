//! Technology descriptors for the two process nodes of the paper.
//!
//! * **40 nm LP LVT, 1.1 V nominal** — the node the multiplier and the SIMD
//!   processor are synthesized into (Sections III-A, III-B).
//! * **28 nm FDSOI, 1.05 V nominal** — Envision's node (Section V),
//!   operated at 1.03 / 0.80 / 0.65 V in Table III.
//!
//! Each descriptor carries a delay model calibrated to the paper's own
//! voltage/slack anchor points, the nominal clock, rail limits and the rail
//! quantization step.

use crate::delay::DelayModel;
use crate::voltage::VoltageSolver;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A process-technology descriptor with its calibrated delay model.
///
/// # Example
///
/// ```
/// use dvafs_tech::technology::Technology;
///
/// let t = Technology::lp40();
/// assert_eq!(t.name(), "40nm LP LVT");
/// assert!((t.nominal_voltage() - 1.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    name: String,
    nominal_voltage: f64,
    min_voltage: f64,
    voltage_step: f64,
    nominal_frequency_mhz: f64,
    delay: DelayModel,
}

impl Technology {
    /// The 40 nm LP LVT node of the multiplier / SIMD evaluation:
    /// 1.1 V nominal, 500 MHz reference clock, delay model calibrated to
    /// the paper's (0.9 V, 2×) and (0.75 V, 8×) anchors.
    #[must_use]
    pub fn lp40() -> Self {
        // Calibration is a deterministic (vth, alpha) grid search over the
        // anchor points — a few milliseconds that every sweep and scenario
        // used to pay per construction. Memoize the search once per
        // process; the returned descriptor is bit-identical either way.
        static LP40: OnceLock<Technology> = OnceLock::new();
        LP40.get_or_init(|| {
            let delay = DelayModel::calibrate(1.1, &[(0.9, 2.0), (0.75, 8.0)])
                .expect("paper anchors are well-formed");
            Technology {
                name: "40nm LP LVT".to_string(),
                nominal_voltage: 1.1,
                min_voltage: 0.70,
                voltage_step: 0.01,
                nominal_frequency_mhz: 500.0,
                delay,
            }
        })
        .clone()
    }

    /// Envision's 28 nm FDSOI node: 1.05 V nominal rail, 200 MHz nominal
    /// clock; calibrated to Table III's (0.80 V, 2×) and (0.65 V, 4×)
    /// operating points.
    #[must_use]
    pub fn fdsoi28() -> Self {
        // Memoized like lp40(): the grid search runs once per process.
        static FDSOI28: OnceLock<Technology> = OnceLock::new();
        FDSOI28
            .get_or_init(|| {
                let delay = DelayModel::calibrate(1.05, &[(0.80, 2.0), (0.65, 4.0)])
                    .expect("paper anchors are well-formed");
                Technology {
                    name: "28nm FDSOI".to_string(),
                    nominal_voltage: 1.05,
                    // Envision's lowest measured operating rail (Table III).
                    min_voltage: 0.65,
                    voltage_step: 0.01,
                    nominal_frequency_mhz: 200.0,
                    delay,
                }
            })
            .clone()
    }

    /// Technology name, e.g. `"40nm LP LVT"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nominal supply voltage in volts.
    #[must_use]
    pub fn nominal_voltage(&self) -> f64 {
        self.nominal_voltage
    }

    /// Lowest functional rail in volts.
    #[must_use]
    pub fn min_voltage(&self) -> f64 {
        self.min_voltage
    }

    /// Rail quantization step in volts.
    #[must_use]
    pub fn voltage_step(&self) -> f64 {
        self.voltage_step
    }

    /// Nominal clock frequency in MHz.
    #[must_use]
    pub fn nominal_frequency_mhz(&self) -> f64 {
        self.nominal_frequency_mhz
    }

    /// Nominal clock period in nanoseconds.
    #[must_use]
    pub fn nominal_period_ns(&self) -> f64 {
        1e3 / self.nominal_frequency_mhz
    }

    /// The calibrated delay model.
    #[must_use]
    pub fn delay_model(&self) -> &DelayModel {
        &self.delay
    }

    /// A voltage solver configured with this technology's rail limits.
    #[must_use]
    pub fn voltage_solver(&self) -> VoltageSolver {
        VoltageSolver::new(self.delay, self.min_voltage, self.voltage_step)
    }

    /// Relative dynamic energy of operating one capacitance at voltage `v`
    /// versus nominal: `(v / vnom)^2`.
    #[must_use]
    pub fn voltage_energy_factor(&self, v: f64) -> f64 {
        let r = v / self.nominal_voltage;
        r * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp40_parameters() {
        let t = Technology::lp40();
        assert!((t.nominal_voltage() - 1.1).abs() < 1e-12);
        assert!((t.nominal_frequency_mhz() - 500.0).abs() < 1e-12);
        assert!((t.nominal_period_ns() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fdsoi28_parameters() {
        let t = Technology::fdsoi28();
        assert!((t.nominal_voltage() - 1.05).abs() < 1e-12);
        assert!((t.nominal_frequency_mhz() - 200.0).abs() < 1e-12);
        assert!((t.nominal_period_ns() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn voltage_energy_factor_is_quadratic() {
        let t = Technology::lp40();
        assert!((t.voltage_energy_factor(1.1) - 1.0).abs() < 1e-12);
        assert!((t.voltage_energy_factor(0.55) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn solver_respects_technology_limits() {
        let t = Technology::lp40();
        let s = t.voltage_solver();
        assert!(s.min_voltage(1e6) >= t.min_voltage() - 1e-9);
        assert!(s.min_voltage(1.0) <= t.nominal_voltage() + 1e-9);
    }

    #[test]
    fn envision_voltages_recovered_by_solver() {
        // Table III rows: 200 MHz @ ~1.03 V, 100 MHz @ 0.80 V, 50 MHz @ 0.65 V.
        let t = Technology::fdsoi28();
        let s = t.voltage_solver();
        let v2 = s.min_voltage(2.0);
        let v4 = s.min_voltage(4.0);
        assert!((v2 - 0.80).abs() < 0.05, "v2={v2}");
        assert!((v4 - 0.65).abs() < 0.05, "v4={v4}");
    }
}
