//! Error type for the technology models.

use std::fmt;

/// Errors reported by the technology and power models.
#[derive(Debug, Clone, PartialEq)]
pub enum TechError {
    /// A supply voltage was outside the model's valid range.
    VoltageOutOfRange {
        /// The offending voltage in volts.
        voltage: f64,
        /// Lowest valid voltage.
        min: f64,
        /// Highest valid voltage.
        max: f64,
    },
    /// The timing constraint cannot be met even at the nominal voltage.
    TimingUnsatisfiable {
        /// The requested delay budget relative to nominal.
        slack_ratio: f64,
    },
    /// Calibration anchors were empty or inconsistent.
    InvalidCalibration {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for TechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechError::VoltageOutOfRange { voltage, min, max } => {
                write!(f, "voltage {voltage} V outside valid range {min}..{max} V")
            }
            TechError::TimingUnsatisfiable { slack_ratio } => {
                write!(
                    f,
                    "timing budget {slack_ratio}x nominal cannot be met at any rail"
                )
            }
            TechError::InvalidCalibration { reason } => {
                write!(f, "invalid delay calibration: {reason}")
            }
        }
    }
}

impl std::error::Error for TechError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        let e = TechError::VoltageOutOfRange {
            voltage: 0.2,
            min: 0.6,
            max: 1.1,
        };
        assert!(e.to_string().contains("0.2"));
        let e = TechError::TimingUnsatisfiable { slack_ratio: 0.5 };
        assert!(e.to_string().contains("0.5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TechError>();
    }
}
