//! Alpha-power-law gate-delay model and its calibration.
//!
//! Gate delay under a scaled supply follows Sakurai–Newton's alpha-power
//! law, `d(V) ∝ V / (V − Vth)^α`. The paper never states `(α, Vth)` for its
//! 40 nm LP LVT flow, but it publishes two anchor points (Section III-A):
//! at constant 500 MOPS throughput the multiplier still closes timing at
//! **0.9 V with 2× the nominal delay budget** (DVAS, 4 b) and at **0.75 V
//! with 8× the budget** (DVAFS, 4×4 b). [`DelayModel::calibrate`] fits the
//! law to such anchors, so every voltage this repository reports descends
//! from the paper's own numbers.

use crate::error::TechError;
use serde::{Deserialize, Serialize};

/// Sakurai–Newton alpha-power-law delay model, normalized to a nominal
/// supply.
///
/// # Example
///
/// ```
/// use dvafs_tech::delay::DelayModel;
///
/// let m = DelayModel::new(1.1, 0.55, 1.8)?;
/// assert!((m.delay_factor(1.1)? - 1.0).abs() < 1e-12);
/// assert!(m.delay_factor(0.9)? > 1.0); // slower at lower voltage
/// # Ok::<(), dvafs_tech::TechError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    vnom: f64,
    vth: f64,
    alpha: f64,
}

impl DelayModel {
    /// Creates a delay model.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidCalibration`] if `vth` is not strictly
    /// between 0 and `vnom`, or `alpha` is not in `(0.5, 4.0)`.
    pub fn new(vnom: f64, vth: f64, alpha: f64) -> Result<Self, TechError> {
        if !(vth > 0.0 && vth < vnom) {
            return Err(TechError::InvalidCalibration {
                reason: format!("vth {vth} must lie strictly between 0 and vnom {vnom}"),
            });
        }
        if !(0.5..4.0).contains(&alpha) {
            return Err(TechError::InvalidCalibration {
                reason: format!("alpha {alpha} outside plausible range 0.5..4.0"),
            });
        }
        Ok(DelayModel { vnom, vth, alpha })
    }

    /// Nominal supply voltage in volts.
    #[must_use]
    pub fn nominal_voltage(&self) -> f64 {
        self.vnom
    }

    /// Fitted threshold voltage in volts.
    #[must_use]
    pub fn threshold_voltage(&self) -> f64 {
        self.vth
    }

    /// Fitted velocity-saturation exponent.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Gate delay at supply `v`, relative to the delay at the nominal
    /// supply (1.0 at `vnom`, monotonically increasing as `v` drops).
    ///
    /// # Errors
    ///
    /// Returns [`TechError::VoltageOutOfRange`] when `v` is not in
    /// `(vth, 2*vnom)`.
    pub fn delay_factor(&self, v: f64) -> Result<f64, TechError> {
        let max = 2.0 * self.vnom;
        if v <= self.vth + 1e-6 || v > max {
            return Err(TechError::VoltageOutOfRange {
                voltage: v,
                min: self.vth,
                max,
            });
        }
        let raw = |u: f64| u / (u - self.vth).powf(self.alpha);
        Ok(raw(v) / raw(self.vnom))
    }

    /// Fits `(vth, alpha)` to delay-ratio anchor points by deterministic
    /// grid search minimizing squared log error.
    ///
    /// Each anchor is `(voltage, delay_ratio)`: "at `voltage`, the circuit
    /// may be `delay_ratio` times slower than at nominal".
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidCalibration`] when `anchors` is empty or
    /// contains non-positive entries.
    pub fn calibrate(vnom: f64, anchors: &[(f64, f64)]) -> Result<Self, TechError> {
        if anchors.is_empty() {
            return Err(TechError::InvalidCalibration {
                reason: "at least one anchor point is required".to_string(),
            });
        }
        for &(v, r) in anchors {
            if v <= 0.0 || v >= vnom || r <= 1.0 {
                return Err(TechError::InvalidCalibration {
                    reason: format!("anchor ({v} V, {r}x) must have 0 < v < vnom and ratio > 1"),
                });
            }
        }
        let v_lo = anchors
            .iter()
            .map(|&(v, _)| v)
            .fold(f64::INFINITY, f64::min);
        let mut best: Option<(f64, DelayModel)> = None;
        // vth must stay below the lowest anchor voltage.
        let mut vth = 0.05;
        while vth < v_lo - 0.02 {
            let mut alpha = 0.6;
            while alpha < 3.5 {
                if let Ok(model) = DelayModel::new(vnom, vth, alpha) {
                    let err: f64 = anchors
                        .iter()
                        .map(|&(v, r)| {
                            let pred = model.delay_factor(v).unwrap_or(f64::INFINITY);
                            let d = pred.ln() - r.ln();
                            d * d
                        })
                        .sum();
                    if best.as_ref().is_none_or(|(e, _)| err < *e) {
                        best = Some((err, model));
                    }
                }
                alpha += 0.01;
            }
            vth += 0.005;
        }
        best.map(|(_, m)| m)
            .ok_or_else(|| TechError::InvalidCalibration {
                reason: "no feasible (vth, alpha) found for the anchors".to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_delay_is_unity() {
        let m = DelayModel::new(1.1, 0.5, 1.5).unwrap();
        assert!((m.delay_factor(1.1).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_monotone_decreasing_in_voltage() {
        let m = DelayModel::new(1.1, 0.5, 1.5).unwrap();
        let mut prev = f64::INFINITY;
        let mut v = 0.6;
        while v <= 1.1 {
            let d = m.delay_factor(v).unwrap();
            assert!(d < prev, "delay must fall as voltage rises (v={v})");
            prev = d;
            v += 0.05;
        }
    }

    #[test]
    fn rejects_voltage_at_or_below_threshold() {
        let m = DelayModel::new(1.1, 0.5, 1.5).unwrap();
        assert!(m.delay_factor(0.5).is_err());
        assert!(m.delay_factor(0.3).is_err());
        assert!(m.delay_factor(3.0).is_err());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(DelayModel::new(1.1, 0.0, 1.5).is_err());
        assert!(DelayModel::new(1.1, 1.2, 1.5).is_err());
        assert!(DelayModel::new(1.1, 0.5, 0.1).is_err());
    }

    #[test]
    fn calibration_hits_paper_40nm_anchors() {
        // Paper Section III-A: 0.9 V at 2x budget, 0.75 V at 8x budget.
        let m = DelayModel::calibrate(1.1, &[(0.9, 2.0), (0.75, 8.0)]).unwrap();
        let d09 = m.delay_factor(0.9).unwrap();
        let d075 = m.delay_factor(0.75).unwrap();
        assert!((d09 - 2.0).abs() / 2.0 < 0.25, "d(0.9)={d09}");
        assert!((d075 - 8.0).abs() / 8.0 < 0.30, "d(0.75)={d075}");
    }

    #[test]
    fn calibration_hits_envision_28nm_anchors() {
        // Envision Table III: 0.80 V at half rate, 0.65 V at quarter rate.
        let m = DelayModel::calibrate(1.05, &[(0.80, 2.0), (0.65, 4.0)]).unwrap();
        let d08 = m.delay_factor(0.80).unwrap();
        let d065 = m.delay_factor(0.65).unwrap();
        assert!((d08 - 2.0).abs() / 2.0 < 0.30, "d(0.80)={d08}");
        assert!((d065 - 4.0).abs() / 4.0 < 0.30, "d(0.65)={d065}");
    }

    #[test]
    fn calibration_rejects_bad_anchors() {
        assert!(DelayModel::calibrate(1.1, &[]).is_err());
        assert!(DelayModel::calibrate(1.1, &[(1.2, 2.0)]).is_err());
        assert!(DelayModel::calibrate(1.1, &[(0.9, 0.5)]).is_err());
    }

    #[test]
    fn calibration_is_deterministic() {
        let a = DelayModel::calibrate(1.1, &[(0.9, 2.0), (0.75, 8.0)]).unwrap();
        let b = DelayModel::calibrate(1.1, &[(0.9, 2.0), (0.75, 8.0)]).unwrap();
        assert_eq!(a, b);
    }
}
