//! The paper's power equations (1)–(3), k-parameter extraction (Table I)
//! and the multiplier energy model behind Fig. 3a.

use crate::scaling::{OperatingPoint, ScalingMode};
use crate::technology::Technology;
use dvafs_arith::activity::ActivityProfile;
use serde::{Deserialize, Serialize};

/// Electrical parameters of a split-domain design for the dynamic-power
/// equations: switching activity `α`, switched capacitance `C` and clock
/// `f` for the accuracy-scalable (`as`) and non-scalable (`nas`) parts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Baseline switching activity of the as part (0..1).
    pub alpha_as: f64,
    /// Effective switched capacitance of the as part, in farads.
    pub cap_as: f64,
    /// Baseline switching activity of the nas part (0..1).
    pub alpha_nas: f64,
    /// Effective switched capacitance of the nas part, in farads.
    pub cap_nas: f64,
    /// Clock frequency in hertz.
    pub freq: f64,
}

impl PowerParams {
    /// Equation (1): DAS dynamic power. Only the as activity scales
    /// (divided by `k0`); voltage and frequency stay nominal.
    #[must_use]
    pub fn p_das(&self, k0: f64, v: f64) -> f64 {
        (self.alpha_as / k0) * self.cap_as * self.freq * v * v
            + self.alpha_nas * self.cap_nas * self.freq * v * v
    }

    /// Equation (2): DVAS dynamic power. The as part also runs at a scaled
    /// rail `v_as / k2`; the nas part stays at `v_nas`.
    #[must_use]
    pub fn p_dvas(&self, k1: f64, v_as: f64, k2: f64, v_nas: f64) -> f64 {
        let va = v_as / k2;
        (self.alpha_as / k1) * self.cap_as * self.freq * va * va
            + self.alpha_nas * self.cap_nas * self.freq * v_nas * v_nas
    }

    /// Equation (3): DVAFS dynamic power. Activity scales by `k3`,
    /// frequency by the subword factor `N`, and **both** rails scale
    /// (`v_as / k4`, `v_nas / k5`).
    #[must_use]
    pub fn p_dvafs(&self, k3: f64, n: usize, v_as: f64, k4: f64, v_nas: f64, k5: f64) -> f64 {
        let f = self.freq / n as f64;
        let va = v_as / k4;
        let vn = v_nas / k5;
        (self.alpha_as / k3) * self.cap_as * f * va * va
            + self.alpha_nas * self.cap_nas * f * vn * vn
    }
}

/// One row of Table I: the extracted scaling parameters at a precision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KParams {
    /// Operand precision in bits.
    pub bits: u32,
    /// Subword parallelism `N` at this precision.
    pub n: usize,
    /// DAS activity reduction factor.
    pub k0: f64,
    /// DVAS activity reduction factor (same gating as DAS).
    pub k1: f64,
    /// DVAS as-rail reduction factor (`v_as = vnom / k2`).
    pub k2: f64,
    /// DVAFS per-cycle activity reduction factor.
    pub k3: f64,
    /// DVAFS as-rail reduction factor.
    pub k4: f64,
    /// DVAFS nas-rail reduction factor.
    pub k5: f64,
}

/// Extracts the Table I parameters from gate-level activity profiles and
/// the technology's calibrated voltage solver.
///
/// # Panics
///
/// Panics if a profile lacks one of the sweep precisions (16/12/8/4).
#[must_use]
pub fn extract_k_params(
    tech: &Technology,
    das_profile: &ActivityProfile,
    dvafs_profile: &ActivityProfile,
) -> Vec<KParams> {
    let vnom = tech.nominal_voltage();
    [4u32, 8, 12, 16]
        .iter()
        .map(|&bits| {
            let dvas =
                OperatingPoint::derive(tech, ScalingMode::Dvas, bits, das_profile, dvafs_profile);
            let dvafs =
                OperatingPoint::derive(tech, ScalingMode::Dvafs, bits, das_profile, dvafs_profile);
            let k0 = 1.0 / dvas.activity_per_word;
            KParams {
                bits,
                n: dvafs.lanes,
                k0,
                k1: k0,
                k2: vnom / dvas.v_as,
                k3: 1.0 / (dvafs.activity_per_word * dvafs.lanes as f64),
                k4: vnom / dvafs.v_as,
                k5: vnom / dvafs.v_nas,
            }
        })
        .collect()
}

/// A sample of the multiplier's energy-accuracy curve (Fig. 3a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergySample {
    /// Scaling regime.
    pub mode: ScalingMode,
    /// Precision in bits.
    pub bits: u32,
    /// Energy per word relative to the non-reconfigurable 16-bit baseline.
    pub relative: f64,
    /// Energy per word in picojoules (baseline 2.16 pJ in 40 nm LP).
    pub picojoules: f64,
}

/// Multiplier-level energy model reproducing Fig. 3a.
///
/// The paper reports a non-reconfigurable 16-bit Booth–Wallace baseline of
/// **2.16 pJ/word** and a **21 % reconfiguration overhead** for the
/// subword-capable design (2.63 pJ at 16 bits). Energy per word then scales
/// with extracted activity and the square of the solved rail voltage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiplierEnergyModel {
    tech: Technology,
    das_profile: ActivityProfile,
    dvafs_profile: ActivityProfile,
    reconfig_overhead: f64,
    baseline_pj: f64,
}

impl MultiplierEnergyModel {
    /// Paper value: energy/word of the non-reconfigurable 16-bit multiplier.
    pub const BASELINE_PJ: f64 = 2.16;
    /// Paper value: reconfiguration overhead of the DVAFS-capable design.
    pub const RECONFIG_OVERHEAD: f64 = 0.21;

    /// Creates the model from extracted activity profiles.
    #[must_use]
    pub fn new(
        tech: Technology,
        das_profile: ActivityProfile,
        dvafs_profile: ActivityProfile,
    ) -> Self {
        MultiplierEnergyModel {
            tech,
            das_profile,
            dvafs_profile,
            reconfig_overhead: Self::RECONFIG_OVERHEAD,
            baseline_pj: Self::BASELINE_PJ,
        }
    }

    /// The technology used by this model.
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Energy per word at one operating point.
    #[must_use]
    pub fn energy_per_word(&self, mode: ScalingMode, bits: u32) -> EnergySample {
        let p = OperatingPoint::derive(
            &self.tech,
            mode,
            bits,
            &self.das_profile,
            &self.dvafs_profile,
        );
        let relative = (1.0 + self.reconfig_overhead) * p.energy_per_word_relative(&self.tech);
        EnergySample {
            mode,
            bits,
            relative,
            picojoules: relative * self.baseline_pj,
        }
    }

    /// The full Fig. 3a sweep: 16/12/8/4 bits in all three regimes.
    #[must_use]
    pub fn fig3a_sweep(&self) -> Vec<EnergySample> {
        ScalingMode::precision_grid()
            .into_iter()
            .map(|(mode, bits)| self.energy_per_word(mode, bits))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvafs_arith::activity::{extract_das_profile, extract_dvafs_profile, paper_table1};

    fn model() -> MultiplierEnergyModel {
        MultiplierEnergyModel::new(
            Technology::lp40(),
            extract_das_profile(120, 3),
            extract_dvafs_profile(120, 3),
        )
    }

    #[test]
    fn eq1_das_power_scales_with_k0() {
        let pp = PowerParams {
            alpha_as: 0.2,
            cap_as: 1e-12,
            alpha_nas: 0.1,
            cap_nas: 1e-12,
            freq: 5e8,
        };
        let p1 = pp.p_das(1.0, 1.1);
        let p2 = pp.p_das(12.5, 1.1);
        assert!(p2 < p1);
        // nas part is untouched: p2 can never fall below it.
        let nas = 0.1 * 1e-12 * 5e8 * 1.1 * 1.1;
        assert!(p2 > nas);
    }

    #[test]
    fn eq2_dvas_beats_das_at_same_k() {
        let pp = PowerParams {
            alpha_as: 0.2,
            cap_as: 1e-12,
            alpha_nas: 0.1,
            cap_nas: 1e-12,
            freq: 5e8,
        };
        let das = pp.p_das(3.5, 1.1);
        let dvas = pp.p_dvas(3.5, 1.1, 1.1, 1.1);
        assert!(dvas < das);
    }

    #[test]
    fn eq3_dvafs_scales_everything() {
        let pp = PowerParams {
            alpha_as: 0.2,
            cap_as: 1e-12,
            alpha_nas: 0.1,
            cap_nas: 1e-12,
            freq: 5e8,
        };
        // Paper Table I row at 4 bits.
        let p = pp.p_dvafs(3.2, 4, 1.1, 1.53, 1.1, 1.375);
        let full = pp.p_dvafs(1.0, 1, 1.1, 1.0, 1.1, 1.0);
        // Per cycle the DVAFS point is far below full power...
        assert!(p < full / 8.0);
        // ...and per word (x4 words/cycle) even further.
        assert!(p / full < 0.25 / 4.0 * 4.0);
    }

    #[test]
    fn extracted_k_params_match_paper_shape() {
        let tech = Technology::lp40();
        let das = extract_das_profile(150, 5);
        let dvafs = extract_dvafs_profile(150, 5);
        let ks = extract_k_params(&tech, &das, &dvafs);
        let paper = paper_table1();
        for (k, p) in ks.iter().zip(paper.iter()) {
            assert_eq!(k.bits, p.bits);
            assert_eq!(k.n, p.n, "bits={}", k.bits);
            // Within 2x of every paper parameter (same order, same trend).
            for (ours, theirs, name) in [
                (k.k0, p.k0, "k0"),
                (k.k2, p.k2, "k2"),
                (k.k3, p.k3, "k3"),
                (k.k4, p.k4, "k4"),
            ] {
                let ratio = ours / theirs;
                assert!(
                    (0.5..2.0).contains(&ratio),
                    "bits={} {name}: ours={ours:.2} paper={theirs:.2}",
                    k.bits
                );
            }
        }
        // k0 monotone decreasing in bits; k4 likewise.
        assert!(ks[0].k0 > ks[1].k0 && ks[1].k0 > ks[2].k0);
        assert!(ks[0].k4 >= ks[1].k4 && ks[1].k4 >= ks[2].k4);
    }

    #[test]
    fn fig3a_16b_reconfig_overhead() {
        let m = model();
        let s = m.energy_per_word(ScalingMode::Dvafs, 16);
        assert!((s.relative - 1.21).abs() < 1e-9);
        assert!((s.picojoules - 2.63).abs() < 0.03);
    }

    #[test]
    fn fig3a_dvafs_saves_over_95_percent_at_4b() {
        let m = model();
        let s = m.energy_per_word(ScalingMode::Dvafs, 4);
        assert!(
            s.relative < 0.05,
            "DVAFS 4x4b relative energy {}",
            s.relative
        );
    }

    #[test]
    fn fig3a_ordering_holds_at_every_reduced_precision() {
        let m = model();
        for bits in [4u32, 8, 12] {
            let das = m.energy_per_word(ScalingMode::Das, bits).relative;
            let dvas = m.energy_per_word(ScalingMode::Dvas, bits).relative;
            let dvafs = m.energy_per_word(ScalingMode::Dvafs, bits).relative;
            assert!(das >= dvas, "bits={bits}");
            assert!(dvas >= dvafs, "bits={bits} dvas={dvas} dvafs={dvafs}");
        }
    }

    #[test]
    fn fig3a_sweep_has_12_samples() {
        assert_eq!(model().fig3a_sweep().len(), 12);
    }

    #[test]
    fn multiplier_dynamic_range_approx_20x() {
        // Paper conclusion: ~20x dynamic power range in the multiplier.
        let m = model();
        let hi = m.energy_per_word(ScalingMode::Dvafs, 16).relative;
        let lo = m.energy_per_word(ScalingMode::Dvafs, 4).relative;
        let range = hi / lo;
        assert!(range > 12.0 && range < 60.0, "dynamic range {range}");
    }
}
