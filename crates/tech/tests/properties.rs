//! Property-based tests of the technology models' invariants.

use dvafs_tech::delay::DelayModel;
use dvafs_tech::domains::{DomainRails, PowerDomain};
use dvafs_tech::energy::EnergyBreakdown;
use dvafs_tech::power::PowerParams;
use dvafs_tech::technology::Technology;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Delay is strictly monotone decreasing in supply voltage.
    #[test]
    fn delay_monotone_in_voltage(
        v1 in 0.70f64..1.05,
        dv in 0.01f64..0.30,
    ) {
        let m = DelayModel::calibrate(1.1, &[(0.9, 2.0), (0.75, 8.0)]).expect("calibrates");
        let v2 = (v1 + dv).min(1.1);
        let d1 = m.delay_factor(v1).expect("valid");
        let d2 = m.delay_factor(v2).expect("valid");
        prop_assert!(d2 <= d1, "d({v2}) = {d2} > d({v1}) = {d1}");
    }

    /// The voltage solver's choice always meets the timing budget, and
    /// more slack never raises the rail.
    #[test]
    fn solver_meets_timing_and_is_monotone(
        slack1 in 1.0f64..12.0,
        extra in 0.0f64..8.0,
    ) {
        let t = Technology::lp40();
        let s = t.voltage_solver();
        let v1 = s.min_voltage(slack1);
        let v2 = s.min_voltage(slack1 + extra);
        prop_assert!(v2 <= v1 + 1e-12);
        prop_assert!(s.delay_at(v1).expect("valid") <= slack1 + 1e-9);
    }

    /// Energy factor is quadratic in voltage and 1.0 at nominal.
    #[test]
    fn voltage_energy_factor_quadratic(v in 0.5f64..1.1) {
        let t = Technology::lp40();
        let f = t.voltage_energy_factor(v);
        prop_assert!((f - (v / 1.1) * (v / 1.1)).abs() < 1e-12);
    }

    /// All three power equations are non-negative, and scaling any k
    /// parameter up never increases power.
    #[test]
    fn power_equations_monotone_in_k(
        k in 1.0f64..16.0,
        extra in 0.0f64..8.0,
        v in 0.7f64..1.1,
    ) {
        let pp = PowerParams {
            alpha_as: 0.2,
            cap_as: 1e-12,
            alpha_nas: 0.1,
            cap_nas: 1e-12,
            freq: 5e8,
        };
        prop_assert!(pp.p_das(k, v) >= 0.0);
        prop_assert!(pp.p_das(k + extra, v) <= pp.p_das(k, v) + 1e-18);
        prop_assert!(pp.p_dvas(k + extra, v, 1.1, v) <= pp.p_dvas(k, v, 1.1, v) + 1e-18);
        prop_assert!(
            pp.p_dvafs(k + extra, 4, v, 1.2, v, 1.1) <= pp.p_dvafs(k, 4, v, 1.2, v, 1.1) + 1e-18
        );
    }

    /// Domain percentages always sum to 100 (or 0 for an empty breakdown).
    #[test]
    fn breakdown_percentages_sum(
        mem in 0.0f64..1.0,
        nas in 0.0f64..1.0,
        r#as in 0.0f64..1.0,
    ) {
        let mut b = EnergyBreakdown::new();
        b.add(PowerDomain::Memory, mem);
        b.add(PowerDomain::NonScalable, nas);
        b.add(PowerDomain::AccuracyScalable, r#as);
        let total: f64 = PowerDomain::ALL.iter().map(|&d| b.percentage(d)).sum();
        if b.total() > 0.0 {
            prop_assert!((total - 100.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(total, 0.0);
        }
    }

    /// Rails report exactly what they were built with.
    #[test]
    fn rails_roundtrip(v_as in 0.5f64..1.2, v_nas in 0.5f64..1.2, v_mem in 0.5f64..1.2) {
        let r = DomainRails::new(v_as, v_nas, v_mem);
        prop_assert_eq!(r.voltage(PowerDomain::AccuracyScalable), v_as);
        prop_assert_eq!(r.voltage(PowerDomain::NonScalable), v_nas);
        prop_assert_eq!(r.voltage(PowerDomain::Memory), v_mem);
    }
}
