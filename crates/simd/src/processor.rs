//! The cycle-level processor: execution loop, run reports, Table II rows.

use crate::energy::{EventCounts, SimdEnergyModel};
use crate::error::SimdError;
use crate::isa::{Instr, Program, SCALAR_REGS, VECTOR_REGS};
use crate::kernels::{compile_with_style, CompiledKernel, ConvKernel, KernelStyle};
use crate::memory::BankedMemory;
use dvafs_arith::subword::{pack_lanes, unpack_lanes, SubwordMode};
use dvafs_arith::Precision;
use dvafs_tech::domains::{DomainRails, PowerDomain};
use dvafs_tech::energy::EnergyBreakdown;
use dvafs_tech::scaling::{OperatingPoint, ScalingMode};
use dvafs_tech::technology::Technology;
use serde::{Deserialize, Serialize};

/// Configuration of one processor instantiation + operating point.
///
/// # Example
///
/// ```
/// use dvafs_simd::processor::ProcConfig;
/// use dvafs_tech::ScalingMode;
///
/// let c = ProcConfig::new(64, ScalingMode::Dvafs, 8)?;
/// assert_eq!(c.sw(), 64);
/// assert_eq!(c.mode().lanes(), 2);
/// # Ok::<(), dvafs_simd::SimdError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcConfig {
    sw: usize,
    scaling: ScalingMode,
    bits: u32,
    mode: SubwordMode,
    cycle_limit: u64,
    tech: Technology,
}

impl ProcConfig {
    /// Creates a configuration for SIMD width `sw` in the given scaling
    /// regime and per-word precision. DVAFS selects the subword mode from
    /// the precision; DAS/DVAS always run `1x16b` lanes with gated inputs.
    ///
    /// # Errors
    ///
    /// Returns [`SimdError::InvalidConfig`] for a zero width or a precision
    /// outside `1..=16`.
    pub fn new(sw: usize, scaling: ScalingMode, bits: u32) -> Result<Self, SimdError> {
        if sw == 0 {
            return Err(SimdError::InvalidConfig {
                reason: "SIMD width must be positive".to_string(),
            });
        }
        let precision = Precision::new(bits).map_err(|e| SimdError::InvalidConfig {
            reason: e.to_string(),
        })?;
        let mode = match scaling {
            ScalingMode::Das | ScalingMode::Dvas => SubwordMode::X1,
            ScalingMode::Dvafs => SubwordMode::for_precision(precision),
        };
        Ok(ProcConfig {
            sw,
            scaling,
            bits,
            mode,
            cycle_limit: 20_000_000,
            tech: Technology::lp40(),
        })
    }

    /// SIMD width (number of lanes and memory banks).
    #[must_use]
    pub fn sw(&self) -> usize {
        self.sw
    }

    /// Scaling regime.
    #[must_use]
    pub fn scaling(&self) -> ScalingMode {
        self.scaling
    }

    /// Per-word operand precision in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Subword mode of the vector lanes.
    #[must_use]
    pub fn mode(&self) -> SubwordMode {
        self.mode
    }

    /// The technology node (40 nm LP by default).
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Overrides the cycle budget (default 20 M).
    #[must_use]
    pub fn with_cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = limit;
        self
    }
}

/// Result of one program execution with full energy accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Executed cycles (single-issue: one instruction per cycle).
    pub cycles: u64,
    /// Event counts for the energy model.
    pub counts: EventCounts,
    /// Three-domain energy breakdown in joules.
    pub energy: EnergyBreakdown,
    /// Rail voltages of the operating point.
    pub rails: DomainRails,
    /// Clock frequency in MHz (scaled by `N` in DVAFS).
    pub frequency_mhz: f64,
    /// Wall-clock runtime in seconds.
    pub runtime_s: f64,
    /// Average power in watts.
    pub avg_power_w: f64,
}

impl RunReport {
    /// Energy per processed word in joules, given the word count.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    #[must_use]
    pub fn energy_per_word(&self, words: u64) -> f64 {
        assert!(words > 0, "word count must be positive");
        self.energy.total() / words as f64
    }

    /// Domain share in percent (Table II's `mem`/`nas`/`as` columns).
    #[must_use]
    pub fn share(&self, domain: PowerDomain) -> f64 {
        self.energy.percentage(domain)
    }
}

/// Result of running a compiled convolution kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelReport {
    /// The generic run report.
    pub run: RunReport,
    /// Outputs read back from memory, ordered by output index.
    pub outputs: Vec<i32>,
    /// Compilation parameters used (for verification).
    pub bits: u32,
    /// Post-MAC shift used by the program.
    pub shift: u32,
    /// Subword mode of the run.
    pub mode: SubwordMode,
    /// Processed words (MAC operand pairs).
    pub words: u64,
}

impl KernelReport {
    /// Verifies the read-back outputs against an exact recomputation of
    /// the kernel at the same precision and shift.
    #[must_use]
    pub fn outputs_match(&self, kernel: &ConvKernel) -> bool {
        let expected = kernel.expected_outputs(self.bits, self.shift, self.mode.lane_bits());
        expected == self.outputs
    }

    /// Like [`outputs_match`](Self::outputs_match), but recomputes the
    /// reference through the blocked integer GEMM
    /// ([`ConvKernel::expected_outputs_gemm`]) — bit-identical to the naive
    /// reference by construction, and the path the scenarios assert when a
    /// run selects the `Gemm` kernel.
    #[must_use]
    pub fn outputs_match_gemm(&self, kernel: &ConvKernel) -> bool {
        let expected = kernel.expected_outputs_gemm(self.bits, self.shift, self.mode.lane_bits());
        expected == self.outputs
    }

    /// Like [`outputs_match`](Self::outputs_match), but recomputes the
    /// reference through the subword-packed GEMM
    /// ([`ConvKernel::expected_outputs_packed`]) — the path the scenarios
    /// assert when a run selects the `GemmPacked` kernel.
    #[must_use]
    pub fn outputs_match_packed(&self, kernel: &ConvKernel) -> bool {
        let expected = kernel.expected_outputs_packed(self.bits, self.shift, self.mode.lane_bits());
        expected == self.outputs
    }

    /// Energy per processed word in joules.
    #[must_use]
    pub fn energy_per_word(&self) -> f64 {
        self.run.energy_per_word(self.words)
    }
}

/// The DVAFS-compatible SIMD RISC vector processor.
#[derive(Debug, Clone)]
pub struct Processor {
    config: ProcConfig,
    model: SimdEnergyModel,
}

impl Processor {
    /// Creates a processor with a freshly extracted energy model.
    #[must_use]
    pub fn new(config: ProcConfig) -> Self {
        Processor {
            config,
            model: SimdEnergyModel::new(),
        }
    }

    /// Creates a processor reusing an existing energy model (cheaper when
    /// sweeping many operating points).
    #[must_use]
    pub fn with_model(config: ProcConfig, model: SimdEnergyModel) -> Self {
        Processor { config, model }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ProcConfig {
        &self.config
    }

    /// Rail voltages of this configuration's operating point, derived from
    /// the calibrated technology model (memory rail fixed at nominal).
    #[must_use]
    pub fn rails(&self) -> DomainRails {
        let tech = &self.config.tech;
        let vnom = tech.nominal_voltage();
        // Derive the as/nas voltages from the same machinery as the
        // multiplier analysis; DVAFS profile entries come from the model.
        let op = OperatingPoint::derive(
            tech,
            self.config.scaling,
            self.config.bits,
            self.model.das_profile(),
            self.model.dvafs_profile(),
        );
        DomainRails::new(op.v_as, op.v_nas, vnom)
    }

    /// Clock frequency in MHz at constant computational throughput.
    #[must_use]
    pub fn frequency_mhz(&self) -> f64 {
        self.config.tech.nominal_frequency_mhz() / self.config.mode.lanes() as f64
    }

    /// Executes a program against a memory image.
    ///
    /// # Errors
    ///
    /// Propagates ISA-level faults ([`SimdError::InvalidRegister`],
    /// [`SimdError::MemoryOutOfBounds`], [`SimdError::InvalidTarget`]) and
    /// [`SimdError::CycleLimitExceeded`].
    // Lane loops index several vector registers with the same lane/subword
    // pair (including aliasing reads and writes of one register file), which
    // iterator chains cannot express without split_at_mut contortions.
    #[allow(clippy::needless_range_loop)]
    pub fn run(
        &self,
        program: &Program,
        memory: &mut BankedMemory,
    ) -> Result<RunReport, SimdError> {
        let sw = self.config.sw;
        let n = self.config.mode.lanes();
        let mut scalar = [0i32; SCALAR_REGS];
        let mut vregs = vec![vec![vec![0i64; n]; sw]; VECTOR_REGS];
        let mut counts = EventCounts::default();
        let mut pc = 0usize;
        let mut cycles = 0u64;
        let instrs = program.instrs();

        let sreg = |r: usize| -> Result<usize, SimdError> {
            if r < SCALAR_REGS {
                Ok(r)
            } else {
                Err(SimdError::InvalidRegister {
                    index: r,
                    count: SCALAR_REGS,
                    kind: "scalar",
                })
            }
        };
        let vreg = |r: usize| -> Result<usize, SimdError> {
            if r < VECTOR_REGS {
                Ok(r)
            } else {
                Err(SimdError::InvalidRegister {
                    index: r,
                    count: VECTOR_REGS,
                    kind: "vector",
                })
            }
        };

        loop {
            if cycles >= self.config.cycle_limit {
                return Err(SimdError::CycleLimitExceeded {
                    limit: self.config.cycle_limit,
                });
            }
            let instr = *instrs.get(pc).ok_or(SimdError::InvalidTarget {
                target: pc,
                len: instrs.len(),
            })?;
            counts.instructions += 1;
            cycles += 1;
            pc += 1;
            match instr {
                Instr::Li { rd, imm } => {
                    scalar[sreg(rd)?] = imm;
                    counts.scalar_ops += 1;
                }
                Instr::Add { rd, rs1, rs2 } => {
                    scalar[sreg(rd)?] = scalar[sreg(rs1)?].wrapping_add(scalar[sreg(rs2)?]);
                    counts.scalar_ops += 1;
                }
                Instr::Addi { rd, rs1, imm } => {
                    scalar[sreg(rd)?] = scalar[sreg(rs1)?].wrapping_add(imm);
                    counts.scalar_ops += 1;
                }
                Instr::Bne { rs1, rs2, target } => {
                    counts.scalar_ops += 1;
                    if scalar[sreg(rs1)?] != scalar[sreg(rs2)?] {
                        if target >= instrs.len() {
                            return Err(SimdError::InvalidTarget {
                                target,
                                len: instrs.len(),
                            });
                        }
                        pc = target;
                    }
                }
                Instr::Jump { target } => {
                    if target >= instrs.len() {
                        return Err(SimdError::InvalidTarget {
                            target,
                            len: instrs.len(),
                        });
                    }
                    pc = target;
                }
                Instr::Halt => break,
                Instr::Nop => {}
                Instr::LoadScalar { rd, rs1, offset } => {
                    let base = scalar[sreg(rs1)?];
                    let addr = usize::try_from(base.wrapping_add(offset)).map_err(|_| {
                        SimdError::MemoryOutOfBounds {
                            bank: 0,
                            addr: 0,
                            size: memory.words_per_bank(),
                        }
                    })?;
                    let word = memory.read(0, addr)?;
                    scalar[sreg(rd)?] = i32::from(word as i16);
                    counts.mem_reads += 1;
                    counts.scalar_ops += 1;
                }
                Instr::VLoad { vd, rs1, offset } => {
                    let vd = vreg(vd)?;
                    let base = scalar[sreg(rs1)?];
                    let addr = usize::try_from(base.wrapping_add(offset)).map_err(|_| {
                        SimdError::MemoryOutOfBounds {
                            bank: 0,
                            addr: 0,
                            size: memory.words_per_bank(),
                        }
                    })?;
                    for lane in 0..sw {
                        let word = memory.read(lane, addr)?;
                        let values = unpack_lanes(word, self.config.mode);
                        for (s, v) in values.into_iter().enumerate() {
                            vregs[vd][lane][s] = i64::from(v);
                        }
                    }
                    counts.mem_reads += sw as u64;
                    counts.lane_vreg += sw as u64;
                }
                Instr::VStore { vs, rs1, offset } => {
                    let vs = vreg(vs)?;
                    let base = scalar[sreg(rs1)?];
                    let addr = usize::try_from(base.wrapping_add(offset)).map_err(|_| {
                        SimdError::MemoryOutOfBounds {
                            bank: 0,
                            addr: 0,
                            size: memory.words_per_bank(),
                        }
                    })?;
                    let w = self.config.mode.lane_bits();
                    let lo = -(1i64 << (w - 1));
                    let hi = (1i64 << (w - 1)) - 1;
                    for lane in 0..sw {
                        let clamped: Vec<i32> = vregs[vs][lane]
                            .iter()
                            .map(|&v| v.clamp(lo, hi) as i32)
                            .collect();
                        let word = pack_lanes(&clamped, self.config.mode)
                            .expect("clamped values fit the lane width");
                        memory.write(lane, addr, word)?;
                    }
                    counts.mem_writes += sw as u64;
                    counts.lane_vreg += sw as u64;
                }
                Instr::VBroadcast { vd, rs } => {
                    let vd = vreg(vd)?;
                    let v = i64::from(scalar[sreg(rs)?]);
                    for lane in vregs[vd].iter_mut() {
                        lane.iter_mut().for_each(|slot| *slot = v);
                    }
                    counts.lane_alu += sw as u64;
                    counts.lane_vreg += sw as u64;
                }
                Instr::VMac { vacc, vs1, vs2 } => {
                    let (vacc, vs1, vs2) = (vreg(vacc)?, vreg(vs1)?, vreg(vs2)?);
                    for lane in 0..sw {
                        for s in 0..n {
                            let p = vregs[vs1][lane][s] * vregs[vs2][lane][s];
                            vregs[vacc][lane][s] += p;
                        }
                    }
                    counts.lane_macs += sw as u64;
                    counts.lane_vreg += 3 * sw as u64;
                }
                Instr::VAdd { vd, vs1, vs2 } => {
                    let (vd, vs1, vs2) = (vreg(vd)?, vreg(vs1)?, vreg(vs2)?);
                    for lane in 0..sw {
                        for s in 0..n {
                            vregs[vd][lane][s] = vregs[vs1][lane][s] + vregs[vs2][lane][s];
                        }
                    }
                    counts.lane_alu += sw as u64;
                    counts.lane_vreg += 2 * sw as u64;
                }
                Instr::VRelu { vd, vs } => {
                    let (vd, vs) = (vreg(vd)?, vreg(vs)?);
                    for lane in 0..sw {
                        for s in 0..n {
                            vregs[vd][lane][s] = vregs[vs][lane][s].max(0);
                        }
                    }
                    counts.lane_alu += sw as u64;
                    counts.lane_vreg += 2 * sw as u64;
                }
                Instr::VClear { vd } => {
                    let vd = vreg(vd)?;
                    for lane in vregs[vd].iter_mut() {
                        lane.iter_mut().for_each(|slot| *slot = 0);
                    }
                    counts.lane_alu += sw as u64;
                    counts.lane_vreg += sw as u64;
                }
                Instr::VShr { vd, vs, amount } => {
                    let (vd, vs) = (vreg(vd)?, vreg(vs)?);
                    for lane in 0..sw {
                        for s in 0..n {
                            vregs[vd][lane][s] = vregs[vs][lane][s] >> amount.min(62);
                        }
                    }
                    counts.lane_alu += sw as u64;
                    counts.lane_vreg += 2 * sw as u64;
                }
            }
        }

        let rails = self.rails();
        let vnom = self.config.tech.nominal_voltage();
        let energy = self.model.breakdown(
            &counts,
            sw,
            rails,
            vnom,
            self.config.scaling,
            self.config.bits,
        );
        let frequency_mhz = self.frequency_mhz();
        let runtime_s = cycles as f64 / (frequency_mhz * 1e6);
        let avg_power_w = if runtime_s > 0.0 {
            energy.total() / runtime_s
        } else {
            0.0
        };
        Ok(RunReport {
            cycles,
            counts,
            energy,
            rails,
            frequency_mhz,
            runtime_s,
            avg_power_w,
        })
    }

    /// Compiles and runs a convolution kernel, reading the outputs back.
    ///
    /// # Errors
    ///
    /// Propagates compilation ([`SimdError::InvalidConfig`]) and execution
    /// errors.
    pub fn run_kernel(&self, kernel: &ConvKernel) -> Result<KernelReport, SimdError> {
        self.run_kernel_styled(kernel, KernelStyle::Unrolled)
    }

    /// Like [`run_kernel`](Self::run_kernel) with an explicit
    /// code-generation style (unrolled vs. branch loops).
    ///
    /// # Errors
    ///
    /// Propagates compilation and execution errors.
    pub fn run_kernel_styled(
        &self,
        kernel: &ConvKernel,
        style: KernelStyle,
    ) -> Result<KernelReport, SimdError> {
        let compiled: CompiledKernel = compile_with_style(
            kernel,
            self.config.sw,
            self.config.mode,
            self.config.bits,
            style,
        )?;
        let words_per_bank = (compiled.out_base + compiled.blocks)
            .max(compiled.bank_images.iter().map(Vec::len).max().unwrap_or(0));
        let mut memory = BankedMemory::new(self.config.sw, words_per_bank);
        for (lane, image) in compiled.bank_images.iter().enumerate() {
            memory.load_bank(lane, 0, image)?;
        }
        let run = self.run(&compiled.program, &mut memory)?;
        // Read outputs back in output-index order.
        let mut outputs = vec![0i32; kernel.outputs()];
        for b in 0..compiled.blocks {
            for lane in 0..self.config.sw {
                let word = memory.read(lane, compiled.out_base + b)?;
                for (s, v) in unpack_lanes(word, self.config.mode).into_iter().enumerate() {
                    outputs[compiled.output_index(b, lane, s)] = v;
                }
            }
        }
        Ok(KernelReport {
            run,
            outputs,
            bits: compiled.bits,
            shift: compiled.shift,
            mode: compiled.mode,
            words: kernel.mac_count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_model() -> SimdEnergyModel {
        SimdEnergyModel::new()
    }

    #[test]
    fn scalar_loop_executes() {
        // Sum 1..=5 with a branch loop.
        let mut p = Program::new();
        p.push(Instr::Li { rd: 1, imm: 0 }); // acc
        p.push(Instr::Li { rd: 2, imm: 5 }); // limit
        p.push(Instr::Li { rd: 3, imm: 0 }); // i
        let loop_top = p.push(Instr::Addi {
            rd: 3,
            rs1: 3,
            imm: 1,
        });
        p.push(Instr::Add {
            rd: 1,
            rs1: 1,
            rs2: 3,
        });
        p.push(Instr::Bne {
            rs1: 3,
            rs2: 2,
            target: loop_top,
        });
        // Store the scalar via broadcast + vstore to observe it.
        p.push(Instr::VBroadcast { vd: 0, rs: 1 });
        p.push(Instr::VStore {
            vs: 0,
            rs1: 0,
            offset: 0,
        });
        p.push(Instr::Halt);
        let config = ProcConfig::new(2, ScalingMode::Das, 16).unwrap();
        let proc = Processor::with_model(config, shared_model());
        let mut mem = BankedMemory::new(2, 4);
        let report = proc.run(&p, &mut mem).unwrap();
        assert_eq!(mem.read(0, 0).unwrap() as i16, 15);
        assert_eq!(mem.read(1, 0).unwrap() as i16, 15);
        assert!(report.cycles > 10);
    }

    #[test]
    fn kernel_outputs_are_bit_exact_in_all_regimes() {
        let kernel = ConvKernel::random(7, 64, 11);
        let model = shared_model();
        for (scaling, bits) in [
            (ScalingMode::Das, 16),
            (ScalingMode::Das, 8),
            (ScalingMode::Dvas, 12),
            (ScalingMode::Dvas, 4),
            (ScalingMode::Dvafs, 16),
            (ScalingMode::Dvafs, 8),
            (ScalingMode::Dvafs, 4),
        ] {
            let config = ProcConfig::new(8, scaling, bits).unwrap();
            let proc = Processor::with_model(config, model.clone());
            let report = proc.run_kernel(&kernel).unwrap();
            assert!(
                report.outputs_match(&kernel),
                "{scaling:?} at {bits} bits produced wrong outputs"
            );
        }
    }

    #[test]
    fn dvafs_runs_fewer_cycles_at_lower_clock() {
        let kernel = ConvKernel::random(9, 256, 12);
        let model = shared_model();
        let full = Processor::with_model(
            ProcConfig::new(8, ScalingMode::Dvafs, 16).unwrap(),
            model.clone(),
        )
        .run_kernel(&kernel)
        .unwrap();
        let quad = Processor::with_model(
            ProcConfig::new(8, ScalingMode::Dvafs, 4).unwrap(),
            model.clone(),
        )
        .run_kernel(&kernel)
        .unwrap();
        // ~4x fewer cycles at 1/4 the clock: constant throughput.
        let cyc_ratio = full.run.cycles as f64 / quad.run.cycles as f64;
        assert!((cyc_ratio - 4.0).abs() < 0.4, "cycle ratio {cyc_ratio}");
        assert_eq!(quad.run.frequency_mhz, 125.0);
        let t_ratio = quad.run.runtime_s / full.run.runtime_s;
        assert!((t_ratio - 1.0).abs() < 0.15, "runtime ratio {t_ratio}");
    }

    #[test]
    fn energy_ordering_das_dvas_dvafs_at_4b() {
        let kernel = ConvKernel::random(9, 256, 13);
        let model = shared_model();
        let energy = |scaling| {
            Processor::with_model(ProcConfig::new(8, scaling, 4).unwrap(), model.clone())
                .run_kernel(&kernel)
                .unwrap()
                .energy_per_word()
        };
        let das = energy(ScalingMode::Das);
        let dvas = energy(ScalingMode::Dvas);
        let dvafs = energy(ScalingMode::Dvafs);
        assert!(das > dvas, "das {das} dvas {dvas}");
        assert!(dvas > dvafs, "dvas {dvas} dvafs {dvafs}");
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let mut p = Program::new();
        p.push(Instr::Jump { target: 0 });
        let config = ProcConfig::new(2, ScalingMode::Das, 16)
            .unwrap()
            .with_cycle_limit(100);
        let proc = Processor::with_model(config, shared_model());
        let mut mem = BankedMemory::new(2, 4);
        assert!(matches!(
            proc.run(&p, &mut mem),
            Err(SimdError::CycleLimitExceeded { limit: 100 })
        ));
    }

    #[test]
    fn invalid_register_is_reported() {
        let mut p = Program::new();
        p.push(Instr::Li { rd: 99, imm: 0 });
        let proc = Processor::with_model(
            ProcConfig::new(2, ScalingMode::Das, 16).unwrap(),
            shared_model(),
        );
        let mut mem = BankedMemory::new(2, 4);
        assert!(matches!(
            proc.run(&p, &mut mem),
            Err(SimdError::InvalidRegister { index: 99, .. })
        ));
    }

    #[test]
    fn running_off_the_end_is_an_error() {
        let mut p = Program::new();
        p.push(Instr::Nop);
        let proc = Processor::with_model(
            ProcConfig::new(2, ScalingMode::Das, 16).unwrap(),
            shared_model(),
        );
        let mut mem = BankedMemory::new(2, 4);
        assert!(matches!(
            proc.run(&p, &mut mem),
            Err(SimdError::InvalidTarget { .. })
        ));
    }

    #[test]
    fn looped_and_unrolled_kernels_agree() {
        let kernel = ConvKernel::random(7, 128, 55);
        let model = shared_model();
        for (scaling, bits) in [
            (ScalingMode::Das, 16u32),
            (ScalingMode::Dvafs, 8),
            (ScalingMode::Dvafs, 4),
        ] {
            let cfg = ProcConfig::new(8, scaling, bits).unwrap();
            let proc = Processor::with_model(cfg, model.clone());
            let unrolled = proc
                .run_kernel_styled(&kernel, KernelStyle::Unrolled)
                .unwrap();
            let looped = proc
                .run_kernel_styled(&kernel, KernelStyle::Looped)
                .unwrap();
            assert_eq!(unrolled.outputs, looped.outputs, "{scaling:?} {bits}b");
            assert!(looped.outputs_match(&kernel));
            // Loops trade cycles for code size.
            assert!(looped.run.cycles > unrolled.run.cycles);
        }
    }

    #[test]
    fn looped_code_size_is_constant_in_workload() {
        use crate::kernels::compile_with_style as cws;
        let small = ConvKernel::random(4, 64, 1);
        let large = ConvKernel::random(16, 512, 2);
        let a = cws(&small, 8, SubwordMode::X1, 16, KernelStyle::Looped).unwrap();
        let b = cws(&large, 8, SubwordMode::X1, 16, KernelStyle::Looped).unwrap();
        assert_eq!(a.program.len(), b.program.len());
        // Unrolled code grows with the workload.
        let c = cws(&large, 8, SubwordMode::X1, 16, KernelStyle::Unrolled).unwrap();
        assert!(c.program.len() > 10 * a.program.len());
    }

    #[test]
    fn load_scalar_reads_bank_zero_sign_extended() {
        let mut p = Program::new();
        p.push(Instr::LoadScalar {
            rd: 1,
            rs1: 0,
            offset: 2,
        });
        p.push(Instr::VBroadcast { vd: 0, rs: 1 });
        p.push(Instr::VStore {
            vs: 0,
            rs1: 0,
            offset: 0,
        });
        p.push(Instr::Halt);
        let proc = Processor::with_model(
            ProcConfig::new(2, ScalingMode::Das, 16).unwrap(),
            shared_model(),
        );
        let mut mem = BankedMemory::new(2, 4);
        mem.write(0, 2, (-123i16) as u16).unwrap();
        proc.run(&p, &mut mem).unwrap();
        assert_eq!(mem.read(0, 0).unwrap() as i16, -123);
    }

    #[test]
    fn relu_and_vadd_semantics() {
        let mut p = Program::new();
        p.push(Instr::Li { rd: 1, imm: -5 });
        p.push(Instr::VBroadcast { vd: 0, rs: 1 });
        p.push(Instr::VRelu { vd: 1, vs: 0 });
        p.push(Instr::Li { rd: 2, imm: 3 });
        p.push(Instr::VBroadcast { vd: 2, rs: 2 });
        p.push(Instr::VAdd {
            vd: 3,
            vs1: 1,
            vs2: 2,
        });
        p.push(Instr::VStore {
            vs: 3,
            rs1: 0,
            offset: 0,
        });
        p.push(Instr::Halt);
        let proc = Processor::with_model(
            ProcConfig::new(2, ScalingMode::Das, 16).unwrap(),
            shared_model(),
        );
        let mut mem = BankedMemory::new(2, 2);
        proc.run(&p, &mut mem).unwrap();
        // relu(-5) + 3 = 3.
        assert_eq!(mem.read(0, 0).unwrap() as i16, 3);
    }
}
