//! Blocked integer GEMM primitives for quantized MAC workloads.
//!
//! The DVAFS claim is that reduced-precision MAC *arrays* are cheap; this
//! module is the software mirror of that array: instead of issuing one
//! guarded multiply-accumulate at a time (the naive 7-deep convolution
//! loop), operands are packed into dense `i16` panels and consumed by a
//! tiled matrix-matrix product with exact 64-bit accumulation.
//!
//! Exactness is the load-bearing property: every product of two `i16`
//! operands fits `i32`, a *pair* of such products still fits `i32`
//! (`2 * 32767^2 < 2^31`), and the pair sums are folded into `i64`
//! accumulators. Integer addition is associative, so any tiling or
//! unrolling order yields bit-identical results to the scalar reference
//! loop — which is what lets `dvafs-nn` swap its naive layer loops for
//! [`gemm_i16`] without moving a single output, and what the
//! `Naive == Gemm` property tests assert.
//!
//! The layout convention is dot-product friendly: the left operand `A` is
//! `m x k` row-major and the right operand is handed over **already
//! transposed** (`Bᵗ`, `n x k` row-major — e.g. one im2col patch per row),
//! so every inner product walks two contiguous slices.
//!
//! ## Subword-packed panels
//!
//! [`PackedPanel`]/[`gemm_packed`] are the software edition of the paper's
//! Section II-C subword reconfiguration: when a panel's operands fit 8
//! (or 4) bits, each 16-bit lane word carries 2 (or 4) of them, following
//! **exactly** the field rules of `dvafs_arith::subword::pack_lanes`
//! (lane 0 at the LSBs, two's-complement fields of
//! [`SubwordMode::lane_bits`] each — the correspondence is pinned by
//! test). The packed dot kernels re-expand lanes on the fly and keep the
//! accumulation exact:
//!
//! * every 16-lane step forms pairwise `i32` sums of products (the
//!   `pmaddwd` shape);
//! * narrow modes bound the pair sums (`2·2^(wa-1)·2^(wb-1)`), so whole
//!   blocks accumulate in `i32` before being widened to `i64` — the
//!   block length per mode pair is chosen so the `i32` partial can never
//!   wrap;
//! * the one full-width corner — both pairs of a step summing
//!   `MIN·MIN + MIN·MIN = 2^31` — is corrected explicitly: panels record
//!   at pack time whether they contain `-2^(w-1)`, and only when *both*
//!   operands do does the kernel count the overflowing cross-terms and
//!   add back `2^32` per occurrence.
//!
//! The result is bit-identical to [`dot_i16`]/[`gemm_i16`] for every
//! input `pack_lanes` accepts, which is what lets the `GemmPacked` NN
//! kernel join the `Naive == Gemm` equivalence net without moving a
//! number. On x86-64 hosts with AVX2 the packed kernels dispatch to
//! `vpmaddwd`-based inner loops at run time (the workspace targets
//! baseline x86-64, so this is a run-time feature check, not a compile
//! flag); everywhere else a scalar decode loop computes the same exact
//! sums.

use dvafs_arith::SubwordMode;

/// Output columns per tile of [`gemm_i16`]: one `Bᵗ` tile of
/// `COL_TILE x k` operands stays cache-resident while every row of `A`
/// streams against it.
pub const COL_TILE: usize = 32;

/// Exact dot product of two `i16` slices with 64-bit accumulation.
///
/// Every `i16 x i16` product fits `i32` (even `MIN x MIN = 2^30`); each
/// product is widened to `i64` before summation — a *pair* of extreme
/// products would overflow a pairwise `i32` sum by exactly one, the
/// classic `pmaddwd` saturation corner — and folded into two independent
/// `i64` accumulators. The result is the exact mathematical dot product
/// regardless of length or unrolling.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
#[must_use]
pub fn dot_i16(a: &[i16], b: &[i16]) -> i64 {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    let mut acc0 = 0i64;
    let mut acc1 = 0i64;
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (x, y) in (&mut ca).zip(&mut cb) {
        let p0 = i64::from(i32::from(x[0]) * i32::from(y[0]))
            + i64::from(i32::from(x[1]) * i32::from(y[1]));
        let p1 = i64::from(i32::from(x[2]) * i32::from(y[2]))
            + i64::from(i32::from(x[3]) * i32::from(y[3]));
        let p2 = i64::from(i32::from(x[4]) * i32::from(y[4]))
            + i64::from(i32::from(x[5]) * i32::from(y[5]));
        let p3 = i64::from(i32::from(x[6]) * i32::from(y[6]))
            + i64::from(i32::from(x[7]) * i32::from(y[7]));
        acc0 += p0 + p1;
        acc1 += p2 + p3;
    }
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        acc0 += i64::from(x) * i64::from(y);
    }
    acc0 + acc1
}

/// Blocked integer GEMM: `out[i][j] = Σ_t a[i][t] * bt[j][t]`, exact in
/// `i64`.
///
/// * `a` is `m x k` row-major (e.g. one quantized filter per row);
/// * `bt` is the **transposed** right operand, `n x k` row-major (e.g. one
///   im2col patch per row);
/// * `out` is `m x n` row-major and is fully overwritten.
///
/// Columns are processed in [`COL_TILE`]-wide tiles so the active slice of
/// `bt` stays cache-hot while all `m` rows of `a` stream against it. The
/// accumulation is exact, so the tiling never changes a value.
///
/// # Panics
///
/// Panics if a slice length disagrees with the given dimensions.
pub fn gemm_i16(a: &[i16], bt: &[i16], m: usize, k: usize, n: usize, out: &mut [i64]) {
    assert_eq!(a.len(), m * k, "A must be m x k");
    assert_eq!(bt.len(), n * k, "Bt must be n x k");
    assert_eq!(out.len(), m * n, "out must be m x n");
    if k == 0 {
        out.fill(0);
        return;
    }
    for (tile, bt_tile) in bt.chunks(COL_TILE * k).enumerate() {
        let j0 = tile * COL_TILE;
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n + j0..];
            for (jj, b_row) in bt_tile.chunks_exact(k).enumerate() {
                out_row[jj] = dot_i16(a_row, b_row);
            }
        }
    }
}

/// Logical lanes one packed dot step consumes (and the lane count panel
/// rows are zero-padded to): 16 lanes per step means one full 256-bit
/// vector of re-expanded `i16` operands on the AVX2 path, and one decode
/// buffer on the scalar path. Padding lanes are zero, so they never move
/// a sum.
pub const PACK_STEP_LANES: usize = 16;

/// A row-major operand panel packed at a [`SubwordMode`]'s lane geometry —
/// the DVAFS subword move applied to GEMM storage.
///
/// Each row holds `k` logical operands as 16-bit lane words following the
/// field rules of `dvafs_arith::subword::pack_lanes`: `mode.lanes()`
/// two's-complement fields of `mode.lane_bits()` each, lane 0 at the
/// LSBs. `X1` stores one operand per word (the [`gemm_i16`] layout bit
/// for bit), `X2` two, `X4` four. Rows are padded with zero lanes to a
/// multiple of [`PACK_STEP_LANES`], so two panels of equal `k` always
/// walk the same step count regardless of their (possibly different)
/// modes — which is how a 4-bit weight panel dots against a 16-bit
/// activation panel.
#[derive(Debug, Clone, Default)]
pub struct PackedPanel {
    mode: SubwordMode,
    rows: usize,
    k: usize,
    words_per_row: usize,
    /// Whether any lane holds the mode's most negative value `-2^(w-1)`.
    /// Only the `X1 x X1` kernel cares: a step of two `MIN x MIN`
    /// products is the single pair sum that overflows `i32`, and the
    /// explicit cross-term correction is engaged only when both operand
    /// panels can produce it.
    has_min: bool,
    /// Whether the current contents were written through a completed
    /// [`begin_fill`](Self::begin_fill)/
    /// [`begin_fill_reuse`](Self::begin_fill_reuse) cycle — the
    /// precondition for the zeroing skip of `begin_fill_reuse`. Execution
    /// state, not panel identity: ignored by `PartialEq`.
    direct_filled: bool,
    /// The structure key of the last direct fill (see
    /// [`begin_fill_reuse`](Self::begin_fill_reuse)); execution state,
    /// ignored by `PartialEq`.
    fill_key: u64,
    words: Vec<u16>,
}

impl PartialEq for PackedPanel {
    fn eq(&self, other: &Self) -> bool {
        self.mode == other.mode
            && self.rows == other.rows
            && self.k == other.k
            && self.words_per_row == other.words_per_row
            && self.has_min == other.has_min
            && self.words == other.words
    }
}

impl Eq for PackedPanel {}

impl PackedPanel {
    /// Packs `values` (`rows x k`, row-major) at `mode`'s lane geometry.
    ///
    /// # Panics
    ///
    /// Panics when `values.len() != rows * k` or a value does not fit the
    /// mode's lane width as a signed two's-complement field (the
    /// `pack_lanes` range `-2^(w-1) ..= 2^(w-1)-1`).
    #[must_use]
    pub fn pack(values: &[i16], rows: usize, k: usize, mode: SubwordMode) -> Self {
        let mut panel = PackedPanel::default();
        panel.repack(values, rows, k, mode);
        panel
    }

    /// Re-packs this panel in place (same contract as
    /// [`pack`](Self::pack)), reusing the word buffer's capacity — the
    /// per-forward activation panels of the NN kernel go through this so
    /// a sweep allocates once.
    pub fn repack(&mut self, values: &[i16], rows: usize, k: usize, mode: SubwordMode) {
        assert_eq!(values.len(), rows * k, "panel must be rows x k");
        let lanes = mode.lanes();
        let wbits = mode.lane_bits();
        let lo = -(1i32 << (wbits - 1));
        let hi = (1i32 << (wbits - 1)) - 1;
        let mask = (1u32 << wbits) - 1;
        let padded_k = k.next_multiple_of(PACK_STEP_LANES);
        let words_per_row = padded_k / lanes;
        self.mode = mode;
        self.rows = rows;
        self.k = k;
        self.words_per_row = words_per_row;
        self.has_min = false;
        self.direct_filled = false;
        self.words.clear();
        self.words.reserve(rows * words_per_row);
        let mut has_min = false;
        let check = |v: i16| {
            let v = i32::from(v);
            assert!(
                (lo..=hi).contains(&v),
                "operand {v} does not fit a {wbits}-bit lane"
            );
        };
        // The pack_lanes field rule: lane l of word w is row lane
        // `w*lanes + l`, stored at bits `l*wbits..`, masked to its
        // two's-complement field. Padding lanes are zero. Each mode gets
        // its own tight loop over the full words (the repack runs on the
        // per-forward hot path); the ragged tail word falls back to the
        // lane-at-a-time rule.
        let full_words = k / lanes;
        for row in values
            .chunks_exact(k.max(1))
            .take(if k == 0 { 0 } else { rows })
        {
            match mode {
                SubwordMode::X1 => {
                    for &v in &row[..full_words] {
                        has_min |= v == i16::MIN;
                        self.words.push(v as u16);
                    }
                }
                SubwordMode::X2 => {
                    for pair in row[..full_words * 2].chunks_exact(2) {
                        check(pair[0]);
                        check(pair[1]);
                        has_min |= pair[0] == -128 || pair[1] == -128;
                        self.words
                            .push(u16::from(pair[0] as u8) | (u16::from(pair[1] as u8) << 8));
                    }
                }
                SubwordMode::X4 => {
                    for quad in row[..full_words * 4].chunks_exact(4) {
                        let mut packed = 0u16;
                        for (l, &v) in quad.iter().enumerate() {
                            check(v);
                            has_min |= v == -8;
                            packed |= ((v as u16) & 0xF) << (4 * l);
                        }
                        self.words.push(packed);
                    }
                }
            }
            for word_idx in full_words..words_per_row {
                let mut packed = 0u32;
                for l in 0..lanes {
                    let idx = word_idx * lanes + l;
                    let v = if idx < k { i32::from(row[idx]) } else { 0 };
                    assert!(
                        (lo..=hi).contains(&v),
                        "operand {v} does not fit a {wbits}-bit lane"
                    );
                    has_min |= v == lo;
                    packed |= ((v as u32) & mask) << (l as u32 * wbits);
                }
                self.words.push(packed as u16);
            }
        }
        self.has_min = has_min;
    }

    /// Resets this panel to a `rows x k` geometry at `mode`, handing the
    /// caller the **zeroed** word buffer and the row stride in words
    /// (`k` padded to [`PACK_STEP_LANES`] lanes, divided by
    /// `mode.lanes()`) to fill in place. A producer that already walks
    /// its operands — an im2col pass, say — can pack them directly
    /// instead of staging an `i16` buffer for [`repack`](Self::repack)
    /// to re-read: one write pass instead of write + read + write.
    ///
    /// Contract: operand `t` of row `i` lives in word
    /// `i * stride + t / lanes`, as the `pack_lanes` two's-complement
    /// field at bits `(t % lanes) * lane_bits ..` (at `X1` the word IS
    /// the operand, `v as u16`). The buffer starts all-zero, so zero
    /// operands, padding lanes, and padding words may simply be left
    /// untouched, and sub-word fields can be deposited with `|=`. Every
    /// value must fit the mode's lane range (this path skips
    /// [`repack`](Self::repack)'s range assert — callers feed quantizer
    /// output that fits by construction). Finish with
    /// [`finish_fill`](Self::finish_fill) reporting whether any stored
    /// operand was the mode's most negative lane value — the panel is
    /// not a valid dot operand until then.
    pub fn begin_fill(&mut self, rows: usize, k: usize, mode: SubwordMode) -> (&mut [u16], usize) {
        // Anonymous fills never reuse: force the zeroing path.
        self.direct_filled = false;
        let (words, stride, _) = self.begin_fill_reuse(0, rows, k, mode);
        (words, stride)
    }

    /// [`begin_fill`](Self::begin_fill) with a structural-reuse fast
    /// path: when the panel's current contents came from a **completed**
    /// direct fill of the same `(rows, k, mode)` geometry and the same
    /// caller-supplied structure `key`, and the mode is `X1`, the word
    /// buffer is handed back **without re-zeroing** (third return `true`).
    /// Sound because an `X1` refill of identical structure overwrites
    /// every in-bounds operand word unconditionally while its
    /// structural-zero words (padding taps, row tails) were never written
    /// and still hold the original zeros. Sub-word modes deposit fields
    /// with `|=`, so they always get a freshly zeroed buffer (third
    /// return `false`).
    ///
    /// `key` must capture everything that determines which words the
    /// caller's walk writes (for an im2col fill: the full conv geometry
    /// and batch shape) — two fills sharing a key must write the exact
    /// same word positions.
    pub fn begin_fill_reuse(
        &mut self,
        key: u64,
        rows: usize,
        k: usize,
        mode: SubwordMode,
    ) -> (&mut [u16], usize, bool) {
        let words_per_row = k.next_multiple_of(PACK_STEP_LANES) / mode.lanes();
        let need = rows * words_per_row;
        let retained = mode == SubwordMode::X1
            && self.direct_filled
            && self.fill_key == key
            && self.rows == rows
            && self.k == k
            && self.mode == mode
            && self.words.len() == need;
        self.mode = mode;
        self.rows = rows;
        self.k = k;
        self.words_per_row = words_per_row;
        self.has_min = false;
        self.direct_filled = false;
        self.fill_key = key;
        if !retained {
            self.words.clear();
            self.words.resize(need, 0);
        }
        (&mut self.words, words_per_row, retained)
    }

    /// Completes a [`begin_fill`](Self::begin_fill) fill: `has_min` is
    /// whether the caller stored the mode's most negative lane value
    /// anywhere (it saw every value; the panel needs the flag to pick
    /// the exact `X1 x X1` kernel).
    pub fn finish_fill(&mut self, has_min: bool) {
        self.has_min = has_min;
        self.direct_filled = true;
    }

    /// The subword mode the panel is packed at.
    #[must_use]
    pub fn mode(&self) -> SubwordMode {
        self.mode
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical operands per row (excluding zero padding).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Lane words per row (including the zero padding to
    /// [`PACK_STEP_LANES`] lanes).
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed lane words of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn row_words(&self, i: usize) -> &[u16] {
        &self.words[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Re-expands row `i` into its `k` logical operands (test/debug
    /// helper; the dot kernels decode lanes on the fly).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn unpack_row(&self, i: usize) -> Vec<i16> {
        let words = self.row_words(i);
        let mut out = Vec::with_capacity(self.k);
        let mut buf = [0i16; PACK_STEP_LANES];
        for step in 0..self.words_per_row * self.mode.lanes() / PACK_STEP_LANES {
            decode_step(words, step, self.mode, &mut buf);
            out.extend_from_slice(&buf);
        }
        out.truncate(self.k);
        out
    }

    /// Dot steps per row (each step consumes [`PACK_STEP_LANES`] lanes).
    fn steps(&self) -> usize {
        self.k.div_ceil(PACK_STEP_LANES)
    }
}

/// Decodes step `step` (16 lanes) of a packed row into `i16` operands —
/// the scalar mirror of the AVX2 lane expanders, and the inverse of the
/// `pack_lanes` field rule.
#[inline]
fn decode_step(words: &[u16], step: usize, mode: SubwordMode, out: &mut [i16; PACK_STEP_LANES]) {
    match mode {
        SubwordMode::X1 => {
            for (o, &w) in out.iter_mut().zip(&words[step * 16..step * 16 + 16]) {
                *o = w as i16;
            }
        }
        SubwordMode::X2 => {
            for (i, &w) in words[step * 8..step * 8 + 8].iter().enumerate() {
                out[2 * i] = i16::from(w as u8 as i8);
                out[2 * i + 1] = i16::from((w >> 8) as u8 as i8);
            }
        }
        SubwordMode::X4 => {
            for (i, &w) in words[step * 4..step * 4 + 4].iter().enumerate() {
                for l in 0..4 {
                    let nib = ((w >> (4 * l)) & 0xF) as i16;
                    // Sign-extend the 4-bit field: 0..=7 stay, 8..=15 wrap
                    // to -8..=-1.
                    out[4 * i + l] = (nib ^ 8) - 8;
                }
            }
        }
    }
}

/// The portable packed dot inner loop: decode 16 lanes per side per step,
/// widen every product to `i64`. Exact for the full `pack_lanes` range;
/// used when the AVX2 path is unavailable (and as the oracle the AVX2
/// kernels are tested against).
fn dot_rows_scalar(a: &[u16], ma: SubwordMode, b: &[u16], mb: SubwordMode, steps: usize) -> i64 {
    let mut acc = 0i64;
    let mut ba = [0i16; PACK_STEP_LANES];
    let mut bb = [0i16; PACK_STEP_LANES];
    for s in 0..steps {
        decode_step(a, s, ma, &mut ba);
        decode_step(b, s, mb, &mut bb);
        for (&x, &y) in ba.iter().zip(&bb) {
            acc += i64::from(x) * i64::from(y);
        }
    }
    acc
}

/// AVX2 packed dot kernels, dispatched at run time (the workspace builds
/// for baseline x86-64). `unsafe` is confined to this module: every
/// function is gated behind `is_x86_feature_detected!("avx2")` by the
/// [`dot_rows`] dispatcher, and all pointer arithmetic walks panel rows
/// whose lengths the dispatcher derives from the panels themselves.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use super::{PackedPanel, SubwordMode};
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi32, _mm256_add_epi64, _mm256_and_si256,
        _mm256_castsi256_si128, _mm256_cmpeq_epi16, _mm256_cmpeq_epi32, _mm256_cvtepi32_epi64,
        _mm256_cvtepi8_epi16, _mm256_extracti128_si256, _mm256_loadu_si256, _mm256_madd_epi16,
        _mm256_set1_epi16, _mm256_set1_epi32, _mm256_setzero_si256, _mm256_storeu_si256,
        _mm_and_si128, _mm_loadl_epi64, _mm_loadu_si128, _mm_set1_epi8, _mm_srli_epi16,
        _mm_sub_epi8, _mm_unpacklo_epi8, _mm_xor_si128,
    };

    /// 16 `i16` lanes from an `X1` row segment (16 words).
    ///
    /// # Safety
    ///
    /// `p` must be readable for 16 `u16`s.
    #[inline(always)]
    unsafe fn lanes_x1(p: *const u16) -> __m256i {
        _mm256_loadu_si256(p.cast::<__m256i>())
    }

    /// 16 `i16` lanes from an `X2` row segment (8 words = 16 byte
    /// fields), sign-extended.
    ///
    /// # Safety
    ///
    /// `p` must be readable for 8 `u16`s.
    #[inline(always)]
    unsafe fn lanes_x2(p: *const u16) -> __m256i {
        _mm256_cvtepi8_epi16(_mm_loadu_si128(p.cast::<__m128i>()))
    }

    /// 16 `i16` lanes from an `X4` row segment (4 words = 16 nibble
    /// fields): split each byte into its two nibbles (low nibble = even
    /// lane, matching the little-endian `pack_lanes` layout), sign-extend
    /// the 4-bit fields via the `(x ^ 8) - 8` identity, then widen.
    ///
    /// # Safety
    ///
    /// `p` must be readable for 4 `u16`s.
    #[inline(always)]
    unsafe fn lanes_x4(p: *const u16) -> __m256i {
        let v = _mm_loadl_epi64(p.cast::<__m128i>());
        let nib_mask = _mm_set1_epi8(0x0F);
        let lo = _mm_and_si128(v, nib_mask);
        let hi = _mm_and_si128(_mm_srli_epi16::<4>(v), nib_mask);
        let inter = _mm_unpacklo_epi8(lo, hi);
        let eight = _mm_set1_epi8(8);
        let signed = _mm_sub_epi8(_mm_xor_si128(inter, eight), eight);
        _mm256_cvtepi8_epi16(signed)
    }

    /// Widens 8 `i32` pair sums into 4 `i64` lanes (both 128-bit halves
    /// summed).
    ///
    /// # Safety
    ///
    /// AVX2 only.
    #[inline(always)]
    unsafe fn widen_pairs(v: __m256i) -> __m256i {
        _mm256_add_epi64(
            _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v)),
            _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(v)),
        )
    }

    /// Horizontal sum of 4 `i64` lanes.
    ///
    /// # Safety
    ///
    /// AVX2 only.
    #[inline(always)]
    unsafe fn hsum_epi64(v: __m256i) -> i64 {
        let mut lanes = [0i64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), v);
        lanes[0].wrapping_add(lanes[1]) + lanes[2] + lanes[3]
    }

    /// Horizontal sum of 8 `i32` lanes (exact in `i64`).
    ///
    /// # Safety
    ///
    /// AVX2 only.
    #[inline(always)]
    unsafe fn hsum_epi32(v: __m256i) -> i64 {
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), v);
        lanes.iter().map(|&x| i64::from(x)).sum()
    }

    /// Full-width `X1 x X1` dot: one `vpmaddwd` per 16 lanes, every pair
    /// sum widened to `i64` immediately. Exact whenever at most one
    /// operand panel contains `i16::MIN` (pair sums then stay inside
    /// `i32`); the `MIN x MIN` corner goes to [`dot_x1x1_min`].
    ///
    /// # Safety
    ///
    /// AVX2 must be available; both pointers readable for `16 * steps`
    /// `u16`s.
    #[target_feature(enable = "avx2")]
    unsafe fn dot_x1x1(a: *const u16, b: *const u16, steps: usize) -> i64 {
        let mut acc = _mm256_setzero_si256();
        for s in 0..steps {
            let p = _mm256_madd_epi16(lanes_x1(a.add(16 * s)), lanes_x1(b.add(16 * s)));
            acc = _mm256_add_epi64(acc, widen_pairs(p));
        }
        hsum_epi64(acc)
    }

    /// `X1 x X1` with the explicit cross-term correction: `vpmaddwd`
    /// wraps in exactly one case — both pairs of a 32-bit lane multiply
    /// `MIN x MIN`, summing to `+2^31` which wraps to `-2^31` — so the
    /// kernel counts those lanes (`a == MIN` AND `b == MIN` across both
    /// 16-bit halves) and adds back `2^32` per occurrence. Exact over the
    /// full two's-complement range.
    ///
    /// # Safety
    ///
    /// As [`dot_x1x1`].
    #[target_feature(enable = "avx2")]
    unsafe fn dot_x1x1_min(a: *const u16, b: *const u16, steps: usize) -> i64 {
        let min = _mm256_set1_epi16(i16::MIN);
        let all32 = _mm256_set1_epi32(-1);
        let mut acc = _mm256_setzero_si256();
        let mut fixes = _mm256_setzero_si256();
        for s in 0..steps {
            let va = lanes_x1(a.add(16 * s));
            let vb = lanes_x1(b.add(16 * s));
            let p = _mm256_madd_epi16(va, vb);
            acc = _mm256_add_epi64(acc, widen_pairs(p));
            // A 32-bit lane overflows iff all four 16-bit operands feeding
            // it are MIN: both halves of the AND-ed compare masks set.
            let both_min =
                _mm256_and_si256(_mm256_cmpeq_epi16(va, min), _mm256_cmpeq_epi16(vb, min));
            let wrapped = _mm256_cmpeq_epi32(both_min, all32);
            // Subtracting the all-ones mask increments the per-lane count.
            fixes = _mm256_add_epi32(fixes, _mm256_and_si256(wrapped, _mm256_set1_epi32(1)));
        }
        hsum_epi64(acc) + (hsum_epi32(fixes) << 32)
    }

    /// Generates a packed dot kernel for one mode pair: `vpmaddwd` pair
    /// sums accumulate in `i32` for `$spill` steps (sized so the partial
    /// can never wrap at the pair's operand bounds), then widen into the
    /// `i64` accumulator.
    macro_rules! dot_packed_kernel {
        ($(#[$doc:meta])* $name:ident, $la:ident, $wa:expr, $lb:ident, $wb:expr, $spill:expr) => {
            $(#[$doc])*
            /// # Safety
            ///
            /// AVX2 must be available; `a`/`b` readable for their mode's
            /// words across `steps` steps.
            #[target_feature(enable = "avx2")]
            unsafe fn $name(a: *const u16, b: *const u16, steps: usize) -> i64 {
                let mut acc64 = _mm256_setzero_si256();
                let mut acc32 = _mm256_setzero_si256();
                let mut pending: u32 = 0;
                for s in 0..steps {
                    let p = _mm256_madd_epi16($la(a.add($wa * s)), $lb(b.add($wb * s)));
                    acc32 = _mm256_add_epi32(acc32, p);
                    pending += 1;
                    if pending == $spill {
                        acc64 = _mm256_add_epi64(acc64, widen_pairs(acc32));
                        acc32 = _mm256_setzero_si256();
                        pending = 0;
                    }
                }
                acc64 = _mm256_add_epi64(acc64, widen_pairs(acc32));
                hsum_epi64(acc64)
            }
        };
    }

    dot_packed_kernel!(
        /// `X1 x X2`: pair sums bounded by `2·2^15·2^7 = 2^23`; 128 steps
        /// keep the `i32` partial under `2^30`.
        dot_x1x2, lanes_x1, 16, lanes_x2, 8, 128u32
    );
    dot_packed_kernel!(
        /// `X1 x X4`: pair sums bounded by `2·2^15·2^3 = 2^19`; 2048
        /// steps keep the `i32` partial under `2^30`.
        dot_x1x4, lanes_x1, 16, lanes_x4, 4, 2048u32
    );
    dot_packed_kernel!(
        /// `X2 x X2`: pair sums bounded by `2^15`; 32768 steps keep the
        /// `i32` partial under `2^30`.
        dot_x2x2, lanes_x2, 8, lanes_x2, 8, 32768u32
    );
    dot_packed_kernel!(
        /// `X2 x X4`: pair sums bounded by `2^11`; 32768 steps keep the
        /// `i32` partial under `2^27`.
        dot_x2x4, lanes_x2, 8, lanes_x4, 4, 32768u32
    );
    dot_packed_kernel!(
        /// `X4 x X4`: pair sums bounded by `2^7`; 32768 steps keep the
        /// `i32` partial under `2^23`.
        dot_x4x4, lanes_x4, 4, lanes_x4, 4, 32768u32
    );

    /// Dispatches one packed row dot to the mode pair's kernel. The
    /// caller has verified AVX2 support.
    pub(super) fn dot_rows(a: &PackedPanel, ai: usize, b: &PackedPanel, bi: usize) -> i64 {
        let steps = a.steps();
        let pa = a.row_words(ai).as_ptr();
        let pb = b.row_words(bi).as_ptr();
        use SubwordMode::{X1, X2, X4};
        // SAFETY: AVX2 was detected by the caller; each row holds exactly
        // the words its mode consumes over `steps` steps (panel rows are
        // padded to PACK_STEP_LANES lanes).
        unsafe {
            match (a.mode(), b.mode()) {
                (X1, X1) => {
                    if a.has_min && b.has_min {
                        dot_x1x1_min(pa, pb, steps)
                    } else {
                        dot_x1x1(pa, pb, steps)
                    }
                }
                (X1, X2) => dot_x1x2(pa, pb, steps),
                (X2, X1) => dot_x1x2(pb, pa, steps),
                (X1, X4) => dot_x1x4(pa, pb, steps),
                (X4, X1) => dot_x1x4(pb, pa, steps),
                (X2, X2) => dot_x2x2(pa, pb, steps),
                (X2, X4) => dot_x2x4(pa, pb, steps),
                (X4, X2) => dot_x2x4(pb, pa, steps),
                (X4, X4) => dot_x4x4(pa, pb, steps),
            }
        }
    }
}

/// One packed row dot, dispatched to the AVX2 kernels when the host
/// supports them (run-time check) and the scalar decode loop otherwise.
/// Both paths compute the identical exact sum.
fn dot_rows(a: &PackedPanel, ai: usize, b: &PackedPanel, bi: usize) -> i64 {
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("avx2") {
        return avx2::dot_rows(a, ai, b, bi);
    }
    dot_rows_scalar_rows(a, ai, b, bi)
}

/// [`dot_rows_scalar`] behind the panel-level signature [`gemm_packed`]'s
/// hoisted dispatch shares with the AVX2 path.
fn dot_rows_scalar_rows(a: &PackedPanel, ai: usize, b: &PackedPanel, bi: usize) -> i64 {
    dot_rows_scalar(
        a.row_words(ai),
        a.mode(),
        b.row_words(bi),
        b.mode(),
        a.steps(),
    )
}

/// Exact dot product of row `ai` of `a` with row `bi` of `b` — the
/// packed mirror of [`dot_i16`], bit-identical to it on the re-expanded
/// lanes.
///
/// # Panics
///
/// Panics when the panels disagree on `k` or a row index is out of range.
#[must_use]
pub fn dot_packed(a: &PackedPanel, ai: usize, b: &PackedPanel, bi: usize) -> i64 {
    assert_eq!(a.k(), b.k(), "dot operands must have equal logical length");
    dot_rows(a, ai, b, bi)
}

/// Blocked subword-packed GEMM: `out[i][j] = Σ_t a[i][t] * bt[j][t]`,
/// exact in `i64` — the packed mirror of [`gemm_i16`] (same layout
/// convention, same [`COL_TILE`] tiling, bit-identical results on the
/// re-expanded lanes).
///
/// The operand panels may use different [`SubwordMode`]s — a reduced-
/// precision weight panel (2 or 4 operands per lane word) streams against
/// a full-precision activation panel, which is exactly the asymmetric
/// shape the fig6 precision scans produce.
///
/// This is also the **wide-panel batch entry**: rows of `bt` are just
/// independent dot operands, so a caller can concatenate many samples'
/// im2col panels into one `(B·n) x k` right operand and slice the
/// `m x (B·n)` output back apart per sample — every output element is
/// the same exact dot either way, so a fused multi-sample multiply is
/// bit-identical to `B` separate ones while streaming the left (weight)
/// panel through cache once per batch instead of once per sample
/// (`dvafs-nn`'s `BatchPath::LayerMajor` forward is built on exactly
/// this; the concatenation-equivalence test below pins it).
///
/// # Panics
///
/// Panics when the panels disagree on `k` or `out.len()` is not
/// `a.rows() * bt.rows()`.
pub fn gemm_packed(a: &PackedPanel, bt: &PackedPanel, out: &mut [i64]) {
    assert_eq!(a.k(), bt.k(), "panels must agree on k");
    let (m, n) = (a.rows(), bt.rows());
    assert_eq!(out.len(), m * n, "out must be m x n");
    if a.k() == 0 {
        out.fill(0);
        return;
    }
    // Hoist the AVX2 feature probe out of the m x n inner loop: one check
    // selects the dot implementation for the whole multiply.
    #[cfg(target_arch = "x86_64")]
    let dot: fn(&PackedPanel, usize, &PackedPanel, usize) -> i64 =
        if is_x86_feature_detected!("avx2") {
            avx2::dot_rows
        } else {
            dot_rows_scalar_rows
        };
    #[cfg(not(target_arch = "x86_64"))]
    let dot = dot_rows_scalar_rows;
    for j0 in (0..n).step_by(COL_TILE) {
        let j1 = (j0 + COL_TILE).min(n);
        for i in 0..m {
            let out_row = &mut out[i * n + j0..i * n + j1];
            for (jj, o) in out_row.iter_mut().enumerate() {
                *o = dot(a, i, bt, j0 + jj);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvafs_arith::subword::pack_lanes;
    use rand::{Rng, SeedableRng};

    fn naive_gemm(a: &[i16], bt: &[i16], m: usize, k: usize, n: usize) -> Vec<i64> {
        let mut out = vec![0i64; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for t in 0..k {
                    acc += i64::from(a[i * k + t]) * i64::from(bt[j * k + t]);
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn random_panel(len: usize, seed: u64) -> Vec<i16> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| rng.gen_range(-32768..=32767) as i16)
            .collect()
    }

    /// Random values spanning the full two's-complement lane range of a
    /// mode (MIN included — the packed kernels must stay exact there).
    fn random_lanes(len: usize, mode: SubwordMode, seed: u64) -> Vec<i16> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w = mode.lane_bits();
        let lo = -(1i32 << (w - 1));
        let hi = (1i32 << (w - 1)) - 1;
        (0..len).map(|_| rng.gen_range(lo..=hi) as i16).collect()
    }

    #[test]
    fn dot_matches_reference_for_every_remainder_length() {
        for len in 0..40 {
            let a = random_panel(len, 1 + len as u64);
            let b = random_panel(len, 100 + len as u64);
            let expected: i64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| i64::from(x) * i64::from(y))
                .sum();
            assert_eq!(dot_i16(&a, &b), expected, "len={len}");
        }
    }

    #[test]
    fn dot_extremes_do_not_overflow() {
        // Worst case: every pair product is the maximal magnitude.
        let a = vec![i16::MIN; 1024];
        let b = vec![i16::MIN; 1024];
        assert_eq!(dot_i16(&a, &b), 1024 * (i64::from(i16::MIN)).pow(2));
        let c = vec![i16::MAX; 1024];
        assert_eq!(
            dot_i16(&c, &a),
            1024 * i64::from(i16::MAX) * i64::from(i16::MIN)
        );
    }

    /// Full 8-lane unrolled blocks of `MIN x MIN`: every *pair* of
    /// products sums to exactly `2^31`, one past `i32::MAX` — the
    /// `pmaddwd` saturation corner the docs cite. The per-product `i64`
    /// widening must come through exact for whole blocks of them (no
    /// remainder loop involved).
    #[test]
    fn dot_i16_full_min_blocks_are_exact() {
        for blocks in [1usize, 2, 5, 16] {
            let n = 8 * blocks;
            let a = vec![i16::MIN; n];
            assert_eq!(dot_i16(&a, &a), n as i64 * (1i64 << 30), "blocks={blocks}");
        }
    }

    #[test]
    fn gemm_matches_naive_across_shapes() {
        for (s, &(m, k, n)) in [
            (1usize, 1usize, 1usize),
            (3, 7, 5),
            (8, 25, 33),  // n spills one past a COL_TILE boundary
            (4, 9, 32),   // n exactly one tile
            (2, 150, 70), // k longer than any unroll
        ]
        .iter()
        .enumerate()
        {
            let a = random_panel(m * k, 7 + s as u64);
            let bt = random_panel(n * k, 70 + s as u64);
            let mut out = vec![i64::MIN; m * n]; // poisoned: must be overwritten
            gemm_i16(&a, &bt, m, k, n, &mut out);
            assert_eq!(out, naive_gemm(&a, &bt, m, k, n), "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn gemm_zero_k_clears_output() {
        let mut out = vec![5i64; 6];
        gemm_i16(&[], &[], 2, 0, 3, &mut out);
        assert_eq!(out, vec![0i64; 6]);
    }

    #[test]
    #[should_panic(expected = "A must be m x k")]
    fn gemm_rejects_bad_dimensions() {
        let mut out = vec![0i64; 4];
        gemm_i16(&[0; 3], &[0; 4], 2, 2, 2, &mut out);
    }

    /// The panel's word stream follows the `pack_lanes` field rules
    /// verbatim: word `w` of a row is `pack_lanes` of row lanes
    /// `w*lanes..`, zero-padded past `k`.
    #[test]
    fn packed_panel_words_match_pack_lanes() {
        for mode in SubwordMode::ALL {
            let (rows, k) = (3usize, 21usize); // ragged: padding in play
            let values = random_lanes(rows * k, mode, 42);
            let panel = PackedPanel::pack(&values, rows, k, mode);
            let lanes = mode.lanes();
            for r in 0..rows {
                let row = &values[r * k..(r + 1) * k];
                for (w, &word) in panel.row_words(r).iter().enumerate() {
                    let fields: Vec<i32> = (0..lanes)
                        .map(|l| {
                            let idx = w * lanes + l;
                            if idx < k {
                                i32::from(row[idx])
                            } else {
                                0
                            }
                        })
                        .collect();
                    let expected = pack_lanes(&fields, mode).expect("lanes are in range");
                    assert_eq!(word, expected, "mode {mode} row {r} word {w}");
                }
            }
            // And the re-expansion inverts the packing.
            for r in 0..rows {
                assert_eq!(panel.unpack_row(r), values[r * k..(r + 1) * k]);
            }
        }
    }

    /// Packed dots are bit-identical to [`dot_i16`] on the re-expanded
    /// lanes, for every mode pair (including mixed precision) and ragged
    /// lengths, with the full lane range (MIN included) in play.
    #[test]
    fn dot_packed_matches_dot_i16_for_every_mode_pair() {
        for (i, &ma) in SubwordMode::ALL.iter().enumerate() {
            for (j, &mb) in SubwordMode::ALL.iter().enumerate() {
                for k in [0usize, 1, 7, 16, 31, 150, 2049] {
                    let seed = (i * 3 + j) as u64 * 1000 + k as u64;
                    let a = random_lanes(k, ma, seed);
                    let b = random_lanes(k, mb, seed ^ 0xDEAD);
                    let pa = PackedPanel::pack(&a, 1, k, ma);
                    let pb = PackedPanel::pack(&b, 1, k, mb);
                    assert_eq!(
                        dot_packed(&pa, 0, &pb, 0),
                        dot_i16(&a, &b),
                        "modes {ma}x{mb} k={k}"
                    );
                }
            }
        }
    }

    /// The `X1 x X1` cross-term corner: whole rows of `MIN x MIN` force
    /// every `vpmaddwd` pair sum to `+2^31` (which wraps uncorrected).
    /// The explicit correction must restore the exact sum for any length.
    #[test]
    fn packed_x1_min_times_min_is_corrected() {
        for k in [1usize, 8, 16, 17, 160, 2048] {
            let a = vec![i16::MIN; k];
            let pa = PackedPanel::pack(&a, 1, k, SubwordMode::X1);
            assert!(pa.has_min);
            assert_eq!(dot_packed(&pa, 0, &pa, 0), k as i64 * (1i64 << 30), "k={k}");
            // Mixed MIN/MAX rows exercise partially-overflowing steps.
            let b: Vec<i16> = (0..k)
                .map(|t| if t % 3 == 0 { i16::MIN } else { i16::MAX })
                .collect();
            let pb = PackedPanel::pack(&b, 1, k, SubwordMode::X1);
            assert_eq!(dot_packed(&pa, 0, &pb, 0), dot_i16(&a, &b), "mixed k={k}");
            assert_eq!(dot_packed(&pb, 0, &pb, 0), dot_i16(&b, &b), "self k={k}");
        }
    }

    /// The scalar fallback computes the same exact sums as the dispatched
    /// path (on AVX2 hosts this pits the intrinsics against the decode
    /// loop; elsewhere both sides are the decode loop).
    #[test]
    fn scalar_fallback_agrees_with_dispatch() {
        for &ma in &SubwordMode::ALL {
            for &mb in &SubwordMode::ALL {
                for k in [5usize, 64, 333] {
                    let a = random_lanes(k, ma, 7 + k as u64);
                    let b = random_lanes(k, mb, 77 + k as u64);
                    let pa = PackedPanel::pack(&a, 1, k, ma);
                    let pb = PackedPanel::pack(&b, 1, k, mb);
                    let scalar =
                        dot_rows_scalar(pa.row_words(0), ma, pb.row_words(0), mb, pa.steps());
                    assert_eq!(dot_packed(&pa, 0, &pb, 0), scalar, "{ma}x{mb} k={k}");
                }
            }
        }
    }

    /// `gemm_packed` is bit-identical to `gemm_i16` across shapes and
    /// mode pairs (the NN kernel equivalence net rests on this).
    #[test]
    fn gemm_packed_matches_gemm_i16_across_shapes_and_modes() {
        for (s, &(m, k, n)) in [
            (1usize, 1usize, 1usize),
            (3, 7, 5),
            (8, 25, 33),
            (4, 9, 32),
            (2, 150, 70),
        ]
        .iter()
        .enumerate()
        {
            for &ma in &SubwordMode::ALL {
                for &mb in &SubwordMode::ALL {
                    let a = random_lanes(m * k, ma, 7 + s as u64);
                    let bt = random_lanes(n * k, mb, 70 + s as u64);
                    let pa = PackedPanel::pack(&a, m, k, ma);
                    let pbt = PackedPanel::pack(&bt, n, k, mb);
                    let mut out = vec![i64::MIN; m * n];
                    gemm_packed(&pa, &pbt, &mut out);
                    assert_eq!(
                        out,
                        naive_gemm(&a, &bt, m, k, n),
                        "m={m} k={k} n={n} {ma}x{mb}"
                    );
                }
            }
        }
    }

    /// The wide-panel batch entry: one fused multiply over `B` samples'
    /// concatenated right-hand panels is bit-identical, slice by slice,
    /// to `B` separate per-sample multiplies — for both the packed and
    /// unpacked GEMMs, across mode pairs and a non-multiple-of-tile
    /// total width. This is the property `dvafs-nn`'s layer-major
    /// forward stands on.
    #[test]
    fn concatenated_wide_panel_matches_per_sample_gemms() {
        let (m, k, n, batches) = (5usize, 23usize, 13usize, 3usize);
        for &ma in &SubwordMode::ALL {
            for &mb in &SubwordMode::ALL {
                let a = random_lanes(m * k, ma, 11);
                let pa = PackedPanel::pack(&a, m, k, ma);
                let samples: Vec<Vec<i16>> = (0..batches)
                    .map(|s| random_lanes(n * k, mb, 110 + s as u64))
                    .collect();
                let wide: Vec<i16> = samples.concat();
                let total = batches * n;
                // Fused: one (B·n) x k right operand, one m x (B·n) output.
                let pwide = PackedPanel::pack(&wide, total, k, mb);
                let mut fused_packed = vec![i64::MIN; m * total];
                gemm_packed(&pa, &pwide, &mut fused_packed);
                let mut fused_plain = vec![i64::MIN; m * total];
                gemm_i16(&a, &wide, m, k, total, &mut fused_plain);
                // Per sample: B separate m x n multiplies.
                for (s, bt) in samples.iter().enumerate() {
                    let pbt = PackedPanel::pack(bt, n, k, mb);
                    let mut solo = vec![i64::MIN; m * n];
                    gemm_packed(&pa, &pbt, &mut solo);
                    for i in 0..m {
                        let fused_row = &fused_packed[i * total + s * n..][..n];
                        let plain_row = &fused_plain[i * total + s * n..][..n];
                        let solo_row = &solo[i * n..][..n];
                        assert_eq!(fused_row, solo_row, "{ma}x{mb} sample {s} row {i}");
                        assert_eq!(plain_row, solo_row, "{ma}x{mb} gemm_i16 sample {s}");
                    }
                }
            }
        }
    }

    /// `begin_fill_x1` + caller stores + `finish_fill_x1` must build a
    /// panel indistinguishable from `pack` at `X1` — words, geometry and
    /// the `has_min` flag — including a ragged `k` (padding words stay
    /// zero) and the `i16::MIN` corner that picks the correcting kernel.
    #[test]
    fn direct_fill_matches_pack() {
        for mode in [SubwordMode::X1, SubwordMode::X2, SubwordMode::X4] {
            let min = (-(1i32 << (mode.lane_bits() - 1))) as i16;
            for &(rows, k, with_min) in &[(3usize, 23usize, false), (4, 16, true), (2, 1, false)] {
                let mut values = random_lanes(rows * k, mode, 42 + k as u64);
                if with_min {
                    values[k / 2] = min;
                }
                let reference = PackedPanel::pack(&values, rows, k, mode);
                let mut direct = PackedPanel::default();
                // Dirty the buffer so the test proves begin_fill hands
                // back a zeroed buffer rather than leftovers.
                direct.repack(&vec![1i16; rows * k], rows, k, mode);
                let (words, stride) = direct.begin_fill(rows, k, mode);
                // Merge operand fields; zeros, padding lanes and padding
                // words stay at the pre-zeroed state.
                let lanes = mode.lanes();
                let wbits = mode.lane_bits();
                let mask = ((1u32 << wbits) - 1) as u16;
                let mut has_min = false;
                for (r, row) in values.chunks_exact(k).enumerate() {
                    for (t, &v) in row.iter().enumerate() {
                        has_min |= v == min;
                        words[r * stride + t / lanes] |=
                            ((v as u16) & mask) << ((t % lanes) as u16 * wbits as u16);
                    }
                }
                direct.finish_fill(has_min);
                assert_eq!(
                    direct, reference,
                    "mode={mode:?} rows={rows} k={k} min={with_min}"
                );
                // And it dots identically (exercises the padded tail lanes).
                let other =
                    PackedPanel::pack(&random_lanes(k, SubwordMode::X2, 7), 1, k, SubwordMode::X2);
                for r in 0..rows {
                    assert_eq!(
                        dot_packed(&direct, r, &other, 0),
                        dot_packed(&reference, r, &other, 0)
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_packed_zero_k_clears_output() {
        let a = PackedPanel::pack(&[], 2, 0, SubwordMode::X2);
        let bt = PackedPanel::pack(&[], 3, 0, SubwordMode::X1);
        let mut out = vec![5i64; 6];
        gemm_packed(&a, &bt, &mut out);
        assert_eq!(out, vec![0i64; 6]);
    }

    #[test]
    fn repack_reuses_buffers_and_resets_state() {
        let mut panel = PackedPanel::pack(&[i16::MIN; 8], 1, 8, SubwordMode::X1);
        assert!(panel.has_min);
        panel.repack(&[1i16, -2, 3], 1, 3, SubwordMode::X4);
        assert_eq!(panel.mode(), SubwordMode::X4);
        assert_eq!(panel.k(), 3);
        assert!(!panel.has_min, "has_min must reset on repack");
        assert_eq!(panel.unpack_row(0), vec![1i16, -2, 3]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn pack_rejects_out_of_range_lane() {
        let _ = PackedPanel::pack(&[8i16], 1, 1, SubwordMode::X4);
    }

    #[test]
    #[should_panic(expected = "rows x k")]
    fn pack_rejects_bad_dimensions() {
        let _ = PackedPanel::pack(&[0i16; 5], 2, 3, SubwordMode::X1);
    }
}
