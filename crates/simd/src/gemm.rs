//! Blocked integer GEMM primitives for quantized MAC workloads.
//!
//! The DVAFS claim is that reduced-precision MAC *arrays* are cheap; this
//! module is the software mirror of that array: instead of issuing one
//! guarded multiply-accumulate at a time (the naive 7-deep convolution
//! loop), operands are packed into dense `i16` panels and consumed by a
//! tiled matrix-matrix product with exact 64-bit accumulation.
//!
//! Exactness is the load-bearing property: every product of two `i16`
//! operands fits `i32`, a *pair* of such products still fits `i32`
//! (`2 * 32767^2 < 2^31`), and the pair sums are folded into `i64`
//! accumulators. Integer addition is associative, so any tiling or
//! unrolling order yields bit-identical results to the scalar reference
//! loop — which is what lets `dvafs-nn` swap its naive layer loops for
//! [`gemm_i16`] without moving a single output, and what the
//! `Naive == Gemm` property tests assert.
//!
//! The layout convention is dot-product friendly: the left operand `A` is
//! `m x k` row-major and the right operand is handed over **already
//! transposed** (`Bᵗ`, `n x k` row-major — e.g. one im2col patch per row),
//! so every inner product walks two contiguous slices.

/// Output columns per tile of [`gemm_i16`]: one `Bᵗ` tile of
/// `COL_TILE x k` operands stays cache-resident while every row of `A`
/// streams against it.
pub const COL_TILE: usize = 32;

/// Exact dot product of two `i16` slices with 64-bit accumulation.
///
/// Every `i16 x i16` product fits `i32` (even `MIN x MIN = 2^30`); each
/// product is widened to `i64` before summation — a *pair* of extreme
/// products would overflow a pairwise `i32` sum by exactly one, the
/// classic `pmaddwd` saturation corner — and folded into two independent
/// `i64` accumulators. The result is the exact mathematical dot product
/// regardless of length or unrolling.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
#[must_use]
pub fn dot_i16(a: &[i16], b: &[i16]) -> i64 {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    let mut acc0 = 0i64;
    let mut acc1 = 0i64;
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (x, y) in (&mut ca).zip(&mut cb) {
        let p0 = i64::from(i32::from(x[0]) * i32::from(y[0]))
            + i64::from(i32::from(x[1]) * i32::from(y[1]));
        let p1 = i64::from(i32::from(x[2]) * i32::from(y[2]))
            + i64::from(i32::from(x[3]) * i32::from(y[3]));
        let p2 = i64::from(i32::from(x[4]) * i32::from(y[4]))
            + i64::from(i32::from(x[5]) * i32::from(y[5]));
        let p3 = i64::from(i32::from(x[6]) * i32::from(y[6]))
            + i64::from(i32::from(x[7]) * i32::from(y[7]));
        acc0 += p0 + p1;
        acc1 += p2 + p3;
    }
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        acc0 += i64::from(x) * i64::from(y);
    }
    acc0 + acc1
}

/// Blocked integer GEMM: `out[i][j] = Σ_t a[i][t] * bt[j][t]`, exact in
/// `i64`.
///
/// * `a` is `m x k` row-major (e.g. one quantized filter per row);
/// * `bt` is the **transposed** right operand, `n x k` row-major (e.g. one
///   im2col patch per row);
/// * `out` is `m x n` row-major and is fully overwritten.
///
/// Columns are processed in [`COL_TILE`]-wide tiles so the active slice of
/// `bt` stays cache-hot while all `m` rows of `a` stream against it. The
/// accumulation is exact, so the tiling never changes a value.
///
/// # Panics
///
/// Panics if a slice length disagrees with the given dimensions.
pub fn gemm_i16(a: &[i16], bt: &[i16], m: usize, k: usize, n: usize, out: &mut [i64]) {
    assert_eq!(a.len(), m * k, "A must be m x k");
    assert_eq!(bt.len(), n * k, "Bt must be n x k");
    assert_eq!(out.len(), m * n, "out must be m x n");
    if k == 0 {
        out.fill(0);
        return;
    }
    for (tile, bt_tile) in bt.chunks(COL_TILE * k).enumerate() {
        let j0 = tile * COL_TILE;
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n + j0..];
            for (jj, b_row) in bt_tile.chunks_exact(k).enumerate() {
                out_row[jj] = dot_i16(a_row, b_row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn naive_gemm(a: &[i16], bt: &[i16], m: usize, k: usize, n: usize) -> Vec<i64> {
        let mut out = vec![0i64; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for t in 0..k {
                    acc += i64::from(a[i * k + t]) * i64::from(bt[j * k + t]);
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn random_panel(len: usize, seed: u64) -> Vec<i16> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| rng.gen_range(-32768..=32767) as i16)
            .collect()
    }

    #[test]
    fn dot_matches_reference_for_every_remainder_length() {
        for len in 0..40 {
            let a = random_panel(len, 1 + len as u64);
            let b = random_panel(len, 100 + len as u64);
            let expected: i64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| i64::from(x) * i64::from(y))
                .sum();
            assert_eq!(dot_i16(&a, &b), expected, "len={len}");
        }
    }

    #[test]
    fn dot_extremes_do_not_overflow() {
        // Worst case: every pair product is the maximal magnitude.
        let a = vec![i16::MIN; 1024];
        let b = vec![i16::MIN; 1024];
        assert_eq!(dot_i16(&a, &b), 1024 * (i64::from(i16::MIN)).pow(2));
        let c = vec![i16::MAX; 1024];
        assert_eq!(
            dot_i16(&c, &a),
            1024 * i64::from(i16::MAX) * i64::from(i16::MIN)
        );
    }

    #[test]
    fn gemm_matches_naive_across_shapes() {
        for (s, &(m, k, n)) in [
            (1usize, 1usize, 1usize),
            (3, 7, 5),
            (8, 25, 33),  // n spills one past a COL_TILE boundary
            (4, 9, 32),   // n exactly one tile
            (2, 150, 70), // k longer than any unroll
        ]
        .iter()
        .enumerate()
        {
            let a = random_panel(m * k, 7 + s as u64);
            let bt = random_panel(n * k, 70 + s as u64);
            let mut out = vec![i64::MIN; m * n]; // poisoned: must be overwritten
            gemm_i16(&a, &bt, m, k, n, &mut out);
            assert_eq!(out, naive_gemm(&a, &bt, m, k, n), "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn gemm_zero_k_clears_output() {
        let mut out = vec![5i64; 6];
        gemm_i16(&[], &[], 2, 0, 3, &mut out);
        assert_eq!(out, vec![0i64; 6]);
    }

    #[test]
    #[should_panic(expected = "A must be m x k")]
    fn gemm_rejects_bad_dimensions() {
        let mut out = vec![0i64; 4];
        gemm_i16(&[0; 3], &[0; 4], 2, 2, 2, &mut out);
    }
}
