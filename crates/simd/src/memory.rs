//! Banked data memory with activity-dependent access energy.
//!
//! The SIMD processor has one memory bank per lane (Section III-B), all on
//! a fixed `Vmem = 1.1 V` rail "to maintain reliable operation". Dynamic
//! access energy scales with the number of *active* bit lines: a 4-bit DAS
//! word only toggles a quarter of the bit lines of a 16-bit access, which
//! is why Table II's `mem` share shrinks at scaled precision even though
//! the rail is fixed.

use crate::error::SimdError;
use serde::{Deserialize, Serialize};

/// Banked 16-bit-word data memory, one bank per SIMD lane.
///
/// # Example
///
/// ```
/// use dvafs_simd::memory::BankedMemory;
///
/// let mut mem = BankedMemory::new(4, 128);
/// mem.write(2, 10, 0xABCD)?;
/// assert_eq!(mem.read(2, 10)?, 0xABCD);
/// # Ok::<(), dvafs_simd::SimdError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankedMemory {
    banks: Vec<Vec<u16>>,
    words_per_bank: usize,
    reads: u64,
    writes: u64,
}

impl BankedMemory {
    /// Creates `banks` zero-initialized banks of `words_per_bank` 16-bit
    /// words each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(banks: usize, words_per_bank: usize) -> Self {
        assert!(
            banks > 0 && words_per_bank > 0,
            "memory dimensions must be positive"
        );
        BankedMemory {
            banks: vec![vec![0; words_per_bank]; banks],
            words_per_bank,
            reads: 0,
            writes: 0,
        }
    }

    /// Number of banks (= SIMD width).
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Words per bank.
    #[must_use]
    pub fn words_per_bank(&self) -> usize {
        self.words_per_bank
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.banks.len() * self.words_per_bank * 2
    }

    /// Reads one word.
    ///
    /// # Errors
    ///
    /// Returns [`SimdError::MemoryOutOfBounds`] for an invalid bank or
    /// address.
    pub fn read(&mut self, bank: usize, addr: usize) -> Result<u16, SimdError> {
        let v = *self.banks.get(bank).and_then(|b| b.get(addr)).ok_or(
            SimdError::MemoryOutOfBounds {
                bank,
                addr,
                size: self.words_per_bank,
            },
        )?;
        self.reads += 1;
        Ok(v)
    }

    /// Writes one word.
    ///
    /// # Errors
    ///
    /// Returns [`SimdError::MemoryOutOfBounds`] for an invalid bank or
    /// address.
    pub fn write(&mut self, bank: usize, addr: usize, value: u16) -> Result<(), SimdError> {
        let size = self.words_per_bank;
        let slot = self
            .banks
            .get_mut(bank)
            .and_then(|b| b.get_mut(addr))
            .ok_or(SimdError::MemoryOutOfBounds { bank, addr, size })?;
        *slot = value;
        self.writes += 1;
        Ok(())
    }

    /// Fills bank `bank` starting at `addr` from a slice.
    ///
    /// # Errors
    ///
    /// Returns [`SimdError::MemoryOutOfBounds`] if the slice does not fit.
    pub fn load_bank(&mut self, bank: usize, addr: usize, words: &[u16]) -> Result<(), SimdError> {
        for (i, &w) in words.iter().enumerate() {
            self.write(bank, addr + i, w)?;
        }
        Ok(())
    }

    /// Total reads performed (for energy accounting).
    #[must_use]
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total writes performed.
    #[must_use]
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Clears the access counters.
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = BankedMemory::new(2, 16);
        m.write(0, 3, 0x1234).unwrap();
        m.write(1, 3, 0x5678).unwrap();
        assert_eq!(m.read(0, 3).unwrap(), 0x1234);
        assert_eq!(m.read(1, 3).unwrap(), 0x5678);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut m = BankedMemory::new(2, 16);
        assert!(matches!(
            m.read(5, 0),
            Err(SimdError::MemoryOutOfBounds { bank: 5, .. })
        ));
        assert!(matches!(
            m.write(0, 99, 0),
            Err(SimdError::MemoryOutOfBounds { addr: 99, .. })
        ));
    }

    #[test]
    fn counters_track_accesses() {
        let mut m = BankedMemory::new(1, 8);
        m.write(0, 0, 1).unwrap();
        m.write(0, 1, 2).unwrap();
        let _ = m.read(0, 0).unwrap();
        assert_eq!(m.write_count(), 2);
        assert_eq!(m.read_count(), 1);
        m.reset_counters();
        assert_eq!(m.write_count(), 0);
    }

    #[test]
    fn load_bank_bulk() {
        let mut m = BankedMemory::new(1, 8);
        m.load_bank(0, 2, &[10, 20, 30]).unwrap();
        assert_eq!(m.read(0, 2).unwrap(), 10);
        assert_eq!(m.read(0, 4).unwrap(), 30);
        assert!(m.load_bank(0, 7, &[1, 2]).is_err());
    }

    #[test]
    fn capacity_matches_dimensions() {
        // The paper's SW=8 processor: 8 banks; Envision has 132 kB total.
        let m = BankedMemory::new(8, 1024);
        assert_eq!(m.capacity_bytes(), 16 * 1024);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_banks_rejected() {
        let _ = BankedMemory::new(0, 8);
    }
}
