//! Per-event energy model of the SIMD processor, calibrated to Table II.
//!
//! The simulator counts architectural events (instruction fetches, scalar
//! ALU operations, vector MACs, vector register accesses, memory words);
//! this module converts them into the three-domain energy split of the
//! paper's Table II:
//!
//! * **mem** — banked SRAM accesses at a fixed `Vmem`; dynamic energy
//!   scales with the fraction of active bit lines (gated LSBs are quiet);
//! * **nas** — fetch/decode/control at `Vnas`; a shared-front-end constant
//!   plus a per-lane term (operand routing grows with `SW`);
//! * **as** — the vector MAC data path at `Vas`, whose per-cycle energy
//!   follows the gate-level activity factors extracted by
//!   [`dvafs_arith::activity`], plus a wire-load factor that grows slowly
//!   with `SW` (long broadcast and reduction wires in wide arrays).
//!
//! Base energies are calibrated so the `SW = 8` and `SW = 64` processors
//! reproduce the paper's 16-bit anchor rows (36 mW / 289 mW with
//! 31/46/23 % and 31/32/37 % splits).

use dvafs_arith::activity::{extract_das_profile, extract_dvafs_profile, ActivityProfile};
use dvafs_arith::subword::SubwordMode;
use dvafs_tech::domains::{DomainRails, PowerDomain};
use dvafs_tech::energy::EnergyBreakdown;
use dvafs_tech::scaling::ScalingMode;
use serde::{Deserialize, Serialize};

/// Architectural event counts accumulated over a program run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// Instructions fetched and decoded.
    pub instructions: u64,
    /// Scalar ALU operations executed.
    pub scalar_ops: u64,
    /// Vector MAC operations (per lane: one packed MAC each).
    pub lane_macs: u64,
    /// Other vector ALU lane-operations (add, relu, shift, broadcast, clear).
    pub lane_alu: u64,
    /// Vector register file lane-accesses.
    pub lane_vreg: u64,
    /// Data-memory words read (per lane).
    pub mem_reads: u64,
    /// Data-memory words written (per lane).
    pub mem_writes: u64,
}

/// Calibrated per-event base energies (picojoules, at nominal voltage).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyCoefficients {
    /// Shared fetch/decode front-end energy per instruction.
    pub fetch_decode_base_pj: f64,
    /// Per-lane fetch/decode and control distribution energy.
    pub fetch_decode_per_lane_pj: f64,
    /// Scalar ALU operation energy.
    pub scalar_op_pj: f64,
    /// Full-precision 16-bit packed MAC energy per lane (at `SW = 8`).
    pub mac_pj: f64,
    /// Other vector ALU lane-operation energy.
    pub vector_alu_pj: f64,
    /// Vector register file lane-access energy.
    pub vreg_pj: f64,
    /// 16-bit memory word access energy (all bit lines active).
    pub mem_word_pj: f64,
    /// Exponent of the wire-load growth of the `as` domain with `SW`.
    pub wire_exponent: f64,
}

impl Default for EnergyCoefficients {
    fn default() -> Self {
        // Calibrated against Table II's two 16-bit anchor rows
        // (36 mW at SW=8, 289 mW at SW=64, 500 MHz, 1.1 V).
        EnergyCoefficients {
            fetch_decode_base_pj: 11.7,
            fetch_decode_per_lane_pj: 2.43,
            scalar_op_pj: 1.70,
            mac_pj: 6.31,
            vector_alu_pj: 0.87,
            vreg_pj: 0.58,
            mem_word_pj: 9.95,
            wire_exponent: 0.23,
        }
    }
}

/// Converts event counts into a Table II-style three-domain energy split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimdEnergyModel {
    coefficients: EnergyCoefficients,
    das_profile: ActivityProfile,
    dvafs_profile: ActivityProfile,
}

impl SimdEnergyModel {
    /// Number of operand pairs used when extracting activity profiles.
    const PROFILE_SAMPLES: usize = 150;
    /// Seed for deterministic profile extraction.
    const PROFILE_SEED: u64 = 0xD7AF5;

    /// Creates the model with freshly extracted gate-level activity
    /// profiles and default calibration.
    #[must_use]
    pub fn new() -> Self {
        SimdEnergyModel {
            coefficients: EnergyCoefficients::default(),
            das_profile: extract_das_profile(Self::PROFILE_SAMPLES, Self::PROFILE_SEED),
            dvafs_profile: extract_dvafs_profile(Self::PROFILE_SAMPLES, Self::PROFILE_SEED),
        }
    }

    /// Creates the model from existing profiles (avoids re-simulating the
    /// multiplier netlist).
    #[must_use]
    pub fn with_profiles(das: ActivityProfile, dvafs: ActivityProfile) -> Self {
        SimdEnergyModel {
            coefficients: EnergyCoefficients::default(),
            das_profile: das,
            dvafs_profile: dvafs,
        }
    }

    /// The calibration constants in use.
    #[must_use]
    pub fn coefficients(&self) -> &EnergyCoefficients {
        &self.coefficients
    }

    /// The extracted DAS activity profile.
    #[must_use]
    pub fn das_profile(&self) -> &ActivityProfile {
        &self.das_profile
    }

    /// The extracted DVAFS activity profile.
    #[must_use]
    pub fn dvafs_profile(&self) -> &ActivityProfile {
        &self.dvafs_profile
    }

    /// Overrides the calibration constants.
    pub fn set_coefficients(&mut self, coefficients: EnergyCoefficients) {
        self.coefficients = coefficients;
    }

    /// Relative MAC activity factor for a scaling regime at a per-word
    /// precision (1.0 at 16 bits).
    ///
    /// # Panics
    ///
    /// Panics if the profiles lack the precision (profiles cover 16/12/8/4
    /// and the subword modes).
    #[must_use]
    pub fn mac_activity_factor(&self, scaling: ScalingMode, bits: u32) -> f64 {
        let das = self
            .das_profile
            .at_bits(bits)
            .expect("DAS profile covers the sweep precisions");
        match scaling {
            ScalingMode::Das | ScalingMode::Dvas => das.activity_per_cycle,
            ScalingMode::Dvafs => {
                let mode = SubwordMode::for_precision(
                    dvafs_arith::Precision::new(bits).expect("validated by caller"),
                );
                if mode.lanes() > 1 {
                    self.dvafs_profile
                        .at_bits(mode.lane_bits())
                        .expect("DVAFS profile covers subword modes")
                        .activity_per_cycle
                } else {
                    das.activity_per_cycle
                }
            }
        }
    }

    /// Active-bit-line fraction of a memory access at a given per-word
    /// precision and packing.
    #[must_use]
    pub fn mem_activity_factor(scaling: ScalingMode, bits: u32) -> f64 {
        match scaling {
            // Gated LSBs leave bit lines quiet.
            ScalingMode::Das | ScalingMode::Dvas => f64::from(bits) / 16.0,
            // Packed subwords use the full word width (but carry N words).
            ScalingMode::Dvafs => {
                let mode = SubwordMode::for_precision(
                    dvafs_arith::Precision::new(bits).expect("validated by caller"),
                );
                if mode.lanes() > 1 {
                    1.0
                } else {
                    f64::from(bits) / 16.0
                }
            }
        }
    }

    /// Wire-load growth factor of the `as` domain for a SIMD width.
    #[must_use]
    pub fn wire_factor(&self, sw: usize) -> f64 {
        (sw as f64 / 8.0).powf(self.coefficients.wire_exponent)
    }

    /// Converts event counts into a three-domain energy breakdown (joules).
    ///
    /// `rails` carries the operating voltages; `vnom` the technology's
    /// nominal voltage; `scaling`/`bits` select the activity factors.
    #[must_use]
    pub fn breakdown(
        &self,
        counts: &EventCounts,
        sw: usize,
        rails: DomainRails,
        vnom: f64,
        scaling: ScalingMode,
        bits: u32,
    ) -> EnergyBreakdown {
        let c = &self.coefficients;
        let pj = 1e-12;
        let f_as = rails.energy_factor(PowerDomain::AccuracyScalable, vnom);
        let f_nas = rails.energy_factor(PowerDomain::NonScalable, vnom);
        let f_mem = rails.energy_factor(PowerDomain::Memory, vnom);
        let wire = self.wire_factor(sw);
        let mac_act = self.mac_activity_factor(scaling, bits);
        let mem_act = Self::mem_activity_factor(scaling, bits);

        let mut out = EnergyBreakdown::new();
        // nas: fetch/decode/control + scalar ALU.
        let fd = c.fetch_decode_base_pj + c.fetch_decode_per_lane_pj * sw as f64;
        out.add(
            PowerDomain::NonScalable,
            (counts.instructions as f64 * fd + counts.scalar_ops as f64 * c.scalar_op_pj)
                * f_nas
                * pj,
        );
        // as: MACs at the extracted activity factor, other vector ALU ops,
        // vector register file traffic.
        out.add(
            PowerDomain::AccuracyScalable,
            (counts.lane_macs as f64 * c.mac_pj * mac_act
                + counts.lane_alu as f64 * c.vector_alu_pj * mac_act.sqrt()
                + counts.lane_vreg as f64 * c.vreg_pj)
                * wire
                * f_as
                * pj,
        );
        // mem: word accesses at the active-bit-line fraction.
        out.add(
            PowerDomain::Memory,
            (counts.mem_reads + counts.mem_writes) as f64 * c.mem_word_pj * mem_act * f_mem * pj,
        );
        out
    }
}

impl Default for SimdEnergyModel {
    fn default() -> Self {
        SimdEnergyModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SimdEnergyModel {
        SimdEnergyModel::new()
    }

    #[test]
    fn mac_activity_at_full_precision_is_unity() {
        let m = model();
        for s in ScalingMode::ALL {
            assert!((m.mac_activity_factor(s, 16) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn das_mac_activity_falls_with_precision() {
        let m = model();
        let a8 = m.mac_activity_factor(ScalingMode::Das, 8);
        let a4 = m.mac_activity_factor(ScalingMode::Das, 4);
        assert!(a8 > a4 && a4 < 0.2);
    }

    #[test]
    fn dvafs_per_cycle_activity_above_das() {
        // Reused cells keep toggling: k3 < k0.
        let m = model();
        assert!(
            m.mac_activity_factor(ScalingMode::Dvafs, 4)
                > m.mac_activity_factor(ScalingMode::Das, 4)
        );
    }

    #[test]
    fn mem_activity_tracks_active_bits() {
        assert!((SimdEnergyModel::mem_activity_factor(ScalingMode::Das, 4) - 0.25).abs() < 1e-12);
        assert!((SimdEnergyModel::mem_activity_factor(ScalingMode::Dvafs, 4) - 1.0).abs() < 1e-12);
        assert!(
            (SimdEnergyModel::mem_activity_factor(ScalingMode::Dvafs, 12) - 0.75).abs() < 1e-12
        );
    }

    #[test]
    fn wire_factor_grows_sublinearly() {
        let m = model();
        assert!((m.wire_factor(8) - 1.0).abs() < 1e-12);
        let w64 = m.wire_factor(64);
        assert!(w64 > 1.2 && w64 < 2.0, "wire factor {w64}");
    }

    #[test]
    fn breakdown_scales_with_rails() {
        let m = model();
        let counts = EventCounts {
            instructions: 1000,
            scalar_ops: 200,
            lane_macs: 800,
            lane_alu: 100,
            lane_vreg: 1600,
            mem_reads: 800,
            mem_writes: 100,
        };
        let nominal = m.breakdown(
            &counts,
            8,
            DomainRails::uniform(1.1),
            1.1,
            ScalingMode::Das,
            16,
        );
        let scaled = m.breakdown(
            &counts,
            8,
            DomainRails::new(0.9, 1.1, 1.1),
            1.1,
            ScalingMode::Das,
            16,
        );
        assert!(
            scaled.domain(PowerDomain::AccuracyScalable)
                < nominal.domain(PowerDomain::AccuracyScalable)
        );
        assert_eq!(
            scaled.domain(PowerDomain::Memory),
            nominal.domain(PowerDomain::Memory)
        );
    }

    #[test]
    fn zero_counts_give_zero_energy() {
        let m = model();
        let b = m.breakdown(
            &EventCounts::default(),
            8,
            DomainRails::uniform(1.1),
            1.1,
            ScalingMode::Das,
            16,
        );
        assert_eq!(b.total(), 0.0);
    }
}
