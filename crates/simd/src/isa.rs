//! The vector instruction set of the SIMD RISC processor.
//!
//! A deliberately small load/store RISC ISA with a vector extension, enough
//! to express the paper's convolution benchmark and exercise the three
//! power domains: scalar control flow (nas), vector arithmetic (as) and
//! banked memory traffic (mem). Instructions encode to 16 bits in the
//! modeled hardware (as in Envision's program memory); the simulator keeps
//! them symbolic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar register index (16 architectural registers).
pub type Reg = usize;

/// Vector register index (8 architectural vector registers).
pub type VReg = usize;

/// Number of scalar registers.
pub const SCALAR_REGS: usize = 16;

/// Number of vector registers.
pub const VECTOR_REGS: usize = 8;

/// One instruction of the SIMD processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// `rd <- imm`.
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i32,
    },
    /// `rd <- rs1 + rs2`.
    Add {
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `rd <- rs1 + imm`.
    Addi {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate addend.
        imm: i32,
    },
    /// Branch to `target` when `rs1 != rs2`.
    Bne {
        /// First compare source.
        rs1: Reg,
        /// Second compare source.
        rs2: Reg,
        /// Instruction index to jump to.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Instruction index to jump to.
        target: usize,
    },
    /// Stop execution.
    Halt,
    /// No operation (pipeline filler).
    Nop,
    /// Scalar load from bank 0: `rd <- sign_extend(mem[0][rs1 + offset])`
    /// (the scalar unit shares the first memory bank, as small RISC
    /// vector machines do for coefficients and constants).
    LoadScalar {
        /// Destination register.
        rd: Reg,
        /// Base-address register.
        rs1: Reg,
        /// Word offset.
        offset: i32,
    },
    /// Vector load: every lane loads the packed word at `mem[lane][rs1 + offset]`.
    VLoad {
        /// Destination vector register.
        vd: VReg,
        /// Scalar register holding the base address.
        rs1: Reg,
        /// Word offset.
        offset: i32,
    },
    /// Vector store: every lane stores its packed word to `mem[lane][rs1 + offset]`.
    VStore {
        /// Source vector register.
        vs: VReg,
        /// Scalar register holding the base address.
        rs1: Reg,
        /// Word offset.
        offset: i32,
    },
    /// Broadcast a scalar value into every lane and subword slot.
    VBroadcast {
        /// Destination vector register.
        vd: VReg,
        /// Scalar source register.
        rs: Reg,
    },
    /// Subword-parallel multiply-accumulate: `vacc += vs1 * vs2` per slot.
    VMac {
        /// Accumulator vector register.
        vacc: VReg,
        /// First operand.
        vs1: VReg,
        /// Second operand.
        vs2: VReg,
    },
    /// Element-wise add: `vd <- vs1 + vs2`.
    VAdd {
        /// Destination.
        vd: VReg,
        /// First operand.
        vs1: VReg,
        /// Second operand.
        vs2: VReg,
    },
    /// Rectified linear unit: `vd <- max(vs, 0)` per slot.
    VRelu {
        /// Destination.
        vd: VReg,
        /// Source.
        vs: VReg,
    },
    /// Clear all slots of a vector register.
    VClear {
        /// Destination.
        vd: VReg,
    },
    /// Arithmetic right shift of every slot (post-MAC re-quantization).
    VShr {
        /// Destination.
        vd: VReg,
        /// Source.
        vs: VReg,
        /// Shift amount in bits.
        amount: u32,
    },
}

impl Instr {
    /// Whether this is a vector instruction (executes in the `as` domain).
    #[must_use]
    pub fn is_vector(&self) -> bool {
        matches!(
            self,
            Instr::VLoad { .. }
                | Instr::VStore { .. }
                | Instr::VBroadcast { .. }
                | Instr::VMac { .. }
                | Instr::VAdd { .. }
                | Instr::VRelu { .. }
                | Instr::VClear { .. }
                | Instr::VShr { .. }
        )
    }

    /// Whether this instruction touches data memory.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::VLoad { .. } | Instr::VStore { .. } | Instr::LoadScalar { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Li { rd, imm } => write!(f, "li r{rd}, {imm}"),
            Instr::Add { rd, rs1, rs2 } => write!(f, "add r{rd}, r{rs1}, r{rs2}"),
            Instr::Addi { rd, rs1, imm } => write!(f, "addi r{rd}, r{rs1}, {imm}"),
            Instr::Bne { rs1, rs2, target } => write!(f, "bne r{rs1}, r{rs2}, {target}"),
            Instr::Jump { target } => write!(f, "j {target}"),
            Instr::Halt => write!(f, "halt"),
            Instr::Nop => write!(f, "nop"),
            Instr::LoadScalar { rd, rs1, offset } => write!(f, "lw r{rd}, {offset}(r{rs1})"),
            Instr::VLoad { vd, rs1, offset } => write!(f, "vload v{vd}, {offset}(r{rs1})"),
            Instr::VStore { vs, rs1, offset } => write!(f, "vstore v{vs}, {offset}(r{rs1})"),
            Instr::VBroadcast { vd, rs } => write!(f, "vbcast v{vd}, r{rs}"),
            Instr::VMac { vacc, vs1, vs2 } => write!(f, "vmac v{vacc}, v{vs1}, v{vs2}"),
            Instr::VAdd { vd, vs1, vs2 } => write!(f, "vadd v{vd}, v{vs1}, v{vs2}"),
            Instr::VRelu { vd, vs } => write!(f, "vrelu v{vd}, v{vs}"),
            Instr::VClear { vd } => write!(f, "vclear v{vd}"),
            Instr::VShr { vd, vs, amount } => write!(f, "vshr v{vd}, v{vs}, {amount}"),
        }
    }
}

/// A program: a sequence of instructions executed from index 0.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Self {
        Program::default()
    }

    /// Appends an instruction and returns its index.
    pub fn push(&mut self, instr: Instr) -> usize {
        self.instrs.push(instr);
        self.instrs.len() - 1
    }

    /// The instruction sequence.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Program-memory footprint in bytes at the modeled 16-bit encoding.
    #[must_use]
    pub fn code_bytes(&self) -> usize {
        self.instrs.len() * 2
    }
}

impl FromIterator<Instr> for Program {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Self {
        Program {
            instrs: iter.into_iter().collect(),
        }
    }
}

impl Extend<Instr> for Program {
    fn extend<T: IntoIterator<Item = Instr>>(&mut self, iter: T) {
        self.instrs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_classification() {
        assert!(Instr::VMac {
            vacc: 0,
            vs1: 1,
            vs2: 2
        }
        .is_vector());
        assert!(!Instr::Li { rd: 0, imm: 1 }.is_vector());
        assert!(Instr::VLoad {
            vd: 0,
            rs1: 0,
            offset: 0
        }
        .is_memory());
        assert!(!Instr::VMac {
            vacc: 0,
            vs1: 1,
            vs2: 2
        }
        .is_memory());
    }

    #[test]
    fn display_is_assembly_like() {
        assert_eq!(
            Instr::VMac {
                vacc: 0,
                vs1: 1,
                vs2: 2
            }
            .to_string(),
            "vmac v0, v1, v2"
        );
        assert_eq!(Instr::Li { rd: 3, imm: -7 }.to_string(), "li r3, -7");
    }

    #[test]
    fn program_builder() {
        let mut p = Program::new();
        assert!(p.is_empty());
        let i0 = p.push(Instr::Nop);
        let i1 = p.push(Instr::Halt);
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(p.len(), 2);
        assert_eq!(p.code_bytes(), 4);
    }

    #[test]
    fn program_collects_from_iterator() {
        let p: Program = vec![Instr::Nop, Instr::Halt].into_iter().collect();
        assert_eq!(p.len(), 2);
    }
}
