//! Convolution benchmark generation (the paper's SIMD workload).
//!
//! Section III-B evaluates the processor on "a large convolution kernel".
//! [`ConvKernel`] describes a 1-D convolution `out[o] = Σ_t w[t]·x[o+t]`
//! (the im2col-collapsed inner loop of a CONV layer); [`compile`] lowers it
//! to a program plus banked-memory image for any SIMD width, subword mode
//! and operand precision, keeping the *computational throughput constant*:
//! in `Nx` subword mode every vector instruction carries `N` output words
//! per lane, so the instruction count — and with it the clock needed for a
//! fixed frame rate — drops by `N`.

use crate::error::SimdError;
use crate::isa::{Instr, Program};
use dvafs_arith::subword::{pack_lanes, SubwordMode};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A 1-D convolution workload with canonical 16-bit operands.
///
/// # Example
///
/// ```
/// use dvafs_simd::kernels::ConvKernel;
///
/// let k = ConvKernel::random(9, 64, 1);
/// assert_eq!(k.taps(), 9);
/// assert_eq!(k.outputs(), 64);
/// assert_eq!(k.mac_count(), 9 * 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvKernel {
    taps: usize,
    outputs: usize,
    weights: Vec<i32>,
    inputs: Vec<i32>,
}

impl ConvKernel {
    /// Creates a kernel with deterministic pseudo-random 16-bit operands.
    ///
    /// # Panics
    ///
    /// Panics if `taps` or `outputs` is zero.
    #[must_use]
    pub fn random(taps: usize, outputs: usize, seed: u64) -> Self {
        assert!(
            taps > 0 && outputs > 0,
            "kernel dimensions must be positive"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        ConvKernel {
            taps,
            outputs,
            weights: (0..taps).map(|_| rng.gen_range(-32768..=32767)).collect(),
            inputs: (0..outputs + taps)
                .map(|_| rng.gen_range(-32768..=32767))
                .collect(),
        }
    }

    /// Filter length (`K*K*C` of the collapsed CONV loop).
    #[must_use]
    pub fn taps(&self) -> usize {
        self.taps
    }

    /// Number of output elements.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Total multiply-accumulate operations (= processed operand words).
    #[must_use]
    pub fn mac_count(&self) -> u64 {
        (self.taps * self.outputs) as u64
    }

    /// The canonical weights.
    #[must_use]
    pub fn weights(&self) -> &[i32] {
        &self.weights
    }

    /// The canonical input signal.
    #[must_use]
    pub fn inputs(&self) -> &[i32] {
        &self.inputs
    }

    /// The effective operand at a reduced precision: the `bits` MSBs of the
    /// canonical 16-bit value, re-scaled onto the lane grid
    /// (`v >> (16 - bits)`).
    #[must_use]
    pub fn effective(value: i32, bits: u32) -> i32 {
        value >> (16 - bits)
    }

    /// Reference outputs at a precision/shift, exactly as the processor
    /// computes them (accumulate effective products, arithmetic shift,
    /// clamp to the store width).
    #[must_use]
    pub fn expected_outputs(&self, bits: u32, shift: u32, store_bits: u32) -> Vec<i32> {
        let lo = -(1i64 << (store_bits - 1));
        let hi = (1i64 << (store_bits - 1)) - 1;
        (0..self.outputs)
            .map(|o| {
                let acc: i64 = (0..self.taps)
                    .map(|t| {
                        i64::from(Self::effective(self.weights[t], bits))
                            * i64::from(Self::effective(self.inputs[o + t], bits))
                    })
                    .sum();
                (acc >> shift).clamp(lo, hi) as i32
            })
            .collect()
    }

    /// An effective operand as the GEMM's `i16` lane value. The canonical
    /// operands are 16-bit by construction ([`random`](Self::random)
    /// draws from `-32768..=32767` and `effective` only narrows), so the
    /// cast never wraps; the debug assertion pins that invariant for
    /// hand-built kernels.
    fn effective_i16(value: i32, bits: u32) -> i16 {
        let e = Self::effective(value, bits);
        debug_assert!(
            i32::from(e as i16) == e,
            "ConvKernel operands must be canonical 16-bit values (effective {e})"
        );
        e as i16
    }

    /// [`expected_outputs`](Self::expected_outputs) computed through the
    /// blocked integer GEMM ([`crate::gemm`]) instead of the naive tap
    /// loop: the sliding input windows are packed into an im2col panel
    /// (one patch per row) and multiplied against the 1-row weight matrix.
    /// Accumulation is exact in `i64`, so the result is bit-identical to
    /// the naive reference — the `fig4`/`table2` scenarios assert the
    /// cycle-level machine against whichever path the run selected.
    #[must_use]
    pub fn expected_outputs_gemm(&self, bits: u32, shift: u32, store_bits: u32) -> Vec<i32> {
        let lo = -(1i64 << (store_bits - 1));
        let hi = (1i64 << (store_bits - 1)) - 1;
        let w: Vec<i16> = self
            .weights
            .iter()
            .map(|&v| Self::effective_i16(v, bits))
            .collect();
        // im2col of the 1-D convolution: patch row o = inputs[o..o+taps].
        let mut patches = Vec::with_capacity(self.outputs * self.taps);
        for o in 0..self.outputs {
            patches.extend(
                self.inputs[o..o + self.taps]
                    .iter()
                    .map(|&v| Self::effective_i16(v, bits)),
            );
        }
        let mut acc = vec![0i64; self.outputs];
        crate::gemm::gemm_i16(&w, &patches, 1, self.taps, self.outputs, &mut acc);
        acc.into_iter()
            .map(|a| (a >> shift).clamp(lo, hi) as i32)
            .collect()
    }

    /// [`expected_outputs`](Self::expected_outputs) computed through the
    /// subword-packed GEMM ([`crate::gemm::gemm_packed`]): the same im2col
    /// panels as [`expected_outputs_gemm`](Self::expected_outputs_gemm),
    /// packed at the most-parallel [`SubwordMode`] the precision allows
    /// ([`SubwordMode::for_precision`]). Effective operands span the full
    /// `bits`-wide two's-complement range (`effective` can produce
    /// `-2^(bits-1)`), which the packed panels accept by contract, so the
    /// result stays bit-identical to the naive reference.
    ///
    /// # Panics
    ///
    /// Panics when `bits` is outside `1..=16` (compilation validated it).
    #[must_use]
    pub fn expected_outputs_packed(&self, bits: u32, shift: u32, store_bits: u32) -> Vec<i32> {
        let lo = -(1i64 << (store_bits - 1));
        let hi = (1i64 << (store_bits - 1)) - 1;
        let mode = SubwordMode::for_precision(
            dvafs_arith::Precision::new(bits).expect("compiled precision is 1..=16"),
        );
        let w: Vec<i16> = self
            .weights
            .iter()
            .map(|&v| Self::effective_i16(v, bits))
            .collect();
        let mut patches = Vec::with_capacity(self.outputs * self.taps);
        for o in 0..self.outputs {
            patches.extend(
                self.inputs[o..o + self.taps]
                    .iter()
                    .map(|&v| Self::effective_i16(v, bits)),
            );
        }
        let pw = crate::gemm::PackedPanel::pack(&w, 1, self.taps, mode);
        let pp = crate::gemm::PackedPanel::pack(&patches, self.outputs, self.taps, mode);
        let mut acc = vec![0i64; self.outputs];
        crate::gemm::gemm_packed(&pw, &pp, &mut acc);
        acc.into_iter()
            .map(|a| (a >> shift).clamp(lo, hi) as i32)
            .collect()
    }
}

/// A kernel lowered to a program and memory image for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledKernel {
    /// The executable program (fully unrolled inner loop).
    pub program: Program,
    /// Initial contents of each memory bank.
    pub bank_images: Vec<Vec<u16>>,
    /// Word address of the first output in every bank.
    pub out_base: usize,
    /// Outer blocks (output groups of `SW * N` elements).
    pub blocks: usize,
    /// Post-MAC re-quantization shift.
    pub shift: u32,
    /// Operand precision in bits.
    pub bits: u32,
    /// Subword mode of the compilation.
    pub mode: SubwordMode,
    /// SIMD width the image was laid out for.
    pub sw: usize,
}

impl CompiledKernel {
    /// Output slot index for `(block, lane, subword)`.
    #[must_use]
    pub fn output_index(&self, block: usize, lane: usize, sub: usize) -> usize {
        let n = self.mode.lanes();
        block * self.sw * n + lane * n + sub
    }
}

/// Code-generation style for a kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelStyle {
    /// Fully unrolled inner loop: weights as immediates, no branches.
    /// Fastest (one tap per 4 cycles) but large program memory.
    #[default]
    Unrolled,
    /// Nested branch loops with weights loaded from memory bank 0:
    /// constant, small program memory at ~2x the cycles per tap — how a
    /// real C-programmable processor (or Envision's 16 kB instruction
    /// store) runs large layers.
    Looped,
}

/// Lowers a kernel for a SIMD width, subword mode and precision.
///
/// # Errors
///
/// Returns [`SimdError::InvalidConfig`] when `outputs` is not divisible by
/// `sw * mode.lanes()` or the precision exceeds the mode's lane width.
pub fn compile(
    kernel: &ConvKernel,
    sw: usize,
    mode: SubwordMode,
    bits: u32,
) -> Result<CompiledKernel, SimdError> {
    compile_with_style(kernel, sw, mode, bits, KernelStyle::Unrolled)
}

/// Lowers a kernel with an explicit code-generation style.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_with_style(
    kernel: &ConvKernel,
    sw: usize,
    mode: SubwordMode,
    bits: u32,
    style: KernelStyle,
) -> Result<CompiledKernel, SimdError> {
    let n = mode.lanes();
    let slots = sw * n;
    if kernel.outputs() % slots != 0 {
        return Err(SimdError::InvalidConfig {
            reason: format!(
                "outputs {} not divisible by sw*lanes = {slots}",
                kernel.outputs()
            ),
        });
    }
    if bits > mode.lane_bits() {
        return Err(SimdError::InvalidConfig {
            reason: format!("{bits}-bit operands do not fit {mode} lanes"),
        });
    }
    let blocks = kernel.outputs() / slots;
    let taps = kernel.taps();
    // Accumulator magnitude ~ taps * 2^(2 bits - 2); shift so the stored
    // value fits the lane width with headroom.
    let store_bits = mode.lane_bits();
    let log_taps = (taps as f64).log2().ceil() as u32;
    let shift = (2 * bits + log_taps).saturating_sub(store_bits + 1).min(31);

    // Memory image: bank l, address b*taps + t holds the packed effective
    // inputs of that lane's N output slots at tap t.
    let mut bank_images = vec![Vec::with_capacity(blocks * taps + blocks); sw];
    for (l, image) in bank_images.iter_mut().enumerate() {
        for b in 0..blocks {
            for t in 0..taps {
                let lanes: Vec<i32> = (0..n)
                    .map(|s| {
                        let o = b * slots + l * n + s;
                        ConvKernel::effective(kernel.inputs()[o + t], bits)
                    })
                    .collect();
                let word = pack_lanes(&lanes, mode).expect("effective values fit lane width");
                image.push(word);
            }
        }
    }
    let out_base = blocks * taps;
    // Looped style stores the effective weights after the output region
    // (in every bank, so bank 0 has them for the scalar unit).
    let weight_base = out_base + blocks;
    if style == KernelStyle::Looped {
        for image in &mut bank_images {
            // Reserve the output region, then append the weights.
            image.resize(weight_base, 0);
            for t in 0..taps {
                image.push(ConvKernel::effective(kernel.weights()[t], bits) as u16);
            }
        }
    }

    let mut program = Program::new();
    match style {
        KernelStyle::Unrolled => {
            // Per tap: load weight immediate, broadcast, load inputs, MAC;
            // per block: clear + shift + store.
            for b in 0..blocks {
                program.push(Instr::VClear { vd: 0 });
                for t in 0..taps {
                    program.push(Instr::Li {
                        rd: 3,
                        imm: ConvKernel::effective(kernel.weights()[t], bits),
                    });
                    program.push(Instr::VBroadcast { vd: 2, rs: 3 });
                    program.push(Instr::VLoad {
                        vd: 1,
                        rs1: 0,
                        offset: (b * taps + t) as i32,
                    });
                    program.push(Instr::VMac {
                        vacc: 0,
                        vs1: 1,
                        vs2: 2,
                    });
                }
                program.push(Instr::VShr {
                    vd: 0,
                    vs: 0,
                    amount: shift,
                });
                program.push(Instr::VStore {
                    vs: 0,
                    rs1: 0,
                    offset: (out_base + b) as i32,
                });
            }
            program.push(Instr::Halt);
        }
        KernelStyle::Looped => {
            // Register map: r1 input addr, r3 weight addr, r4 block count,
            // r5 out addr, r6 blocks, r7 tap count, r8 taps, r9 weight.
            program.push(Instr::Li { rd: 4, imm: 0 });
            program.push(Instr::Li {
                rd: 6,
                imm: blocks as i32,
            });
            program.push(Instr::Li { rd: 1, imm: 0 });
            program.push(Instr::Li {
                rd: 5,
                imm: out_base as i32,
            });
            let outer = program.push(Instr::VClear { vd: 0 });
            program.push(Instr::Li {
                rd: 3,
                imm: weight_base as i32,
            });
            program.push(Instr::Li { rd: 7, imm: 0 });
            program.push(Instr::Li {
                rd: 8,
                imm: taps as i32,
            });
            let inner = program.push(Instr::LoadScalar {
                rd: 9,
                rs1: 3,
                offset: 0,
            });
            program.push(Instr::VBroadcast { vd: 2, rs: 9 });
            program.push(Instr::VLoad {
                vd: 1,
                rs1: 1,
                offset: 0,
            });
            program.push(Instr::VMac {
                vacc: 0,
                vs1: 1,
                vs2: 2,
            });
            program.push(Instr::Addi {
                rd: 3,
                rs1: 3,
                imm: 1,
            });
            program.push(Instr::Addi {
                rd: 1,
                rs1: 1,
                imm: 1,
            });
            program.push(Instr::Addi {
                rd: 7,
                rs1: 7,
                imm: 1,
            });
            program.push(Instr::Bne {
                rs1: 7,
                rs2: 8,
                target: inner,
            });
            program.push(Instr::VShr {
                vd: 0,
                vs: 0,
                amount: shift,
            });
            program.push(Instr::VStore {
                vs: 0,
                rs1: 5,
                offset: 0,
            });
            program.push(Instr::Addi {
                rd: 5,
                rs1: 5,
                imm: 1,
            });
            program.push(Instr::Addi {
                rd: 4,
                rs1: 4,
                imm: 1,
            });
            program.push(Instr::Bne {
                rs1: 4,
                rs2: 6,
                target: outer,
            });
            program.push(Instr::Halt);
        }
    }

    Ok(CompiledKernel {
        program,
        bank_images,
        out_base,
        blocks,
        shift,
        bits,
        mode,
        sw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_operand_keeps_msbs() {
        assert_eq!(ConvKernel::effective(0x7FFF, 4), 7);
        assert_eq!(ConvKernel::effective(-32768, 4), -8);
        assert_eq!(ConvKernel::effective(0x1234, 16), 0x1234);
        assert_eq!(ConvKernel::effective(-1, 8), -1);
    }

    #[test]
    fn compile_rejects_indivisible_outputs() {
        let k = ConvKernel::random(3, 10, 1);
        assert!(matches!(
            compile(&k, 8, SubwordMode::X1, 16),
            Err(SimdError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn compile_rejects_oversized_precision() {
        let k = ConvKernel::random(3, 64, 1);
        assert!(compile(&k, 8, SubwordMode::X4, 8).is_err());
        assert!(compile(&k, 8, SubwordMode::X4, 4).is_ok());
    }

    #[test]
    fn instruction_count_drops_with_subword_parallelism() {
        let k = ConvKernel::random(9, 256, 2);
        let c1 = compile(&k, 8, SubwordMode::X1, 16).unwrap();
        let c4 = compile(&k, 8, SubwordMode::X4, 4).unwrap();
        // 4x fewer blocks -> ~4x fewer instructions at constant work.
        let ratio = c1.program.len() as f64 / c4.program.len() as f64;
        assert!((ratio - 4.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn memory_image_is_packed_per_mode() {
        let k = ConvKernel::random(4, 64, 3);
        let c = compile(&k, 8, SubwordMode::X2, 8).unwrap();
        assert_eq!(c.bank_images.len(), 8);
        // blocks = 64 / (8*2) = 4; image holds blocks*taps input words.
        assert_eq!(c.blocks, 4);
        assert_eq!(c.bank_images[0].len(), 16);
    }

    #[test]
    fn gemm_reference_is_bit_identical_to_naive_reference() {
        let k = ConvKernel::random(13, 96, 9);
        for bits in [16u32, 12, 8, 4, 1] {
            for shift in [0u32, 7, 20] {
                for store_bits in [16u32, 8] {
                    let naive = k.expected_outputs(bits, shift, store_bits);
                    assert_eq!(
                        naive,
                        k.expected_outputs_gemm(bits, shift, store_bits),
                        "gemm: bits={bits} shift={shift} store={store_bits}"
                    );
                    assert_eq!(
                        naive,
                        k.expected_outputs_packed(bits, shift, store_bits),
                        "packed: bits={bits} shift={shift} store={store_bits}"
                    );
                }
            }
        }
    }

    #[test]
    fn expected_outputs_change_with_precision() {
        let k = ConvKernel::random(8, 32, 4);
        let full = k.expected_outputs(16, 10, 16);
        let coarse = k.expected_outputs(4, 0, 16);
        assert_eq!(full.len(), 32);
        assert_ne!(full, coarse);
    }

    #[test]
    fn output_index_is_bijective() {
        let k = ConvKernel::random(2, 64, 5);
        let c = compile(&k, 4, SubwordMode::X4, 4).unwrap();
        let mut seen = std::collections::HashSet::new();
        for b in 0..c.blocks {
            for l in 0..4 {
                for s in 0..4 {
                    assert!(seen.insert(c.output_index(b, l, s)));
                }
            }
        }
        assert_eq!(seen.len(), 64);
        assert_eq!(*seen.iter().max().unwrap(), 63);
    }
}
