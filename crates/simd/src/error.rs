//! Error type for the SIMD processor simulator.

use std::fmt;

/// Errors raised during program construction or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimdError {
    /// A register index was outside the architectural file.
    InvalidRegister {
        /// Offending index.
        index: usize,
        /// File size.
        count: usize,
        /// `"scalar"` or `"vector"`.
        kind: &'static str,
    },
    /// A memory access fell outside a bank.
    MemoryOutOfBounds {
        /// Bank index.
        bank: usize,
        /// Word address within the bank.
        addr: usize,
        /// Words per bank.
        size: usize,
    },
    /// A branch or jump target was outside the program.
    InvalidTarget {
        /// Offending instruction index.
        target: usize,
        /// Program length.
        len: usize,
    },
    /// The program ran past its cycle budget without halting.
    CycleLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// The requested configuration is unsupported.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SimdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimdError::InvalidRegister { index, count, kind } => {
                write!(f, "{kind} register r{index} outside file of {count}")
            }
            SimdError::MemoryOutOfBounds { bank, addr, size } => {
                write!(f, "address {addr} outside bank {bank} of {size} words")
            }
            SimdError::InvalidTarget { target, len } => {
                write!(
                    f,
                    "branch target {target} outside program of {len} instructions"
                )
            }
            SimdError::CycleLimitExceeded { limit } => {
                write!(f, "program exceeded the cycle limit of {limit}")
            }
            SimdError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for SimdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_all_variants() {
        let errors = vec![
            SimdError::InvalidRegister {
                index: 20,
                count: 16,
                kind: "scalar",
            },
            SimdError::MemoryOutOfBounds {
                bank: 1,
                addr: 99,
                size: 64,
            },
            SimdError::InvalidTarget { target: 10, len: 5 },
            SimdError::CycleLimitExceeded { limit: 1000 },
            SimdError::InvalidConfig {
                reason: "bad".to_string(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimdError>();
    }
}
