//! Property-based tests of the SIMD processor: bit-exactness of the
//! hardware model against the software reference across the whole
//! configuration space.

use dvafs_simd::energy::SimdEnergyModel;
use dvafs_simd::kernels::ConvKernel;
use dvafs_simd::processor::{ProcConfig, Processor};
use dvafs_tech::scaling::ScalingMode;
use proptest::prelude::*;
use std::sync::OnceLock;

fn model() -> &'static SimdEnergyModel {
    static MODEL: OnceLock<SimdEnergyModel> = OnceLock::new();
    MODEL.get_or_init(SimdEnergyModel::new)
}

fn scaling_strategy() -> impl Strategy<Value = ScalingMode> {
    prop_oneof![
        Just(ScalingMode::Das),
        Just(ScalingMode::Dvas),
        Just(ScalingMode::Dvafs),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cycle-level machine computes exactly the software reference for
    /// arbitrary kernels, widths, regimes and precisions.
    #[test]
    fn kernel_outputs_always_bit_exact(
        taps in 1usize..12,
        blocks in 1usize..4,
        seed in any::<u64>(),
        scaling in scaling_strategy(),
        bits in prop_oneof![Just(4u32), Just(8), Just(12), Just(16)],
        sw in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        // outputs must divide sw * lanes for every mode: use sw * 4 * blocks.
        let outputs = sw * 4 * blocks;
        let kernel = ConvKernel::random(taps, outputs, seed);
        let cfg = ProcConfig::new(sw, scaling, bits).expect("valid config");
        let report = Processor::with_model(cfg, model().clone())
            .run_kernel(&kernel)
            .expect("kernel runs");
        prop_assert!(report.outputs_match(&kernel));
    }

    /// Energy accounting is always positive and the domain shares sum to
    /// one for any completed run.
    #[test]
    fn energy_is_positive_and_consistent(
        seed in any::<u64>(),
        scaling in scaling_strategy(),
        bits in prop_oneof![Just(4u32), Just(8), Just(16)],
    ) {
        let kernel = ConvKernel::random(5, 64, seed);
        let cfg = ProcConfig::new(8, scaling, bits).expect("valid config");
        let report = Processor::with_model(cfg, model().clone())
            .run_kernel(&kernel)
            .expect("kernel runs");
        prop_assert!(report.run.energy.total() > 0.0);
        let shares: f64 = dvafs_tech::domains::PowerDomain::ALL
            .iter()
            .map(|&d| report.run.share(d))
            .sum();
        prop_assert!((shares - 100.0).abs() < 1e-6);
        prop_assert!(report.run.avg_power_w > 0.0);
    }

    /// Constant throughput: runtime is invariant across DVAFS precisions
    /// for the same kernel (frequency drop exactly compensates the
    /// instruction-count drop).
    #[test]
    fn dvafs_runtime_is_constant_throughput(seed in any::<u64>(), taps in 2usize..10) {
        let kernel = ConvKernel::random(taps, 128, seed);
        let runtime = |bits: u32| {
            let cfg = ProcConfig::new(4, ScalingMode::Dvafs, bits).expect("valid");
            Processor::with_model(cfg, model().clone())
                .run_kernel(&kernel)
                .expect("runs")
                .run
                .runtime_s
        };
        let t16 = runtime(16);
        let t4 = runtime(4);
        // Identical up to the fixed per-block overhead instructions.
        prop_assert!((t4 / t16 - 1.0).abs() < 0.25, "t4/t16 = {}", t4 / t16);
    }
}
