//! Property-based tests of the arithmetic substrate's core invariants.

use dvafs_arith::booth::{booth_digits, digits_value};
use dvafs_arith::fixed::{Precision, Quantizer, RoundingMode};
use dvafs_arith::multiplier::baselines::{
    column_cells, ApproximateMultiplier, TruncatedMultiplier,
};
use dvafs_arith::multiplier::{DasMultiplier, DvafsMultiplier, KulkarniMultiplier};
use dvafs_arith::netlist::Simulator;
use dvafs_arith::subword::{pack_lanes, unpack_lanes, SubwordMode};
use proptest::prelude::*;

fn mode_strategy() -> impl Strategy<Value = SubwordMode> {
    prop_oneof![
        Just(SubwordMode::X1),
        Just(SubwordMode::X2),
        Just(SubwordMode::X4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The mode-gated netlist computes exactly the behavioral packed
    /// product for every operand pair in every mode — the central
    /// functional invariant of the DVAFS multiplier.
    #[test]
    fn netlist_equals_behavioral_packed_product(
        a in any::<u16>(),
        b in any::<u16>(),
        mode in mode_strategy(),
    ) {
        let m = DvafsMultiplier::new();
        prop_assert_eq!(m.mul_packed_via_netlist(a, b, mode), m.mul_packed(a, b, mode));
    }

    /// Subword lanes are independent: changing one lane's operands never
    /// affects another lane's product.
    #[test]
    fn subword_lanes_are_independent(
        a in prop::array::uniform4(-8i32..=7),
        b in prop::array::uniform4(-8i32..=7),
        patch in -8i32..=7,
        lane in 0usize..4,
    ) {
        let m = DvafsMultiplier::new();
        let before = m.mul_subwords(&a, &b, SubwordMode::X4);
        let mut a2 = a;
        a2[lane] = patch;
        let after = m.mul_subwords(&a2, &b, SubwordMode::X4);
        for i in 0..4 {
            if i != lane {
                prop_assert_eq!(before[i], after[i], "lane {} perturbed", i);
            }
        }
        prop_assert_eq!(after[lane], patch * b[lane]);
    }

    /// Packing then unpacking recovers the lane values exactly.
    #[test]
    fn pack_unpack_roundtrip(word in any::<u16>(), mode in mode_strategy()) {
        let lanes = unpack_lanes(word, mode);
        prop_assert_eq!(pack_lanes(&lanes, mode).expect("unpacked lanes fit"), word);
    }

    /// Radix-4 Booth digits always reconstruct the operand.
    #[test]
    fn booth_digits_reconstruct(y in i32::from(i16::MIN)..=i32::from(i16::MAX)) {
        prop_assert_eq!(digits_value(&booth_digits(y, 16)), i64::from(y));
    }

    /// Booth digits stay within the radix-4 digit set.
    #[test]
    fn booth_digits_in_range(y in i32::from(i16::MIN)..=i32::from(i16::MAX)) {
        for d in booth_digits(y, 16) {
            prop_assert!((-2..=2).contains(&d.value));
        }
    }

    /// The DAS multiplier is exactly the exact multiplier applied to
    /// quantized operands, at every precision.
    #[test]
    fn das_is_exact_on_quantized_operands(
        x in i32::from(i16::MIN)..=i32::from(i16::MAX),
        y in i32::from(i16::MIN)..=i32::from(i16::MAX),
        bits in 1u32..=16,
    ) {
        let mut m = DasMultiplier::new(RoundingMode::Truncate);
        m.set_precision(Precision::new(bits).expect("valid"));
        let q = *m.quantizer();
        prop_assert_eq!(m.mul(x, y), i64::from(q.quantize(x)) * i64::from(q.quantize(y)));
    }

    /// Quantization is idempotent and its error is bounded.
    #[test]
    fn quantizer_idempotent_and_bounded(
        x in i32::from(i16::MIN)..=i32::from(i16::MAX),
        bits in 1u32..=16,
        round in any::<bool>(),
    ) {
        let mode = if round { RoundingMode::RoundNearest } else { RoundingMode::Truncate };
        let q = Quantizer::new(Precision::new(bits).expect("valid"), mode);
        let once = q.quantize(x);
        prop_assert_eq!(q.quantize(once), once, "idempotence");
        prop_assert!((i64::from(x) - i64::from(once)).unsigned_abs() <= q.max_error() as u64);
    }

    /// Truncated-multiplier error is bounded by the dropped-column mass.
    #[test]
    fn truncated_error_bound(a in any::<u16>(), b in any::<u16>(), t in 0u32..24) {
        let m = TruncatedMultiplier::new(t);
        let exact = u64::from(a) * u64::from(b);
        let approx = m.mul(a, b);
        // Dropped bits sum to at most sum_{c<t} cells(c) * 2^c, plus the
        // compensation constant 2^(t-1).
        let bound: u64 = (0..t.min(31))
            .map(|c| u64::from(column_cells(c)) << c)
            .sum::<u64>()
            + if t == 0 { 0 } else { 1u64 << (t - 1) };
        let err = approx.abs_diff(exact);
        prop_assert!(err <= bound, "err {} > bound {}", err, bound);
    }

    /// The Kulkarni multiplier never overestimates (its block only loses
    /// magnitude) and is exact when no 2-bit digit pair is (3, 3).
    #[test]
    fn kulkarni_underestimates(a in any::<u16>(), b in any::<u16>()) {
        let m = KulkarniMultiplier::new();
        prop_assert!(m.mul(a, b) <= u64::from(a) * u64::from(b));
    }

    /// Toggle counts are zero whenever the stimulus does not change.
    #[test]
    fn constant_stimulus_never_toggles(a in any::<u16>(), b in any::<u16>(), mode in mode_strategy()) {
        let m = DvafsMultiplier::new();
        let mut sim = Simulator::new(m.build_netlist());
        for _ in 0..3 {
            sim.eval(&DvafsMultiplier::stimulus(a, b, mode)).expect("fits");
        }
        prop_assert_eq!(sim.stats().toggles, 0);
    }
}
