//! Subword-parallel operating modes and packed-word helpers.
//!
//! DVAFS (Section II-C) reuses idle arithmetic cells at reduced precision:
//! a 16-bit multiplier processes `N` independent `16/N`-bit words per cycle.
//! [`SubwordMode`] enumerates the three modes of the paper's multiplier and
//! of Envision (`1×16b`, `2×8b`, `4×4b`), and the packing helpers convert
//! between lane values and the packed 16-bit operand a subword unit sees.

use crate::error::ArithError;
use crate::fixed::Precision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Degree of subword parallelism `N` in a DVAFS data path.
///
/// # Example
///
/// ```
/// use dvafs_arith::SubwordMode;
///
/// let mode = SubwordMode::X4;
/// assert_eq!(mode.lanes(), 4);
/// assert_eq!(mode.lane_bits(), 4);
/// assert_eq!(mode.words_per_cycle(), 4);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum SubwordMode {
    /// One 16-bit word per cycle (full precision).
    #[default]
    X1,
    /// Two packed 8-bit words per cycle.
    X2,
    /// Four packed 4-bit words per cycle.
    X4,
}

impl SubwordMode {
    /// All modes, from full precision down.
    pub const ALL: [SubwordMode; 3] = [SubwordMode::X1, SubwordMode::X2, SubwordMode::X4];

    /// The number of parallel lanes `N`.
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            SubwordMode::X1 => 1,
            SubwordMode::X2 => 2,
            SubwordMode::X4 => 4,
        }
    }

    /// Bits per lane (`16 / N`).
    #[must_use]
    pub fn lane_bits(self) -> u32 {
        16 / self.lanes() as u32
    }

    /// Words processed per cycle at constant clock — equal to [`lanes`].
    ///
    /// [`lanes`]: SubwordMode::lanes
    #[must_use]
    pub fn words_per_cycle(self) -> usize {
        self.lanes()
    }

    /// The lane precision as a [`Precision`].
    #[must_use]
    pub fn lane_precision(self) -> Precision {
        Precision::new(self.lane_bits()).expect("lane width is always 4, 8 or 16")
    }

    /// Picks the *narrowest-lane, most-parallel* mode whose lanes still
    /// hold `bits`-wide operands — the mode a DVAFS controller selects for
    /// a precision requirement, since more lanes per cycle is the entire
    /// point of subword reconfiguration. This is the mode-selection
    /// authority for the subword-packed GEMM kernel (`dvafs-simd`): a
    /// 4-bit operand goes four-to-a-word ([`X4`](SubwordMode::X4)), never
    /// one-to-a-word.
    ///
    /// # Example
    ///
    /// ```
    /// use dvafs_arith::{Precision, SubwordMode};
    ///
    /// // 4-bit operands select the most-parallel X4 mode, not X1 —
    /// // even though a 16-bit lane would also hold them.
    /// assert_eq!(SubwordMode::for_precision(Precision::new(4)?), SubwordMode::X4);
    /// assert_eq!(SubwordMode::for_precision(Precision::new(3)?), SubwordMode::X4);
    /// assert_eq!(SubwordMode::for_precision(Precision::new(5)?), SubwordMode::X2);
    /// assert_eq!(SubwordMode::for_precision(Precision::new(9)?), SubwordMode::X1);
    /// # Ok::<(), dvafs_arith::ArithError>(())
    /// ```
    #[must_use]
    pub fn for_precision(p: Precision) -> SubwordMode {
        match p.bits() {
            1..=4 => SubwordMode::X4,
            5..=8 => SubwordMode::X2,
            _ => SubwordMode::X1,
        }
    }
}

impl fmt::Display for SubwordMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}b", self.lanes(), self.lane_bits())
    }
}

/// Packs signed lane values into one 16-bit operand word.
///
/// Lane 0 occupies the LSBs. Each lane value must fit in the mode's lane
/// width as a signed two's-complement field.
///
/// # Errors
///
/// Returns [`ArithError::LaneCountMismatch`] when `lanes.len()` differs from
/// the mode's lane count, and [`ArithError::OperandOutOfRange`] when a lane
/// value does not fit its field.
///
/// # Example
///
/// ```
/// use dvafs_arith::subword::{pack_lanes, unpack_lanes};
/// use dvafs_arith::SubwordMode;
///
/// let w = pack_lanes(&[1, -1], SubwordMode::X2)?;
/// assert_eq!(unpack_lanes(w, SubwordMode::X2), vec![1, -1]);
/// # Ok::<(), dvafs_arith::ArithError>(())
/// ```
pub fn pack_lanes(lanes: &[i32], mode: SubwordMode) -> Result<u16, ArithError> {
    if lanes.len() != mode.lanes() {
        return Err(ArithError::LaneCountMismatch {
            expected: mode.lanes(),
            actual: lanes.len(),
        });
    }
    let w = mode.lane_bits();
    let lo = -(1i32 << (w - 1));
    let hi = (1i32 << (w - 1)) - 1;
    let mask = (1u32 << w) - 1;
    let mut packed: u32 = 0;
    for (i, &v) in lanes.iter().enumerate() {
        if v < lo || v > hi {
            return Err(ArithError::OperandOutOfRange {
                value: i64::from(v),
                bits: w,
            });
        }
        packed |= ((v as u32) & mask) << (i as u32 * w);
    }
    Ok(packed as u16)
}

/// Unpacks a 16-bit operand word into signed lane values (lane 0 = LSBs).
#[must_use]
pub fn unpack_lanes(word: u16, mode: SubwordMode) -> Vec<i32> {
    let w = mode.lane_bits();
    let mask = (1u32 << w) - 1;
    (0..mode.lanes())
        .map(|i| {
            let field = (u32::from(word) >> (i as u32 * w)) & mask;
            // Sign-extend the lane field.
            let shift = 32 - w;
            ((field << shift) as i32) >> shift
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_geometry() {
        assert_eq!(SubwordMode::X1.lanes(), 1);
        assert_eq!(SubwordMode::X1.lane_bits(), 16);
        assert_eq!(SubwordMode::X2.lanes(), 2);
        assert_eq!(SubwordMode::X2.lane_bits(), 8);
        assert_eq!(SubwordMode::X4.lanes(), 4);
        assert_eq!(SubwordMode::X4.lane_bits(), 4);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(SubwordMode::X1.to_string(), "1x16b");
        assert_eq!(SubwordMode::X2.to_string(), "2x8b");
        assert_eq!(SubwordMode::X4.to_string(), "4x4b");
    }

    #[test]
    fn mode_for_precision_covers_all_bits() {
        for b in 1..=16 {
            let p = Precision::new(b).unwrap();
            let m = SubwordMode::for_precision(p);
            assert!(m.lane_bits() >= b, "{b} bits must fit in {m}");
        }
    }

    #[test]
    fn mode_for_precision_is_most_parallel() {
        // The contract is narrowest-lane/most-parallel, not merely
        // "fits": every narrower mode must be too small for the bits.
        for b in 1..=16 {
            let p = Precision::new(b).unwrap();
            let m = SubwordMode::for_precision(p);
            for other in SubwordMode::ALL {
                if other.lane_bits() < m.lane_bits() {
                    assert!(other.lane_bits() < b, "{b} bits should have picked {other}");
                }
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip_x4() {
        let lanes = [-8, 7, -1, 3];
        let w = pack_lanes(&lanes, SubwordMode::X4).unwrap();
        assert_eq!(unpack_lanes(w, SubwordMode::X4), lanes.to_vec());
    }

    #[test]
    fn pack_unpack_roundtrip_x2() {
        let lanes = [-128, 127];
        let w = pack_lanes(&lanes, SubwordMode::X2).unwrap();
        assert_eq!(unpack_lanes(w, SubwordMode::X2), lanes.to_vec());
    }

    #[test]
    fn pack_unpack_roundtrip_x1() {
        let lanes = [-32768];
        let w = pack_lanes(&lanes, SubwordMode::X1).unwrap();
        assert_eq!(unpack_lanes(w, SubwordMode::X1), lanes.to_vec());
    }

    #[test]
    fn pack_rejects_wrong_lane_count() {
        assert!(matches!(
            pack_lanes(&[1, 2], SubwordMode::X4),
            Err(ArithError::LaneCountMismatch {
                expected: 4,
                actual: 2
            })
        ));
    }

    #[test]
    fn pack_rejects_out_of_range_lane() {
        assert!(matches!(
            pack_lanes(&[8, 0, 0, 0], SubwordMode::X4),
            Err(ArithError::OperandOutOfRange { .. })
        ));
        assert!(pack_lanes(&[-8, 0, 0, 0], SubwordMode::X4).is_ok());
    }

    #[test]
    fn exhaustive_roundtrip_x4_single_lane_range() {
        for v in -8..=7 {
            let w = pack_lanes(&[v, 0, 0, 0], SubwordMode::X4).unwrap();
            assert_eq!(unpack_lanes(w, SubwordMode::X4)[0], v);
        }
    }

    #[test]
    fn exhaustive_roundtrip_every_word_every_mode() {
        // Every u16 word is a valid packed operand in every mode (all
        // two's-complement field patterns are reachable), so
        // unpack -> pack must reproduce each of the 65536 words exactly,
        // and the unpacked lanes must sit inside the mode's signed range.
        for mode in SubwordMode::ALL {
            let w = mode.lane_bits();
            let lo = -(1i32 << (w - 1));
            let hi = (1i32 << (w - 1)) - 1;
            for word in 0..=u16::MAX {
                let lanes = unpack_lanes(word, mode);
                assert_eq!(lanes.len(), mode.lanes());
                for &v in &lanes {
                    assert!((lo..=hi).contains(&v), "{mode}: lane {v} out of range");
                }
                let repacked = pack_lanes(&lanes, mode)
                    .unwrap_or_else(|e| panic!("{mode}: word {word:#06x} failed: {e}"));
                assert_eq!(repacked, word, "{mode}: word {word:#06x} did not roundtrip");
            }
        }
    }
}
