//! Fixed-point values, precision descriptors and quantizers.
//!
//! The paper trades computational accuracy by truncating or rounding operand
//! LSBs at run time (Section II-A). This module provides the value-level
//! machinery for that: [`Precision`] (a validated bit width), [`Quantizer`]
//! (truncation / rounding of a 16-bit word to fewer bits) and [`Fixed`]
//! (a Q-format fixed-point number used by the CNN substrate).

use crate::error::ArithError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum operand width supported by the DVAFS data path (bits).
pub const MAX_BITS: u32 = 16;

/// A validated operand precision in `1..=16` bits.
///
/// # Example
///
/// ```
/// use dvafs_arith::Precision;
///
/// let p = Precision::new(8)?;
/// assert_eq!(p.bits(), 8);
/// assert_eq!(p.dropped_bits(), 8);
/// # Ok::<(), dvafs_arith::ArithError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Precision(u32);

impl Precision {
    /// Full 16-bit precision.
    pub const FULL: Precision = Precision(MAX_BITS);

    /// Creates a new precision.
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::InvalidPrecision`] if `bits` is not in `1..=16`.
    pub fn new(bits: u32) -> Result<Self, ArithError> {
        if bits == 0 || bits > MAX_BITS {
            Err(ArithError::InvalidPrecision { bits })
        } else {
            Ok(Precision(bits))
        }
    }

    /// The number of active MSBs.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// The number of gated (dropped) LSBs relative to the full 16-bit word.
    #[must_use]
    pub fn dropped_bits(self) -> u32 {
        MAX_BITS - self.0
    }

    /// The precision sweep used throughout the paper's evaluation:
    /// 4, 8, 12 and 16 bits (Fig. 2, Fig. 3a, Table I).
    #[must_use]
    pub fn paper_sweep() -> [Precision; 4] {
        [Precision(4), Precision(8), Precision(12), Precision(16)]
    }

    /// Largest representable value of a signed word at this precision,
    /// expressed on the full 16-bit grid (LSBs zero).
    #[must_use]
    pub fn max_value(self) -> i32 {
        (i32::from(i16::MAX) >> self.dropped_bits()) << self.dropped_bits()
    }

    /// Smallest representable value of a signed word at this precision.
    #[must_use]
    pub fn min_value(self) -> i32 {
        i32::from(i16::MIN)
    }
}

impl Default for Precision {
    fn default() -> Self {
        Precision::FULL
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.0)
    }
}

impl TryFrom<u32> for Precision {
    type Error = ArithError;

    fn try_from(bits: u32) -> Result<Self, Self::Error> {
        Precision::new(bits)
    }
}

impl From<Precision> for u32 {
    fn from(p: Precision) -> u32 {
        p.bits()
    }
}

/// How dropped LSBs are treated when scaling precision down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoundingMode {
    /// Zero the dropped LSBs (the cheap option used by the DAS input gating
    /// of Fig. 1a: gated inputs simply stop toggling).
    #[default]
    Truncate,
    /// Round to nearest on the retained grid (ties toward positive infinity).
    /// Slightly more accurate for the same activity reduction.
    RoundNearest,
}

/// Quantizes 16-bit words onto a reduced-precision grid.
///
/// The quantizer keeps the word on the full 16-bit scale — it only zeroes the
/// dropped LSBs — which is exactly what input gating does in hardware.
///
/// # Example
///
/// ```
/// use dvafs_arith::{Precision, Quantizer, RoundingMode};
///
/// let q = Quantizer::new(Precision::new(8)?, RoundingMode::Truncate);
/// assert_eq!(q.quantize(0x1234), 0x1200);
/// assert_eq!(q.quantize(-1), -256); // truncation is toward -inf in two's complement
/// # Ok::<(), dvafs_arith::ArithError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quantizer {
    precision: Precision,
    mode: RoundingMode,
}

impl Quantizer {
    /// Creates a quantizer for the given precision and rounding mode.
    #[must_use]
    pub fn new(precision: Precision, mode: RoundingMode) -> Self {
        Quantizer { precision, mode }
    }

    /// The configured precision.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The configured rounding mode.
    #[must_use]
    pub fn rounding_mode(&self) -> RoundingMode {
        self.mode
    }

    /// Quantizes one 16-bit word (as `i32` to avoid overflow on rounding).
    ///
    /// The result stays within the `i16` range.
    #[must_use]
    pub fn quantize(&self, x: i32) -> i32 {
        let drop = self.precision.dropped_bits();
        if drop == 0 {
            return x;
        }
        let x = x.clamp(i32::from(i16::MIN), i32::from(i16::MAX));
        match self.mode {
            RoundingMode::Truncate => (x >> drop) << drop,
            RoundingMode::RoundNearest => {
                let step = 1i32 << drop;
                let rounded = (x + step / 2) >> drop << drop;
                rounded.clamp(i32::from(i16::MIN), self.precision.max_value())
            }
        }
    }

    /// Quantizes a slice of words in place.
    pub fn quantize_slice(&self, xs: &mut [i32]) {
        for x in xs {
            *x = self.quantize(*x);
        }
    }

    /// The worst-case quantization error magnitude for this quantizer.
    ///
    /// Rounding halves the error in the interior of the range, but near
    /// the positive end of the grid it saturates (there is no grid point
    /// above [`Precision::max_value`]), so the *worst-case* bound is the
    /// full step for both modes; see [`typical_error`](Self::typical_error)
    /// for the interior bound.
    #[must_use]
    pub fn max_error(&self) -> i32 {
        let drop = self.precision.dropped_bits();
        if drop == 0 {
            return 0;
        }
        (1 << drop) - 1
    }

    /// The error bound away from the saturating positive edge: a full step
    /// for truncation, half a step for rounding.
    #[must_use]
    pub fn typical_error(&self) -> i32 {
        let drop = self.precision.dropped_bits();
        if drop == 0 {
            return 0;
        }
        match self.mode {
            RoundingMode::Truncate => (1 << drop) - 1,
            RoundingMode::RoundNearest => 1 << (drop - 1),
        }
    }
}

/// A Q-format fixed-point number: `value = raw / 2^frac_bits`.
///
/// Used by the CNN substrate to carry real-valued weights and activations on
/// the integer data path that the DVAFS multiplier processes.
///
/// # Example
///
/// ```
/// use dvafs_arith::Fixed;
///
/// let x = Fixed::from_f64(0.5, 8);
/// let y = Fixed::from_f64(-0.25, 8);
/// let p = x.mul(y);
/// assert!((p.to_f64() - (-0.125)).abs() < 1e-2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fixed {
    raw: i32,
    frac_bits: u32,
}

impl Fixed {
    /// Creates a fixed-point value from a raw integer and fractional bit count.
    #[must_use]
    pub fn from_raw(raw: i32, frac_bits: u32) -> Self {
        Fixed { raw, frac_bits }
    }

    /// Converts a float onto the Q-grid with rounding to nearest, saturating
    /// to the `i16` range (the DVAFS word width).
    #[must_use]
    pub fn from_f64(x: f64, frac_bits: u32) -> Self {
        let scaled = (x * f64::from(1i32 << frac_bits)).round();
        let raw = scaled.clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i32;
        Fixed { raw, frac_bits }
    }

    /// The raw integer payload.
    #[must_use]
    pub fn raw(self) -> i32 {
        self.raw
    }

    /// Number of fractional bits in the Q format.
    #[must_use]
    pub fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Converts back to a float.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        f64::from(self.raw) / f64::from(1i32 << self.frac_bits)
    }

    /// Fixed-point multiply: the product keeps `self.frac_bits` fractional
    /// bits (the partner's fractional bits are shifted out of the wide
    /// product, as a MAC unit's post-shift would).
    // Not `std::ops::Mul`: the result's Q format follows self, not rhs, so
    // the operation is deliberately asymmetric.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn mul(self, rhs: Fixed) -> Fixed {
        let wide = i64::from(self.raw) * i64::from(rhs.raw);
        let raw = (wide >> rhs.frac_bits).clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i32;
        Fixed {
            raw,
            frac_bits: self.frac_bits,
        }
    }

    /// Saturating fixed-point add. Both operands must share a Q format.
    ///
    /// # Panics
    ///
    /// Panics if the two operands have different `frac_bits`.
    // Not `std::ops::Add`: saturates and panics on Q-format mismatch, which
    // the operator's anyone-can-call ergonomics would hide.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, rhs: Fixed) -> Fixed {
        assert_eq!(
            self.frac_bits, rhs.frac_bits,
            "fixed-point add requires matching Q formats"
        );
        let raw = (self.raw + rhs.raw).clamp(i32::from(i16::MIN), i32::from(i16::MAX));
        Fixed {
            raw,
            frac_bits: self.frac_bits,
        }
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}(Q{})", self.to_f64(), self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_rejects_zero_and_too_wide() {
        assert!(Precision::new(0).is_err());
        assert!(Precision::new(17).is_err());
        assert!(Precision::new(1).is_ok());
        assert!(Precision::new(16).is_ok());
    }

    #[test]
    fn precision_dropped_bits_complements_bits() {
        for b in 1..=16 {
            let p = Precision::new(b).unwrap();
            assert_eq!(p.bits() + p.dropped_bits(), 16);
        }
    }

    #[test]
    fn paper_sweep_is_4_8_12_16() {
        let bits: Vec<u32> = Precision::paper_sweep().iter().map(|p| p.bits()).collect();
        assert_eq!(bits, vec![4, 8, 12, 16]);
    }

    #[test]
    fn truncate_zeroes_low_bits() {
        let q = Quantizer::new(Precision::new(12).unwrap(), RoundingMode::Truncate);
        assert_eq!(q.quantize(0x7FFF), 0x7FF0);
        assert_eq!(q.quantize(0x0008), 0x0000);
        assert_eq!(q.quantize(0x0010), 0x0010);
    }

    #[test]
    fn truncate_negative_is_floor() {
        let q = Quantizer::new(Precision::new(8).unwrap(), RoundingMode::Truncate);
        // -1 floors to -256 on a 256-step grid.
        assert_eq!(q.quantize(-1), -256);
        assert_eq!(q.quantize(-256), -256);
    }

    #[test]
    fn round_nearest_halves_typical_error() {
        let p = Precision::new(8).unwrap();
        let t = Quantizer::new(p, RoundingMode::Truncate);
        let r = Quantizer::new(p, RoundingMode::RoundNearest);
        assert_eq!(t.max_error(), 255);
        assert_eq!(r.max_error(), 255); // saturation at the positive edge
        assert_eq!(t.typical_error(), 255);
        assert_eq!(r.typical_error(), 128);
    }

    #[test]
    fn rounding_error_never_exceeds_truncation_error_pointwise() {
        let p = Precision::new(3).unwrap();
        let t = Quantizer::new(p, RoundingMode::Truncate);
        let r = Quantizer::new(p, RoundingMode::RoundNearest);
        for x in (i32::from(i16::MIN)..=i32::from(i16::MAX)).step_by(97) {
            let et = (x - t.quantize(x)).abs();
            let er = (x - r.quantize(x)).abs();
            assert!(er <= et, "x={x}: round err {er} > trunc err {et}");
        }
    }

    #[test]
    fn round_nearest_saturates_at_positive_max() {
        let q = Quantizer::new(Precision::new(8).unwrap(), RoundingMode::RoundNearest);
        let out = q.quantize(i32::from(i16::MAX));
        assert!(out <= i32::from(i16::MAX));
        assert_eq!(out % 256, 0);
    }

    #[test]
    fn full_precision_is_identity() {
        let q = Quantizer::new(Precision::FULL, RoundingMode::Truncate);
        for x in [-32768, -1, 0, 1, 32767, 12345] {
            assert_eq!(q.quantize(x), x);
        }
    }

    #[test]
    fn quantize_slice_matches_scalar() {
        let q = Quantizer::new(Precision::new(4).unwrap(), RoundingMode::Truncate);
        let mut xs = vec![100, -100, 4096, -4096];
        let expect: Vec<i32> = xs.iter().map(|&x| q.quantize(x)).collect();
        q.quantize_slice(&mut xs);
        assert_eq!(xs, expect);
    }

    #[test]
    fn fixed_roundtrip_small_values() {
        for &v in &[0.0, 0.5, -0.5, 0.123, -0.999] {
            let f = Fixed::from_f64(v, 12);
            assert!((f.to_f64() - v).abs() < 1.0 / 4096.0);
        }
    }

    #[test]
    fn fixed_mul_matches_float_product() {
        let a = Fixed::from_f64(1.5, 8);
        let b = Fixed::from_f64(-2.0, 8);
        assert!((a.mul(b).to_f64() + 3.0).abs() < 0.02);
    }

    #[test]
    fn fixed_add_saturates() {
        let a = Fixed::from_raw(i32::from(i16::MAX), 0);
        let b = Fixed::from_raw(10, 0);
        assert_eq!(a.add(b).raw(), i32::from(i16::MAX));
    }

    #[test]
    #[should_panic(expected = "matching Q formats")]
    fn fixed_add_rejects_mismatched_formats() {
        let a = Fixed::from_f64(1.0, 8);
        let b = Fixed::from_f64(1.0, 4);
        let _ = a.add(b);
    }

    #[test]
    fn precision_display() {
        assert_eq!(Precision::new(4).unwrap().to_string(), "4b");
    }

    #[test]
    fn max_value_respects_grid() {
        let p = Precision::new(8).unwrap();
        assert_eq!(p.max_value(), 0x7F00);
        assert_eq!(Precision::FULL.max_value(), 0x7FFF);
    }
}
