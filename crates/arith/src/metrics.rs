//! Error metrics for approximate arithmetic.
//!
//! Fig. 3b of the paper expresses accuracy as Root-Mean-Square Error (RMSE)
//! of the multiplier output, normalized so that different designs can share
//! one axis. These helpers compute absolute and full-scale-relative RMSE
//! over operand streams.

use crate::multiplier::ApproximateMultiplier;
use rand::{Rng, SeedableRng};

/// Full-scale product value of a 16×16 unsigned multiplier, used to
/// normalize RMSE onto the paper's relative axis.
pub const FULL_SCALE: f64 = 4294836225.0; // 65535 * 65535

/// RMSE of a set of signed errors.
///
/// # Example
///
/// ```
/// use dvafs_arith::metrics::rmse;
///
/// assert!((rmse(&[3.0, -4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
/// assert_eq!(rmse(&[]), 0.0);
/// ```
#[must_use]
pub fn rmse(errors: &[f64]) -> f64 {
    if errors.is_empty() {
        return 0.0;
    }
    (errors.iter().map(|e| e * e).sum::<f64>() / errors.len() as f64).sqrt()
}

/// Deterministic uniform operand stream for error measurement.
#[must_use]
pub fn operand_stream(samples: usize, seed: u64) -> Vec<(u16, u16)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..samples).map(|_| (rng.gen(), rng.gen())).collect()
}

/// Absolute product RMSE of an approximate multiplier over a stream.
#[must_use]
pub fn product_rmse<M: ApproximateMultiplier + ?Sized>(m: &M, pairs: &[(u16, u16)]) -> f64 {
    let errors: Vec<f64> = pairs
        .iter()
        .map(|&(a, b)| {
            let exact = u64::from(a) * u64::from(b);
            m.mul(a, b) as f64 - exact as f64
        })
        .collect();
    rmse(&errors)
}

/// Product RMSE normalized to the full-scale 16×16 product — the x axis of
/// Fig. 3b.
#[must_use]
pub fn relative_rmse<M: ApproximateMultiplier + ?Sized>(m: &M, pairs: &[(u16, u16)]) -> f64 {
    product_rmse(m, pairs) / FULL_SCALE
}

/// RMSE of a reduced-precision (DAS/DVAFS) multiplication, where both
/// operands are truncated to `bits` MSBs of a 16-bit word, normalized to
/// full scale. This is how the DVAFS curve of Fig. 3b maps precision to the
/// shared RMSE axis.
#[must_use]
pub fn precision_relative_rmse(bits: u32, pairs: &[(u16, u16)]) -> f64 {
    let drop = 16 - bits;
    let errors: Vec<f64> = pairs
        .iter()
        .map(|&(a, b)| {
            let exact = u64::from(a) * u64::from(b);
            let aq = u64::from(a >> drop << drop);
            let bq = u64::from(b >> drop << drop);
            (aq * bq) as f64 - exact as f64
        })
        .collect();
    rmse(&errors) / FULL_SCALE
}

/// Signal-to-noise ratio in dB between a reference and a degraded signal.
///
/// Used by the JPEG-DCT fault-tolerance demonstration from the paper's
/// introduction (ref \[7\]: 4-bit DCT at ~2 dB SNR loss).
///
/// # Example
///
/// ```
/// use dvafs_arith::metrics::snr_db;
///
/// let reference = vec![1.0, -2.0, 3.0];
/// assert!(snr_db(&reference, &reference).is_infinite());
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn snr_db(reference: &[f64], degraded: &[f64]) -> f64 {
    assert_eq!(reference.len(), degraded.len(), "signal lengths must match");
    let signal: f64 = reference.iter().map(|x| x * x).sum();
    let noise: f64 = reference
        .iter()
        .zip(degraded.iter())
        .map(|(r, d)| (r - d) * (r - d))
        .sum();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::TruncatedMultiplier;

    #[test]
    fn rmse_of_constant_error() {
        assert!((rmse(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn operand_stream_is_deterministic() {
        assert_eq!(operand_stream(10, 7), operand_stream(10, 7));
        assert_ne!(operand_stream(10, 7), operand_stream(10, 8));
    }

    #[test]
    fn exact_multiplier_has_zero_rmse() {
        let m = TruncatedMultiplier::new(0);
        let pairs = operand_stream(100, 1);
        assert_eq!(product_rmse(&m, &pairs), 0.0);
        assert_eq!(relative_rmse(&m, &pairs), 0.0);
    }

    #[test]
    fn precision_rmse_monotone_in_bits() {
        let pairs = operand_stream(400, 2);
        let e4 = precision_relative_rmse(4, &pairs);
        let e8 = precision_relative_rmse(8, &pairs);
        let e12 = precision_relative_rmse(12, &pairs);
        let e16 = precision_relative_rmse(16, &pairs);
        assert!(e4 > e8 && e8 > e12 && e12 > e16);
        assert_eq!(e16, 0.0);
        // 8-bit truncation errors sit around 1e-3..1e-2 relative; the paper
        // plots DVAFS between 1e-6 and 1e-2 for 16..4 bits.
        assert!(e8 > 1e-4 && e8 < 1e-1, "e8={e8}");
    }

    #[test]
    fn snr_decreases_with_noise() {
        let reference: Vec<f64> = (0..64).map(f64::from).collect();
        let slightly: Vec<f64> = reference.iter().map(|x| x + 0.1).collect();
        let very: Vec<f64> = reference.iter().map(|x| x + 5.0).collect();
        assert!(snr_db(&reference, &slightly) > snr_db(&reference, &very));
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn snr_rejects_length_mismatch() {
        let _ = snr_db(&[1.0], &[1.0, 2.0]);
    }
}
