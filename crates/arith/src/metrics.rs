//! Error metrics and bitslice packing for approximate arithmetic.
//!
//! Fig. 3b of the paper expresses accuracy as Root-Mean-Square Error (RMSE)
//! of the multiplier output, normalized so that different designs can share
//! one axis. These helpers compute absolute and full-scale-relative RMSE
//! over operand streams.
//!
//! This module also hosts the **packing/transpose layer** of the bitsliced
//! netlist engine ([`crate::netlist::BitSimulator`]): a Monte-Carlo stream
//! is consumed in [`WORD_LANES`]-sample words, each primary input becoming
//! one `u64` whose lane `s` is sample `s`'s bit. [`pack_stimuli`] /
//! [`unpack_stimuli`] transpose whole stimulus vectors, [`pack_value_bits`]
//! / [`unpack_value_bits`] transpose operand words into bit planes and
//! back; round-trips are exact and the ragged tail keeps only the valid
//! lanes.

use crate::multiplier::ApproximateMultiplier;
use crate::netlist::lane_mask;
use rand::{Rng, SeedableRng};

/// Samples per bitsliced word (re-exported from the netlist engine so the
/// packing layer and its callers agree on the chunk width).
pub const WORD_LANES: usize = crate::netlist::LANES;

/// Transposes up to [`WORD_LANES`] stimulus vectors (one `Vec<bool>` per
/// sample, all the same length) into per-input lane words: word `i`'s lane
/// `s` is `stimuli[s][i]`. The inverse of [`unpack_stimuli`].
///
/// # Panics
///
/// Panics if more than [`WORD_LANES`] stimuli are given or their lengths
/// differ.
#[must_use]
pub fn pack_stimuli(stimuli: &[Vec<bool>]) -> Vec<u64> {
    assert!(
        stimuli.len() <= WORD_LANES,
        "at most {WORD_LANES} samples fit one word, got {}",
        stimuli.len()
    );
    let Some(first) = stimuli.first() else {
        return Vec::new();
    };
    let mut words = vec![0u64; first.len()];
    for (s, stim) in stimuli.iter().enumerate() {
        assert_eq!(stim.len(), first.len(), "stimulus lengths must agree");
        for (i, &bit) in stim.iter().enumerate() {
            words[i] |= u64::from(bit) << s;
        }
    }
    words
}

/// Transposes per-input lane words back into `valid` stimulus vectors —
/// the inverse of [`pack_stimuli`], discarding lanes at and above `valid`.
///
/// # Panics
///
/// Panics if `valid` is not in `1..=`[`WORD_LANES`].
#[must_use]
pub fn unpack_stimuli(words: &[u64], valid: usize) -> Vec<Vec<bool>> {
    let _ = lane_mask(valid); // validates the range
    (0..valid)
        .map(|s| words.iter().map(|w| (w >> s) & 1 == 1).collect())
        .collect()
}

/// Transposes up to [`WORD_LANES`] operand values into `width` bit planes:
/// plane `j`'s lane `s` is bit `j` of `values[s]`. The inverse of
/// [`unpack_value_bits`].
///
/// # Panics
///
/// Panics if more than [`WORD_LANES`] values are given.
#[must_use]
pub fn pack_value_bits(values: &[u64], width: usize) -> Vec<u64> {
    assert!(
        values.len() <= WORD_LANES,
        "at most {WORD_LANES} samples fit one word, got {}",
        values.len()
    );
    let mut planes = vec![0u64; width];
    for (s, &v) in values.iter().enumerate() {
        for (j, plane) in planes.iter_mut().enumerate() {
            *plane |= ((v >> j) & 1) << s;
        }
    }
    planes
}

/// Transposes bit planes back into `valid` per-sample values (plane `j`
/// contributes bit `j`) — the inverse of [`pack_value_bits`].
///
/// # Panics
///
/// Panics if `valid` is not in `1..=`[`WORD_LANES`].
#[must_use]
pub fn unpack_value_bits(planes: &[u64], valid: usize) -> Vec<u64> {
    let _ = lane_mask(valid); // validates the range
    (0..valid)
        .map(|s| {
            planes
                .iter()
                .enumerate()
                .fold(0u64, |acc, (j, p)| acc | (((p >> s) & 1) << j))
        })
        .collect()
}

/// Full-scale product value of a 16×16 unsigned multiplier, used to
/// normalize RMSE onto the paper's relative axis.
pub const FULL_SCALE: f64 = 4294836225.0; // 65535 * 65535

/// RMSE of a set of signed errors.
///
/// # Example
///
/// ```
/// use dvafs_arith::metrics::rmse;
///
/// assert!((rmse(&[3.0, -4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
/// assert_eq!(rmse(&[]), 0.0);
/// ```
#[must_use]
pub fn rmse(errors: &[f64]) -> f64 {
    if errors.is_empty() {
        return 0.0;
    }
    (errors.iter().map(|e| e * e).sum::<f64>() / errors.len() as f64).sqrt()
}

/// Deterministic uniform operand stream for error measurement.
#[must_use]
pub fn operand_stream(samples: usize, seed: u64) -> Vec<(u16, u16)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..samples).map(|_| (rng.gen(), rng.gen())).collect()
}

/// Number of operand pairs per Monte-Carlo chunk of a chunked stream.
///
/// The chunk layout is a property of the *experiment*, not of the machine
/// running it: it never depends on thread count, so any partitioning of the
/// chunks across workers reproduces the same samples.
pub const OPERAND_CHUNK: usize = 256;

/// The seed of chunk `chunk_index` of a stream rooted at `root_seed`.
///
/// A SplitMix64-style finalizer decorrelates neighbouring chunk seeds, so
/// `root_seed` and `root_seed + 1` do not share sample prefixes.
#[must_use]
pub fn chunk_seed(root_seed: u64, chunk_index: usize) -> u64 {
    let mut z =
        root_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(chunk_index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Number of [`OPERAND_CHUNK`]-sized chunks covering `samples` pairs.
#[must_use]
pub fn chunk_count(samples: usize) -> usize {
    samples.div_ceil(OPERAND_CHUNK)
}

/// One chunk of a chunked operand stream: `len` pairs drawn from
/// [`chunk_seed`]`(root_seed, chunk_index)`.
#[must_use]
pub fn operand_chunk(root_seed: u64, chunk_index: usize, len: usize) -> Vec<(u16, u16)> {
    operand_stream(len, chunk_seed(root_seed, chunk_index))
}

/// A `samples`-pair stream as independently seeded chunks.
///
/// Each chunk is self-contained — chunk `i` depends only on `(root_seed,
/// i)` — so chunks can be generated and consumed in parallel while the
/// concatenated stream stays bit-identical to a serial walk.
#[must_use]
pub fn operand_stream_chunked(samples: usize, root_seed: u64) -> Vec<Vec<(u16, u16)>> {
    (0..chunk_count(samples))
        .map(|c| {
            let len = OPERAND_CHUNK.min(samples - c * OPERAND_CHUNK);
            operand_chunk(root_seed, c, len)
        })
        .collect()
}

/// Sum of squared product errors of an approximate multiplier over a chunk
/// — the mergeable partial behind a chunked RMSE.
///
/// Products come from the multiplier's batched
/// [`evaluate_packed`](ApproximateMultiplier::evaluate_packed) entry point
/// in [`WORD_LANES`]-pair batches; the squared errors are accumulated in
/// sample order, so the sum is bit-identical to the one-`mul`-at-a-time
/// fold it replaces.
#[must_use]
pub fn sum_squared_error<M: ApproximateMultiplier + ?Sized>(m: &M, pairs: &[(u16, u16)]) -> f64 {
    let mut sum = 0.0f64;
    for batch in pairs.chunks(WORD_LANES) {
        for (&(a, b), p) in batch.iter().zip(m.evaluate_packed(batch)) {
            let exact = u64::from(a) * u64::from(b);
            let e = p as f64 - exact as f64;
            sum += e * e;
        }
    }
    sum
}

/// Sum of squared errors of a `bits`-MSB truncated multiplication over a
/// chunk (the DVAFS precision-to-RMSE mapping, chunked).
#[must_use]
pub fn precision_sum_squared_error(bits: u32, pairs: &[(u16, u16)]) -> f64 {
    let drop = 16 - bits;
    pairs
        .iter()
        .map(|&(a, b)| {
            let exact = u64::from(a) * u64::from(b);
            let aq = u64::from(a >> drop << drop);
            let bq = u64::from(b >> drop << drop);
            let e = (aq * bq) as f64 - exact as f64;
            e * e
        })
        .sum()
}

/// Folds per-chunk squared-error partials into a full-scale-relative RMSE.
///
/// The fold is sequential in slice order; callers keep partials in chunk
/// order so the result is independent of how chunks were computed.
#[must_use]
pub fn relative_rmse_from_partials(partials: &[f64], samples: usize) -> f64 {
    if samples == 0 {
        return 0.0;
    }
    (partials.iter().sum::<f64>() / samples as f64).sqrt() / FULL_SCALE
}

/// Absolute product RMSE of an approximate multiplier over a stream.
#[must_use]
pub fn product_rmse<M: ApproximateMultiplier + ?Sized>(m: &M, pairs: &[(u16, u16)]) -> f64 {
    let mut errors = Vec::with_capacity(pairs.len());
    for batch in pairs.chunks(WORD_LANES) {
        errors.extend(
            batch
                .iter()
                .zip(m.evaluate_packed(batch))
                .map(|(&(a, b), p)| {
                    let exact = u64::from(a) * u64::from(b);
                    p as f64 - exact as f64
                }),
        );
    }
    rmse(&errors)
}

/// Product RMSE normalized to the full-scale 16×16 product — the x axis of
/// Fig. 3b.
#[must_use]
pub fn relative_rmse<M: ApproximateMultiplier + ?Sized>(m: &M, pairs: &[(u16, u16)]) -> f64 {
    product_rmse(m, pairs) / FULL_SCALE
}

/// RMSE of a reduced-precision (DAS/DVAFS) multiplication, where both
/// operands are truncated to `bits` MSBs of a 16-bit word, normalized to
/// full scale. This is how the DVAFS curve of Fig. 3b maps precision to the
/// shared RMSE axis.
#[must_use]
pub fn precision_relative_rmse(bits: u32, pairs: &[(u16, u16)]) -> f64 {
    let drop = 16 - bits;
    let errors: Vec<f64> = pairs
        .iter()
        .map(|&(a, b)| {
            let exact = u64::from(a) * u64::from(b);
            let aq = u64::from(a >> drop << drop);
            let bq = u64::from(b >> drop << drop);
            (aq * bq) as f64 - exact as f64
        })
        .collect();
    rmse(&errors) / FULL_SCALE
}

/// Signal-to-noise ratio in dB between a reference and a degraded signal.
///
/// Used by the JPEG-DCT fault-tolerance demonstration from the paper's
/// introduction (ref \[7\]: 4-bit DCT at ~2 dB SNR loss).
///
/// # Example
///
/// ```
/// use dvafs_arith::metrics::snr_db;
///
/// let reference = vec![1.0, -2.0, 3.0];
/// assert!(snr_db(&reference, &reference).is_infinite());
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn snr_db(reference: &[f64], degraded: &[f64]) -> f64 {
    assert_eq!(reference.len(), degraded.len(), "signal lengths must match");
    let signal: f64 = reference.iter().map(|x| x * x).sum();
    let noise: f64 = reference
        .iter()
        .zip(degraded.iter())
        .map(|(r, d)| (r - d) * (r - d))
        .sum();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::TruncatedMultiplier;

    #[test]
    fn rmse_of_constant_error() {
        assert!((rmse(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stimuli_transpose_round_trips() {
        // 5 samples x 3 inputs, ragged (5 < 64): the round-trip is exact.
        let stimuli: Vec<Vec<bool>> = (0..5u64)
            .map(|s| (0..3).map(|i| (s >> i) & 1 == 1).collect())
            .collect();
        let words = pack_stimuli(&stimuli);
        assert_eq!(words.len(), 3);
        // Input 0's word lane-packs the LSBs of samples 0..5: 0,1,0,1,0.
        assert_eq!(words[0], 0b01010);
        assert_eq!(unpack_stimuli(&words, 5), stimuli);
        // A full 64-sample word round-trips too.
        let full: Vec<Vec<bool>> = (0..64u64).map(|s| vec![s % 3 == 0, s % 5 == 0]).collect();
        assert_eq!(unpack_stimuli(&pack_stimuli(&full), 64), full);
        assert!(pack_stimuli(&[]).is_empty());
    }

    #[test]
    fn value_bit_planes_round_trip() {
        let values: Vec<u64> = (0..70u64)
            .map(|v| v.wrapping_mul(0xACE1) & 0xFFFF)
            .collect();
        for chunk in values.chunks(WORD_LANES) {
            let planes = pack_value_bits(chunk, 16);
            assert_eq!(planes.len(), 16);
            assert_eq!(unpack_value_bits(&planes, chunk.len()), chunk);
        }
    }

    #[test]
    fn ragged_tail_masks_unused_lanes() {
        // Only the low `valid` lanes survive an unpack; bits planted above
        // them are discarded.
        let mut planes = pack_value_bits(&[3, 1, 2], 2);
        planes[0] |= 1 << 40;
        planes[1] |= 1 << 63;
        assert_eq!(unpack_value_bits(&planes, 3), vec![3, 1, 2]);
        let stimuli = unpack_stimuli(&planes, 3);
        assert_eq!(stimuli.len(), 3);
        assert_eq!(stimuli[0], vec![true, true]);
    }

    #[test]
    #[should_panic(expected = "at most 64 samples")]
    fn packing_rejects_oversized_words() {
        let _ = pack_value_bits(&[0u64; 65], 4);
    }

    #[test]
    fn operand_stream_is_deterministic() {
        assert_eq!(operand_stream(10, 7), operand_stream(10, 7));
        assert_ne!(operand_stream(10, 7), operand_stream(10, 8));
    }

    #[test]
    fn exact_multiplier_has_zero_rmse() {
        let m = TruncatedMultiplier::new(0);
        let pairs = operand_stream(100, 1);
        assert_eq!(product_rmse(&m, &pairs), 0.0);
        assert_eq!(relative_rmse(&m, &pairs), 0.0);
    }

    #[test]
    fn precision_rmse_monotone_in_bits() {
        let pairs = operand_stream(400, 2);
        let e4 = precision_relative_rmse(4, &pairs);
        let e8 = precision_relative_rmse(8, &pairs);
        let e12 = precision_relative_rmse(12, &pairs);
        let e16 = precision_relative_rmse(16, &pairs);
        assert!(e4 > e8 && e8 > e12 && e12 > e16);
        assert_eq!(e16, 0.0);
        // 8-bit truncation errors sit around 1e-3..1e-2 relative; the paper
        // plots DVAFS between 1e-6 and 1e-2 for 16..4 bits.
        assert!(e8 > 1e-4 && e8 < 1e-1, "e8={e8}");
    }

    #[test]
    fn chunked_stream_layout_is_stable() {
        let chunks = operand_stream_chunked(1000, 42);
        assert_eq!(chunks.len(), chunk_count(1000));
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].len(), OPERAND_CHUNK);
        assert_eq!(chunks[3].len(), 1000 - 3 * OPERAND_CHUNK);
        // Chunk i is a pure function of (root, i): regenerating one chunk
        // in isolation reproduces the in-stream chunk.
        assert_eq!(chunks[2], operand_chunk(42, 2, OPERAND_CHUNK));
        // Nearby roots do not share chunks.
        assert_ne!(chunks[0], operand_stream_chunked(1000, 43)[0]);
    }

    #[test]
    fn chunk_seeds_are_decorrelated() {
        let seeds: std::collections::HashSet<u64> = (0..64).map(|c| chunk_seed(7, c)).collect();
        assert_eq!(seeds.len(), 64);
        assert_ne!(chunk_seed(7, 0), chunk_seed(8, 0));
    }

    #[test]
    fn partial_sums_reproduce_whole_stream_rmse() {
        let m = TruncatedMultiplier::new(8);
        let chunks = operand_stream_chunked(600, 9);
        let partials: Vec<f64> = chunks.iter().map(|c| sum_squared_error(&m, c)).collect();
        let merged = relative_rmse_from_partials(&partials, 600);
        let flat: Vec<(u16, u16)> = chunks.iter().flatten().copied().collect();
        let whole = relative_rmse(&m, &flat);
        // Same samples, same math up to summation association.
        assert!((merged - whole).abs() < whole * 1e-12 + 1e-18);
        assert_eq!(relative_rmse_from_partials(&[], 0), 0.0);
    }

    #[test]
    fn precision_partials_match_precision_rmse() {
        let chunks = operand_stream_chunked(512, 3);
        let flat: Vec<(u16, u16)> = chunks.iter().flatten().copied().collect();
        for bits in [4u32, 8, 12, 16] {
            let partials: Vec<f64> = chunks
                .iter()
                .map(|c| precision_sum_squared_error(bits, c))
                .collect();
            let merged = relative_rmse_from_partials(&partials, 512);
            let whole = precision_relative_rmse(bits, &flat);
            assert!((merged - whole).abs() < whole * 1e-12 + 1e-18, "{bits}b");
        }
    }

    #[test]
    fn snr_decreases_with_noise() {
        let reference: Vec<f64> = (0..64).map(f64::from).collect();
        let slightly: Vec<f64> = reference.iter().map(|x| x + 0.1).collect();
        let very: Vec<f64> = reference.iter().map(|x| x + 5.0).collect();
        assert!(snr_db(&reference, &slightly) > snr_db(&reference, &very));
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn snr_rejects_length_mismatch() {
        let _ = snr_db(&[1.0], &[1.0, 2.0]);
    }
}
