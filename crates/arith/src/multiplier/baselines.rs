//! Approximate-multiplier baselines compared against DVAFS in Fig. 3b.
//!
//! The paper positions DVAFS against four published approximate multipliers:
//!
//! * **Kulkarni** \[4\]: the *underdesigned* multiplier built recursively
//!   from a 2×2 block that mis-computes `3×3 = 7` (one flipped output bit),
//!   trading one low-probability error for a smaller cell.
//! * **Kyaw** \[5\]: the *error-tolerant* multiplier that splits the operand
//!   into an accurate MSB section and an approximated LSB section computed
//!   by a carry-free OR chain.
//! * **Liu** \[3\]: approximate partial-product accumulation with
//!   carry-free adders and *configurable partial error recovery* (the `k`
//!   most significant error words are added back).
//! * **de la Guia Solaz** \[8\]: a *programmable truncated* multiplier that
//!   drops partial-product columns below a run-time threshold and adds a
//!   compensation constant.
//!
//! All four are fixed-function or truncation-based: they save energy by
//! removing switched capacitance but keep frequency and (except where
//! noted) voltage unchanged, which is exactly the axis on which DVAFS wins
//! (Section III-A). Each model exposes both its bit-accurate product and a
//! structural relative-energy estimate (active cells vs. the exact design,
//! matching how the references report savings).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Width of the baseline multipliers (operands are unsigned 16-bit, as in
/// the reference designs).
pub const BASELINE_BITS: u32 = 16;

/// A run-time or design-time approximate multiplier with an energy estimate.
///
/// Implementors compute an approximate `a * b` over unsigned 16-bit
/// operands and report the relative energy of their configuration against
/// an exact multiplier of the same width.
pub trait ApproximateMultiplier {
    /// The approximate product.
    fn mul(&self, a: u16, b: u16) -> u64;

    /// Batched entry point: the products of a whole operand batch, in
    /// order. The RMSE integrals feed 64-pair words through this, so
    /// designs with a word-level implementation (the bitsliced gate-level
    /// multipliers) can amortize per-sample overhead; the default simply
    /// maps [`mul`](Self::mul), which keeps every result bit-identical to
    /// the one-at-a-time path.
    fn evaluate_packed(&self, pairs: &[(u16, u16)]) -> Vec<u64> {
        pairs.iter().map(|&(a, b)| self.mul(a, b)).collect()
    }

    /// Energy per operation relative to the exact 16-bit design (1.0 =
    /// exact multiplier energy).
    fn relative_energy(&self) -> f64;

    /// Whether the configuration can be changed at run time (DVAFS and the
    /// truncated multiplier can; the others are design-time fixed).
    fn is_runtime_configurable(&self) -> bool {
        false
    }

    /// Short display name for reports.
    fn name(&self) -> String;
}

// ---------------------------------------------------------------------------
// Kulkarni underdesigned multiplier [4]
// ---------------------------------------------------------------------------

/// The 2×2 *inaccurate* building block of Kulkarni et al.: `3 × 3` yields
/// `7` (binary `111`) instead of `9` (`1001`), saving the block's MSB logic.
#[must_use]
pub fn kulkarni_block(a: u8, b: u8) -> u8 {
    debug_assert!(a < 4 && b < 4);
    if a == 3 && b == 3 {
        7
    } else {
        a * b
    }
}

/// Kulkarni underdesigned multiplier \[4\], built recursively from the
/// inaccurate 2×2 block.
///
/// # Example
///
/// ```
/// use dvafs_arith::multiplier::{ApproximateMultiplier, KulkarniMultiplier};
///
/// let m = KulkarniMultiplier::new();
/// // Errors only arise when some 2-bit digit pair is (3, 3).
/// assert_eq!(m.mul(2, 2), 4);
/// assert_eq!(m.mul(3, 3), 7);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KulkarniMultiplier {
    _private: (),
}

impl KulkarniMultiplier {
    /// Creates the 16-bit underdesigned multiplier.
    #[must_use]
    pub fn new() -> Self {
        KulkarniMultiplier { _private: () }
    }

    fn mul_rec(a: u32, b: u32, bits: u32) -> u64 {
        if bits == 2 {
            return u64::from(kulkarni_block(a as u8, b as u8));
        }
        let h = bits / 2;
        let mask = (1u32 << h) - 1;
        let (ah, al) = (a >> h, a & mask);
        let (bh, bl) = (b >> h, b & mask);
        let hh = Self::mul_rec(ah, bh, h);
        let hl = Self::mul_rec(ah, bl, h);
        let lh = Self::mul_rec(al, bh, h);
        let ll = Self::mul_rec(al, bl, h);
        (hh << bits) + ((hl + lh) << h) + ll
    }
}

impl ApproximateMultiplier for KulkarniMultiplier {
    fn mul(&self, a: u16, b: u16) -> u64 {
        Self::mul_rec(u32::from(a), u32::from(b), BASELINE_BITS)
    }

    // Closed form of the recursive block composition: every 2-bit digit
    // pair multiplies exactly except (3, 3), which yields 7 instead of 9 —
    // so the product is the exact product minus 2 per offending digit pair
    // at that pair's weight. `mul` keeps the recursion as the reference;
    // the batched entry point walks digit-3 masks instead of recursing.
    fn evaluate_packed(&self, pairs: &[(u16, u16)]) -> Vec<u64> {
        // Bit 2i set iff 2-bit digit i of `v` equals 3.
        let digit3 = |v: u16| v & (v >> 1) & 0x5555;
        pairs
            .iter()
            .map(|&(a, b)| {
                let db = digit3(b);
                let mut deficit = 0u64;
                let mut pa = digit3(a);
                while pa != 0 {
                    let i = pa.trailing_zeros();
                    let mut pb = db;
                    while pb != 0 {
                        let j = pb.trailing_zeros();
                        deficit += 2u64 << (i + j);
                        pb &= pb - 1;
                    }
                    pa &= pa - 1;
                }
                u64::from(a) * u64::from(b) - deficit
            })
            .collect()
    }

    fn relative_energy(&self) -> f64 {
        // The inaccurate block removes the 4th output bit and its logic;
        // Kulkarni et al. report 31-45 % power savings for the array built
        // from it. We model the mid-range structural saving.
        0.62
    }

    fn name(&self) -> String {
        "Kulkarni [4] underdesigned".to_string()
    }
}

// ---------------------------------------------------------------------------
// Kyaw error-tolerant multiplier [5]
// ---------------------------------------------------------------------------

/// Kyaw et al.'s error-tolerant multiplier \[5\]: the operands are split at
/// `split` bits; the MSB sections multiply exactly while the LSB sections
/// are approximated by a carry-free OR chain that saturates low-order bits
/// after the first set bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KyawMultiplier {
    split: u32,
}

impl KyawMultiplier {
    /// Creates an error-tolerant multiplier with the given LSB-section width
    /// (the reference uses half the operand width; `split = 8`).
    ///
    /// # Panics
    ///
    /// Panics if `split` is not in `0..=15`.
    #[must_use]
    pub fn new(split: u32) -> Self {
        assert!(
            split < BASELINE_BITS,
            "split must leave an accurate MSB part"
        );
        KyawMultiplier { split }
    }

    /// The LSB-section width.
    #[must_use]
    pub fn split(&self) -> u32 {
        self.split
    }

    /// The carry-free "non-multiplication" of the LSB sections: scanning
    /// from the MSB of the section, every bit is the OR of the operand
    /// bits; after the first position where **both** bits are set, all
    /// lower product bits saturate to 1.
    fn non_multiplication(al: u32, bl: u32, w: u32) -> u64 {
        if w == 0 {
            return 0;
        }
        let mut out: u64 = 0;
        let mut saturate = false;
        for i in (0..w).rev() {
            let ab = (al >> i) & 1;
            let bb = (bl >> i) & 1;
            if saturate {
                out |= 1 << i;
            } else {
                out |= u64::from(ab | bb) << i;
                if ab & bb == 1 {
                    saturate = true;
                }
            }
        }
        // The section contributes to the product's low 2w bits; the ETM
        // places the approximation in the upper w of those.
        out << w
    }
}

impl Default for KyawMultiplier {
    fn default() -> Self {
        KyawMultiplier::new(8)
    }
}

impl ApproximateMultiplier for KyawMultiplier {
    fn mul(&self, a: u16, b: u16) -> u64 {
        let s = self.split;
        let mask = (1u32 << s) - 1;
        let (ah, al) = (u32::from(a) >> s, u32::from(a) & mask);
        let (bh, bl) = (u32::from(b) >> s, u32::from(b) & mask);
        // Accurate part: ah*bh plus the cross terms (the ETM keeps cross
        // terms in the accurate section for usable accuracy).
        let accurate = ((u64::from(ah) * u64::from(bh)) << (2 * s))
            + ((u64::from(ah) * u64::from(bl) + u64::from(al) * u64::from(bh)) << s);
        accurate + Self::non_multiplication(al, bl, s)
    }

    fn relative_energy(&self) -> f64 {
        // Cell count of an n-bit array scales ~n^2. The LSB x LSB quadrant
        // is replaced by an OR chain (~linear cells).
        let n = f64::from(BASELINE_BITS);
        let s = f64::from(self.split);
        let exact_cells = n * n;
        let kept = n * n - s * s + 2.0 * s; // quadrant removed, OR chain added
        kept / exact_cells
    }

    fn name(&self) -> String {
        format!("Kyaw [5] ETM (split={})", self.split)
    }
}

// ---------------------------------------------------------------------------
// Liu approximate multiplier with configurable partial error recovery [3]
// ---------------------------------------------------------------------------

/// Liu et al.'s approximate multiplier \[3\]: partial products are
/// accumulated with carry-free approximate adders (`sum = a | b` per bit,
/// which errs exactly where both bits are set); the `recovery` most
/// significant error words are added back exactly.
///
/// With `recovery = 0` the design is fully approximate; larger values trade
/// energy for accuracy. An optional voltage-scaling flag models the
/// `[3] + VS` curve of Fig. 3b (the carry-free adder's short critical path
/// allows a lower supply).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiuMultiplier {
    recovery: u32,
    voltage_scaled: bool,
}

impl LiuMultiplier {
    /// Creates the multiplier with `recovery` error-recovery stages
    /// (`0..=16`).
    ///
    /// # Panics
    ///
    /// Panics if `recovery > 16`.
    #[must_use]
    pub fn new(recovery: u32) -> Self {
        assert!(
            recovery <= BASELINE_BITS,
            "at most one recovery word per row"
        );
        LiuMultiplier {
            recovery,
            voltage_scaled: false,
        }
    }

    /// Enables the voltage-scaled variant (`[3] + VS` in Fig. 3b).
    #[must_use]
    pub fn with_voltage_scaling(mut self) -> Self {
        self.voltage_scaled = true;
        self
    }

    /// Number of error-recovery stages.
    #[must_use]
    pub fn recovery(&self) -> u32 {
        self.recovery
    }

    /// Carry-free approximate add: per-bit OR; the error word collects the
    /// positions where both bits were set (each worth one missing carry).
    fn approx_add(a: u64, b: u64) -> (u64, u64) {
        (a | b, a & b)
    }
}

impl Default for LiuMultiplier {
    fn default() -> Self {
        LiuMultiplier::new(4)
    }
}

impl ApproximateMultiplier for LiuMultiplier {
    // Buffer-reusing batch variant of `mul`: the same pairing tree and the
    // same error-recovery order, so every product is bit-identical — the
    // batched entry point just hoists the per-call row/error allocations
    // out of the Monte-Carlo RMSE loop.
    fn evaluate_packed(&self, pairs: &[(u16, u16)]) -> Vec<u64> {
        let n = BASELINE_BITS as usize;
        let mut rows: Vec<u64> = Vec::with_capacity(n);
        let mut next: Vec<u64> = Vec::with_capacity(n.div_ceil(2));
        let mut errors: Vec<u64> = Vec::with_capacity(n);
        pairs
            .iter()
            .map(|&(a, b)| {
                rows.clear();
                errors.clear();
                rows.extend((0..BASELINE_BITS).map(|i| {
                    if (b >> i) & 1 == 1 {
                        u64::from(a) << i
                    } else {
                        0
                    }
                }));
                while rows.len() > 1 {
                    next.clear();
                    for pair in rows.chunks(2) {
                        if pair.len() == 2 {
                            let (s, e) = Self::approx_add(pair[0], pair[1]);
                            // With no recovery stages the error words are
                            // never consulted: skip collecting them.
                            if e != 0 && self.recovery > 0 {
                                errors.push(e);
                            }
                            next.push(s);
                        } else {
                            next.push(pair[0]);
                        }
                    }
                    std::mem::swap(&mut rows, &mut next);
                }
                let mut product = rows[0];
                errors.sort_unstable_by(|x, y| y.cmp(x));
                for &e in errors.iter().take(self.recovery as usize) {
                    product = product.wrapping_add(e);
                }
                product & 0xFFFF_FFFF
            })
            .collect()
    }

    fn mul(&self, a: u16, b: u16) -> u64 {
        // Generate the 16 partial products.
        let mut rows: Vec<u64> = (0..BASELINE_BITS)
            .map(|i| {
                if (b >> i) & 1 == 1 {
                    u64::from(a) << i
                } else {
                    0
                }
            })
            .collect();
        // Tree of carry-free adds, accumulating error words.
        let mut errors: Vec<u64> = Vec::new();
        while rows.len() > 1 {
            let mut next = Vec::with_capacity(rows.len().div_ceil(2));
            for pair in rows.chunks(2) {
                if pair.len() == 2 {
                    let (s, e) = Self::approx_add(pair[0], pair[1]);
                    if e != 0 {
                        errors.push(e);
                    }
                    next.push(s);
                } else {
                    next.push(pair[0]);
                }
            }
            rows = next;
        }
        let mut product = rows[0];
        // Partial error recovery: since `a + b = (a | b) + (a & b)`, adding
        // an error word back exactly repairs that approximate addition. The
        // `recovery` numerically largest error words are recovered.
        errors.sort_unstable_by(|x, y| y.cmp(x));
        for e in errors.into_iter().take(self.recovery as usize) {
            product = product.wrapping_add(e);
        }
        product & 0xFFFF_FFFF
    }

    fn relative_energy(&self) -> f64 {
        // The carry-free adder removes the carry chain (~35 % of adder
        // energy); each recovery stage adds one exact adder back.
        let base = 0.55;
        let per_recovery = 0.035;
        let energy = base + per_recovery * f64::from(self.recovery);
        if self.voltage_scaled {
            // Short critical path allows ~0.95 V in a 1.1 V technology.
            energy * (0.95f64 / 1.1).powi(2)
        } else {
            energy
        }
    }

    fn is_runtime_configurable(&self) -> bool {
        false
    }

    fn name(&self) -> String {
        if self.voltage_scaled {
            format!("Liu [3]+VS (k={})", self.recovery)
        } else {
            format!("Liu [3] (k={})", self.recovery)
        }
    }
}

// ---------------------------------------------------------------------------
// de la Guia Solaz programmable truncated multiplier [8]
// ---------------------------------------------------------------------------

/// The run-time *programmable truncated* multiplier of de la Guia Solaz
/// et al. \[8\]: partial-product bits in columns below `threshold` are not
/// generated; a constant compensation term recentres the truncation error.
///
/// This is the only baseline with a run-time knob, which is why it is the
/// closest competitor to DVAFS at high accuracy in Fig. 3b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TruncatedMultiplier {
    threshold: u32,
}

impl TruncatedMultiplier {
    /// Creates a truncated multiplier dropping PP columns below `threshold`
    /// (`0..=31`; 0 means exact).
    ///
    /// # Panics
    ///
    /// Panics if `threshold > 31`.
    #[must_use]
    pub fn new(threshold: u32) -> Self {
        assert!(threshold < 32, "threshold must be below the product width");
        TruncatedMultiplier { threshold }
    }

    /// The current truncation column.
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Reprograms the truncation column at run time.
    pub fn set_threshold(&mut self, threshold: u32) {
        assert!(threshold < 32, "threshold must be below the product width");
        self.threshold = threshold;
    }
}

impl Default for TruncatedMultiplier {
    fn default() -> Self {
        TruncatedMultiplier::new(0)
    }
}

impl ApproximateMultiplier for TruncatedMultiplier {
    // Closed form of `mul`'s kept-cell double loop: the kept partial
    // products are the full product minus the bits that fall below the
    // truncation column — the same integer, in 16 row ops instead of 256
    // cell visits. `mul` stays as the cell-by-cell reference.
    fn evaluate_packed(&self, pairs: &[(u16, u16)]) -> Vec<u64> {
        let t = self.threshold;
        let compensation = if t == 0 { 0 } else { (1u64 << t) >> 1 };
        pairs
            .iter()
            .map(|&(a, b)| {
                let mut dropped = 0u64;
                for i in 0..t.min(BASELINE_BITS) {
                    if (a >> i) & 1 == 1 {
                        // Row i drops b's bits j with i + j < t.
                        let mask = (1u64 << (t - i).min(BASELINE_BITS)) - 1;
                        dropped += (u64::from(b) & mask) << i;
                    }
                }
                let full = u64::from(a) * u64::from(b);
                (full - dropped + compensation) & 0xFFFF_FFFF
            })
            .collect()
    }

    fn mul(&self, a: u16, b: u16) -> u64 {
        let t = self.threshold;
        let mut sum: u64 = 0;
        let mut kept_cells = 0u32;
        for i in 0..BASELINE_BITS {
            if (a >> i) & 1 == 0 {
                continue;
            }
            for j in 0..BASELINE_BITS {
                if (b >> j) & 1 == 1 && i + j >= t {
                    sum += 1u64 << (i + j);
                    kept_cells += 1;
                }
            }
        }
        let _ = kept_cells;
        // Average compensation: each dropped column contributes an expected
        // quarter of its full weight; the closed form is half the
        // truncation threshold's weight.
        let compensation = if t == 0 { 0 } else { (1u64 << t) >> 1 };
        (sum + compensation) & 0xFFFF_FFFF
    }

    fn relative_energy(&self) -> f64 {
        // Active PP cells: cells in column c (c = i+j, i,j < 16) number
        // min(c+1, 16, 32-1-c). Energy tracks the kept-cell fraction plus a
        // fixed control overhead for programmability.
        let total: u32 = (0..31).map(column_cells).sum();
        let kept: u32 = (self.threshold..31).map(column_cells).sum();
        0.06 + 0.94 * f64::from(kept) / f64::from(total)
    }

    fn is_runtime_configurable(&self) -> bool {
        true
    }

    fn name(&self) -> String {
        format!("de la Guia Solaz [8] trunc(t={})", self.threshold)
    }
}

/// Number of partial-product cells in column `c` of a 16×16 array.
#[must_use]
pub fn column_cells(c: u32) -> u32 {
    let n = BASELINE_BITS;
    (c + 1).min(n).min(2 * n - 1 - c)
}

impl fmt::Display for TruncatedMultiplier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rmse<M: ApproximateMultiplier>(m: &M, samples: usize, seed: u64) -> f64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut se = 0.0;
        for _ in 0..samples {
            let a: u16 = rng.gen();
            let b: u16 = rng.gen();
            let exact = u64::from(a) * u64::from(b);
            let err = m.mul(a, b) as f64 - exact as f64;
            se += err * err;
        }
        (se / samples as f64).sqrt()
    }

    #[test]
    fn kulkarni_block_truth_table() {
        for a in 0..4u8 {
            for b in 0..4u8 {
                let expect = if a == 3 && b == 3 { 7 } else { a * b };
                assert_eq!(kulkarni_block(a, b), expect);
            }
        }
    }

    #[test]
    fn kulkarni_exact_when_no_33_digit_pair() {
        let m = KulkarniMultiplier::new();
        // Operands whose 2-bit digits never pair (3,3).
        for (a, b) in [(0x1111u16, 0x2222u16), (0x0505, 0x0A0A), (1234, 4321)] {
            let has_33 = (0..8).any(|d| {
                let da = (a >> (2 * d)) & 3;
                let db = (b >> (2 * d)) & 3;
                da == 3 && db == 3
            });
            if !has_33 {
                // Necessary but not sufficient (cross digits matter); only
                // assert when digits are small enough to be safe.
                let all_small =
                    (0..8).all(|d| ((a >> (2 * d)) & 3) < 3 || ((b >> (2 * d)) & 3) < 3);
                if all_small {
                    assert_eq!(m.mul(a, b), u64::from(a) * u64::from(b));
                }
            }
        }
    }

    #[test]
    fn kulkarni_error_is_always_nonpositive() {
        // The block under-estimates (7 < 9), so products never overshoot.
        let m = KulkarniMultiplier::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let a: u16 = rng.gen();
            let b: u16 = rng.gen();
            assert!(m.mul(a, b) <= u64::from(a) * u64::from(b));
        }
    }

    #[test]
    fn kyaw_msb_section_is_exact() {
        let m = KyawMultiplier::new(8);
        // Pure-MSB operands (low 8 bits zero) multiply exactly.
        for (a, b) in [(0x1200u16, 0x3400u16), (0xFF00, 0x0100)] {
            assert_eq!(m.mul(a, b), u64::from(a) * u64::from(b));
        }
    }

    #[test]
    fn kyaw_error_is_bounded_by_lsb_section() {
        let m = KyawMultiplier::new(8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bound = (1u64 << 16) as f64 * 3.0; // lsb x lsb section scale
        for _ in 0..300 {
            let a: u16 = rng.gen();
            let b: u16 = rng.gen();
            let err = (m.mul(a, b) as f64 - (u64::from(a) * u64::from(b)) as f64).abs();
            assert!(err <= bound, "err={err}");
        }
    }

    #[test]
    fn liu_full_recovery_is_more_accurate_than_none() {
        let none = LiuMultiplier::new(0);
        let full = LiuMultiplier::new(16);
        assert!(rmse(&full, 300, 4) < rmse(&none, 300, 4));
    }

    #[test]
    fn liu_energy_increases_with_recovery() {
        assert!(LiuMultiplier::new(8).relative_energy() > LiuMultiplier::new(2).relative_energy());
    }

    #[test]
    fn liu_voltage_scaling_lowers_energy() {
        let plain = LiuMultiplier::new(4);
        let vs = LiuMultiplier::new(4).with_voltage_scaling();
        assert!(vs.relative_energy() < plain.relative_energy());
        assert_eq!(vs.mul(100, 200), plain.mul(100, 200));
    }

    #[test]
    fn truncated_threshold_zero_is_exact() {
        let m = TruncatedMultiplier::new(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let a: u16 = rng.gen();
            let b: u16 = rng.gen();
            assert_eq!(m.mul(a, b), u64::from(a) * u64::from(b));
        }
    }

    #[test]
    fn truncated_error_grows_with_threshold() {
        let e4 = rmse(&TruncatedMultiplier::new(4), 300, 6);
        let e12 = rmse(&TruncatedMultiplier::new(12), 300, 6);
        let e20 = rmse(&TruncatedMultiplier::new(20), 300, 6);
        assert!(e4 < e12 && e12 < e20, "e4={e4} e12={e12} e20={e20}");
    }

    #[test]
    fn truncated_energy_drops_with_threshold() {
        let m0 = TruncatedMultiplier::new(0);
        let m16 = TruncatedMultiplier::new(16);
        assert!(m16.relative_energy() < m0.relative_energy());
        assert!(m0.relative_energy() <= 1.0 + 1e-9);
    }

    #[test]
    fn truncated_is_runtime_configurable() {
        let mut m = TruncatedMultiplier::new(4);
        assert!(m.is_runtime_configurable());
        m.set_threshold(10);
        assert_eq!(m.threshold(), 10);
    }

    #[test]
    fn column_cells_sums_to_array_size() {
        let total: u32 = (0..31).map(column_cells).sum();
        assert_eq!(total, 256);
    }

    #[test]
    fn evaluate_packed_matches_scalar_mul() {
        // Every baseline — including the buffer-reusing Liu override and
        // the closed-form truncated override at each threshold regime —
        // must reproduce `mul` exactly.
        let mut ms: Vec<Box<dyn ApproximateMultiplier>> = vec![
            Box::new(KulkarniMultiplier::new()),
            Box::new(KyawMultiplier::new(8)),
        ];
        for k in [0u32, 2, 4, 6, 12, 16] {
            ms.push(Box::new(LiuMultiplier::new(k)));
        }
        for t in [0u32, 4, 8, 12, 16, 20, 31] {
            ms.push(Box::new(TruncatedMultiplier::new(t)));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut pairs: Vec<(u16, u16)> = (0..200).map(|_| (rng.gen(), rng.gen())).collect();
        pairs.extend([(0, 0), (0xFFFF, 0xFFFF), (1, 0xFFFF), (0x8000, 0x8000)]);
        for m in &ms {
            let batched = m.evaluate_packed(&pairs);
            let scalar: Vec<u64> = pairs.iter().map(|&(a, b)| m.mul(a, b)).collect();
            assert_eq!(batched, scalar, "{}", m.name());
        }
    }

    #[test]
    fn all_baselines_report_sub_unity_energy() {
        let ms: Vec<Box<dyn ApproximateMultiplier>> = vec![
            Box::new(KulkarniMultiplier::new()),
            Box::new(KyawMultiplier::new(8)),
            Box::new(LiuMultiplier::new(4)),
            Box::new(TruncatedMultiplier::new(8)),
        ];
        for m in &ms {
            let e = m.relative_energy();
            assert!(e > 0.0 && e < 1.0, "{}: {e}", m.name());
        }
    }
}
