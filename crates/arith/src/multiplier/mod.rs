//! Multiplier models: exact, DAS, DVAFS and approximate baselines.
//!
//! * [`exact`] — bit-accurate gate-level reference multipliers: a signed
//!   Booth-encoded Wallace-tree multiplier (the paper's design style) and an
//!   unsigned array multiplier.
//! * [`das`] — Dynamic-Accuracy-Scaling: run-time input LSB gating
//!   (Section II-A / Fig. 1a).
//! * [`dvafs`] — the subword-parallel DVAFS multiplier (Section II-C /
//!   Fig. 1b), both as a behavioral packed-lane unit and as a mode-gated
//!   gate-level netlist for activity extraction.
//! * [`baselines`] — re-implementations of the approximate multipliers the
//!   paper compares against in Fig. 3b: Kulkarni \[4\], Kyaw \[5\], Liu \[3\] and
//!   the programmable truncated multiplier of de la Guia Solaz \[8\].

pub mod baselines;
pub mod das;
pub mod dvafs;
pub mod exact;

pub use baselines::{
    ApproximateMultiplier, KulkarniMultiplier, KyawMultiplier, LiuMultiplier, TruncatedMultiplier,
};
pub use das::DasMultiplier;
pub use dvafs::DvafsMultiplier;
pub use exact::{build_array_multiplier, build_booth_wallace, ExactMultiplier};
