//! Dynamic-Accuracy-Scaling (DAS) multiplier.
//!
//! DAS (paper Section II-A) truncates or rounds a variable number of input
//! LSBs at run time. The gated bits stop toggling, which reduces the
//! circuit's switching activity by the factor `k0` of equation (1) and
//! shortens the sensitizable critical path (enabling DVAS voltage scaling).
//!
//! The functional behaviour is exactly "multiply the quantized operands";
//! the physical behaviour (activity, path length) is extracted by driving
//! the underlying gate-level multiplier with gated stimuli.

use crate::fixed::{Precision, Quantizer, RoundingMode};
use crate::multiplier::exact::ExactMultiplier;

/// A run-time precision-scalable multiplier with LSB input gating.
///
/// # Example
///
/// ```
/// use dvafs_arith::multiplier::DasMultiplier;
/// use dvafs_arith::{Precision, RoundingMode};
///
/// let mut m = DasMultiplier::new(RoundingMode::Truncate);
/// m.set_precision(Precision::new(8)?);
/// // Operands are quantized to 8 MSBs before multiplying.
/// assert_eq!(m.mul(0x1234, 0x0101), 0x1200i64 * 0x0100);
/// # Ok::<(), dvafs_arith::ArithError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DasMultiplier {
    inner: ExactMultiplier,
    quantizer: Quantizer,
}

impl DasMultiplier {
    /// Creates a 16-bit DAS multiplier at full precision.
    #[must_use]
    pub fn new(mode: RoundingMode) -> Self {
        DasMultiplier {
            inner: ExactMultiplier::booth_wallace(16),
            quantizer: Quantizer::new(Precision::FULL, mode),
        }
    }

    /// Reconfigures the operating precision (the run-time knob of DAS).
    pub fn set_precision(&mut self, precision: Precision) {
        self.quantizer = Quantizer::new(precision, self.quantizer.rounding_mode());
    }

    /// The current operating precision.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.quantizer.precision()
    }

    /// The quantizer applied to both operands.
    #[must_use]
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// The underlying exact multiplier.
    #[must_use]
    pub fn inner(&self) -> &ExactMultiplier {
        &self.inner
    }

    /// Multiplies two 16-bit words at the configured precision.
    #[must_use]
    pub fn mul(&self, x: i32, y: i32) -> i64 {
        let xq = self.quantizer.quantize(x);
        let yq = self.quantizer.quantize(y);
        self.inner.mul(i64::from(xq), i64::from(yq))
    }

    /// Batched entry point: quantizes every operand pair at the configured
    /// precision and evaluates the whole batch through the underlying
    /// gate-level multiplier's bitsliced engine (64 pairs per word) —
    /// bit-identical to calling [`mul`](Self::mul) pair by pair.
    #[must_use]
    pub fn evaluate_packed(&self, pairs: &[(i32, i32)]) -> Vec<i64> {
        let quantized: Vec<(i64, i64)> = pairs
            .iter()
            .map(|&(x, y)| {
                (
                    i64::from(self.quantizer.quantize(x)),
                    i64::from(self.quantizer.quantize(y)),
                )
            })
            .collect();
        self.inner.evaluate_packed(&quantized)
    }

    /// The signed quantization error of the product relative to the exact
    /// full-precision product.
    #[must_use]
    pub fn product_error(&self, x: i32, y: i32) -> i64 {
        self.mul(x, y) - i64::from(x) * i64::from(y)
    }
}

impl Default for DasMultiplier {
    fn default() -> Self {
        DasMultiplier::new(RoundingMode::Truncate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn full_precision_is_exact() {
        let m = DasMultiplier::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = rng.gen_range(-32768..=32767);
            let y = rng.gen_range(-32768..=32767);
            assert_eq!(m.mul(x, y), i64::from(x) * i64::from(y));
        }
    }

    #[test]
    fn product_equals_exact_product_of_quantized_operands() {
        let mut m = DasMultiplier::new(RoundingMode::Truncate);
        for bits in [4u32, 8, 12] {
            m.set_precision(Precision::new(bits).unwrap());
            let q = *m.quantizer();
            let mut rng = rand::rngs::StdRng::seed_from_u64(u64::from(bits));
            for _ in 0..100 {
                let x = rng.gen_range(-32768..=32767);
                let y = rng.gen_range(-32768..=32767);
                let expect = i64::from(q.quantize(x)) * i64::from(q.quantize(y));
                assert_eq!(m.mul(x, y), expect);
            }
        }
    }

    #[test]
    fn evaluate_packed_matches_scalar_mul_at_every_precision() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        // 70 pairs: one full bitsliced word plus a ragged tail.
        let pairs: Vec<(i32, i32)> = (0..70)
            .map(|_| (rng.gen_range(-32768..=32767), rng.gen_range(-32768..=32767)))
            .collect();
        let mut m = DasMultiplier::new(RoundingMode::Truncate);
        for bits in [4u32, 8, 12, 16] {
            m.set_precision(Precision::new(bits).unwrap());
            let expected: Vec<i64> = pairs.iter().map(|&(x, y)| m.mul(x, y)).collect();
            assert_eq!(m.evaluate_packed(&pairs), expected, "{bits}b");
        }
    }

    #[test]
    fn error_shrinks_with_precision() {
        // RMSE at 12b must be far below RMSE at 4b.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let data: Vec<(i32, i32)> = (0..500)
            .map(|_| (rng.gen_range(-32768..=32767), rng.gen_range(-32768..=32767)))
            .collect();
        let rmse = |bits: u32| -> f64 {
            let mut m = DasMultiplier::new(RoundingMode::Truncate);
            m.set_precision(Precision::new(bits).unwrap());
            let se: f64 = data
                .iter()
                .map(|&(x, y)| {
                    let e = m.product_error(x, y) as f64;
                    e * e
                })
                .sum();
            (se / data.len() as f64).sqrt()
        };
        let e4 = rmse(4);
        let e8 = rmse(8);
        let e12 = rmse(12);
        assert!(e4 > e8 && e8 > e12, "e4={e4} e8={e8} e12={e12}");
        assert!(e4 / e8 > 8.0, "per-4-bit error drop should be large");
    }

    #[test]
    fn rounding_beats_truncation_on_average() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let data: Vec<(i32, i32)> = (0..500)
            .map(|_| (rng.gen_range(-32768..=32767), rng.gen_range(-32768..=32767)))
            .collect();
        let rmse = |mode: RoundingMode| -> f64 {
            let mut m = DasMultiplier::new(mode);
            m.set_precision(Precision::new(8).unwrap());
            let se: f64 = data
                .iter()
                .map(|&(x, y)| {
                    let e = m.product_error(x, y) as f64;
                    e * e
                })
                .sum();
            (se / data.len() as f64).sqrt()
        };
        assert!(rmse(RoundingMode::RoundNearest) < rmse(RoundingMode::Truncate));
    }

    #[test]
    fn precision_is_reconfigurable_at_run_time() {
        let mut m = DasMultiplier::default();
        assert_eq!(m.precision().bits(), 16);
        m.set_precision(Precision::new(4).unwrap());
        assert_eq!(m.precision().bits(), 4);
        m.set_precision(Precision::new(16).unwrap());
        assert_eq!(m.mul(-3, 7), -21);
    }
}
