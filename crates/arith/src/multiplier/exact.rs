//! Exact reference multipliers, behavioral and gate-level.

use crate::booth::booth_digits;
use crate::metrics::{pack_value_bits, unpack_value_bits};
use crate::netlist::{from_bits, to_bits, BitSimulator, Netlist, Simulator, LANES};
use crate::wallace::ColumnStack;

/// Builds a signed `n x n` Booth-encoded Wallace-tree multiplier netlist.
///
/// Inputs (in order): `x[0..n]` (LSB first), then `y[0..n]`. Outputs:
/// `p[0..2n]` (LSB first), the exact signed product in two's complement.
///
/// Each radix-4 Booth digit contributes one partial-product row
/// (`one`/`two`/`neg` select lines decoded from overlapping `y` triplets, a
/// sign-extended XOR-negated multiple of `x`, plus a `+neg` correction bit);
/// rows are compressed with a Wallace tree and resolved with a
/// carry-propagate adder.
///
/// # Panics
///
/// Panics if `n` is zero, odd or larger than 32.
#[must_use]
pub fn build_booth_wallace(n: usize) -> Netlist {
    assert!(n > 0 && n % 2 == 0 && n <= 32, "n must be even and <= 32");
    let mut nl = Netlist::new();
    let x = nl.input_bus(n);
    let y = nl.input_bus(n);
    let zero = nl.zero();
    let width = 2 * n;
    let mut stack = ColumnStack::new(width);
    // Accumulated constant from the optimized sign-extension scheme: the
    // replicated sign bits of row i are algebraically replaced by
    // `!sign * 2^(base+n+1) - 2^(base+n+1)` (mod 2^2n), so only one extra
    // (inverted) bit per row can toggle instead of a full run of copies.
    let mut sign_const: u64 = 0;

    for i in 0..n / 2 {
        // Overlapping triplet (y[2i+1], y[2i], y[2i-1]), y[-1] = 0.
        let hi = y[2 * i + 1];
        let mid = y[2 * i];
        let lo = if i == 0 { zero } else { y[2 * i - 1] };
        let one = nl.xor(mid, lo);
        let him = nl.xor(hi, mid);
        let none = nl.not(one);
        let two = nl.and(him, none);
        let neg = hi;

        // (n+1)-bit selected multiple: sel_j = one&x[j] | two&x[j-1].
        let mut row = Vec::with_capacity(n + 1);
        for j in 0..=n {
            let x1 = if j < n { x[j] } else { x[n - 1] }; // sign-extended x
            let x2 = if j == 0 {
                zero
            } else if j - 1 < n {
                x[j - 1]
            } else {
                x[n - 1]
            };
            let t1 = nl.and(one, x1);
            let t2 = nl.and(two, x2);
            let sel = nl.or(t1, t2);
            row.push(nl.xor(sel, neg));
        }
        let sign = row[n];
        let base = 2 * i;
        stack.push_row(base, &row);
        // Optimized sign extension: sign-extending `row` from column
        // base+n+1 up adds `sign * (-2^(base+n+1))` (mod 2^2n), which equals
        // `!sign * 2^(base+n+1)` plus the constant `-2^(base+n+1)`.
        if base + n + 1 < width {
            let nsign = nl.not(sign);
            stack.push_bit(base + n + 1, nsign);
            sign_const = sign_const.wrapping_sub(1u64 << (base + n + 1));
        }
        // Two's-complement correction: +neg at the row's LSB column.
        stack.push_bit(base, neg);
    }

    // Fold the accumulated sign-extension constant in as constant-1 bits
    // (constants never toggle).
    let one = nl.one();
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let c = sign_const & mask;
    for col in 0..width {
        if (c >> col) & 1 == 1 {
            stack.push_bit(col, one);
        }
    }

    let product = stack.reduce_to_sum(&mut nl);
    nl.mark_output_bus(&product);
    nl
}

/// Builds the Booth–Wallace multiplier with *naive* sign extension: each
/// partial-product row replicates its sign bit across the full output
/// width instead of using the inverted-bit + constant scheme. Functionally
/// identical to [`build_booth_wallace`]; kept as the ablation baseline
/// showing how much low-precision activity the optimized scheme removes.
///
/// # Panics
///
/// Panics if `n` is zero, odd or larger than 32.
#[must_use]
pub fn build_booth_wallace_naive(n: usize) -> Netlist {
    assert!(n > 0 && n % 2 == 0 && n <= 32, "n must be even and <= 32");
    let mut nl = Netlist::new();
    let x = nl.input_bus(n);
    let y = nl.input_bus(n);
    let zero = nl.zero();
    let width = 2 * n;
    let mut stack = ColumnStack::new(width);
    for i in 0..n / 2 {
        let hi = y[2 * i + 1];
        let mid = y[2 * i];
        let lo = if i == 0 { zero } else { y[2 * i - 1] };
        let one = nl.xor(mid, lo);
        let him = nl.xor(hi, mid);
        let none = nl.not(one);
        let two = nl.and(him, none);
        let neg = hi;
        let mut row = Vec::with_capacity(n + 1);
        for j in 0..=n {
            let x1 = if j < n { x[j] } else { x[n - 1] };
            let x2 = if j == 0 {
                zero
            } else if j - 1 < n {
                x[j - 1]
            } else {
                x[n - 1]
            };
            let t1 = nl.and(one, x1);
            let t2 = nl.and(two, x2);
            let sel = nl.or(t1, t2);
            row.push(nl.xor(sel, neg));
        }
        let sign = row[n];
        let base = 2 * i;
        stack.push_row(base, &row);
        // Naive sign extension: replicate the sign bit (it toggles with
        // the data in every column it reaches).
        for col in (base + n + 1)..width {
            stack.push_bit(col, sign);
        }
        stack.push_bit(base, neg);
    }
    let product = stack.reduce_to_sum(&mut nl);
    nl.mark_output_bus(&product);
    nl
}

/// Builds an unsigned `n x n` array multiplier netlist (AND-gate partial
/// products reduced by a Wallace tree).
///
/// Inputs: `x[0..n]` then `y[0..n]` (LSB first). Outputs: `p[0..2n]`.
///
/// # Panics
///
/// Panics if `n` is zero or larger than 32.
#[must_use]
pub fn build_array_multiplier(n: usize) -> Netlist {
    assert!(n > 0 && n <= 32, "n must be in 1..=32");
    let mut nl = Netlist::new();
    let x = nl.input_bus(n);
    let y = nl.input_bus(n);
    let mut stack = ColumnStack::new(2 * n);
    for (i, &xi) in x.iter().enumerate() {
        for (j, &yj) in y.iter().enumerate() {
            let pp = nl.and(xi, yj);
            stack.push_bit(i + j, pp);
        }
    }
    let product = stack.reduce_to_sum(&mut nl);
    nl.mark_output_bus(&product);
    nl
}

/// A bit-accurate exact multiplier with both a behavioral path and a
/// gate-level netlist, used as the reference design and the DAS substrate.
///
/// # Example
///
/// ```
/// use dvafs_arith::multiplier::ExactMultiplier;
///
/// let m = ExactMultiplier::booth_wallace(16);
/// assert_eq!(m.mul(-300, 41), -300 * 41);
/// ```
#[derive(Debug, Clone)]
pub struct ExactMultiplier {
    netlist_fn: fn(usize) -> Netlist,
    n: usize,
    signed: bool,
}

impl ExactMultiplier {
    /// A signed Booth–Wallace multiplier of width `n` (the paper's design).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, odd or larger than 32.
    #[must_use]
    pub fn booth_wallace(n: usize) -> Self {
        assert!(n > 0 && n % 2 == 0 && n <= 32);
        ExactMultiplier {
            netlist_fn: build_booth_wallace,
            n,
            signed: true,
        }
    }

    /// An unsigned array multiplier of width `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or larger than 32.
    #[must_use]
    pub fn array(n: usize) -> Self {
        assert!(n > 0 && n <= 32);
        ExactMultiplier {
            netlist_fn: build_array_multiplier,
            n,
            signed: false,
        }
    }

    /// Operand width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.n
    }

    /// Whether operands are interpreted as signed two's complement.
    #[must_use]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Behavioral product (reference semantics).
    #[must_use]
    pub fn mul(&self, x: i64, y: i64) -> i64 {
        if self.signed {
            // Confirm through Booth recoding for widths <= 32.
            debug_assert_eq!(
                booth_digits(y as i32, self.n as u32)
                    .iter()
                    .enumerate()
                    .map(|(i, d)| i64::from(d.value) << (2 * i))
                    .sum::<i64>(),
                y
            );
            x * y
        } else {
            x * y
        }
    }

    /// Builds the gate-level netlist for this multiplier.
    #[must_use]
    pub fn build_netlist(&self) -> Netlist {
        (self.netlist_fn)(self.n)
    }

    /// Evaluates the gate-level netlist on one operand pair and decodes the
    /// product (two's complement when signed). Intended for verification;
    /// for activity extraction drive a [`Simulator`] with a stream instead.
    #[must_use]
    pub fn mul_via_netlist(&self, x: i64, y: i64) -> i64 {
        let nl = self.build_netlist();
        let mut sim = Simulator::new(nl);
        let mask = self.operand_mask();
        let mut inputs = to_bits((x as u64) & mask, self.n);
        inputs.extend(to_bits((y as u64) & mask, self.n));
        let out = sim
            .eval(&inputs)
            .expect("input width matches by construction");
        self.decode_product(from_bits(&out))
    }

    /// Batched gate-level entry point: the exact products of a whole
    /// operand batch, in order, evaluated through the bitsliced engine —
    /// one netlist build, [`LANES`] pairs per word, bit-identical to
    /// [`mul_via_netlist`](Self::mul_via_netlist) pair by pair.
    #[must_use]
    pub fn evaluate_packed(&self, pairs: &[(i64, i64)]) -> Vec<i64> {
        let mut sim = BitSimulator::new(self.build_netlist());
        let mask = self.operand_mask();
        let mut out = Vec::with_capacity(pairs.len());
        for batch in pairs.chunks(LANES) {
            let xs: Vec<u64> = batch.iter().map(|&(x, _)| (x as u64) & mask).collect();
            let ys: Vec<u64> = batch.iter().map(|&(_, y)| (y as u64) & mask).collect();
            let mut planes = pack_value_bits(&xs, self.n);
            planes.extend(pack_value_bits(&ys, self.n));
            let words = sim
                .eval_packed(&planes, batch.len())
                .expect("input width matches by construction");
            out.extend(
                unpack_value_bits(&words, batch.len())
                    .into_iter()
                    .map(|raw| self.decode_product(raw)),
            );
        }
        out
    }

    fn operand_mask(&self) -> u64 {
        if self.n == 64 {
            u64::MAX
        } else {
            (1u64 << self.n) - 1
        }
    }

    fn decode_product(&self, raw: u64) -> i64 {
        if self.signed {
            let w = 2 * self.n;
            ((raw << (64 - w)) as i64) >> (64 - w)
        } else {
            raw as i64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn booth_wallace_4b_exhaustive() {
        let m = ExactMultiplier::booth_wallace(4);
        for x in -8i64..=7 {
            for y in -8i64..=7 {
                assert_eq!(m.mul_via_netlist(x, y), x * y, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn booth_wallace_6b_exhaustive() {
        let m = ExactMultiplier::booth_wallace(6);
        for x in -32i64..=31 {
            for y in -32i64..=31 {
                assert_eq!(m.mul_via_netlist(x, y), x * y, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn booth_wallace_16b_random_and_corners() {
        let m = ExactMultiplier::booth_wallace(16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut cases: Vec<(i64, i64)> = vec![
            (0, 0),
            (-32768, -32768),
            (-32768, 32767),
            (32767, 32767),
            (-1, -1),
            (1, -32768),
        ];
        for _ in 0..60 {
            cases.push((rng.gen_range(-32768..=32767), rng.gen_range(-32768..=32767)));
        }
        for (x, y) in cases {
            assert_eq!(m.mul_via_netlist(x, y), x * y, "x={x} y={y}");
        }
    }

    #[test]
    fn array_4b_exhaustive() {
        let m = ExactMultiplier::array(4);
        for x in 0i64..16 {
            for y in 0i64..16 {
                assert_eq!(m.mul_via_netlist(x, y), x * y);
            }
        }
    }

    #[test]
    fn array_16b_random() {
        let m = ExactMultiplier::array(16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..40 {
            let x = rng.gen_range(0i64..65536);
            let y = rng.gen_range(0i64..65536);
            assert_eq!(m.mul_via_netlist(x, y), x * y);
        }
    }

    #[test]
    fn evaluate_packed_matches_behavioral_across_word_boundaries() {
        // 100 pairs forces one full word plus a ragged 36-lane tail.
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let signed_pairs: Vec<(i64, i64)> = (0..100)
            .map(|_| (rng.gen_range(-32768..=32767), rng.gen_range(-32768..=32767)))
            .collect();
        let bw = ExactMultiplier::booth_wallace(16);
        assert_eq!(
            bw.evaluate_packed(&signed_pairs),
            signed_pairs
                .iter()
                .map(|&(x, y)| x * y)
                .collect::<Vec<i64>>()
        );
        let unsigned_pairs: Vec<(i64, i64)> = (0..70)
            .map(|_| (rng.gen_range(0..65536), rng.gen_range(0..65536)))
            .collect();
        let ar = ExactMultiplier::array(16);
        assert_eq!(
            ar.evaluate_packed(&unsigned_pairs),
            unsigned_pairs
                .iter()
                .map(|&(x, y)| x * y)
                .collect::<Vec<i64>>()
        );
    }

    #[test]
    fn netlist_sizes_are_plausible() {
        // A 16x16 Booth-Wallace multiplier has on the order of 1e3 cells.
        let nl = build_booth_wallace(16);
        assert!(nl.gate_count() > 300, "got {}", nl.gate_count());
        assert!(nl.gate_count() < 5000, "got {}", nl.gate_count());
        assert_eq!(nl.input_count(), 32);
        assert_eq!(nl.output_count(), 32);
    }

    #[test]
    fn booth_uses_fewer_rows_than_array() {
        // Booth halves partial products; its stack never exceeds array's.
        let bw = build_booth_wallace(16);
        let ar = build_array_multiplier(16);
        // Not a strict gate-count win with our cell mix, but both must be
        // the same order of magnitude in depth (the final carry-propagate
        // adder dominates both).
        let db = f64::from(bw.critical_depth());
        let da = f64::from(ar.critical_depth());
        assert!(db / da < 1.6, "booth depth {db}, array depth {da}");
    }

    #[test]
    fn naive_sign_extension_variant_is_exact() {
        // The ablation baseline computes identical products.
        let nl = build_booth_wallace_naive(16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..40 {
            let x: i64 = rng.gen_range(-32768..=32767);
            let y: i64 = rng.gen_range(-32768..=32767);
            let mut sim = Simulator::new(nl.clone());
            let mut inputs = to_bits((x as u64) & 0xFFFF, 16);
            inputs.extend(to_bits((y as u64) & 0xFFFF, 16));
            let out = sim.eval(&inputs).expect("fits");
            let raw = from_bits(&out);
            let signed = ((raw << 32) as i64) >> 32;
            assert_eq!(signed, x * y, "x={x} y={y}");
        }
    }

    #[test]
    fn naive_sign_extension_exhaustive_4b() {
        let nl = build_booth_wallace_naive(4);
        for x in -8i64..=7 {
            for y in -8i64..=7 {
                let mut sim = Simulator::new(nl.clone());
                let mut inputs = to_bits((x as u64) & 0xF, 4);
                inputs.extend(to_bits((y as u64) & 0xF, 4));
                let out = sim.eval(&inputs).expect("fits");
                let raw = from_bits(&out);
                let signed = ((raw << 56) as i64) >> 56;
                assert_eq!(signed, x * y, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn behavioral_matches_std_multiplication() {
        let m = ExactMultiplier::booth_wallace(16);
        assert_eq!(m.mul(-300, 41), -12300);
        assert_eq!(m.mul(0, 12345), 0);
    }
}
