//! The DVAFS subword-parallel multiplier (the paper's core circuit).
//!
//! At reduced precision the multiplier's idle cells are *reused* instead of
//! gated: in `2x8b` mode it computes two independent 8-bit products per
//! cycle, in `4x4b` mode four 4-bit products (paper Fig. 1b). At constant
//! computational throughput the clock can then drop by the subword factor
//! `N`, which lets the supply voltage of the **whole** system — including
//! non-accuracy-scalable decoders and memories — scale down. This is the
//! mechanism behind equation (3).
//!
//! Two models are provided:
//!
//! * a behavioral unit ([`DvafsMultiplier::mul_subwords`]) with per-lane
//!   signed semantics, used by the SIMD processor and CNN substrates;
//! * a gate-level netlist ([`DvafsMultiplier::build_netlist`]) where
//!   cross-subword partial products are killed by mode-select gates; this is
//!   the activity/critical-path extraction vehicle (unsigned lane
//!   semantics, as the physical array computes magnitudes per quadrant).

use crate::error::ArithError;
use crate::metrics::{pack_value_bits, unpack_value_bits};
use crate::netlist::{
    from_bits, to_bits, ActivityStats, BitSimulator, Engine, Netlist, Simulator, LANES,
};
use crate::subword::SubwordMode;
use crate::wallace::ColumnStack;

/// Builds the mode-gated 16×16 subword array multiplier netlist.
///
/// Inputs (in order): `m2`, `m4` (mode selects: both low = `1x16b`,
/// `m2` = `2x8b`, `m4` = `4x4b`), then `x[0..16]`, then `y[0..16]`
/// (LSB first). Outputs: `p[0..32]`.
///
/// In subword modes, partial products crossing a lane boundary are forced to
/// zero, so the `N` lane products appear in disjoint fields of `p`
/// (`2x8b`: bits 0–15 and 16–31; `4x4b`: four byte fields).
#[must_use]
pub fn build_subword_multiplier() -> Netlist {
    let mut nl = Netlist::new();
    let m2 = nl.input();
    let m4 = nl.input();
    let x = nl.input_bus(16);
    let y = nl.input_bus(16);
    // alive when full mode (neither m2 nor m4) for cross-half terms,
    // alive when not m4 for same-half/cross-quarter terms,
    // always alive on the diagonal quarter blocks.
    //
    // Operand isolation: the x operand is gated *once per row and
    // aliveness class* before entering the partial-product AND gates, so a
    // killed region's cells see constant inputs and stop toggling entirely
    // (this is what lets the subword modes reach the paper's k3).
    let full = nl.nor(m2, m4);
    let not_m4 = nl.not(m4);
    let x_full: Vec<_> = x.iter().map(|&xi| nl.and(xi, full)).collect();
    let x_nm4: Vec<_> = x.iter().map(|&xi| nl.and(xi, not_m4)).collect();
    let mut stack = ColumnStack::new(32);
    for i in 0..16 {
        for (j, &yj) in y.iter().enumerate() {
            let same_quarter = i / 4 == j / 4;
            let same_half = i / 8 == j / 8;
            let xi = if same_quarter {
                x[i]
            } else if same_half {
                x_nm4[i]
            } else {
                x_full[i]
            };
            let pp = nl.and(xi, yj);
            stack.push_bit(i + j, pp);
        }
    }
    let product = stack.reduce_to_sum(&mut nl);
    nl.mark_output_bus(&product);
    nl
}

/// Builds the subword multiplier *without* operand isolation: partial
/// products are computed first and killed afterwards, so dead cells keep
/// toggling with the data. Functionally identical to
/// [`build_subword_multiplier`]; kept as the ablation baseline showing why
/// operand isolation is what lets the subword modes reach the paper's `k3`
/// (see the `ablations` experiment binary).
#[must_use]
pub fn build_subword_multiplier_unisolated() -> Netlist {
    let mut nl = Netlist::new();
    let m2 = nl.input();
    let m4 = nl.input();
    let x = nl.input_bus(16);
    let y = nl.input_bus(16);
    let full = nl.nor(m2, m4);
    let not_m4 = nl.not(m4);
    let mut stack = ColumnStack::new(32);
    for (i, &xi) in x.iter().enumerate() {
        for (j, &yj) in y.iter().enumerate() {
            let same_quarter = i / 4 == j / 4;
            let same_half = i / 8 == j / 8;
            // Gate AFTER the product: the AND cell itself still toggles.
            let pp = nl.and(xi, yj);
            let gated = if same_quarter {
                pp
            } else if same_half {
                nl.and(pp, not_m4)
            } else {
                nl.and(pp, full)
            };
            stack.push_bit(i + j, gated);
        }
    }
    let product = stack.reduce_to_sum(&mut nl);
    nl.mark_output_bus(&product);
    nl
}

/// The DVAFS multiplier: one 16-bit unit that processes `N` packed words per
/// cycle at `16/N`-bit precision.
///
/// # Example
///
/// ```
/// use dvafs_arith::multiplier::DvafsMultiplier;
/// use dvafs_arith::SubwordMode;
///
/// let m = DvafsMultiplier::new();
/// assert_eq!(m.mul_full(-32768, 32767), -32768i32 * 32767);
/// let p = m.mul_subwords(&[-8, 7], &[3, -4], SubwordMode::X2);
/// assert_eq!(p, vec![-24, -28]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DvafsMultiplier {
    _private: (),
}

impl DvafsMultiplier {
    /// Creates a DVAFS multiplier.
    #[must_use]
    pub fn new() -> Self {
        DvafsMultiplier { _private: () }
    }

    /// Full-precision 16×16 signed multiply (`1x16b` mode).
    #[must_use]
    pub fn mul_full(&self, x: i32, y: i32) -> i32 {
        debug_assert!(i32::from(x as i16) == x && i32::from(y as i16) == y);
        x * y
    }

    /// Multiplies `N` independent signed lane pairs in one cycle.
    ///
    /// Lane operands must fit the mode's lane width; lane products are full
    /// precision (`2 * lane_bits` wide), exactly as the disjoint quadrants
    /// of the physical array produce them.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not have `mode.lanes()` elements (see
    /// [`try_mul_subwords`](Self::try_mul_subwords) for a fallible variant).
    #[must_use]
    pub fn mul_subwords(&self, a: &[i32], b: &[i32], mode: SubwordMode) -> Vec<i32> {
        self.try_mul_subwords(a, b, mode)
            .expect("lane counts must match the mode")
    }

    /// Fallible variant of [`mul_subwords`](Self::mul_subwords).
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::LaneCountMismatch`] on a lane-count mismatch and
    /// [`ArithError::OperandOutOfRange`] when a lane operand does not fit
    /// the mode's lane width.
    pub fn try_mul_subwords(
        &self,
        a: &[i32],
        b: &[i32],
        mode: SubwordMode,
    ) -> Result<Vec<i32>, ArithError> {
        let lanes = mode.lanes();
        if a.len() != lanes || b.len() != lanes {
            return Err(ArithError::LaneCountMismatch {
                expected: lanes,
                actual: a.len().min(b.len()).min(a.len().max(b.len())).max(a.len()),
            });
        }
        let w = mode.lane_bits();
        let lo = -(1i32 << (w - 1));
        let hi = (1i32 << (w - 1)) - 1;
        for &v in a.iter().chain(b.iter()) {
            if v < lo || v > hi {
                return Err(ArithError::OperandOutOfRange {
                    value: i64::from(v),
                    bits: w,
                });
            }
        }
        Ok(a.iter().zip(b.iter()).map(|(&x, &y)| x * y).collect())
    }

    /// Packed unsigned lane multiply matching the gate-level netlist: each
    /// lane's product lands in its disjoint `2*lane_bits` field of the
    /// 32-bit result.
    #[must_use]
    pub fn mul_packed(&self, a: u16, b: u16, mode: SubwordMode) -> u32 {
        let w = mode.lane_bits();
        let mask = (1u32 << w) - 1;
        let mut out = 0u32;
        for lane in 0..mode.lanes() as u32 {
            let xa = (u32::from(a) >> (lane * w)) & mask;
            let xb = (u32::from(b) >> (lane * w)) & mask;
            out |= (xa * xb) << (lane * 2 * w);
        }
        out
    }

    /// Builds the gate-level mode-gated netlist (see
    /// [`build_subword_multiplier`]).
    #[must_use]
    pub fn build_netlist(&self) -> Netlist {
        build_subword_multiplier()
    }

    /// Evaluates the netlist on one packed operand pair in the given mode.
    #[must_use]
    pub fn mul_packed_via_netlist(&self, a: u16, b: u16, mode: SubwordMode) -> u32 {
        let mut sim = Simulator::new(self.build_netlist());
        let out = sim
            .eval(&Self::stimulus(a, b, mode))
            .expect("stimulus width is fixed");
        from_bits(&out) as u32
    }

    /// Encodes one packed operand pair as a netlist stimulus vector.
    #[must_use]
    pub fn stimulus(a: u16, b: u16, mode: SubwordMode) -> Vec<bool> {
        let mut inputs = vec![mode == SubwordMode::X2, mode == SubwordMode::X4];
        inputs.extend(to_bits(u64::from(a), 16));
        inputs.extend(to_bits(u64::from(b), 16));
        inputs
    }

    /// Encodes up to [`LANES`] operand pairs as one bitsliced stimulus
    /// word per netlist input (the mode selects are constant across lanes)
    /// — the packed counterpart of [`stimulus`](Self::stimulus).
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] pairs are given.
    #[must_use]
    pub fn packed_stimulus(pairs: &[(u16, u16)], mode: SubwordMode) -> Vec<u64> {
        let fill = |on: bool| if on { u64::MAX } else { 0 };
        let xs: Vec<u64> = pairs.iter().map(|&(a, _)| u64::from(a)).collect();
        let ys: Vec<u64> = pairs.iter().map(|&(_, b)| u64::from(b)).collect();
        let mut words = vec![fill(mode == SubwordMode::X2), fill(mode == SubwordMode::X4)];
        words.extend(pack_value_bits(&xs, 16));
        words.extend(pack_value_bits(&ys, 16));
        words
    }

    /// Batched gate-level entry point: the packed lane products of a whole
    /// operand batch, in order, evaluated [`LANES`] pairs per word through
    /// the bitsliced engine — bit-identical to
    /// [`mul_packed_via_netlist`](Self::mul_packed_via_netlist) pair by
    /// pair, with the netlist built once.
    #[must_use]
    pub fn evaluate_packed(&self, pairs: &[(u16, u16)], mode: SubwordMode) -> Vec<u32> {
        let mut sim = BitSimulator::new(self.build_netlist());
        let mut out = Vec::with_capacity(pairs.len());
        for batch in pairs.chunks(LANES) {
            let words = sim
                .eval_packed(&Self::packed_stimulus(batch, mode), batch.len())
                .expect("stimulus width is fixed");
            out.extend(
                unpack_value_bits(&words, batch.len())
                    .into_iter()
                    .map(|v| v as u32),
            );
        }
        out
    }

    /// Drives the netlist with a stream of packed operand pairs in a fixed
    /// mode and returns the switching-activity statistics — the `α`
    /// extraction behind the paper's Fig. 2d and Table I. Runs on the
    /// default (bitsliced) engine; see
    /// [`simulate_stream_with`](Self::simulate_stream_with).
    #[must_use]
    pub fn simulate_stream(&self, pairs: &[(u16, u16)], mode: SubwordMode) -> ActivityStats {
        self.simulate_stream_with(pairs, mode, Engine::default())
    }

    /// [`simulate_stream`](Self::simulate_stream) on an explicit engine.
    /// The scalar path is the reference oracle; both produce bit-identical
    /// statistics (the property-test net enforces it).
    #[must_use]
    pub fn simulate_stream_with(
        &self,
        pairs: &[(u16, u16)],
        mode: SubwordMode,
        engine: Engine,
    ) -> ActivityStats {
        match engine {
            Engine::Scalar => {
                let mut sim = Simulator::new(self.build_netlist());
                for &(a, b) in pairs {
                    sim.eval(&Self::stimulus(a, b, mode))
                        .expect("stimulus width is fixed");
                }
                sim.stats()
            }
            Engine::Bitsliced => {
                let mut sim = BitSimulator::new(self.build_netlist());
                for batch in pairs.chunks(LANES) {
                    sim.eval_packed(&Self::packed_stimulus(batch, mode), batch.len())
                        .expect("stimulus width is fixed");
                }
                sim.stats()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn netlist_full_mode_exhaustive_small_values() {
        let m = DvafsMultiplier::new();
        for a in 0u16..16 {
            for b in 0u16..16 {
                assert_eq!(
                    m.mul_packed_via_netlist(a, b, SubwordMode::X1),
                    u32::from(a) * u32::from(b)
                );
            }
        }
    }

    #[test]
    fn netlist_full_mode_random_16b() {
        let m = DvafsMultiplier::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..40 {
            let a: u16 = rng.gen();
            let b: u16 = rng.gen();
            assert_eq!(
                m.mul_packed_via_netlist(a, b, SubwordMode::X1),
                u32::from(a) * u32::from(b)
            );
        }
    }

    #[test]
    fn netlist_matches_behavioral_in_all_modes() {
        let m = DvafsMultiplier::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        for mode in SubwordMode::ALL {
            for _ in 0..30 {
                let a: u16 = rng.gen();
                let b: u16 = rng.gen();
                assert_eq!(
                    m.mul_packed_via_netlist(a, b, mode),
                    m.mul_packed(a, b, mode),
                    "mode={mode} a={a:#06x} b={b:#06x}"
                );
            }
        }
    }

    #[test]
    fn evaluate_packed_matches_behavioral_in_all_modes() {
        // 70 pairs exercises a full word plus a ragged 6-lane tail.
        let m = DvafsMultiplier::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for mode in SubwordMode::ALL {
            let pairs: Vec<(u16, u16)> = (0..70).map(|_| (rng.gen(), rng.gen())).collect();
            let expected: Vec<u32> = pairs
                .iter()
                .map(|&(a, b)| m.mul_packed(a, b, mode))
                .collect();
            assert_eq!(m.evaluate_packed(&pairs, mode), expected, "mode={mode}");
        }
    }

    #[test]
    fn stream_engines_agree_on_stats() {
        let m = DvafsMultiplier::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(24);
        let pairs: Vec<(u16, u16)> = (0..130).map(|_| (rng.gen(), rng.gen())).collect();
        for mode in SubwordMode::ALL {
            let scalar = m.simulate_stream_with(&pairs, mode, Engine::Scalar);
            let packed = m.simulate_stream_with(&pairs, mode, Engine::Bitsliced);
            assert_eq!(scalar, packed, "mode={mode}");
            assert_eq!(m.simulate_stream(&pairs, mode), packed, "default engine");
        }
    }

    #[test]
    fn x4_mode_lanes_are_independent_exhaustive_one_lane() {
        let m = DvafsMultiplier::new();
        // Exhaust lane 2 while the others carry fixed garbage.
        for xa in 0u16..16 {
            for xb in 0u16..16 {
                // Lane 2 (bits 8..12) is zero in both masks.
                let a = 0x900F | (xa << 8);
                let b = 0x3005 | (xb << 8);
                let p = m.mul_packed_via_netlist(a, b, SubwordMode::X4);
                let lane2 = (p >> 16) & 0xFF;
                assert_eq!(lane2, u32::from(xa) * u32::from(xb));
            }
        }
    }

    #[test]
    fn behavioral_subword_signed_products() {
        let m = DvafsMultiplier::new();
        let p = m.mul_subwords(&[-8, 7, -1, 0], &[7, -8, -1, 5], SubwordMode::X4);
        assert_eq!(p, vec![-56, -56, 1, 0]);
    }

    #[test]
    fn try_mul_subwords_validates_ranges() {
        let m = DvafsMultiplier::new();
        assert!(matches!(
            m.try_mul_subwords(&[8, 0, 0, 0], &[0; 4], SubwordMode::X4),
            Err(ArithError::OperandOutOfRange { .. })
        ));
        assert!(matches!(
            m.try_mul_subwords(&[1, 2], &[3, 4, 5], SubwordMode::X2),
            Err(ArithError::LaneCountMismatch { .. })
        ));
    }

    #[test]
    fn activity_drops_in_subword_modes() {
        // The heart of DVAFS: per-cycle switched capacitance shrinks when
        // cross-lane partial products are killed (k3 of Table I).
        let m = DvafsMultiplier::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let full: Vec<(u16, u16)> = (0..150).map(|_| (rng.gen(), rng.gen())).collect();
        let s1 = m.simulate_stream(&full, SubwordMode::X1);
        let s2 = m.simulate_stream(&full, SubwordMode::X2);
        let s4 = m.simulate_stream(&full, SubwordMode::X4);
        assert!(
            s1.weighted_toggles > s2.weighted_toggles,
            "x1={} x2={}",
            s1.weighted_toggles,
            s2.weighted_toggles
        );
        assert!(
            s2.weighted_toggles > s4.weighted_toggles,
            "x2={} x4={}",
            s2.weighted_toggles,
            s4.weighted_toggles
        );
        // 4x4b should cut per-cycle activity by roughly 2.5-5x (paper: 3.2).
        let ratio = s1.weighted_toggles / s4.weighted_toggles;
        assert!(ratio > 2.0 && ratio < 8.0, "k3-like ratio {ratio}");
    }

    #[test]
    fn active_critical_path_shrinks_in_subword_modes() {
        let m = DvafsMultiplier::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let data: Vec<(u16, u16)> = (0..100).map(|_| (rng.gen(), rng.gen())).collect();
        let d1 = m.simulate_stream(&data, SubwordMode::X1).active_depth;
        let d4 = m.simulate_stream(&data, SubwordMode::X4).active_depth;
        assert!(d4 < d1, "x1 depth {d1}, x4 depth {d4}");
    }

    #[test]
    fn unisolated_variant_is_functionally_identical() {
        // The ablation baseline must compute the same products; only its
        // switching activity differs.
        let m = DvafsMultiplier::new();
        let nl = build_subword_multiplier_unisolated();
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        for mode in SubwordMode::ALL {
            let mut sim = crate::netlist::Simulator::new(nl.clone());
            for _ in 0..15 {
                let a: u16 = rng.gen();
                let b: u16 = rng.gen();
                let out = sim
                    .eval(&DvafsMultiplier::stimulus(a, b, mode))
                    .expect("stimulus fits");
                assert_eq!(
                    crate::netlist::from_bits(&out) as u32,
                    m.mul_packed(a, b, mode),
                    "mode={mode}"
                );
            }
        }
    }

    #[test]
    fn isolation_reduces_subword_activity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(56);
        let pairs: Vec<(u16, u16)> = (0..80).map(|_| (rng.gen(), rng.gen())).collect();
        let drive = |nl: &crate::netlist::Netlist| {
            let mut sim = crate::netlist::Simulator::new(nl.clone());
            for &(a, b) in &pairs {
                sim.eval(&DvafsMultiplier::stimulus(a, b, SubwordMode::X4))
                    .expect("fits");
            }
            sim.stats().weighted_toggles
        };
        let isolated = drive(&build_subword_multiplier());
        let unisolated = drive(&build_subword_multiplier_unisolated());
        assert!(
            isolated < unisolated,
            "isolated {isolated} should beat unisolated {unisolated}"
        );
    }

    #[test]
    fn mul_full_matches_i32() {
        let m = DvafsMultiplier::new();
        assert_eq!(m.mul_full(-32768, -32768), 1 << 30);
        assert_eq!(m.mul_full(1234, -5678), -7006652);
    }
}
