//! Combinational gate-level netlists with toggle counting.
//!
//! The paper extracts switching activity and critical-path scaling from
//! synthesized 40 nm netlists simulated with commercial tools. This module is
//! the substitute: multipliers are *constructed* as netlists of 2-input gates
//! and simulated on data streams. Per-gate toggle counters give the switching
//! activity `α` of equations (1)–(3); levelized depth gives the critical-path
//! length whose scaling with precision enables DVAS voltage scaling (Fig. 2b).
//!
//! Nodes are created in topological order by construction (a gate can only
//! reference already-created fanins), so evaluation is a single forward pass.
//!
//! ## Evaluation engines
//!
//! Two evaluators share the netlist representation and produce **bit-identical**
//! results — values, per-gate toggle counts, and therefore every `α`, RMSE and
//! energy figure downstream:
//!
//! * [`Simulator`] — the scalar engine: one `bool` per gate per operand pair.
//!   Retained as the *reference oracle*: the property-test net
//!   (`tests/bitslice_equivalence.rs`) proves the packed engine against it on
//!   random netlists, random streams and ragged lengths.
//! * [`bitslice::BitSimulator`] — the bitsliced engine (the default behind
//!   [`Engine::Bitsliced`]): 64 Monte-Carlo samples packed into one `u64` lane
//!   word per gate, the whole netlist evaluated word-at-a-time (every cell is
//!   1–3 word ops), and toggles counted with `popcount` over consecutive
//!   words. Ragged tails (`samples % 64 != 0`) are handled by masked lanes,
//!   so all sample counts keep their exact scalar results.
//!
//! [`Engine`] selects between them at run time; `bench_sweep` times both per
//! scenario and asserts their results equal before recording a timing.

use crate::error::ArithError;
use serde::{Deserialize, Serialize};

pub mod bitslice;

pub use bitslice::{lane_mask, BitSimulator, LANES};

/// Index of a node inside a [`Netlist`].
pub type NodeId = usize;

/// The primitive cell types of the standard-cell library we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GateKind {
    /// Primary input.
    Input,
    /// Constant logic 0.
    Zero,
    /// Constant logic 1.
    One,
    /// Inverter.
    Not(NodeId),
    /// 2-input AND.
    And(NodeId, NodeId),
    /// 2-input OR.
    Or(NodeId, NodeId),
    /// 2-input XOR.
    Xor(NodeId, NodeId),
    /// 2-input NAND.
    Nand(NodeId, NodeId),
    /// 2-input NOR.
    Nor(NodeId, NodeId),
    /// 2:1 multiplexer `sel ? a : b`.
    Mux {
        /// Select input.
        sel: NodeId,
        /// Output when `sel` is 1.
        a: NodeId,
        /// Output when `sel` is 0.
        b: NodeId,
    },
}

impl GateKind {
    /// Relative switching capacitance of this cell, normalized to a NAND2.
    ///
    /// Values follow typical standard-cell library ratios: XOR cells are
    /// roughly twice as heavy as NAND/NOR, inverters half.
    #[must_use]
    pub fn relative_cap(self) -> f64 {
        match self {
            GateKind::Input | GateKind::Zero | GateKind::One => 0.0,
            GateKind::Not(_) => 0.5,
            GateKind::And(..) | GateKind::Or(..) => 1.25,
            GateKind::Nand(..) | GateKind::Nor(..) => 1.0,
            GateKind::Xor(..) => 2.0,
            GateKind::Mux { .. } => 2.0,
        }
    }

    /// Logic depth contribution of this cell (in NAND2-equivalent stages).
    #[must_use]
    pub fn stage_delay(self) -> u32 {
        match self {
            GateKind::Input | GateKind::Zero | GateKind::One => 0,
            GateKind::Not(_) => 1,
            GateKind::Nand(..) | GateKind::Nor(..) => 1,
            GateKind::And(..) | GateKind::Or(..) => 2,
            GateKind::Xor(..) | GateKind::Mux { .. } => 2,
        }
    }
}

/// A combinational netlist under construction or simulation.
///
/// # Example
///
/// Build a half adder and check its truth table:
///
/// ```
/// use dvafs_arith::netlist::{Netlist, Simulator};
///
/// let mut nl = Netlist::new();
/// let a = nl.input();
/// let b = nl.input();
/// let (sum, carry) = nl.half_adder(a, b);
/// nl.mark_output(sum);
/// nl.mark_output(carry);
///
/// let mut sim = Simulator::new(nl);
/// assert_eq!(sim.eval(&[true, true])?, vec![false, true]);
/// assert_eq!(sim.eval(&[true, false])?, vec![true, false]);
/// # Ok::<(), dvafs_arith::ArithError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    kinds: Vec<GateKind>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    zero: Option<NodeId>,
    one: Option<NodeId>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Netlist::default()
    }

    fn push(&mut self, kind: GateKind) -> NodeId {
        self.kinds.push(kind);
        self.kinds.len() - 1
    }

    /// Adds a primary input and returns its node.
    pub fn input(&mut self) -> NodeId {
        let id = self.push(GateKind::Input);
        self.inputs.push(id);
        id
    }

    /// Adds `n` primary inputs (LSB first) and returns their nodes.
    pub fn input_bus(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.input()).collect()
    }

    /// The shared constant-0 node.
    pub fn zero(&mut self) -> NodeId {
        if let Some(z) = self.zero {
            z
        } else {
            let z = self.push(GateKind::Zero);
            self.zero = Some(z);
            z
        }
    }

    /// The shared constant-1 node.
    pub fn one(&mut self) -> NodeId {
        if let Some(o) = self.one {
            o
        } else {
            let o = self.push(GateKind::One);
            self.one = Some(o);
            o
        }
    }

    fn is_zero(&self, n: NodeId) -> bool {
        matches!(self.kinds[n], GateKind::Zero)
    }

    fn is_one(&self, n: NodeId) -> bool {
        matches!(self.kinds[n], GateKind::One)
    }

    /// Inverter, with constant folding.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        if self.is_zero(a) {
            self.one()
        } else if self.is_one(a) {
            self.zero()
        } else {
            self.push(GateKind::Not(a))
        }
    }

    /// 2-input AND, with constant folding.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if self.is_zero(a) || self.is_zero(b) {
            self.zero()
        } else if self.is_one(a) {
            b
        } else if self.is_one(b) {
            a
        } else {
            self.push(GateKind::And(a, b))
        }
    }

    /// 2-input OR, with constant folding.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if self.is_one(a) || self.is_one(b) {
            self.one()
        } else if self.is_zero(a) {
            b
        } else if self.is_zero(b) {
            a
        } else {
            self.push(GateKind::Or(a, b))
        }
    }

    /// 2-input XOR, with constant folding.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if self.is_zero(a) {
            b
        } else if self.is_zero(b) {
            a
        } else if self.is_one(a) {
            self.not(b)
        } else if self.is_one(b) {
            self.not(a)
        } else {
            self.push(GateKind::Xor(a, b))
        }
    }

    /// 2-input NAND, with constant folding.
    pub fn nand(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if self.is_zero(a) || self.is_zero(b) {
            self.one()
        } else if self.is_one(a) {
            self.not(b)
        } else if self.is_one(b) {
            self.not(a)
        } else {
            self.push(GateKind::Nand(a, b))
        }
    }

    /// 2-input NOR, with constant folding.
    pub fn nor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if self.is_one(a) || self.is_one(b) {
            self.zero()
        } else if self.is_zero(a) {
            self.not(b)
        } else if self.is_zero(b) {
            self.not(a)
        } else {
            self.push(GateKind::Nor(a, b))
        }
    }

    /// 2:1 mux `sel ? a : b`, with constant folding on the select.
    pub fn mux(&mut self, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
        if self.is_one(sel) {
            a
        } else if self.is_zero(sel) {
            b
        } else if a == b {
            a
        } else {
            self.push(GateKind::Mux { sel, a, b })
        }
    }

    /// Half adder: returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        (self.xor(a, b), self.and(a, b))
    }

    /// Full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NodeId, b: NodeId, c: NodeId) -> (NodeId, NodeId) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, c);
        let t1 = self.and(axb, c);
        let t2 = self.and(a, b);
        let carry = self.or(t1, t2);
        (sum, carry)
    }

    /// Marks a node as a primary output (outputs may repeat nodes).
    pub fn mark_output(&mut self, n: NodeId) {
        self.outputs.push(n);
    }

    /// Marks a bus of nodes as primary outputs, LSB first.
    pub fn mark_output_bus(&mut self, bus: &[NodeId]) {
        self.outputs.extend_from_slice(bus);
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Primary output nodes.
    #[must_use]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Number of logic cells (inputs and constants excluded).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.kinds
            .iter()
            .filter(|k| !matches!(k, GateKind::Input | GateKind::Zero | GateKind::One))
            .count()
    }

    /// Total number of nodes including inputs and constants.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Levelized depth of every node, in NAND2-equivalent stages.
    #[must_use]
    pub fn depths(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.kinds.len()];
        for (i, k) in self.kinds.iter().enumerate() {
            let fan = match *k {
                GateKind::Input | GateKind::Zero | GateKind::One => 0,
                GateKind::Not(a) => d[a],
                GateKind::And(a, b)
                | GateKind::Or(a, b)
                | GateKind::Xor(a, b)
                | GateKind::Nand(a, b)
                | GateKind::Nor(a, b) => d[a].max(d[b]),
                GateKind::Mux { sel, a, b } => d[sel].max(d[a]).max(d[b]),
            };
            d[i] = fan + k.stage_delay();
        }
        d
    }

    /// Static critical-path depth: the deepest primary output, in
    /// NAND2-equivalent stages.
    #[must_use]
    pub fn critical_depth(&self) -> u32 {
        let d = self.depths();
        self.outputs.iter().map(|&o| d[o]).max().unwrap_or(0)
    }

    /// The cell kind of a node.
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::UnknownNode`] for an out-of-range id.
    pub fn kind(&self, id: NodeId) -> Result<GateKind, ArithError> {
        self.kinds
            .get(id)
            .copied()
            .ok_or(ArithError::UnknownNode { id })
    }
}

/// Statistics gathered by a [`Simulator`] over a stimulus stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityStats {
    /// Evaluations performed since the last reset.
    pub cycles: u64,
    /// Total gate output transitions observed (inputs excluded).
    pub toggles: u64,
    /// Transitions weighted by each cell's relative capacitance —
    /// proportional to dynamic switched capacitance `α·C`.
    pub weighted_toggles: f64,
    /// Number of logic cells that toggled at least once.
    pub active_gates: usize,
    /// Depth (NAND2 stages) of the deepest cell that toggled at least once:
    /// the *active* critical path, which shrinks at reduced precision.
    pub active_depth: u32,
}

impl ActivityStats {
    /// Mean toggles per gate per cycle — the switching activity `α`.
    #[must_use]
    pub fn alpha(&self, gate_count: usize) -> f64 {
        if self.cycles == 0 || gate_count == 0 {
            0.0
        } else {
            self.toggles as f64 / (self.cycles as f64 * gate_count as f64)
        }
    }
}

/// Event-free two-phase simulator with per-gate toggle counting.
///
/// Each call to [`eval`](Simulator::eval) applies one input vector, settles
/// the combinational logic and compares every node against its previous
/// settled value. The toggle counts model the cycle-to-cycle switching
/// activity of a registered data path (glitching inside a cycle is not
/// modeled; the paper's conservative wire models play a similar role).
#[derive(Debug, Clone)]
pub struct Simulator {
    netlist: Netlist,
    values: Vec<bool>,
    toggles: Vec<u64>,
    cycles: u64,
    primed: bool,
}

impl Simulator {
    /// Wraps a netlist for simulation.
    #[must_use]
    pub fn new(netlist: Netlist) -> Self {
        let n = netlist.node_count();
        Simulator {
            netlist,
            values: vec![false; n],
            toggles: vec![0; n],
            cycles: 0,
            primed: false,
        }
    }

    /// The wrapped netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consumes the simulator and returns the netlist.
    #[must_use]
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// Applies one input vector and returns the primary-output values.
    ///
    /// The first evaluation primes node state without counting toggles;
    /// subsequent evaluations count transitions.
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::InputLengthMismatch`] when `inputs.len()`
    /// differs from the number of primary inputs.
    pub fn eval(&mut self, inputs: &[bool]) -> Result<Vec<bool>, ArithError> {
        if inputs.len() != self.netlist.inputs.len() {
            return Err(ArithError::InputLengthMismatch {
                expected: self.netlist.inputs.len(),
                actual: inputs.len(),
            });
        }
        let mut next = vec![false; self.netlist.kinds.len()];
        let mut in_iter = inputs.iter();
        for (i, kind) in self.netlist.kinds.iter().enumerate() {
            next[i] = match *kind {
                GateKind::Input => *in_iter.next().expect("length checked above"),
                GateKind::Zero => false,
                GateKind::One => true,
                GateKind::Not(a) => !next[a],
                GateKind::And(a, b) => next[a] && next[b],
                GateKind::Or(a, b) => next[a] || next[b],
                GateKind::Xor(a, b) => next[a] ^ next[b],
                GateKind::Nand(a, b) => !(next[a] && next[b]),
                GateKind::Nor(a, b) => !(next[a] || next[b]),
                GateKind::Mux { sel, a, b } => {
                    if next[sel] {
                        next[a]
                    } else {
                        next[b]
                    }
                }
            };
        }
        if self.primed {
            for (i, (&nv, &ov)) in next.iter().zip(self.values.iter()).enumerate() {
                if nv != ov && !matches!(self.netlist.kinds[i], GateKind::Input) {
                    self.toggles[i] += 1;
                }
            }
            self.cycles += 1;
        } else {
            self.primed = true;
        }
        self.values = next;
        Ok(self
            .netlist
            .outputs
            .iter()
            .map(|&o| self.values[o])
            .collect())
    }

    /// Clears counters and state (the next `eval` primes again).
    pub fn reset(&mut self) {
        self.toggles.iter_mut().for_each(|t| *t = 0);
        self.values.iter_mut().for_each(|v| *v = false);
        self.cycles = 0;
        self.primed = false;
    }

    /// Per-node toggle counters accumulated since the last reset (indexed
    /// by [`NodeId`]; primary inputs stay at zero). Exposed so equivalence
    /// tests can compare engines gate by gate, not just in aggregate.
    #[must_use]
    pub fn toggles(&self) -> &[u64] {
        &self.toggles
    }

    /// Activity statistics accumulated since the last reset.
    ///
    /// The `active_depth` is the longest path *through gates that actually
    /// toggled*: a gate whose fanins are quiescent contributes no upstream
    /// delay, which models how input gating shortens the sensitizable
    /// critical path (paper Fig. 2b) even though the static netlist is
    /// unchanged.
    #[must_use]
    pub fn stats(&self) -> ActivityStats {
        stats_from_toggles(&self.netlist, &self.toggles, self.cycles)
    }
}

/// Folds per-node toggle counters into [`ActivityStats`].
///
/// Both engines accumulate the same `toggles` layout (one counter per
/// [`NodeId`]), and this single fold — walking nodes in creation order —
/// derives every aggregate from it, so the scalar and bitsliced statistics
/// agree by construction whenever the counters do.
#[must_use]
pub fn stats_from_toggles(netlist: &Netlist, toggles: &[u64], cycles: u64) -> ActivityStats {
    let mut total = 0u64;
    let mut weighted = 0.0f64;
    let mut active = 0usize;
    let mut active_depth = 0u32;
    // Depth within the toggling cone, in topological (creation) order.
    let mut cone = vec![0u32; netlist.kinds.len()];
    for (i, &t) in toggles.iter().enumerate() {
        let kind = netlist.kinds[i];
        if matches!(kind, GateKind::Input | GateKind::Zero | GateKind::One) {
            continue;
        }
        total += t;
        weighted += t as f64 * kind.relative_cap();
        if t > 0 {
            active += 1;
            let fan = match kind {
                GateKind::Input | GateKind::Zero | GateKind::One => 0,
                GateKind::Not(a) => cone[a],
                GateKind::And(a, b)
                | GateKind::Or(a, b)
                | GateKind::Xor(a, b)
                | GateKind::Nand(a, b)
                | GateKind::Nor(a, b) => cone[a].max(cone[b]),
                GateKind::Mux { sel, a, b } => cone[sel].max(cone[a]).max(cone[b]),
            };
            cone[i] = fan + kind.stage_delay();
            active_depth = active_depth.max(cone[i]);
        }
    }
    ActivityStats {
        cycles,
        toggles: total,
        weighted_toggles: weighted,
        active_gates: active,
        active_depth,
    }
}

/// Which evaluation engine drives a netlist over a stimulus stream.
///
/// Both engines are proven bit-identical (values *and* per-gate toggle
/// counts) by the property-test net; [`Engine::Bitsliced`] is the default
/// everywhere, [`Engine::Scalar`] is the retained reference oracle that
/// `bench_sweep` times against it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// One `bool` per gate per sample ([`Simulator`]) — the reference oracle.
    Scalar,
    /// 64 samples per `u64` word per gate ([`BitSimulator`]) — the default.
    #[default]
    Bitsliced,
}

impl Engine {
    /// Both engines, oracle first (test matrices iterate this).
    pub const ALL: [Engine; 2] = [Engine::Scalar, Engine::Bitsliced];

    /// Drives `netlist` with `samples` stimulus vectors (`stimulus(i)` is
    /// the input vector of sample `i`) and returns the accumulated activity
    /// statistics — the α extraction primitive behind Fig. 2d and Table I.
    ///
    /// The bitsliced engine consumes the stream in [`LANES`]-sample words
    /// with a masked ragged tail; the result is bit-identical to the scalar
    /// engine's for every stream length.
    ///
    /// # Panics
    ///
    /// Panics if a stimulus vector does not match the netlist's input count.
    #[must_use]
    pub fn simulate_stream<F>(self, netlist: &Netlist, samples: usize, stimulus: F) -> ActivityStats
    where
        F: Fn(usize) -> Vec<bool>,
    {
        match self {
            Engine::Scalar => {
                let mut sim = Simulator::new(netlist.clone());
                for s in 0..samples {
                    sim.eval(&stimulus(s)).expect("stimulus width must match");
                }
                sim.stats()
            }
            Engine::Bitsliced => {
                let mut sim = BitSimulator::new(netlist.clone());
                let mut word = Vec::with_capacity(LANES);
                let mut start = 0;
                while start < samples {
                    let valid = LANES.min(samples - start);
                    word.clear();
                    word.extend((start..start + valid).map(&stimulus));
                    let packed = crate::metrics::pack_stimuli(&word);
                    sim.eval_packed(&packed, valid)
                        .expect("stimulus width must match");
                    start += valid;
                }
                sim.stats()
            }
        }
    }
}

/// Converts an unsigned value to `n` bits, LSB first, for netlist stimulus.
#[must_use]
pub fn to_bits(value: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (value >> i) & 1 == 1).collect()
}

/// Converts LSB-first bits back to an unsigned value.
#[must_use]
pub fn from_bits(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_once(nl: Netlist, inputs: &[bool]) -> Vec<bool> {
        Simulator::new(nl).eval(inputs).unwrap()
    }

    #[test]
    fn basic_gates_truth_tables() {
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut nl = Netlist::new();
            let ia = nl.input();
            let ib = nl.input();
            let g_and = nl.and(ia, ib);
            let g_or = nl.or(ia, ib);
            let g_xor = nl.xor(ia, ib);
            let g_nand = nl.nand(ia, ib);
            let g_nor = nl.nor(ia, ib);
            let g_not = nl.not(ia);
            for g in [g_and, g_or, g_xor, g_nand, g_nor, g_not] {
                nl.mark_output(g);
            }
            let out = eval_once(nl, &[a, b]);
            assert_eq!(out[0], a && b);
            assert_eq!(out[1], a || b);
            assert_eq!(out[2], a ^ b);
            assert_eq!(out[3], !(a && b));
            assert_eq!(out[4], !(a || b));
            assert_eq!(out[5], !a);
        }
    }

    #[test]
    fn mux_selects() {
        for (s, a, b) in [
            (false, false, true),
            (false, true, false),
            (true, false, true),
            (true, true, false),
        ] {
            let mut nl = Netlist::new();
            let is = nl.input();
            let ia = nl.input();
            let ib = nl.input();
            let m = nl.mux(is, ia, ib);
            nl.mark_output(m);
            let out = eval_once(nl, &[s, a, b]);
            assert_eq!(out[0], if s { a } else { b });
        }
    }

    #[test]
    fn full_adder_truth_table() {
        for v in 0..8u64 {
            let mut nl = Netlist::new();
            let a = nl.input();
            let b = nl.input();
            let c = nl.input();
            let (s, co) = nl.full_adder(a, b, c);
            nl.mark_output(s);
            nl.mark_output(co);
            let bits = to_bits(v, 3);
            let out = eval_once(nl, &bits);
            let total = u64::from(bits[0]) + u64::from(bits[1]) + u64::from(bits[2]);
            assert_eq!(u64::from(out[0]), total & 1);
            assert_eq!(u64::from(out[1]), total >> 1);
        }
    }

    #[test]
    fn constant_folding_collapses_trivial_gates() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let z = nl.zero();
        let o = nl.one();
        assert_eq!(nl.and(a, z), z);
        assert_eq!(nl.and(a, o), a);
        assert_eq!(nl.or(a, z), a);
        assert_eq!(nl.or(a, o), o);
        assert_eq!(nl.xor(a, z), a);
        // No logic cells were created by the folds above.
        assert_eq!(nl.gate_count(), 0);
    }

    #[test]
    fn toggle_counting_counts_transitions_not_levels() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = nl.and(a, b);
        nl.mark_output(g);
        let mut sim = Simulator::new(nl);
        sim.eval(&[false, false]).unwrap(); // prime
        sim.eval(&[true, true]).unwrap(); // AND: 0 -> 1 (toggle)
        sim.eval(&[true, true]).unwrap(); // stable (no toggle)
        sim.eval(&[false, true]).unwrap(); // 1 -> 0 (toggle)
        let st = sim.stats();
        assert_eq!(st.toggles, 2);
        assert_eq!(st.cycles, 3);
        assert_eq!(st.active_gates, 1);
    }

    #[test]
    fn gated_inputs_produce_zero_toggles() {
        // Hold inputs constant: nothing downstream may toggle.
        let mut nl = Netlist::new();
        let bus = nl.input_bus(8);
        let mut acc = bus[0];
        for &b in &bus[1..] {
            acc = nl.xor(acc, b);
        }
        nl.mark_output(acc);
        let mut sim = Simulator::new(nl);
        for _ in 0..10 {
            sim.eval(&[false; 8]).unwrap();
        }
        assert_eq!(sim.stats().toggles, 0);
    }

    #[test]
    fn depth_of_xor_chain_grows_linearly() {
        let mut nl = Netlist::new();
        let bus = nl.input_bus(9);
        let mut acc = bus[0];
        for &b in &bus[1..] {
            acc = nl.xor(acc, b);
        }
        nl.mark_output(acc);
        // 8 XOR stages at 2 NAND-equivalents each.
        assert_eq!(nl.critical_depth(), 16);
    }

    #[test]
    fn active_depth_shrinks_when_high_bits_are_gated() {
        // A chain where later stages only toggle when later inputs toggle.
        let mut nl = Netlist::new();
        let bus = nl.input_bus(8);
        let mut acc = bus[0];
        let mut stages = Vec::new();
        for &b in &bus[1..] {
            acc = nl.xor(acc, b);
            stages.push(acc);
        }
        nl.mark_output(acc);
        let full_depth = nl.critical_depth();
        let mut sim = Simulator::new(nl);
        // Toggle only the lowest input: every XOR stage flips once.
        sim.eval(&[false; 8]).unwrap();
        sim.eval(&[true, false, false, false, false, false, false, false])
            .unwrap();
        let st = sim.stats();
        assert!(st.active_depth <= full_depth);
        assert!(st.toggles > 0);
    }

    #[test]
    fn eval_rejects_wrong_input_length() {
        let mut nl = Netlist::new();
        nl.input();
        let mut sim = Simulator::new(nl);
        assert!(matches!(
            sim.eval(&[true, false]),
            Err(ArithError::InputLengthMismatch {
                expected: 1,
                actual: 2
            })
        ));
    }

    #[test]
    fn reset_clears_counters() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let n = nl.not(a);
        nl.mark_output(n);
        let mut sim = Simulator::new(nl);
        sim.eval(&[false]).unwrap();
        sim.eval(&[true]).unwrap();
        assert!(sim.stats().toggles > 0);
        sim.reset();
        assert_eq!(sim.stats().toggles, 0);
        assert_eq!(sim.stats().cycles, 0);
    }

    #[test]
    fn bits_roundtrip() {
        for v in [0u64, 1, 0xABCD, 0xFFFF] {
            assert_eq!(from_bits(&to_bits(v, 16)), v & 0xFFFF);
        }
    }

    #[test]
    fn weighted_toggles_respect_cell_caps() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let x = nl.xor(a, b); // cap 2.0
        nl.mark_output(x);
        let mut sim = Simulator::new(nl);
        sim.eval(&[false, false]).unwrap();
        sim.eval(&[true, false]).unwrap();
        let st = sim.stats();
        assert_eq!(st.toggles, 1);
        assert!((st.weighted_toggles - 2.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_is_toggles_per_gate_cycle() {
        let st = ActivityStats {
            cycles: 10,
            toggles: 25,
            weighted_toggles: 25.0,
            active_gates: 5,
            active_depth: 3,
        };
        assert!((st.alpha(5) - 0.5).abs() < 1e-12);
        assert_eq!(st.alpha(0), 0.0);
    }
}
