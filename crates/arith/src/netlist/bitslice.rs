//! The bitsliced netlist engine: 64 Monte-Carlo samples per machine word.
//!
//! The scalar [`Simulator`](super::Simulator) evaluates one `bool` per gate
//! per operand pair — the hottest loop in the workspace, since every α,
//! RMSE and energy figure funnels through gate-level toggle simulation.
//! [`BitSimulator`] transposes the stream instead: lane `s` of one `u64`
//! word holds sample `s`'s value of a node, so evaluating the whole netlist
//! advances **64 samples at once** and every cell is 1–3 word ops:
//!
//! ```text
//! AND  -> a & b          NAND -> !(a & b)
//! OR   -> a | b          NOR  -> !(a | b)
//! XOR  -> a ^ b          NOT  -> !a
//! MUX  -> (sel & a) | (!sel & b)
//! ```
//!
//! The paper's switching-activity model (equations (1)–(3), Fig. 2b) only
//! needs per-gate toggle *counts*, which bitslicing computes for free: the
//! transitions between consecutive samples of a word are
//! `word ^ ((word << 1) | carry)` — `carry` being the last valid lane of
//! the previous word — and `popcount` of that difference, masked to the
//! valid lanes, is exactly the number of toggles the scalar engine counts
//! one comparison at a time. Ragged tails (`samples % 64 != 0`) mask the
//! unused lanes, so every existing sample count keeps its exact result.
//!
//! Equivalence with the scalar oracle — values *and* per-gate toggle
//! counters, ragged lengths included — is proven by the property-test net
//! in `tests/bitslice_equivalence.rs` and re-asserted end-to-end by the
//! `bench_sweep` scenario before any timing is recorded.

use super::{stats_from_toggles, ActivityStats, GateKind, Netlist};
use crate::error::ArithError;

/// Number of Monte-Carlo samples packed into one lane word.
pub const LANES: usize = 64;

/// The mask selecting the low `valid` lanes of a word.
///
/// # Panics
///
/// Panics if `valid` is not in `1..=`[`LANES`].
#[must_use]
pub fn lane_mask(valid: usize) -> u64 {
    assert!(
        (1..=LANES).contains(&valid),
        "valid lane count must be in 1..={LANES}, got {valid}"
    );
    if valid == LANES {
        u64::MAX
    } else {
        (1u64 << valid) - 1
    }
}

/// Event-free two-phase simulator evaluating [`LANES`] samples per word,
/// with per-gate toggle counting via `popcount`.
///
/// Drop-in peer of the scalar [`Simulator`](super::Simulator): feed it the
/// same stream (packed into lane words) and it accumulates the same
/// per-gate toggle counters, cycles and [`ActivityStats`] — bit-identical,
/// including across word boundaries (the last valid lane of each word is
/// carried into the next word's transition count).
///
/// # Example
///
/// Six samples of a half adder in one ragged word:
///
/// ```
/// use dvafs_arith::netlist::{BitSimulator, Netlist};
///
/// let mut nl = Netlist::new();
/// let a = nl.input();
/// let b = nl.input();
/// let (sum, carry) = nl.half_adder(a, b);
/// nl.mark_output(sum);
/// nl.mark_output(carry);
///
/// let mut sim = BitSimulator::new(nl);
/// // Lane s = sample s: a = 0,1,1,0,1,0  b = 0,0,1,1,1,0
/// let out = sim.eval_packed(&[0b010110, 0b011100], 6)?;
/// assert_eq!(out[0], 0b010110 ^ 0b011100); // sum   = a ^ b, lane-wise
/// assert_eq!(out[1], 0b010110 & 0b011100); // carry = a & b, lane-wise
/// # Ok::<(), dvafs_arith::ArithError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitSimulator {
    netlist: Netlist,
    /// Scratch lane word per node (the most recent evaluated word).
    words: Vec<u64>,
    /// Bit 0 holds each node's value in the last *valid* lane of the
    /// previous word — the carry into the next word's transition count.
    carry: Vec<u64>,
    toggles: Vec<u64>,
    cycles: u64,
    primed: bool,
}

impl BitSimulator {
    /// Wraps a netlist for bitsliced simulation.
    #[must_use]
    pub fn new(netlist: Netlist) -> Self {
        let n = netlist.node_count();
        BitSimulator {
            netlist,
            words: vec![0; n],
            carry: vec![0; n],
            toggles: vec![0; n],
            cycles: 0,
            primed: false,
        }
    }

    /// The wrapped netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consumes the simulator and returns the netlist.
    #[must_use]
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// Applies one word of stimulus — `inputs[i]` packs samples of primary
    /// input `i`, lane `s` = sample `s`, only the low `valid` lanes
    /// meaningful — and returns one lane word per primary output.
    ///
    /// The very first valid lane ever evaluated primes node state without
    /// counting toggles (exactly like the scalar engine's first `eval`);
    /// every later lane counts transitions against the preceding lane,
    /// including the lane carried over from the previous word.
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::InputLengthMismatch`] when `inputs.len()`
    /// differs from the number of primary inputs, and
    /// [`ArithError::LaneOutOfRange`] when `valid` is not in `1..=`[`LANES`].
    pub fn eval_packed(&mut self, inputs: &[u64], valid: usize) -> Result<Vec<u64>, ArithError> {
        if inputs.len() != self.netlist.inputs.len() {
            return Err(ArithError::InputLengthMismatch {
                expected: self.netlist.inputs.len(),
                actual: inputs.len(),
            });
        }
        if !(1..=LANES).contains(&valid) {
            return Err(ArithError::LaneOutOfRange { lanes: valid });
        }
        let mask = lane_mask(valid);
        // Lane 0 of the first word ever has no predecessor: it primes.
        let tmask = if self.primed { mask } else { mask & !1 };
        let mut in_iter = inputs.iter();
        for (i, kind) in self.netlist.kinds.iter().enumerate() {
            let w = match *kind {
                GateKind::Input => *in_iter.next().expect("length checked above"),
                GateKind::Zero => 0,
                GateKind::One => u64::MAX,
                GateKind::Not(a) => !self.words[a],
                GateKind::And(a, b) => self.words[a] & self.words[b],
                GateKind::Or(a, b) => self.words[a] | self.words[b],
                GateKind::Xor(a, b) => self.words[a] ^ self.words[b],
                GateKind::Nand(a, b) => !(self.words[a] & self.words[b]),
                GateKind::Nor(a, b) => !(self.words[a] | self.words[b]),
                GateKind::Mux { sel, a, b } => {
                    let s = self.words[sel];
                    (s & self.words[a]) | (!s & self.words[b])
                }
            };
            self.words[i] = w;
            if !matches!(kind, GateKind::Input) {
                let diff = (w ^ ((w << 1) | self.carry[i])) & tmask;
                self.toggles[i] += u64::from(diff.count_ones());
            }
            self.carry[i] = (w >> (valid - 1)) & 1;
        }
        self.cycles += (valid - usize::from(!self.primed)) as u64;
        self.primed = true;
        Ok(self
            .netlist
            .outputs
            .iter()
            .map(|&o| self.words[o] & mask)
            .collect())
    }

    /// Per-node toggle counters accumulated since the last reset (indexed
    /// by node id; primary inputs stay at zero) — the quantity the
    /// equivalence proofs compare against the scalar oracle gate by gate.
    #[must_use]
    pub fn toggles(&self) -> &[u64] {
        &self.toggles
    }

    /// Clears counters and state (the next `eval_packed` primes again).
    pub fn reset(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.carry.iter_mut().for_each(|c| *c = 0);
        self.toggles.iter_mut().for_each(|t| *t = 0);
        self.cycles = 0;
        self.primed = false;
    }

    /// Activity statistics accumulated since the last reset — the same
    /// fold over the same per-gate counters as the scalar engine's
    /// [`stats`](super::Simulator::stats).
    #[must_use]
    pub fn stats(&self) -> ActivityStats {
        stats_from_toggles(&self.netlist, &self.toggles, self.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::pack_stimuli;
    use crate::netlist::{to_bits, Simulator};

    /// Drives both engines over the same bool-vector stream and asserts
    /// outputs, per-gate toggles, cycles and stats all agree.
    fn assert_engines_agree(nl: &Netlist, stream: &[Vec<bool>]) {
        let mut scalar = Simulator::new(nl.clone());
        let mut packed = BitSimulator::new(nl.clone());
        let mut scalar_out = Vec::new();
        for s in stream {
            scalar_out.push(scalar.eval(s).expect("width"));
        }
        let mut packed_out: Vec<Vec<bool>> = Vec::new();
        for chunk in stream.chunks(LANES) {
            let words = packed
                .eval_packed(&pack_stimuli(chunk), chunk.len())
                .expect("width");
            for lane in 0..chunk.len() {
                packed_out.push(words.iter().map(|w| (w >> lane) & 1 == 1).collect());
            }
        }
        assert_eq!(scalar_out, packed_out, "output values diverged");
        assert_eq!(scalar.toggles(), packed.toggles(), "toggle counters");
        assert_eq!(scalar.stats(), packed.stats(), "aggregate stats");
    }

    #[test]
    fn lane_mask_covers_range() {
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(6), 0b11_1111);
        assert_eq!(lane_mask(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "valid lane count")]
    fn lane_mask_rejects_zero() {
        let _ = lane_mask(0);
    }

    #[test]
    fn hand_computed_three_gate_toggles() {
        // x = a XOR b, n = NOT x, g = x AND b over six samples:
        //   s:      0  1  2  3  4  5
        //   a:      0  1  1  0  0  0
        //   b:      0  0  1  1  1  0
        //   x:      0  1  0  1  1  0   -> 4 transitions
        //   n:      1  0  1  0  0  1   -> 4 transitions
        //   g:      0  0  0  1  1  0   -> 2 transitions
        // Popcount arithmetic, by hand: x packs to 0b011010, its shifted
        // predecessor is 0b110100, the XOR is 0b101110; masking off the
        // priming lane (0b111110) leaves popcount 4. Likewise g: 0b011000
        // vs 0b110000 -> 0b101000, popcount 2.
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let x = nl.xor(a, b);
        let n = nl.not(x);
        let g = nl.and(x, b);
        nl.mark_output(n);
        nl.mark_output(g);

        let mut sim = BitSimulator::new(nl.clone());
        let out = sim.eval_packed(&[0b000110, 0b011100], 6).expect("fits");
        assert_eq!(out, vec![0b100101, 0b011000]);
        assert_eq!(sim.toggles()[x], 4);
        assert_eq!(sim.toggles()[n], 4);
        assert_eq!(sim.toggles()[g], 2);
        let st = sim.stats();
        assert_eq!(st.cycles, 5);
        assert_eq!(st.toggles, 10);
        // XOR cap 2.0, NOT cap 0.5, AND cap 1.25.
        assert!((st.weighted_toggles - (4.0 * 2.0 + 4.0 * 0.5 + 2.0 * 1.25)).abs() < 1e-12);

        // The carry crosses into the next word: sample 6 = (1, 0) flips x
        // (0 -> 1) and n but leaves g at 0.
        sim.eval_packed(&[1, 0], 1).expect("fits");
        assert_eq!(sim.toggles()[x], 5);
        assert_eq!(sim.toggles()[n], 5);
        assert_eq!(sim.toggles()[g], 2);
        assert_eq!(sim.stats().cycles, 6);
    }

    #[test]
    fn ragged_tail_lanes_are_masked_out() {
        // Garbage above the valid lanes must affect neither outputs nor
        // toggle counts: evaluate the same 3 samples with high lanes set.
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = nl.or(a, b);
        nl.mark_output(g);
        let run = |wa: u64, wb: u64| {
            let mut sim = BitSimulator::new(nl.clone());
            let out = sim.eval_packed(&[wa, wb], 3).expect("fits");
            (out, sim.toggles().to_vec(), sim.stats())
        };
        let clean = run(0b010, 0b100);
        let noisy = run(0b010 | !0b111, 0b100 | !0b111);
        assert_eq!(clean, noisy);
    }

    #[test]
    fn full_and_ragged_words_match_scalar_on_an_adder_chain() {
        let mut nl = Netlist::new();
        let bus = nl.input_bus(8);
        let mut carry = nl.zero();
        let mut acc = bus[0];
        for &b in &bus[1..] {
            let (s, c) = nl.full_adder(acc, b, carry);
            acc = s;
            carry = c;
        }
        nl.mark_output(acc);
        nl.mark_output(carry);
        for len in [1usize, 63, 64, 65, 130] {
            let stream: Vec<Vec<bool>> = (0..len)
                .map(|s| to_bits((s as u64).wrapping_mul(0x9E37_79B9), 8))
                .collect();
            assert_engines_agree(&nl, &stream);
        }
    }

    #[test]
    fn mux_word_semantics_match_scalar() {
        let mut nl = Netlist::new();
        let s = nl.input();
        let a = nl.input();
        let b = nl.input();
        let m = nl.mux(s, a, b);
        nl.mark_output(m);
        let stream: Vec<Vec<bool>> = (0..8).map(|v| to_bits(v, 3)).collect();
        assert_engines_agree(&nl, &stream);
    }

    #[test]
    fn eval_packed_rejects_bad_shapes() {
        let mut nl = Netlist::new();
        nl.input();
        let mut sim = BitSimulator::new(nl);
        assert!(matches!(
            sim.eval_packed(&[0, 0], 4),
            Err(ArithError::InputLengthMismatch {
                expected: 1,
                actual: 2
            })
        ));
        assert!(matches!(
            sim.eval_packed(&[0], 0),
            Err(ArithError::LaneOutOfRange { lanes: 0 })
        ));
        assert!(matches!(
            sim.eval_packed(&[0], 65),
            Err(ArithError::LaneOutOfRange { lanes: 65 })
        ));
    }

    #[test]
    fn reset_clears_packed_state() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let n = nl.not(a);
        nl.mark_output(n);
        let mut sim = BitSimulator::new(nl);
        sim.eval_packed(&[0b01], 2).expect("fits");
        assert!(sim.stats().toggles > 0);
        sim.reset();
        assert_eq!(sim.stats().toggles, 0);
        assert_eq!(sim.stats().cycles, 0);
        // Primes again from scratch: a single lane counts nothing.
        sim.eval_packed(&[1], 1).expect("fits");
        assert_eq!(sim.stats().toggles, 0);
    }
}
