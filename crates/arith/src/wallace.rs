//! Wallace-tree carry-save reduction.
//!
//! The partial products of a multiplier are organized as per-column dot
//! diagrams and compressed with full/half adders until at most two rows
//! remain; a final carry-propagate adder produces the product. The tree's
//! logarithmic depth — and the way the *active* part of it shrinks when
//! operand LSBs are gated — is what gives DVAS/DVAFS its critical-path slack
//! (paper Fig. 2b).

use crate::adder::ripple_carry_adder;
use crate::netlist::{Netlist, NodeId};

/// Per-column dot diagram: `columns[i]` holds the bits of weight `2^i`.
#[derive(Debug, Clone, Default)]
pub struct ColumnStack {
    columns: Vec<Vec<NodeId>>,
}

impl ColumnStack {
    /// Creates an empty stack with `width` columns.
    #[must_use]
    pub fn new(width: usize) -> Self {
        ColumnStack {
            columns: vec![Vec::new(); width],
        }
    }

    /// Number of columns (output width).
    #[must_use]
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Adds one bit of weight `2^col`. Bits beyond the stack width are
    /// discarded (modular arithmetic, as in a fixed-width multiplier).
    pub fn push_bit(&mut self, col: usize, bit: NodeId) {
        if col < self.columns.len() {
            self.columns[col].push(bit);
        }
    }

    /// Adds a row of bits starting at column `offset` (LSB first).
    pub fn push_row(&mut self, offset: usize, row: &[NodeId]) {
        for (i, &bit) in row.iter().enumerate() {
            self.push_bit(offset + i, bit);
        }
    }

    /// The maximum column height — proportional to the number of reduction
    /// stages the Wallace tree needs.
    #[must_use]
    pub fn max_height(&self) -> usize {
        self.columns.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Reduces the stack with 3:2 and 2:2 counters until every column holds
    /// at most two bits, then returns the two remaining rows, each `width`
    /// bits (missing positions filled with constant 0).
    pub fn reduce(mut self, nl: &mut Netlist) -> (Vec<NodeId>, Vec<NodeId>) {
        while self.max_height() > 2 {
            let mut next: Vec<Vec<NodeId>> = vec![Vec::new(); self.columns.len()];
            for (i, col) in self.columns.iter().enumerate() {
                let mut bits = col.as_slice();
                // Compress triples with full adders, then a leftover pair
                // with a half adder when the column is still too tall.
                while bits.len() >= 3 {
                    let (s, c) = nl.full_adder(bits[0], bits[1], bits[2]);
                    next[i].push(s);
                    if i + 1 < next.len() {
                        next[i + 1].push(c);
                    }
                    bits = &bits[3..];
                }
                if bits.len() == 2 && col.len() > 2 {
                    let (s, c) = nl.half_adder(bits[0], bits[1]);
                    next[i].push(s);
                    if i + 1 < next.len() {
                        next[i + 1].push(c);
                    }
                } else {
                    next[i].extend_from_slice(bits);
                }
            }
            self.columns = next;
        }
        let zero = nl.zero();
        let mut row_a = Vec::with_capacity(self.columns.len());
        let mut row_b = Vec::with_capacity(self.columns.len());
        for col in &self.columns {
            row_a.push(col.first().copied().unwrap_or(zero));
            row_b.push(col.get(1).copied().unwrap_or(zero));
        }
        (row_a, row_b)
    }

    /// Reduces the stack and resolves the final two rows with a
    /// carry-propagate adder, returning `width` product bits (carry-out
    /// discarded: fixed-width modular product).
    pub fn reduce_to_sum(self, nl: &mut Netlist) -> Vec<NodeId> {
        let width = self.width();
        let (a, b) = self.reduce(nl);
        let mut sum = ripple_carry_adder(nl, &a, &b);
        sum.truncate(width);
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{from_bits, to_bits, Simulator};
    use rand::{Rng, SeedableRng};

    /// Sums `rows.len()` unsigned values via the Wallace tree and compares
    /// with the arithmetic sum.
    fn wallace_sum(values: &[u64], width: usize) -> u64 {
        let mut nl = Netlist::new();
        let mut stack = ColumnStack::new(width);
        let mut all_inputs = Vec::new();
        for _ in values {
            let bus = nl.input_bus(width);
            stack.push_row(0, &bus);
            all_inputs.push(bus);
        }
        let sum = stack.reduce_to_sum(&mut nl);
        nl.mark_output_bus(&sum);
        let mut sim = Simulator::new(nl);
        let mut stim = Vec::new();
        for &v in values {
            stim.extend(to_bits(v, width));
        }
        from_bits(&sim.eval(&stim).unwrap())
    }

    #[test]
    fn sums_three_values_exhaustive_3b() {
        for a in 0..8u64 {
            for b in 0..8u64 {
                for c in 0..8u64 {
                    assert_eq!(wallace_sum(&[a, b, c], 6), a + b + c);
                }
            }
        }
    }

    #[test]
    fn sums_many_random_rows() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for rows in [4usize, 5, 8, 9] {
            for _ in 0..20 {
                let vals: Vec<u64> = (0..rows).map(|_| rng.gen_range(0..1 << 12)).collect();
                let expect: u64 = vals.iter().sum();
                assert_eq!(wallace_sum(&vals, 16), expect, "rows={rows}");
            }
        }
    }

    #[test]
    fn modular_truncation_of_overflow() {
        // Two max 4-bit values summed into a 4-bit stack wraps mod 16.
        assert_eq!(wallace_sum(&[15, 15, 15], 4), 45 % 16);
    }

    #[test]
    fn tree_depth_is_sublinear_in_rows() {
        // Wallace depth grows ~log(rows): 16 rows should need far fewer than
        // 16 full-adder stages before the final CPA.
        let build = |rows: usize| {
            let mut nl = Netlist::new();
            let mut stack = ColumnStack::new(8);
            for _ in 0..rows {
                let bus = nl.input_bus(8);
                stack.push_row(0, &bus);
            }
            let (a, b) = stack.reduce(&mut nl);
            nl.mark_output_bus(&a);
            nl.mark_output_bus(&b);
            nl.critical_depth()
        };
        let d4 = build(4);
        let d16 = build(16);
        // log2(16/2)/log1.5 ~ 6 stages vs log2(4/2)/log1.5 ~ 2 stages.
        assert!(d16 < d4 * 4, "d4={d4} d16={d16}");
    }

    #[test]
    fn push_bit_beyond_width_is_discarded() {
        let mut nl = Netlist::new();
        let mut stack = ColumnStack::new(2);
        let a = nl.input();
        stack.push_bit(5, a);
        assert_eq!(stack.max_height(), 0);
    }

    #[test]
    fn empty_stack_reduces_to_zero() {
        let mut nl = Netlist::new();
        let stack = ColumnStack::new(4);
        let sum = stack.reduce_to_sum(&mut nl);
        nl.mark_output_bus(&sum);
        let mut sim = Simulator::new(nl);
        let out = sim.eval(&[]).unwrap();
        assert_eq!(from_bits(&out), 0);
    }
}
