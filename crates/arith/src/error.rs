//! Error type for the arithmetic substrate.

use std::fmt;

/// Errors reported by constructors and evaluators in this crate.
///
/// # Example
///
/// ```
/// use dvafs_arith::{ArithError, Precision};
///
/// let err = Precision::new(0).unwrap_err();
/// assert!(matches!(err, ArithError::InvalidPrecision { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArithError {
    /// Requested operand precision is outside the supported `1..=16` range.
    InvalidPrecision {
        /// The offending number of bits.
        bits: u32,
    },
    /// A netlist node id did not refer to an existing node.
    UnknownNode {
        /// The offending node index.
        id: usize,
    },
    /// An input vector did not match the number of netlist inputs.
    InputLengthMismatch {
        /// Number of inputs the netlist declares.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// Operand does not fit in the declared precision.
    OperandOutOfRange {
        /// The offending operand value.
        value: i64,
        /// Precision it was expected to fit in.
        bits: u32,
    },
    /// A subword slice had the wrong number of lanes for the selected mode.
    LaneCountMismatch {
        /// Lanes required by the mode.
        expected: usize,
        /// Lanes supplied.
        actual: usize,
    },
    /// A bitsliced evaluation's valid-lane count was outside `1..=64`.
    LaneOutOfRange {
        /// The offending lane count.
        lanes: usize,
    },
}

impl fmt::Display for ArithError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithError::InvalidPrecision { bits } => {
                write!(f, "precision must be between 1 and 16 bits, got {bits}")
            }
            ArithError::UnknownNode { id } => write!(f, "unknown netlist node id {id}"),
            ArithError::InputLengthMismatch { expected, actual } => {
                write!(f, "netlist expects {expected} input bits, got {actual}")
            }
            ArithError::OperandOutOfRange { value, bits } => {
                write!(f, "operand {value} does not fit in {bits} signed bits")
            }
            ArithError::LaneCountMismatch { expected, actual } => {
                write!(f, "mode requires {expected} lanes, got {actual}")
            }
            ArithError::LaneOutOfRange { lanes } => {
                write!(f, "valid lane count must be between 1 and 64, got {lanes}")
            }
        }
    }
}

impl std::error::Error for ArithError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<ArithError> = vec![
            ArithError::InvalidPrecision { bits: 0 },
            ArithError::UnknownNode { id: 3 },
            ArithError::InputLengthMismatch {
                expected: 32,
                actual: 16,
            },
            ArithError::OperandOutOfRange { value: 99, bits: 4 },
            ArithError::LaneCountMismatch {
                expected: 4,
                actual: 2,
            },
            ArithError::LaneOutOfRange { lanes: 65 },
        ];
        for c in cases {
            let msg = c.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArithError>();
    }
}
