//! Gate-level adders and the MAC accumulate path.
//!
//! Adders appear twice in the DVAFS story: as the final carry-propagate
//! stage of the Wallace tree (its depth dominates the multiplier's critical
//! path and shrinks with precision) and as the accumulator of a MAC unit.

use crate::netlist::{Netlist, NodeId};

/// Builds a ripple-carry adder over two equal-width buses.
///
/// Returns `width + 1` sum bits (LSB first, last bit is the carry out).
///
/// # Panics
///
/// Panics if the two buses have different widths.
pub fn ripple_carry_adder(nl: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(a.len(), b.len(), "adder operand widths must match");
    let mut carry = nl.zero();
    let mut out = Vec::with_capacity(a.len() + 1);
    for (&ai, &bi) in a.iter().zip(b.iter()) {
        let (s, c) = nl.full_adder(ai, bi, carry);
        out.push(s);
        carry = c;
    }
    out.push(carry);
    out
}

/// Builds a carry-save adder stage: three input rows are compressed to a
/// `(sum, carry)` row pair, each `width` bits; the carry row is shifted one
/// position left by the caller.
///
/// # Panics
///
/// Panics if the rows have different widths.
pub fn carry_save_stage(
    nl: &mut Netlist,
    a: &[NodeId],
    b: &[NodeId],
    c: &[NodeId],
) -> (Vec<NodeId>, Vec<NodeId>) {
    assert!(
        a.len() == b.len() && b.len() == c.len(),
        "carry-save rows must share a width"
    );
    let mut sums = Vec::with_capacity(a.len());
    let mut carries = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let (s, co) = nl.full_adder(a[i], b[i], c[i]);
        sums.push(s);
        carries.push(co);
    }
    (sums, carries)
}

/// A saturating signed accumulator, the behavioral model of a MAC unit's
/// accumulate register (wide enough that CNN dot products do not overflow).
///
/// # Example
///
/// ```
/// use dvafs_arith::adder::Accumulator;
///
/// let mut acc = Accumulator::new(48);
/// acc.add(1000);
/// acc.add(-250);
/// assert_eq!(acc.value(), 750);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accumulator {
    value: i64,
    width: u32,
}

impl Accumulator {
    /// Creates an accumulator with the given register width in bits
    /// (`2..=63`).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `2..=63`.
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!((2..=63).contains(&width), "accumulator width out of range");
        Accumulator { value: 0, width }
    }

    /// Saturating add of a product term.
    pub fn add(&mut self, term: i64) {
        let hi = (1i64 << (self.width - 1)) - 1;
        let lo = -(1i64 << (self.width - 1));
        self.value = self.value.saturating_add(term).clamp(lo, hi);
    }

    /// The current accumulated value.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Clears the accumulator.
    pub fn clear(&mut self) {
        self.value = 0;
    }

    /// Register width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{from_bits, to_bits, Simulator};

    fn add_via_netlist(a: u64, b: u64, width: usize) -> u64 {
        let mut nl = Netlist::new();
        let ba = nl.input_bus(width);
        let bb = nl.input_bus(width);
        let sum = ripple_carry_adder(&mut nl, &ba, &bb);
        nl.mark_output_bus(&sum);
        let mut sim = Simulator::new(nl);
        let mut inputs = to_bits(a, width);
        inputs.extend(to_bits(b, width));
        from_bits(&sim.eval(&inputs).unwrap())
    }

    #[test]
    fn ripple_adder_exhaustive_4b() {
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(add_via_netlist(a, b, 4), a + b);
            }
        }
    }

    #[test]
    fn ripple_adder_wide_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let a: u64 = rng.gen_range(0..(1 << 20));
            let b: u64 = rng.gen_range(0..(1 << 20));
            assert_eq!(add_via_netlist(a, b, 20), a + b);
        }
    }

    #[test]
    fn carry_save_preserves_sum_exhaustive_3x3b() {
        for a in 0..8u64 {
            for b in 0..8u64 {
                for c in 0..8u64 {
                    let mut nl = Netlist::new();
                    let ba = nl.input_bus(3);
                    let bb = nl.input_bus(3);
                    let bc = nl.input_bus(3);
                    let (s, carry) = carry_save_stage(&mut nl, &ba, &bb, &bc);
                    nl.mark_output_bus(&s);
                    nl.mark_output_bus(&carry);
                    let mut sim = Simulator::new(nl);
                    let mut inp = to_bits(a, 3);
                    inp.extend(to_bits(b, 3));
                    inp.extend(to_bits(c, 3));
                    let out = sim.eval(&inp).unwrap();
                    let sum = from_bits(&out[..3]);
                    let car = from_bits(&out[3..]);
                    assert_eq!(sum + (car << 1), a + b + c);
                }
            }
        }
    }

    #[test]
    fn adder_depth_scales_with_width() {
        let mut small = Netlist::new();
        let a4 = small.input_bus(4);
        let b4 = small.input_bus(4);
        let s = ripple_carry_adder(&mut small, &a4, &b4);
        small.mark_output_bus(&s);

        let mut big = Netlist::new();
        let a16 = big.input_bus(16);
        let b16 = big.input_bus(16);
        let s = ripple_carry_adder(&mut big, &a16, &b16);
        big.mark_output_bus(&s);

        assert!(big.critical_depth() > small.critical_depth() * 2);
    }

    #[test]
    fn accumulator_basic() {
        let mut acc = Accumulator::new(32);
        acc.add(5);
        acc.add(-3);
        assert_eq!(acc.value(), 2);
        acc.clear();
        assert_eq!(acc.value(), 0);
    }

    #[test]
    fn accumulator_saturates_both_ways() {
        let mut acc = Accumulator::new(8);
        for _ in 0..10 {
            acc.add(100);
        }
        assert_eq!(acc.value(), 127);
        for _ in 0..20 {
            acc.add(-100);
        }
        assert_eq!(acc.value(), -128);
    }

    #[test]
    #[should_panic(expected = "width out of range")]
    fn accumulator_rejects_width_1() {
        let _ = Accumulator::new(1);
    }
}
