//! # dvafs-arith — precision-scalable arithmetic substrate
//!
//! Bit-accurate, gate-level models of the arithmetic circuits evaluated in
//! *DVAFS: Trading Computational Accuracy for Energy Through
//! Dynamic-Voltage-Accuracy-Frequency-Scaling* (Moons et al., DATE 2017).
//!
//! The crate provides three layers:
//!
//! 1. **Gate level** ([`netlist`]): combinational netlists built from 2-input
//!    gates with per-gate toggle counting and levelized depth analysis. This
//!    replaces the paper's synthesized 40 nm netlists: switching activity and
//!    critical-path scaling are extracted by simulating the real gate
//!    structure on data streams.
//! 2. **Circuit structures** ([`booth`], [`wallace`], [`adder`],
//!    [`multiplier`]): Booth-encoded Wallace-tree and array multipliers, in
//!    exact, DAS (input-gated) and DVAFS (subword-parallel) variants, plus the
//!    approximate-multiplier baselines of the paper's Fig. 3b.
//! 3. **Value level** ([`fixed`], [`subword`]): fixed-point quantization,
//!    packed subword values and error metrics (RMSE) used by the evaluation.
//!
//! ## Example
//!
//! ```
//! use dvafs_arith::multiplier::DvafsMultiplier;
//! use dvafs_arith::subword::SubwordMode;
//!
//! let m = DvafsMultiplier::new();
//! // One full-precision 16x16 multiply.
//! assert_eq!(m.mul_full(-1234, 567), -1234i32 * 567);
//! // Four packed 4x4 multiplies in a single "cycle".
//! let a = [1, 2, 3, -4];
//! let b = [5, 6, 7, -8];
//! let p = m.mul_subwords(&a, &b, SubwordMode::X4);
//! assert_eq!(p, vec![5, 12, 21, 32]);
//! ```

#![warn(missing_docs)]

pub mod activity;
pub mod adder;
pub mod booth;
pub mod error;
pub mod fixed;
pub mod metrics;
pub mod multiplier;
pub mod netlist;
pub mod subword;
pub mod wallace;

pub use error::ArithError;
pub use fixed::{Fixed, Precision, Quantizer, RoundingMode};
pub use subword::SubwordMode;
