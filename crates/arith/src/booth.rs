//! Radix-4 (modified) Booth recoding.
//!
//! The paper's multiplier is a Booth-encoded Wallace-tree design
//! (Section III-A). Radix-4 Booth recoding halves the number of partial
//! products: a signed `n`-bit multiplier operand becomes `n/2` digits in
//! `{-2, -1, 0, 1, 2}`, each selecting `0, ±x, ±2x` as a partial product.
//!
//! This module provides the bit-accurate recoding used both by the
//! behavioral multiplier models and by the gate-level netlist generator
//! (which derives its `one`/`two`/`neg` select signals from the same
//! overlapping bit triplets).

use serde::{Deserialize, Serialize};

/// One radix-4 Booth digit with its decoded select lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoothDigit {
    /// Digit value in `{-2, -1, 0, 1, 2}`.
    pub value: i8,
    /// Select `±x` (magnitude one).
    pub one: bool,
    /// Select `±2x` (magnitude two).
    pub two: bool,
    /// Negate the selected multiple.
    pub neg: bool,
}

impl BoothDigit {
    /// Decodes a digit from the overlapping triplet
    /// `(y[2i+1], y[2i], y[2i-1])`.
    #[must_use]
    pub fn from_triplet(hi: bool, mid: bool, lo: bool) -> Self {
        let value = i8::from(mid) + i8::from(lo) - 2 * i8::from(hi);
        BoothDigit {
            value,
            one: mid ^ lo,
            two: (hi && !mid && !lo) || (!hi && mid && lo),
            neg: hi,
        }
    }
}

/// Recodes a signed `n`-bit operand into `n/2` radix-4 Booth digits,
/// least-significant digit first.
///
/// Bits above `n` are treated as sign extension; the implicit `y[-1]` is 0.
///
/// # Panics
///
/// Panics if `n` is zero, odd, or larger than 32.
///
/// # Example
///
/// ```
/// use dvafs_arith::booth::{booth_digits, digits_value};
///
/// let d = booth_digits(-7, 4);
/// assert_eq!(d.len(), 2);
/// assert_eq!(digits_value(&d), -7);
/// ```
#[must_use]
pub fn booth_digits(y: i32, n: u32) -> Vec<BoothDigit> {
    assert!(n > 0 && n % 2 == 0 && n <= 32, "n must be even and <= 32");
    let bit = |i: i64| -> bool {
        if i < 0 {
            false
        } else {
            let idx = (i as u32).min(31); // sign extension above bit n-1
            let idx = idx.min(n - 1);
            (y >> idx) & 1 == 1
        }
    };
    (0..n / 2)
        .map(|i| {
            let base = 2 * i64::from(i);
            BoothDigit::from_triplet(bit(base + 1), bit(base), bit(base - 1))
        })
        .collect()
}

/// Reconstructs the operand value from its Booth digits:
/// `sum(digit_i * 4^i)`.
#[must_use]
pub fn digits_value(digits: &[BoothDigit]) -> i64 {
    digits
        .iter()
        .enumerate()
        .map(|(i, d)| i64::from(d.value) << (2 * i))
        .sum()
}

/// Computes a product through Booth recoding (behavioral reference for the
/// gate-level Booth–Wallace multiplier): `x * y` with `y` recoded at `n`
/// bits.
///
/// # Panics
///
/// Panics under the same conditions as [`booth_digits`].
#[must_use]
pub fn booth_multiply(x: i32, y: i32, n: u32) -> i64 {
    booth_digits(y, n)
        .iter()
        .enumerate()
        .map(|(i, d)| (i64::from(x) * i64::from(d.value)) << (2 * i))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplet_decode_matches_value_table() {
        // (hi, mid, lo) -> value
        let cases = [
            ((false, false, false), 0),
            ((false, false, true), 1),
            ((false, true, false), 1),
            ((false, true, true), 2),
            ((true, false, false), -2),
            ((true, false, true), -1),
            ((true, true, false), -1),
            ((true, true, true), 0),
        ];
        for ((h, m, l), v) in cases {
            let d = BoothDigit::from_triplet(h, m, l);
            assert_eq!(d.value, v, "triplet {h}{m}{l}");
            // Select lines must reconstruct the digit value.
            let mag = if d.two {
                2
            } else if d.one {
                1
            } else {
                0
            };
            let rec = if d.neg { -mag } else { mag };
            if v != 0 {
                assert_eq!(rec, v, "select lines for triplet {h}{m}{l}");
            } else {
                assert_eq!(mag, 0);
            }
        }
    }

    #[test]
    fn digits_reconstruct_value_exhaustive_8b() {
        for y in -128..=127 {
            let d = booth_digits(y, 8);
            assert_eq!(d.len(), 4);
            assert_eq!(digits_value(&d), i64::from(y), "y={y}");
        }
    }

    #[test]
    fn digits_reconstruct_value_exhaustive_4b() {
        for y in -8..=7 {
            assert_eq!(digits_value(&booth_digits(y, 4)), i64::from(y));
        }
    }

    #[test]
    fn digits_reconstruct_16b_boundaries() {
        for y in [
            i32::from(i16::MIN),
            -1,
            0,
            1,
            i32::from(i16::MAX),
            0x5555,
            -0x5556,
        ] {
            assert_eq!(digits_value(&booth_digits(y, 16)), i64::from(y), "y={y}");
        }
    }

    #[test]
    fn booth_multiply_matches_exact_product() {
        let pairs = [
            (0, 0),
            (1, 1),
            (-1, 1),
            (i32::from(i16::MIN), i32::from(i16::MIN)),
            (i32::from(i16::MAX), i32::from(i16::MIN)),
            (1234, -5678),
            (-3, 7),
        ];
        for (x, y) in pairs {
            assert_eq!(booth_multiply(x, y, 16), i64::from(x) * i64::from(y));
        }
    }

    #[test]
    fn booth_multiply_exhaustive_6b() {
        for x in -32..=31 {
            for y in -32..=31 {
                assert_eq!(booth_multiply(x, y, 6), i64::from(x) * i64::from(y));
            }
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_width_panics() {
        let _ = booth_digits(1, 5);
    }
}
