//! Switching-activity and critical-path extraction.
//!
//! This module is the bridge between the gate-level simulations and the
//! paper's circuit-level parameters: it drives the multiplier netlists with
//! operand streams at each precision/mode and extracts
//!
//! * the **relative switching activity** (Fig. 2d; the `k0`/`k1`/`k3`
//!   parameters of Table I), and
//! * the **relative active critical path** (Fig. 2b), from which the
//!   technology model derives achievable supply voltages (`k2`/`k4`).
//!
//! Extraction runs on a selectable netlist [`Engine`] (bitsliced by
//! default, the scalar oracle on request) and an [`Executor`]: the
//! per-precision/per-mode streams are independent toggle simulations, so
//! the `_with` variants fan them out as parallel tasks and merge in sweep
//! order — profiles are bit-identical for any engine and thread count.

use crate::fixed::{Precision, Quantizer, RoundingMode};
use crate::multiplier::dvafs::DvafsMultiplier;
use crate::multiplier::exact::build_booth_wallace;
use crate::netlist::{ActivityStats, Engine};
use crate::subword::SubwordMode;
use dvafs_executor::Executor;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Activity and path-length figures for one operating point, relative to
/// full-precision `1x16b` operation of the same netlist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModeActivity {
    /// Operand precision in bits (per lane for subword modes).
    pub bits: u32,
    /// Subword lanes (`1` for DAS/DVAS points).
    pub lanes: usize,
    /// Switched capacitance per cycle, relative to full precision.
    pub activity_per_cycle: f64,
    /// Switched capacitance per processed *word*, relative to full
    /// precision (`activity_per_cycle / lanes`).
    pub activity_per_word: f64,
    /// Active (sensitizable) critical-path depth relative to full precision.
    pub depth_ratio: f64,
}

impl ModeActivity {
    /// The activity-reduction factor `k` of Table I
    /// (`1 / activity_per_cycle`).
    #[must_use]
    pub fn k_activity(&self) -> f64 {
        if self.activity_per_cycle > 0.0 {
            1.0 / self.activity_per_cycle
        } else {
            f64::INFINITY
        }
    }
}

/// An extracted activity profile across the paper's precision sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityProfile {
    /// Label of the scaled design ("DAS multiplier", "DVAFS multiplier").
    pub design: String,
    /// One entry per operating point, full precision first.
    pub entries: Vec<ModeActivity>,
}

impl ActivityProfile {
    /// Looks up the entry for a given per-lane precision.
    #[must_use]
    pub fn at_bits(&self, bits: u32) -> Option<&ModeActivity> {
        self.entries.iter().find(|e| e.bits == bits)
    }
}

/// Default number of operand pairs per extraction stream.
pub const DEFAULT_SAMPLES: usize = 200;

/// Extracts the DAS activity profile: the reconfigurable multiplier netlist
/// in its `1x16b` configuration, driven with LSB-gated operands at 16, 12,
/// 8 and 4 bits.
///
/// The paper compares DAS, DVAS and DVAFS on the *same* reconfigurable
/// design (Section III-A), so the DAS profile is measured on the same
/// mode-gated netlist as [`extract_dvafs_profile`] — gated input bits kill
/// their partial products outright, as the paper's data-gated synthesis
/// does. The paper reports activity dropping `12.5x` at 4 bits (`k0` in
/// Table I); toggle simulation of the gate structure lands in the same
/// region.
#[must_use]
pub fn extract_das_profile(samples: usize, seed: u64) -> ActivityProfile {
    extract_das_profile_with(samples, seed, Engine::default(), &Executor::serial())
}

/// [`extract_das_profile`] on an explicit netlist engine and executor: the
/// four precision streams run as parallel tasks and merge in sweep order,
/// so the profile is bit-identical for any engine/thread-count choice.
#[must_use]
pub fn extract_das_profile_with(
    samples: usize,
    seed: u64,
    engine: Engine,
    exec: &Executor,
) -> ActivityProfile {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let stream: Vec<(i32, i32)> = (0..samples)
        .map(|_| (rng.gen_range(-32768..=32767), rng.gen_range(-32768..=32767)))
        .collect();

    let m = DvafsMultiplier::new();
    let sweep = [16u32, 12, 8, 4];
    let stats = exec.par_map_indexed(&sweep, |_, &bits| {
        let q = Quantizer::new(
            Precision::new(bits).expect("sweep precisions are valid"),
            RoundingMode::Truncate,
        );
        let quantized: Vec<(u16, u16)> = stream
            .iter()
            .map(|&(x, y)| (q.quantize(x) as u16, q.quantize(y) as u16))
            .collect();
        m.simulate_stream_with(&quantized, SubwordMode::X1, engine)
    });
    ActivityProfile {
        design: "DAS on the reconfigurable multiplier".to_string(),
        entries: entries_relative_to_first(&sweep, &stats, |_| 1),
    }
}

/// Extracts a DAS profile from the signed Booth–Wallace reference design.
///
/// Unlike the array-style reconfigurable multiplier, Booth partial-product
/// rows XOR the `neg` select into every column, so low columns keep some
/// residual activity under input gating. This secondary profile documents
/// that design-dependence.
#[must_use]
pub fn extract_das_profile_booth(samples: usize, seed: u64) -> ActivityProfile {
    extract_das_profile_booth_with(samples, seed, Engine::default(), &Executor::serial())
}

/// [`extract_das_profile_booth`] on an explicit netlist engine and
/// executor (see [`extract_das_profile_with`]).
#[must_use]
pub fn extract_das_profile_booth_with(
    samples: usize,
    seed: u64,
    engine: Engine,
    exec: &Executor,
) -> ActivityProfile {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let stream: Vec<(i32, i32)> = (0..samples)
        .map(|_| (rng.gen_range(-32768..=32767), rng.gen_range(-32768..=32767)))
        .collect();

    let netlist = build_booth_wallace(16);
    let sweep = [16u32, 12, 8, 4];
    let stats = exec.par_map_indexed(&sweep, |_, &bits| {
        let q = Quantizer::new(
            Precision::new(bits).expect("sweep precisions are valid"),
            RoundingMode::Truncate,
        );
        engine.simulate_stream(&netlist, stream.len(), |s| {
            let (x, y) = stream[s];
            let xq = (q.quantize(x) as u16) as u64;
            let yq = (q.quantize(y) as u16) as u64;
            let mut inputs = crate::netlist::to_bits(xq, 16);
            inputs.extend(crate::netlist::to_bits(yq, 16));
            inputs
        })
    });
    ActivityProfile {
        design: "DAS Booth-Wallace multiplier".to_string(),
        entries: entries_relative_to_first(&sweep, &stats, |_| 1),
    }
}

/// Extracts the DVAFS activity profile: the subword-parallel multiplier in
/// `1x16b`, `2x8b` and `4x4b` modes with fully-toggling packed operands.
///
/// Per-cycle activity maps to `k3` of Table I; dividing by the lane count
/// gives the per-word activity that enters the energy-per-word curves.
#[must_use]
pub fn extract_dvafs_profile(samples: usize, seed: u64) -> ActivityProfile {
    extract_dvafs_profile_with(samples, seed, Engine::default(), &Executor::serial())
}

/// [`extract_dvafs_profile`] on an explicit netlist engine and executor:
/// the three subword-mode streams run as parallel tasks and merge in mode
/// order (see [`extract_das_profile_with`]).
#[must_use]
pub fn extract_dvafs_profile_with(
    samples: usize,
    seed: u64,
    engine: Engine,
    exec: &Executor,
) -> ActivityProfile {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let stream: Vec<(u16, u16)> = (0..samples).map(|_| (rng.gen(), rng.gen())).collect();
    let m = DvafsMultiplier::new();
    let stats = exec.par_map_indexed(&SubwordMode::ALL, |_, &mode| {
        m.simulate_stream_with(&stream, mode, engine)
    });
    let lane_bits: Vec<u32> = SubwordMode::ALL.iter().map(|m| m.lane_bits()).collect();
    ActivityProfile {
        design: "DVAFS subword-parallel multiplier".to_string(),
        entries: entries_relative_to_first(&lane_bits, &stats, |i| SubwordMode::ALL[i].lanes()),
    }
}

/// Folds per-configuration [`ActivityStats`] into profile entries, each
/// normalized to the first (full-precision) configuration — the shared
/// tail of every extraction above. `lanes(i)` supplies the subword lane
/// count of configuration `i`.
fn entries_relative_to_first(
    bits: &[u32],
    stats: &[ActivityStats],
    lanes: impl Fn(usize) -> usize,
) -> Vec<ModeActivity> {
    let ref_act = stats[0].weighted_toggles;
    let ref_depth = f64::from(stats[0].active_depth);
    bits.iter()
        .zip(stats)
        .enumerate()
        .map(|(i, (&bits, st))| {
            let per_cycle = st.weighted_toggles / ref_act;
            let n = lanes(i);
            ModeActivity {
                bits,
                lanes: n,
                activity_per_cycle: per_cycle,
                activity_per_word: per_cycle / n as f64,
                depth_ratio: f64::from(st.active_depth) / ref_depth,
            }
        })
        .collect()
}

/// Paper Table I reference values, used to validate extraction and to run
/// the analytical models in "paper-calibrated" mode.
#[must_use]
pub fn paper_table1() -> Vec<PaperTable1Row> {
    vec![
        PaperTable1Row {
            bits: 4,
            k0: 12.5,
            k1: 12.5,
            k2: 1.2,
            k3: 3.2,
            k4: 1.53,
            n: 4,
        },
        PaperTable1Row {
            bits: 8,
            k0: 3.5,
            k1: 3.5,
            k2: 1.1,
            k3: 1.82,
            k4: 1.27,
            n: 2,
        },
        PaperTable1Row {
            bits: 12,
            k0: 1.4,
            k1: 1.4,
            k2: 1.02,
            k3: 1.45,
            k4: 1.02,
            n: 1,
        },
        PaperTable1Row {
            bits: 16,
            k0: 1.0,
            k1: 1.0,
            k2: 1.0,
            k3: 1.0,
            k4: 1.0,
            n: 1,
        },
    ]
}

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperTable1Row {
    /// Precision in bits.
    pub bits: u32,
    /// DAS activity reduction factor.
    pub k0: f64,
    /// DVAS activity reduction factor.
    pub k1: f64,
    /// DVAS voltage reduction factor (`V / k2`).
    pub k2: f64,
    /// DVAFS per-cycle activity reduction factor.
    pub k3: f64,
    /// DVAFS voltage reduction factor (`V / k4`).
    pub k4: f64,
    /// Subword parallelism.
    pub n: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn das_profile_is_monotone_in_precision() {
        let p = extract_das_profile(120, 1);
        assert_eq!(p.entries.len(), 4);
        let acts: Vec<f64> = p.entries.iter().map(|e| e.activity_per_cycle).collect();
        // Ordered 16, 12, 8, 4 bits: strictly decreasing activity.
        assert!(acts.windows(2).all(|w| w[0] > w[1]), "{acts:?}");
        assert!((acts[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn das_4b_activity_reduction_is_large() {
        let p = extract_das_profile(150, 2);
        let k = p.at_bits(4).unwrap().k_activity();
        // Paper: 12.5x. Accept the same order of magnitude from our cells.
        assert!(k > 5.0 && k < 40.0, "k0={k}");
    }

    #[test]
    fn das_depth_shrinks_with_precision() {
        let p = extract_das_profile(120, 3);
        let d16 = p.at_bits(16).unwrap().depth_ratio;
        let d4 = p.at_bits(4).unwrap().depth_ratio;
        assert!((d16 - 1.0).abs() < 1e-12);
        assert!(d4 < 0.85, "4b active depth ratio {d4}");
    }

    #[test]
    fn dvafs_profile_per_word_beats_per_cycle() {
        let p = extract_dvafs_profile(120, 4);
        let e4 = p.at_bits(4).unwrap();
        assert_eq!(e4.lanes, 4);
        assert!((e4.activity_per_word - e4.activity_per_cycle / 4.0).abs() < 1e-12);
        // DVAFS per-cycle reduction is smaller than DAS (cells are reused,
        // not idled): paper k3 = 3.2 at 4b vs k0 = 12.5.
        let das = extract_das_profile(120, 4);
        assert!(e4.activity_per_cycle > das.at_bits(4).unwrap().activity_per_cycle);
    }

    #[test]
    fn dvafs_depth_shrinks_in_subword_modes() {
        let p = extract_dvafs_profile(120, 5);
        let d4 = p.at_bits(4).unwrap().depth_ratio;
        assert!(d4 < 1.0, "4x4b depth ratio {d4}");
    }

    #[test]
    fn paper_table1_has_expected_shape() {
        let t = paper_table1();
        assert_eq!(t.len(), 4);
        assert!(t[0].k0 > t[1].k0);
        assert!(t[0].k3 < t[0].k0, "subword reuse keeps cells busy");
        assert!(
            t[0].k4 > t[1].k4,
            "more voltage headroom at lower precision"
        );
    }

    #[test]
    fn extraction_is_deterministic_for_a_seed() {
        let a = extract_dvafs_profile(60, 9);
        let b = extract_dvafs_profile(60, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn engines_extract_identical_profiles() {
        // The scalar oracle and the bitsliced engine must agree on every
        // profile down to the bit — 70 samples spans a word boundary.
        let serial = Executor::serial();
        for engine in Engine::ALL {
            assert_eq!(
                extract_das_profile_with(70, 5, engine, &serial),
                extract_das_profile(70, 5),
                "{engine:?} das"
            );
            assert_eq!(
                extract_dvafs_profile_with(70, 5, engine, &serial),
                extract_dvafs_profile(70, 5),
                "{engine:?} dvafs"
            );
            assert_eq!(
                extract_das_profile_booth_with(70, 5, engine, &serial),
                extract_das_profile_booth(70, 5),
                "{engine:?} booth"
            );
        }
    }

    #[test]
    fn parallel_extraction_is_bit_identical_to_serial() {
        let serial = Executor::serial();
        let pool = Executor::new(4);
        assert_eq!(
            extract_das_profile_with(60, 7, Engine::Bitsliced, &serial),
            extract_das_profile_with(60, 7, Engine::Bitsliced, &pool)
        );
        assert_eq!(
            extract_dvafs_profile_with(60, 7, Engine::Bitsliced, &serial),
            extract_dvafs_profile_with(60, 7, Engine::Bitsliced, &pool)
        );
    }
}
