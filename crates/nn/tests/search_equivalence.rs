//! The search-strategy equivalence net: the prefix-cached incremental
//! precision search must produce **bit-identical** `LayerRequirement`s to
//! the retained full-forward rescan oracle — layer indices, names, bits,
//! and the exact f64 relative-accuracy — over random tiny networks x
//! operands x targets x thread counts 1..=8. Plus the invalidation
//! contract: mutating weights through `weights_mut` between scans prunes
//! the memoized state, so a warm network still matches a cold clone.

use dvafs_executor::Executor;
use dvafs_nn::dataset::SyntheticDataset;
use dvafs_nn::layers::{Conv2d, Dense, Layer};
use dvafs_nn::network::Network;
use dvafs_nn::precision::{LayerRequirement, Operand, PrecisionSearch, SearchStrategy};
use proptest::prelude::*;

/// Builds a random tiny conv/dense cascade whose geometry is derived from
/// the proptest parameters (always ends in a dense classifier).
fn tiny_net(
    seed: u64,
    channels: usize,
    h: usize,
    pool: bool,
    hidden: usize,
    classes: usize,
) -> Network {
    let mut layers = vec![
        Layer::Conv2d(Conv2d::random(1, channels, 3, 1, 0, seed)),
        Layer::ReLU,
    ];
    let mut d = h - 2;
    if pool {
        layers.push(Layer::MaxPool2d { k: 2, stride: 2 });
        d = (d - 2) / 2 + 1;
    }
    layers.push(Layer::Dense(Dense::random(
        channels * d * d,
        hidden,
        seed ^ 0xd1,
    )));
    layers.push(Layer::ReLU);
    layers.push(Layer::Dense(Dense::random(hidden, classes, seed ^ 0xd2)));
    Network::new("tiny", layers)
}

/// Bit-level equality of two requirement lists: every field, with the
/// f64 relative-accuracy compared through `to_bits` (an `==` on floats
/// would accept -0.0 vs 0.0).
fn assert_reqs_bit_identical(oracle: &[LayerRequirement], got: &[LayerRequirement]) {
    assert_eq!(oracle.len(), got.len(), "requirement count diverged");
    for (o, g) in oracle.iter().zip(got.iter()) {
        assert_eq!(o.layer_index, g.layer_index, "layer index diverged");
        assert_eq!(o.layer_name, g.layer_name, "layer name diverged");
        assert_eq!(o.bits, g.bits, "{}: bits diverged", o.layer_name);
        assert_eq!(
            o.relative_accuracy.to_bits(),
            g.relative_accuracy.to_bits(),
            "{}: relative accuracy diverged bitwise ({} vs {})",
            o.layer_name,
            o.relative_accuracy,
            g.relative_accuracy
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental == Rescan over random tiny networks, both operands,
    /// loose-to-paper targets, and independently chosen thread counts for
    /// each strategy (1..=8): results never depend on the strategy *or*
    /// on either strategy's worker count.
    #[test]
    fn incremental_matches_rescan(
        seed in any::<u64>(),
        channels in 2usize..=4,
        h in 8usize..=10,
        pool in any::<bool>(),
        hidden in 4usize..=8,
        classes in 3usize..=4,
        samples in 4usize..=8,
        weights_operand in any::<bool>(),
        target_i in 0usize..3,
        rescan_threads in 1usize..=8,
        incremental_threads in 1usize..=8,
    ) {
        let target = [0.7f64, 0.85, 0.99][target_i];
        let net = tiny_net(seed, channels, h, pool, hidden, classes);
        let data = SyntheticDataset::new(samples, classes, 1, h, h, seed ^ 0xda7a);
        let operand = if weights_operand { Operand::Weights } else { Operand::Activations };
        let oracle = PrecisionSearch::new()
            .with_target(target)
            .with_strategy(SearchStrategy::Rescan)
            .search_with(&net, &data, operand, &Executor::new(rescan_threads));
        let got = PrecisionSearch::new()
            .with_target(target)
            .with_strategy(SearchStrategy::Incremental)
            .search_with(&net, &data, operand, &Executor::new(incremental_threads));
        assert_reqs_bit_identical(&oracle, &got);
    }
}

/// A deeper fixed cascade (two conv blocks) at the paper's 99 % target,
/// swept over every thread count 1..=8 for both strategies.
#[test]
fn deep_cascade_agrees_for_every_thread_count() {
    let net = Network::new(
        "deep",
        vec![
            Layer::Conv2d(Conv2d::random(1, 4, 3, 1, 1, 60)),
            Layer::ReLU,
            Layer::MaxPool2d { k: 2, stride: 2 },
            Layer::Conv2d(Conv2d::random(4, 6, 3, 1, 0, 61)),
            Layer::ReLU,
            Layer::Dense(Dense::random(6 * 4 * 4, 10, 62)),
            Layer::ReLU,
            Layer::Dense(Dense::random(10, 4, 63)),
        ],
    );
    let data = SyntheticDataset::new(8, 4, 1, 12, 12, 64);
    for operand in [Operand::Weights, Operand::Activations] {
        let oracle = PrecisionSearch::new()
            .with_strategy(SearchStrategy::Rescan)
            .search(&net, &data, operand);
        for threads in 1..=8 {
            let got = PrecisionSearch::new()
                .with_strategy(SearchStrategy::Incremental)
                .search_with(&net, &data, operand, &Executor::new(threads));
            assert_reqs_bit_identical(&oracle, &got);
        }
    }
}

/// Mutating weights through `weights_mut` between scans must invalidate
/// every memoized quantization: a network whose caches were warmed by a
/// previous search still matches a cold clone of its mutated self (a
/// stale weight pack or activation memo would diverge here).
#[test]
fn weight_mutation_between_scans_prunes_the_memo() {
    let mut net = tiny_net(77, 3, 9, true, 6, 4);
    let data = SyntheticDataset::new(6, 4, 1, 9, 9, 78);
    let search = PrecisionSearch::new().with_target(0.8);

    // Warm every per-layer cache with one search per strategy.
    let before_rescan =
        search
            .with_strategy(SearchStrategy::Rescan)
            .search(&net, &data, Operand::Weights);
    let before_incremental =
        search
            .with_strategy(SearchStrategy::Incremental)
            .search(&net, &data, Operand::Weights);
    assert_reqs_bit_identical(&before_rescan, &before_incremental);

    // Prune half of the first conv's weights in place (weights_mut is the
    // invalidation point of every per-layer memo).
    let Layer::Conv2d(conv) = &mut net.layers_mut()[0] else {
        panic!("layer 0 is the conv layer");
    };
    let n = conv.weights_mut().len();
    for w in conv.weights_mut().iter_mut().take(n / 2) {
        *w = 0.0;
    }

    // A clone starts with cold caches: its rescan search is the oracle a
    // stale memo cannot match.
    let cold = net.clone();
    for operand in [Operand::Weights, Operand::Activations] {
        let oracle = search
            .with_strategy(SearchStrategy::Rescan)
            .search(&cold, &data, operand);
        let warm_incremental = search
            .with_strategy(SearchStrategy::Incremental)
            .search_with(&net, &data, operand, &Executor::new(4));
        let warm_rescan = search
            .with_strategy(SearchStrategy::Rescan)
            .search(&net, &data, operand);
        assert_reqs_bit_identical(&oracle, &warm_incremental);
        assert_reqs_bit_identical(&oracle, &warm_rescan);
    }
}
