//! The kernel-layer equivalence net: the blocked-GEMM MAC kernel *and*
//! the subword-packed GEMM kernel must be **bit-identical** to the
//! retained naive oracle — outputs *and* the `zero_weight`/`zero_act`
//! guard-skip counters — over random layer geometries, including the
//! degenerate ones (padding at or beyond the kernel size, stride larger
//! than the kernel, 1x1 kernels), across mixed 1..=16-bit operand widths
//! (which drive the packed kernel through every subword mode pair) and
//! thread counts. Plus the memoization contract: per-`(layer, bits)`
//! weight packs are reused across a sweep and invalidated by
//! `weights_mut` (pruning).

use dvafs_executor::Executor;
use dvafs_nn::dataset::SyntheticDataset;
use dvafs_nn::kernel::{NnKernel, Scratch};
use dvafs_nn::layers::{Conv2d, Dense, Layer};
use dvafs_nn::models;
use dvafs_nn::network::QuantConfig;
use dvafs_nn::tensor::Tensor;
use proptest::prelude::*;

/// Runs one layer on every kernel and asserts bitwise-equal outputs and
/// equal statistics against the naive oracle.
fn assert_kernels_agree(layer: &Layer, input: &Tensor, wbits: u32, abits: u32) {
    let mut scratch = Scratch::new();
    let naive = layer.forward_with(input, wbits, abits, NnKernel::Naive, &mut scratch);
    for kernel in [NnKernel::Gemm, NnKernel::GemmPacked] {
        let other = layer.forward_with(input, wbits, abits, kernel, &mut scratch);
        match (&naive, other) {
            (Ok((out_n, st_n)), Ok((out_g, st_g))) => {
                assert_eq!(*st_n, st_g, "{kernel}: statistics diverged");
                let nb: Vec<u32> = out_n.as_slice().iter().map(|v| v.to_bits()).collect();
                let gb: Vec<u32> = out_g.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(out_n.shape(), out_g.shape(), "{kernel}: shape diverged");
                assert_eq!(nb, gb, "{kernel}: outputs diverged bitwise");
            }
            (Err(_), Err(_)) => {} // both reject — also agreement
            (n, g) => panic!("kernels disagree on fallibility: naive={n:?} {kernel}={g:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conv2d: Naive == Gemm == GemmPacked over random channels x kernel
    /// x stride x padding x precision, with the degenerate geometries
    /// explicitly in range (padding >= kernel, stride > kernel, 1x1
    /// kernels). Independent 1..=16-bit weight/activation widths drive
    /// the packed kernel through every subword mode pair (X1/X2/X4 on
    /// either side), ragged k included.
    #[test]
    fn conv_gemm_matches_naive(
        seed in any::<u64>(),
        in_c in 1usize..=3,
        out_c in 1usize..=5,
        k in 1usize..=4,
        stride in 1usize..=5,
        padding in 0usize..=5,
        h in 4usize..=9,
        w in 4usize..=9,
        wbits in 1u32..=16,
        abits in 1u32..=16,
    ) {
        let conv = Conv2d::random(in_c, out_c, k, stride, padding, seed);
        let layer = Layer::Conv2d(conv);
        let input = Tensor::random(in_c, h, w, seed ^ 0x5eed);
        assert_kernels_agree(&layer, &input, wbits, abits);
    }

    /// Conv2d: the exact `mac_count` equals the MACs the forward pass
    /// actually executes, padding included.
    #[test]
    fn conv_mac_count_is_exact_under_padding(
        seed in any::<u64>(),
        k in 1usize..=4,
        stride in 1usize..=3,
        padding in 0usize..=5,
        h in 4usize..=9,
    ) {
        let conv = Conv2d::random(2, 3, k, stride, padding, seed);
        let analytic = conv.mac_count(h, h);
        let layer = Layer::Conv2d(conv);
        let input = Tensor::random(2, h, h, seed ^ 1);
        for kernel in NnKernel::ALL {
            let (_, stats) = layer
                .forward_with(&input, 8, 8, kernel, &mut Scratch::new())
                .expect("geometry is valid");
            prop_assert_eq!(stats.macs, analytic, "kernel {}", kernel);
        }
    }

    /// Dense: Naive == Gemm == GemmPacked over random widths and
    /// precisions.
    #[test]
    fn dense_gemm_matches_naive(
        seed in any::<u64>(),
        inputs in 1usize..=40,
        outputs in 1usize..=12,
        wbits in 1u32..=16,
        abits in 1u32..=16,
    ) {
        let layer = Layer::Dense(Dense::random(inputs, outputs, seed));
        let input = Tensor::random(1, 1, inputs, seed ^ 0xfeed);
        assert_kernels_agree(&layer, &input, wbits, abits);
    }

    /// Whole-network agreement: same predictions and bitwise-equal logits
    /// on all three kernels, serial or parallel, batched or not.
    #[test]
    fn network_gemm_matches_naive_end_to_end(
        seed in any::<u64>(),
        bits in 2u32..=16,
        threads in 1usize..=4,
    ) {
        let data = SyntheticDataset::digits(6, seed ^ 3);
        let cfg_bits = bits;
        let naive = models::lenet5(seed).with_kernel(NnKernel::Naive);
        let gemm = models::lenet5(seed).with_kernel(NnKernel::Gemm);
        let packed = models::lenet5(seed).with_kernel(NnKernel::GemmPacked);
        let cfg = QuantConfig::uniform(naive.layer_count(), cfg_bits, cfg_bits);
        let serial = naive.predict_all(&data, &cfg).expect("naive inference");
        let batched = gemm
            .evaluate_batch(data.images(), &cfg, &mut Scratch::new())
            .expect("batched gemm inference");
        let parallel = gemm
            .predict_all_with(&data, &cfg, &Executor::new(threads))
            .expect("parallel gemm inference");
        let packed_batched = packed
            .evaluate_batch(data.images(), &cfg, &mut Scratch::new())
            .expect("batched packed inference");
        let packed_parallel = packed
            .predict_all_with(&data, &cfg, &Executor::new(threads))
            .expect("parallel packed inference");
        prop_assert_eq!(&serial, &batched);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(&serial, &packed_batched);
        prop_assert_eq!(&serial, &packed_parallel);
    }

    /// Mixed per-layer widths (the fig6 scan shape: one layer reduced,
    /// the rest at full precision) keep all three kernels bit-identical —
    /// this is precisely the asymmetric X2/X4-against-X1 panel pairing of
    /// the packed kernel.
    #[test]
    fn network_with_mixed_layer_widths_agrees(
        seed in any::<u64>(),
        wbits in 1u32..=16,
        abits in 1u32..=16,
        layer in 0usize..=10,
    ) {
        let data = SyntheticDataset::digits(2, seed ^ 9);
        let naive = models::lenet5(seed).with_kernel(NnKernel::Naive);
        let packed = models::lenet5(seed).with_kernel(NnKernel::GemmPacked);
        let mut cfg = QuantConfig::uniform(naive.layer_count(), 16, 16);
        cfg.set_layer(layer, wbits, abits);
        let oracle = naive.predict_all(&data, &cfg).expect("naive inference");
        let got = packed.predict_all(&data, &cfg).expect("packed inference");
        prop_assert_eq!(&oracle, &got);
    }
}

/// Degenerate geometries the random ranges may hit rarely, pinned
/// explicitly: padding >= kernel, stride > kernel, and 1x1 kernels.
#[test]
fn degenerate_conv_geometries_agree() {
    for (k, stride, padding) in [
        (1usize, 1usize, 0usize), // 1x1, the im2col identity case
        (1, 3, 2),                // stride > kernel
        (2, 1, 2),                // padding == kernel
        (3, 1, 4),                // padding > kernel: whole rows structural
        (3, 5, 3),                // stride and padding both past the kernel
    ] {
        let conv = Conv2d::random(2, 3, k, stride, padding, 99);
        let layer = Layer::Conv2d(conv);
        let input = Tensor::random(2, 6, 5, 100);
        for bits in [1u32, 4, 16] {
            assert_kernels_agree(&layer, &input, bits, bits);
        }
    }
}

/// Pruning through `weights_mut` invalidates the memoized quantization:
/// the next forward re-packs and the zero-weight counters move.
#[test]
fn pruning_invalidates_weight_memoization() {
    // One layer instance throughout: cloning would reset the cache.
    let mut layer = Layer::Conv2d(Conv2d::random(2, 4, 3, 1, 1, 7));
    let input = Tensor::random(2, 8, 8, 8);
    let fwd = |l: &Layer, kernel| {
        l.forward_with(&input, 8, 8, kernel, &mut Scratch::new())
            .expect("forward succeeds")
            .1
    };
    // Warm the cache at 8 bits; the second pass is the memoized hit.
    let before = fwd(&layer, NnKernel::Gemm);
    let again = fwd(&layer, NnKernel::Gemm);
    assert_eq!(before, again, "memoized pass must not move a number");

    // Prune half the weights to zero; the counters must change.
    let Layer::Conv2d(conv) = &mut layer else {
        unreachable!("constructed as conv above")
    };
    let n = conv.weights_mut().len();
    for w in conv.weights_mut().iter_mut().take(n / 2) {
        *w = 0.0;
    }
    let after = fwd(&layer, NnKernel::Gemm);
    assert!(
        after.zero_weight_macs > before.zero_weight_macs,
        "pruned weights must raise the zero-weight count ({} -> {})",
        before.zero_weight_macs,
        after.zero_weight_macs
    );
    // And the re-packed Gemm stats still match the never-cached oracle.
    assert_eq!(after, fwd(&layer, NnKernel::Naive));
}

/// Dense memoization: same contract through the network-level API.
#[test]
fn dense_pruning_reflected_after_memoization() {
    let mut net = models::lenet5(11);
    let data = SyntheticDataset::digits(2, 12);
    let cfg = QuantConfig::uniform(net.layer_count(), 8, 8);
    // Two passes warm every layer's 8-bit pack.
    let (_, stats_a) = net.forward(&data.images()[0], &cfg).expect("forward");
    let (_, stats_b) = net.forward(&data.images()[0], &cfg).expect("forward");
    assert_eq!(stats_a, stats_b);
    // Prune the first dense layer and re-run: its zero counters move.
    let dense_idx = 6; // LeNet-5 fc120
    let Layer::Dense(d) = &mut net.layers_mut()[dense_idx] else {
        panic!("layer 6 is the first dense layer of LeNet-5");
    };
    for w in d.weights_mut().iter_mut().take(100) {
        *w = 0.0;
    }
    let (_, stats_c) = net.forward(&data.images()[0], &cfg).expect("forward");
    assert!(
        stats_c[dense_idx].zero_weight_macs > stats_a[dense_idx].zero_weight_macs,
        "pruning must be visible through the memoized path"
    );
}
