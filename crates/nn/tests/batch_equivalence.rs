//! The batch-path equivalence net: the layer-major fused-batch forward
//! (`BatchPath::LayerMajor`, one wide GEMM per layer across samples) must
//! be **bit-identical** to the retained per-sample oracle
//! (`BatchPath::SampleMajor`) — output tensors, the
//! `zero_weight`/`zero_act` guard-skip counters, and argmaxes — over
//! random geometries and precisions, for all three MAC kernels, across
//! the batch boundaries that matter (B = 1, non-dividing B, B larger
//! than the sample count, ragged tails) and thread counts 1..=8. Plus
//! the precision search: the incremental scan's batched prefix and
//! suffix must reproduce the per-sample scan's requirements exactly.

use dvafs_executor::Executor;
use dvafs_nn::dataset::SyntheticDataset;
use dvafs_nn::kernel::{BatchPath, NnKernel, Scratch};
use dvafs_nn::layers::{Conv2d, Dense, Layer};
use dvafs_nn::network::{Network, QuantConfig};
use dvafs_nn::precision::{Operand, PrecisionSearch, SearchStrategy};
use dvafs_nn::tensor::Tensor;
use proptest::prelude::*;

/// A small conv-pool-dense cascade (the fig6 shape in miniature).
fn tiny_net(seed: u64, kernel: NnKernel, path: BatchPath, batch: usize) -> Network {
    Network::new(
        "tiny",
        vec![
            Layer::Conv2d(Conv2d::random(1, 6, 3, 1, 1, seed)),
            Layer::ReLU,
            Layer::MaxPool2d { k: 2, stride: 2 },
            Layer::Dense(Dense::random(6 * 6 * 6, 8, seed ^ 1)),
            Layer::ReLU,
            Layer::Dense(Dense::random(8, 4, seed ^ 2)),
        ],
    )
    .with_kernel(kernel)
    .with_batch_path(path)
    .with_batch_size(batch)
}

fn images(count: usize, seed: u64) -> Vec<Tensor> {
    (0..count)
        .map(|i| Tensor::random(1, 12, 12, seed ^ (i as u64) << 8))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `forward_batch`: outputs and per-layer statistics bitwise equal
    /// across both paths for every kernel, any chunk width (including a
    /// single sample and widths past the fusable guard).
    #[test]
    fn forward_batch_paths_agree_bitwise(
        seed in any::<u64>(),
        count in 1usize..=7,
        kernel_idx in 0usize..3,
        wbits in 1u32..=16,
        abits in 1u32..=16,
    ) {
        let kernel = NnKernel::ALL[kernel_idx];
        let imgs = images(count, seed ^ 0xba7c);
        let cfg = {
            let mut cfg = QuantConfig::uniform(6, 16, 16);
            cfg.set_layer(0, wbits, abits);
            cfg.set_layer(3, abits, wbits);
            cfg
        };
        let sample = tiny_net(seed, kernel, BatchPath::SampleMajor, count);
        let layer = tiny_net(seed, kernel, BatchPath::LayerMajor, count);
        let oracle = sample
            .forward_batch(&imgs, &cfg, &mut Scratch::new())
            .expect("oracle inference");
        let fused = layer
            .forward_batch(&imgs, &cfg, &mut Scratch::new())
            .expect("fused inference");
        prop_assert_eq!(oracle.len(), fused.len());
        for ((out_s, st_s), (out_l, st_l)) in oracle.iter().zip(fused.iter()) {
            prop_assert_eq!(st_s, st_l, "statistics diverged");
            prop_assert_eq!(out_s.shape(), out_l.shape(), "shape diverged");
            let sb: Vec<u32> = out_s.as_slice().iter().map(|v| v.to_bits()).collect();
            let lb: Vec<u32> = out_l.as_slice().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(sb, lb, "outputs diverged bitwise");
        }
    }

    /// `evaluate_batch` / `predict_all_with`: same argmaxes on both paths
    /// over the batch boundaries that matter — B = 1, non-dividing B,
    /// B > sample count (all reachable from the ranges) — and thread
    /// counts 1..=8.
    #[test]
    fn predictions_agree_across_batch_sizes_and_threads(
        seed in any::<u64>(),
        count in 1usize..=9,
        batch in 1usize..=12,
        threads in 1usize..=8,
        kernel_idx in 0usize..3,
        bits in 1u32..=16,
    ) {
        let kernel = NnKernel::ALL[kernel_idx];
        let data = SyntheticDataset::new(count, 4, 1, 12, 12, seed ^ 0xd0d0);
        let cfg = QuantConfig::uniform(6, bits, bits);
        let sample = tiny_net(seed, kernel, BatchPath::SampleMajor, batch);
        let layer = tiny_net(seed, kernel, BatchPath::LayerMajor, batch);
        let oracle = sample
            .evaluate_batch(data.images(), &cfg, &mut Scratch::new())
            .expect("oracle inference");
        let fused = layer
            .evaluate_batch(data.images(), &cfg, &mut Scratch::new())
            .expect("fused inference");
        prop_assert_eq!(&oracle, &fused, "evaluate_batch diverged");
        let exec = Executor::new(threads);
        let parallel_sample = sample
            .predict_all_with(&data, &cfg, &exec)
            .expect("parallel oracle inference");
        let parallel_layer = layer
            .predict_all_with(&data, &cfg, &exec)
            .expect("parallel fused inference");
        prop_assert_eq!(&oracle, &parallel_sample, "parallel sample-major diverged");
        prop_assert_eq!(&oracle, &parallel_layer, "parallel layer-major diverged");
    }

    /// The incremental precision search on `LayerMajor` (batched prefix
    /// pass, batched candidate layer, batched suffix) reproduces the
    /// per-sample scan's `LayerRequirement`s exactly, which in turn match
    /// the rescan oracle.
    #[test]
    fn precision_search_agrees_across_paths(
        seed in any::<u64>(),
        batch in 1usize..=7,
        threads in 1usize..=4,
        op_idx in 0usize..2,
    ) {
        let op = [Operand::Weights, Operand::Activations][op_idx];
        let data = SyntheticDataset::new(10, 4, 1, 12, 12, seed ^ 0x5ca7);
        let exec = Executor::new(threads);
        let search = PrecisionSearch::new().with_target(0.9);
        let mut results = Vec::new();
        for path in BatchPath::ALL {
            for strategy in SearchStrategy::ALL {
                let net = tiny_net(seed, NnKernel::GemmPacked, path, batch);
                results.push(search.with_strategy(strategy).search_with(&net, &data, op, &exec));
            }
        }
        for r in &results[1..] {
            prop_assert_eq!(&results[0], r, "search diverged across path/strategy");
        }
    }
}

/// The boundary widths pinned explicitly: B = 1 (every chunk degenerates
/// to the per-sample path), B that does not divide the sample count
/// (ragged tail), and B past the sample count (one short chunk).
#[test]
fn explicit_batch_boundaries_agree() {
    let data = SyntheticDataset::new(7, 4, 1, 12, 12, 404);
    let cfg = QuantConfig::uniform(6, 8, 8);
    let oracle = tiny_net(17, NnKernel::GemmPacked, BatchPath::SampleMajor, 7)
        .evaluate_batch(data.images(), &cfg, &mut Scratch::new())
        .expect("oracle inference");
    for batch in [1usize, 3, 7, 16] {
        let fused = tiny_net(17, NnKernel::GemmPacked, BatchPath::LayerMajor, batch)
            .evaluate_batch(data.images(), &cfg, &mut Scratch::new())
            .expect("fused inference");
        assert_eq!(oracle, fused, "batch size {batch} moved a prediction");
    }
}

/// The path is execution strategy, not model identity: it defaults to
/// layer-major, never participates in equality, and `batch_size == 0`
/// reads as the default chunk width.
#[test]
fn batch_path_is_execution_strategy_only() {
    let a = tiny_net(5, NnKernel::GemmPacked, BatchPath::SampleMajor, 1);
    let b = tiny_net(5, NnKernel::GemmPacked, BatchPath::LayerMajor, 9);
    assert_eq!(a, b, "batch path/size must not affect network identity");
    assert_eq!(
        Network::new("n", vec![Layer::ReLU]).batch_path(),
        BatchPath::LayerMajor
    );
    let zero = tiny_net(5, NnKernel::GemmPacked, BatchPath::LayerMajor, 0);
    assert_eq!(zero.batch_size(), dvafs_nn::DEFAULT_BATCH_SIZE);
}
