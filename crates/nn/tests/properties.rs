//! Property-based tests of the CNN substrate's quantization invariants.

use dvafs_nn::layers::{Conv2d, Dense, Layer};
use dvafs_nn::network::{Network, QuantConfig};
use dvafs_nn::quant::QuantizedTensor;
use dvafs_nn::tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantize/dequantize error never exceeds half a grid step per
    /// element, and indices fit the declared width.
    #[test]
    fn quantization_error_bounded(seed in any::<u64>(), bits in 2u32..=16) {
        let t = Tensor::random(2, 6, 6, seed);
        let q = QuantizedTensor::quantize(&t, bits).expect("valid bits");
        let qmax = q.qmax();
        prop_assert!(q.data.iter().all(|&v| v.abs() <= qmax));
        let d = q.dequantize();
        // Half a grid step, plus headroom for f32 representation error in
        // the dequantized value (one ulp at the tensor's magnitude).
        let bound = q.scale * 0.5 + f64::from(f32::EPSILON) * f64::from(t.max_abs()) + 1e-12;
        for (&a, &b) in t.as_slice().iter().zip(d.as_slice()) {
            prop_assert!(
                f64::from((a - b).abs()) <= bound,
                "error {} exceeds bound {}", (a - b).abs(), bound
            );
        }
    }

    /// Quantization at 16 bits then again at fewer bits equals direct
    /// quantization only in error magnitude terms — but requantizing at
    /// the SAME width is exactly idempotent.
    #[test]
    fn requantization_idempotent(seed in any::<u64>(), bits in 2u32..=16) {
        let t = Tensor::random(1, 5, 5, seed);
        let q1 = QuantizedTensor::quantize(&t, bits).expect("valid");
        let d1 = q1.dequantize();
        let q2 = QuantizedTensor::quantize(&d1, bits).expect("valid");
        let d2 = q2.dequantize();
        for (&a, &b) in d1.as_slice().iter().zip(d2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// ReLU is idempotent and never produces negatives.
    #[test]
    fn relu_idempotent(seed in any::<u64>()) {
        let t = Tensor::random(2, 4, 4, seed);
        let (once, _) = Layer::ReLU.forward(&t, 16, 16).expect("works");
        let (twice, _) = Layer::ReLU.forward(&once, 16, 16).expect("works");
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.as_slice().iter().all(|&v| v >= 0.0));
    }

    /// MaxPool never invents values: every output element is present in
    /// the input, and the output max equals the input max for full cover.
    #[test]
    fn maxpool_preserves_values(seed in any::<u64>()) {
        let t = Tensor::random(1, 6, 6, seed);
        let (out, _) = Layer::MaxPool2d { k: 2, stride: 2 }.forward(&t, 16, 16).expect("works");
        prop_assert!((out.max_abs() <= t.max_abs() + 1e-12) || out.as_slice().iter().any(|v| *v < 0.0));
        for &v in out.as_slice() {
            prop_assert!(t.as_slice().contains(&v));
        }
    }

    /// Forward passes are deterministic: same input, same config, same
    /// output.
    #[test]
    fn inference_deterministic(seed in any::<u64>(), bits in 2u32..=16) {
        let net = Network::new(
            "p",
            vec![
                Layer::Conv2d(Conv2d::random(1, 3, 3, 1, 0, 7)),
                Layer::ReLU,
                Layer::Dense(Dense::random(3 * 4 * 4, 4, 8)),
            ],
        );
        let cfg = QuantConfig::uniform(net.layer_count(), bits, bits);
        let input = Tensor::random(1, 6, 6, seed);
        let (a, _) = net.forward(&input, &cfg).expect("works");
        let (b, _) = net.forward(&input, &cfg).expect("works");
        prop_assert_eq!(a, b);
    }

    /// MAC statistics are conserved: zero-operand MACs never exceed the
    /// total and the total equals the analytic count for unpadded convs.
    #[test]
    fn mac_statistics_conserved(seed in any::<u64>(), bits in 2u32..=16) {
        let conv = Conv2d::random(2, 3, 3, 1, 0, 11);
        let analytic = conv.mac_count(7, 7);
        let layer = Layer::Conv2d(conv);
        let input = Tensor::random(2, 7, 7, seed);
        let (_, stats) = layer.forward(&input, bits, bits).expect("works");
        prop_assert_eq!(stats.macs, analytic);
        prop_assert!(stats.zero_weight_macs <= stats.macs);
        prop_assert!(stats.zero_act_macs <= stats.macs);
    }

    /// Fewer bits never decreases quantization-induced sparsity of the
    /// same tensor (coarser grids snap more values to zero).
    #[test]
    fn sparsity_monotone_in_coarseness(seed in any::<u64>(), bits in 3u32..=15) {
        let t = Tensor::random(1, 8, 8, seed);
        let fine = QuantizedTensor::quantize(&t, bits + 1).expect("valid");
        let coarse = QuantizedTensor::quantize(&t, bits).expect("valid");
        prop_assert!(coarse.zero_fraction() >= fine.zero_fraction() - 1e-12);
    }
}
