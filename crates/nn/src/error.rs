//! Error type for the CNN substrate.

use std::fmt;

/// Errors reported by network construction and inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// An input tensor did not match the layer's expected shape.
    ShapeMismatch {
        /// Expected `(channels, height, width)`.
        expected: (usize, usize, usize),
        /// Received shape.
        actual: (usize, usize, usize),
    },
    /// A quantization configuration has the wrong number of entries.
    ConfigLengthMismatch {
        /// Number of layers in the network.
        layers: usize,
        /// Entries supplied.
        entries: usize,
    },
    /// A bit width was outside `1..=16`.
    InvalidBits {
        /// The offending width.
        bits: u32,
    },
    /// A tensor handed to the quantizer contained a non-finite value
    /// (NaN or ±inf). Quantizing such a tensor would silently produce an
    /// all-zero grid with a NaN scale, so it is rejected instead.
    NonFiniteInput,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, actual } => write!(
                f,
                "input shape {actual:?} does not match the layer's expected {expected:?}"
            ),
            NnError::ConfigLengthMismatch { layers, entries } => write!(
                f,
                "quantization config has {entries} entries for a {layers}-layer network"
            ),
            NnError::InvalidBits { bits } => {
                write!(f, "bit width {bits} outside the supported 1..=16 range")
            }
            NnError::NonFiniteInput => {
                write!(f, "tensor contains a non-finite value (NaN or infinity)")
            }
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        let e = NnError::ShapeMismatch {
            expected: (1, 28, 28),
            actual: (3, 32, 32),
        };
        assert!(e.to_string().contains("28"));
        assert!(NnError::InvalidBits { bits: 0 }.to_string().contains('0'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
