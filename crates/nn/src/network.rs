//! Sequential networks with per-layer mixed precision.
//!
//! The key observation exploited by DVAFS (paper Fig. 6, \[22\]) is that the
//! required fixed-point precision varies **per layer**. [`QuantConfig`]
//! carries one weight/activation bit-width pair per layer and
//! [`Network::forward`] runs the whole cascade on the integer MAC path at
//! that mixed precision.

use crate::dataset::SyntheticDataset;
use crate::error::NnError;
use crate::kernel::{with_thread_scratch, BatchPath, NnKernel, Scratch, DEFAULT_BATCH_SIZE};
use crate::layers::{Layer, LayerStats};
use crate::tensor::Tensor;
use dvafs_executor::Executor;
use serde::{Deserialize, Serialize};

/// Bit widths for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerPrecision {
    /// Weight quantization in bits (`1..=16`).
    pub weights: u32,
    /// Input-activation quantization in bits (`1..=16`).
    pub activations: u32,
}

/// Per-layer quantization configuration of a network.
///
/// # Example
///
/// ```
/// use dvafs_nn::QuantConfig;
///
/// let mut cfg = QuantConfig::uniform(5, 16, 16);
/// cfg.set_layer(2, 4, 6);
/// assert_eq!(cfg.layer(2).weights, 4);
/// assert_eq!(cfg.layer(0).weights, 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantConfig {
    entries: Vec<LayerPrecision>,
}

impl QuantConfig {
    /// Uniform precision for every layer.
    #[must_use]
    pub fn uniform(layers: usize, weights: u32, activations: u32) -> Self {
        QuantConfig {
            entries: vec![
                LayerPrecision {
                    weights,
                    activations
                };
                layers
            ],
        }
    }

    /// Number of layer entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the configuration is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The precision of layer `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn layer(&self, i: usize) -> LayerPrecision {
        self.entries[i]
    }

    /// Overrides layer `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn set_layer(&mut self, i: usize, weights: u32, activations: u32) {
        self.entries[i] = LayerPrecision {
            weights,
            activations,
        };
    }

    /// The largest precision any layer requests (what the data path must
    /// support at that moment).
    #[must_use]
    pub fn max_bits(&self) -> u32 {
        self.entries
            .iter()
            .map(|e| e.weights.max(e.activations))
            .max()
            .unwrap_or(16)
    }
}

/// A sequential CNN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
    /// The MAC kernel every forward pass executes on (execution strategy,
    /// not model identity: ignored by `PartialEq` and serialization, and
    /// guaranteed to never change a number — see [`crate::kernel`]).
    #[serde(skip)]
    kernel: NnKernel,
    /// How batch entry points walk the samples (execution strategy, like
    /// `kernel`: ignored by `PartialEq`/serialization, never changes a
    /// number — see [`BatchPath`]).
    #[serde(skip)]
    batch_path: BatchPath,
    /// Samples per layer-major chunk. Execution strategy like
    /// `batch_path`; `0` (the post-deserialization default) means
    /// [`DEFAULT_BATCH_SIZE`] — see [`batch_size`](Self::batch_size).
    #[serde(skip)]
    batch_size: usize,
}

impl PartialEq for Network {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.layers == other.layers
    }
}

impl Network {
    /// Creates a network from a layer cascade.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        Network {
            name: name.into(),
            layers,
            kernel: NnKernel::default(),
            batch_path: BatchPath::default(),
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// This network with an explicit MAC kernel (builder form).
    #[must_use]
    pub fn with_kernel(mut self, kernel: NnKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Switches the MAC kernel every forward pass executes on.
    pub fn set_kernel(&mut self, kernel: NnKernel) {
        self.kernel = kernel;
    }

    /// The MAC kernel forward passes execute on.
    #[must_use]
    pub fn kernel(&self) -> NnKernel {
        self.kernel
    }

    /// This network with an explicit batch path (builder form).
    #[must_use]
    pub fn with_batch_path(mut self, path: BatchPath) -> Self {
        self.batch_path = path;
        self
    }

    /// Switches how batch entry points walk the samples.
    pub fn set_batch_path(&mut self, path: BatchPath) {
        self.batch_path = path;
    }

    /// How batch entry points walk the samples.
    #[must_use]
    pub fn batch_path(&self) -> BatchPath {
        self.batch_path
    }

    /// This network with an explicit layer-major chunk size (builder
    /// form). `0` means [`DEFAULT_BATCH_SIZE`].
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Switches the layer-major chunk size (`0` means
    /// [`DEFAULT_BATCH_SIZE`]).
    pub fn set_batch_size(&mut self, batch_size: usize) {
        self.batch_size = batch_size;
    }

    /// Samples per layer-major chunk. A stored `0` (the field's
    /// post-deserialization state — execution strategy is skipped by
    /// serde) reads as [`DEFAULT_BATCH_SIZE`].
    #[must_use]
    pub fn batch_size(&self) -> usize {
        if self.batch_size == 0 {
            DEFAULT_BATCH_SIZE
        } else {
            self.batch_size
        }
    }

    /// The network's name (e.g. `"LeNet-5"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All layers.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layers (e.g. for pruning).
    #[must_use]
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Layer count (including ReLU/pool stages).
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Indices of layers that carry weights (conv/dense) — the layers that
    /// appear on Fig. 6's x axis.
    #[must_use]
    pub fn parameterized_layers(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_parameterized())
            .map(|(i, _)| i)
            .collect()
    }

    /// Runs the cascade at a mixed per-layer precision, returning the
    /// output tensor and per-layer statistics. Routes through the
    /// thread-local [`Scratch`], so repeated convenience calls reuse the
    /// same im2col buffers instead of allocating fresh ones per
    /// invocation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ConfigLengthMismatch`] when `config` does not
    /// have one entry per layer, and propagates layer errors.
    pub fn forward(
        &self,
        input: &Tensor,
        config: &QuantConfig,
    ) -> Result<(Tensor, Vec<LayerStats>), NnError> {
        with_thread_scratch(|scratch| self.forward_with(input, config, scratch))
    }

    /// Like [`forward`](Self::forward) with caller-provided scratch
    /// buffers, so the GEMM kernel's im2col panels are amortized across
    /// layers — and, when the caller loops, across samples.
    ///
    /// # Errors
    ///
    /// Same as [`forward`](Self::forward).
    pub fn forward_with(
        &self,
        input: &Tensor,
        config: &QuantConfig,
        scratch: &mut Scratch,
    ) -> Result<(Tensor, Vec<LayerStats>), NnError> {
        if config.len() != self.layers.len() {
            return Err(NnError::ConfigLengthMismatch {
                layers: self.layers.len(),
                entries: config.len(),
            });
        }
        let mut x = input.clone();
        let mut stats = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            let p = config.layer(i);
            let (out, st) =
                layer.forward_with(&x, p.weights, p.activations, self.kernel, scratch)?;
            stats.push(st);
            x = out;
        }
        Ok((x, stats))
    }

    /// Resumes the cascade at layer `start` from a cached intermediate
    /// activation — the suffix entry point of the incremental precision
    /// search. `input` must be the tensor that entered layer `start` in a
    /// full run; since layers are a pure function of their input and
    /// precision, the suffix output is bit-identical to the tail of
    /// [`forward_with`](Self::forward_with) under the same `config`.
    ///
    /// `start == layer_count()` is allowed and returns the input unchanged
    /// (the cached prefix already covers the whole cascade).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ConfigLengthMismatch`] when `config` does not
    /// have one entry per layer, and propagates layer errors.
    ///
    /// # Panics
    ///
    /// Panics when `start > layer_count()`.
    pub fn forward_from(
        &self,
        start: usize,
        input: &Tensor,
        config: &QuantConfig,
        scratch: &mut Scratch,
    ) -> Result<(Tensor, Vec<LayerStats>), NnError> {
        assert!(
            start <= self.layers.len(),
            "suffix start {start} beyond layer count {}",
            self.layers.len()
        );
        if config.len() != self.layers.len() {
            return Err(NnError::ConfigLengthMismatch {
                layers: self.layers.len(),
                entries: config.len(),
            });
        }
        let mut x = input.clone();
        let mut stats = Vec::with_capacity(self.layers.len() - start);
        for (i, layer) in self.layers.iter().enumerate().skip(start) {
            let p = config.layer(i);
            let (out, st) =
                layer.forward_with(&x, p.weights, p.activations, self.kernel, scratch)?;
            stats.push(st);
            x = out;
        }
        Ok((x, stats))
    }

    /// Runs a whole chunk of samples through the cascade on the
    /// configured [`BatchPath`], returning each sample's output tensor
    /// and per-layer statistics in input order.
    ///
    /// On [`BatchPath::LayerMajor`] the chunk is carried layer-by-layer:
    /// each parameterized layer fuses every sample's im2col panel into
    /// **one wide GEMM**, so the per-`(layer, bits)` packed weight panel
    /// streams through cache once per chunk instead of once per sample.
    /// Every output element is still an independent exact-`i64` dot over
    /// the same operands — outputs, guard-skip counters and argmaxes are
    /// **bit-identical** to the per-sample [`BatchPath::SampleMajor`]
    /// oracle; the selector never moves a number.
    ///
    /// # Errors
    ///
    /// Same per-sample errors as [`forward_with`](Self::forward_with).
    /// The paths differ only in *which* error surfaces first when several
    /// samples fail: sample-major scans in `(sample, layer)` order,
    /// layer-major in `(layer, sample)` order. Successful results are
    /// pinned bit-identical.
    pub fn forward_batch(
        &self,
        inputs: &[Tensor],
        config: &QuantConfig,
        scratch: &mut Scratch,
    ) -> Result<Vec<(Tensor, Vec<LayerStats>)>, NnError> {
        match self.batch_path {
            BatchPath::SampleMajor => inputs
                .iter()
                .map(|input| self.forward_with(input, config, scratch))
                .collect(),
            BatchPath::LayerMajor => self.forward_batch_from(0, inputs, config, scratch),
        }
    }

    /// Resumes a whole chunk at layer `start` from cached intermediate
    /// activations — the layer-major counterpart of
    /// [`forward_from`](Self::forward_from), always fused (callers pick
    /// the path). `start == layer_count()` returns the inputs unchanged.
    ///
    /// # Errors
    ///
    /// Same as [`forward_batch`](Self::forward_batch) (layer-major error
    /// order).
    ///
    /// # Panics
    ///
    /// Panics when `start > layer_count()`.
    pub fn forward_batch_from(
        &self,
        start: usize,
        inputs: &[Tensor],
        config: &QuantConfig,
        scratch: &mut Scratch,
    ) -> Result<Vec<(Tensor, Vec<LayerStats>)>, NnError> {
        assert!(
            start <= self.layers.len(),
            "suffix start {start} beyond layer count {}",
            self.layers.len()
        );
        if config.len() != self.layers.len() {
            return Err(NnError::ConfigLengthMismatch {
                layers: self.layers.len(),
                entries: config.len(),
            });
        }
        let mut xs: Vec<Tensor> = inputs.to_vec();
        let mut stats: Vec<Vec<LayerStats>> =
            vec![Vec::with_capacity(self.layers.len() - start); inputs.len()];
        for (i, layer) in self.layers.iter().enumerate().skip(start) {
            let p = config.layer(i);
            let outs =
                layer.forward_batch_with(&xs, p.weights, p.activations, self.kernel, scratch)?;
            xs.clear();
            for ((out, st), per_sample) in outs.into_iter().zip(stats.iter_mut()) {
                per_sample.push(st);
                xs.push(out);
            }
        }
        Ok(xs.into_iter().zip(stats).collect())
    }

    /// Classifies one input (argmax of the final layer).
    ///
    /// # Errors
    ///
    /// Propagates [`forward`](Self::forward) errors.
    pub fn predict(&self, input: &Tensor, config: &QuantConfig) -> Result<usize, NnError> {
        Ok(self.forward(input, config)?.0.argmax())
    }

    /// [`predict`](Self::predict) with caller-provided scratch buffers.
    ///
    /// # Errors
    ///
    /// Propagates [`forward`](Self::forward) errors.
    pub fn predict_with(
        &self,
        input: &Tensor,
        config: &QuantConfig,
        scratch: &mut Scratch,
    ) -> Result<usize, NnError> {
        Ok(self.forward_with(input, config, scratch)?.0.argmax())
    }

    /// Batch evaluation: classifies every image with **one** scratch, so
    /// the im2col buffers of the GEMM kernel are allocated once and reused
    /// across all samples (the serial building block `predict_all` and the
    /// per-worker loops of [`predict_all_with`](Self::predict_all_with)
    /// stand on). Walks the images in [`batch_size`](Self::batch_size)
    /// chunks on the configured [`BatchPath`]; the path never changes a
    /// prediction.
    ///
    /// # Errors
    ///
    /// Propagates [`forward`](Self::forward) errors.
    pub fn evaluate_batch(
        &self,
        images: &[Tensor],
        config: &QuantConfig,
        scratch: &mut Scratch,
    ) -> Result<Vec<usize>, NnError> {
        let mut preds = Vec::with_capacity(images.len());
        for chunk in images.chunks(self.batch_size()) {
            for (out, _) in self.forward_batch(chunk, config, scratch)? {
                preds.push(out.argmax());
            }
        }
        Ok(preds)
    }

    /// Predictions over a whole dataset. Routes through the thread-local
    /// [`Scratch`] shared with the parallel entry points, so repeated
    /// convenience calls reuse the same im2col buffers instead of
    /// allocating fresh ones per invocation.
    ///
    /// # Errors
    ///
    /// Propagates [`forward`](Self::forward) errors.
    pub fn predict_all(
        &self,
        data: &SyntheticDataset,
        config: &QuantConfig,
    ) -> Result<Vec<usize>, NnError> {
        with_thread_scratch(|scratch| self.evaluate_batch(data.images(), config, scratch))
    }

    /// Predictions over a whole dataset, run in parallel on `exec`. On
    /// [`BatchPath::SampleMajor`] workers claim single samples; on
    /// [`BatchPath::LayerMajor`] they claim whole
    /// [`batch_size`](Self::batch_size) chunks and carry each chunk
    /// layer-by-layer through the fused wide GEMM. Either way results
    /// merge in sample order and every prediction is bit-identical to
    /// [`predict_all`](Self::predict_all) for any thread count. Each
    /// worker reuses one thread-local [`Scratch`] across everything it
    /// claims (buffer contents never outlive a single pass, so reuse
    /// cannot affect results).
    ///
    /// # Errors
    ///
    /// Propagates [`forward`](Self::forward) errors (lowest sample/chunk
    /// index first, matching serial semantics).
    pub fn predict_all_with(
        &self,
        data: &SyntheticDataset,
        config: &QuantConfig,
        exec: &Executor,
    ) -> Result<Vec<usize>, NnError> {
        match self.batch_path {
            BatchPath::SampleMajor => exec.try_par_map_indexed(data.images(), |_, img| {
                with_thread_scratch(|scratch| self.predict_with(img, config, scratch))
            }),
            BatchPath::LayerMajor => {
                let chunks: Vec<&[Tensor]> = data.images().chunks(self.batch_size()).collect();
                let per_chunk = exec.try_par_map_indexed(&chunks, |_, chunk| {
                    with_thread_scratch(|scratch| {
                        Ok(self
                            .forward_batch(chunk, config, scratch)?
                            .into_iter()
                            .map(|(out, _)| out.argmax())
                            .collect::<Vec<usize>>())
                    })
                })?;
                Ok(per_chunk.into_iter().flatten().collect())
            }
        }
    }

    /// Quantizes and packs every parameterized layer's weights for the
    /// widths in `config`, ahead of the first forward pass. Packing is
    /// memoized per (layer, width) — see
    /// [`Layer::warm_weights`](crate::layers::Layer::warm_weights) — so a
    /// long-lived owner (`dvafs serve`) pays the cost once per model and
    /// width, not once per request.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ConfigLengthMismatch`] when `config` does not
    /// cover every layer and [`NnError::InvalidBits`] for widths outside
    /// `1..=16`.
    pub fn warm_weights(&self, config: &QuantConfig) -> Result<(), NnError> {
        if config.len() != self.layers.len() {
            return Err(NnError::ConfigLengthMismatch {
                layers: self.layers.len(),
                entries: config.len(),
            });
        }
        for (i, layer) in self.layers.iter().enumerate() {
            layer.warm_weights(config.layer(i).weights)?;
        }
        Ok(())
    }

    /// Centers the network's output logits on a calibration set: the mean
    /// full-precision logit of every class is subtracted from the final
    /// dense layer's bias.
    ///
    /// Pseudo-trained (random) deep networks often collapse to one
    /// dominant class, which makes the *relative accuracy* metric
    /// degenerate (any quantization "agrees"). Centering restores diverse,
    /// small-margin decisions — the regime trained classifiers operate in
    /// and the one the paper's Fig. 6 search probes.
    ///
    /// # Panics
    ///
    /// Panics if inference fails or the final layer is not dense.
    pub fn calibrate_logits(&mut self, data: &SyntheticDataset) {
        let cfg = QuantConfig::uniform(self.layer_count(), 16, 16);
        let mut sums: Option<Vec<f64>> = None;
        let mut scratch = Scratch::new();
        for img in data.images() {
            let (out, _) = self
                .forward_with(img, &cfg, &mut scratch)
                .expect("calibration inference");
            let sums = sums.get_or_insert_with(|| vec![0.0; out.len()]);
            for (s, &v) in sums.iter_mut().zip(out.as_slice()) {
                *s += f64::from(v);
            }
        }
        let means: Vec<f32> = sums
            .expect("dataset is non-empty")
            .into_iter()
            .map(|s| (s / data.len() as f64) as f32)
            .collect();
        let last = self
            .layers
            .iter_mut()
            .rev()
            .find_map(|l| match l {
                Layer::Dense(d) => Some(d),
                _ => None,
            })
            .expect("network ends in a dense classifier");
        for (b, m) in last.bias_mut().iter_mut().zip(means.iter()) {
            *b -= m;
        }
    }

    /// Fraction of inputs on which `config` predicts the same class as
    /// `reference_config` — the paper's *relative accuracy* metric
    /// (1.0 = identical behaviour, the 99 % criterion of Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if inference fails (configs are assumed validated).
    #[must_use]
    pub fn relative_accuracy(
        &self,
        data: &SyntheticDataset,
        config: &QuantConfig,
        reference_config: &QuantConfig,
    ) -> f64 {
        let reference = self
            .predict_all(data, reference_config)
            .expect("reference inference must succeed");
        self.relative_accuracy_vs(data, config, &reference)
    }

    /// Like [`relative_accuracy`](Self::relative_accuracy) but against
    /// precomputed reference predictions (avoids re-running the reference).
    ///
    /// # Panics
    ///
    /// Panics if inference fails or lengths mismatch.
    #[must_use]
    pub fn relative_accuracy_vs(
        &self,
        data: &SyntheticDataset,
        config: &QuantConfig,
        reference: &[usize],
    ) -> f64 {
        self.relative_accuracy_vs_with(data, config, reference, &Executor::serial())
    }

    /// Like [`relative_accuracy_vs`](Self::relative_accuracy_vs) with the
    /// quantized inference parallelized over samples on `exec`; agreement
    /// counting is order-independent, so the score is bit-identical for
    /// any thread count.
    ///
    /// # Panics
    ///
    /// Panics if inference fails or lengths mismatch.
    #[must_use]
    pub fn relative_accuracy_vs_with(
        &self,
        data: &SyntheticDataset,
        config: &QuantConfig,
        reference: &[usize],
        exec: &Executor,
    ) -> f64 {
        assert_eq!(reference.len(), data.len(), "reference length mismatch");
        let got = self
            .predict_all_with(data, config, exec)
            .expect("quantized inference must succeed");
        let agree = got
            .iter()
            .zip(reference.iter())
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / reference.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense};

    fn tiny_net() -> Network {
        Network::new(
            "tiny",
            vec![
                Layer::Conv2d(Conv2d::random(1, 4, 3, 1, 0, 100)),
                Layer::ReLU,
                Layer::MaxPool2d { k: 2, stride: 2 },
                Layer::Dense(Dense::random(4 * 3 * 3, 4, 101)),
            ],
        )
    }

    #[test]
    fn forward_produces_logits() {
        let net = tiny_net();
        let cfg = QuantConfig::uniform(net.layer_count(), 16, 16);
        let input = Tensor::random(1, 8, 8, 1);
        let (out, stats) = net.forward(&input, &cfg).unwrap();
        assert_eq!(out.shape(), (1, 1, 4));
        assert_eq!(stats.len(), 4);
        assert!(stats[0].macs > 0);
        assert_eq!(stats[1].macs, 0); // relu performs no MACs
    }

    #[test]
    fn config_length_is_validated() {
        let net = tiny_net();
        let cfg = QuantConfig::uniform(2, 16, 16);
        let input = Tensor::random(1, 8, 8, 1);
        assert!(matches!(
            net.forward(&input, &cfg),
            Err(NnError::ConfigLengthMismatch {
                layers: 4,
                entries: 2
            })
        ));
    }

    #[test]
    fn parameterized_layers_are_conv_and_dense() {
        let net = tiny_net();
        assert_eq!(net.parameterized_layers(), vec![0, 3]);
    }

    #[test]
    fn relative_accuracy_is_one_against_itself() {
        let net = tiny_net();
        let data = crate::dataset::SyntheticDataset::new(6, 4, 1, 8, 8, 7);
        let cfg = QuantConfig::uniform(net.layer_count(), 16, 16);
        assert_eq!(net.relative_accuracy(&data, &cfg, &cfg), 1.0);
    }

    #[test]
    fn one_bit_everywhere_degrades_agreement() {
        let net = tiny_net();
        let data = crate::dataset::SyntheticDataset::new(32, 4, 1, 8, 8, 8);
        let full = QuantConfig::uniform(net.layer_count(), 16, 16);
        let brutal = QuantConfig::uniform(net.layer_count(), 1, 1);
        let acc = net.relative_accuracy(&data, &brutal, &full);
        assert!(
            acc < 1.0,
            "1-bit quantization should break agreement, acc={acc}"
        );
    }

    #[test]
    fn quant_config_accessors() {
        let mut cfg = QuantConfig::uniform(3, 8, 10);
        assert_eq!(cfg.max_bits(), 10);
        cfg.set_layer(1, 16, 2);
        assert_eq!(cfg.max_bits(), 16);
        assert_eq!(cfg.layer(1).activations, 2);
        assert!(!cfg.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_network_rejected() {
        let _ = Network::new("empty", vec![]);
    }

    #[test]
    fn calibration_diversifies_predictions() {
        let mut net = tiny_net();
        let data = crate::dataset::SyntheticDataset::new(24, 4, 1, 8, 8, 99);
        let cfg = QuantConfig::uniform(net.layer_count(), 16, 16);
        net.calibrate_logits(&data);
        let preds = net.predict_all(&data, &cfg).unwrap();
        let distinct: std::collections::HashSet<usize> = preds.into_iter().collect();
        assert!(distinct.len() >= 2, "calibrated net still degenerate");
    }

    #[test]
    fn calibration_centers_mean_logits() {
        let mut net = tiny_net();
        let data = crate::dataset::SyntheticDataset::new(12, 4, 1, 8, 8, 98);
        net.calibrate_logits(&data);
        let cfg = QuantConfig::uniform(net.layer_count(), 16, 16);
        let mut sums = vec![0.0f64; 4];
        for img in data.images() {
            let (out, _) = net.forward(img, &cfg).unwrap();
            for (s, &v) in sums.iter_mut().zip(out.as_slice()) {
                *s += f64::from(v);
            }
        }
        for s in sums {
            let mean = s / 12.0;
            assert!(mean.abs() < 0.02, "class mean logit {mean} not centered");
        }
    }
}
