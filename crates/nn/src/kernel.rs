//! The MAC-kernel layer: how conv/dense layers execute their quantized
//! multiply-accumulates.
//!
//! Mirroring the netlist engine selector of `dvafs-arith`
//! (`netlist::Engine::{Scalar, Bitsliced}`), the NN hot path has three
//! interchangeable kernels:
//!
//! * [`NnKernel::Naive`] — the original 7-deep convolution loop (and the
//!   2-deep dense loop), retained verbatim as the **reference oracle**;
//! * [`NnKernel::Gemm`] — activations are packed into an im2col panel and
//!   consumed by the blocked integer GEMM of [`dvafs_simd::gemm`]
//!   (`i16 x i16` products, exact `i64` accumulation), with
//!   per-`(layer, bits)` weight quantization memoized in a [`WeightCache`]
//!   across a precision sweep;
//! * [`NnKernel::GemmPacked`] — the default: the GEMM operands are
//!   additionally *subword-packed* (the paper's Section II-C move in
//!   software): each side independently selects the most-parallel
//!   [`SubwordMode`] its bit width allows via
//!   [`SubwordMode::for_precision`] — see [`mode_for_bits`] — so an
//!   8-bit layer carries 2 operands per 16-bit lane word and a 4-bit
//!   layer 4, and the packed GEMM of `dvafs_simd::gemm` consumes them
//!   with exact accumulation.
//!
//! Accumulation is exact in every kernel, so the choice **never moves a
//! number**: outputs are byte-identical and the `zero_weight`/`zero_act`
//! guard-skip counters are reproduced exactly from the packed
//! representation (the `Naive == Gemm == GemmPacked` property tests pin
//! all three). Only wall time changes.

use crate::quant::QuantizedTensor;
use dvafs_arith::{Precision, SubwordMode};
use dvafs_simd::gemm::PackedPanel;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Selects the MAC kernel conv/dense layers execute on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum NnKernel {
    /// The original scalar layer loops — the reference oracle.
    Naive,
    /// im2col packing + blocked integer GEMM.
    Gemm,
    /// Subword-packed GEMM: reduced-precision operands share lane words
    /// at the [`SubwordMode`] geometry — the default.
    #[default]
    GemmPacked,
}

impl NnKernel {
    /// All kernels, oracle first (test matrices iterate this).
    pub const ALL: [NnKernel; 3] = [NnKernel::Naive, NnKernel::Gemm, NnKernel::GemmPacked];

    /// Parses a CLI spelling (`"naive"` / `"gemm"` / `"packed"`).
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "naive" => Ok(NnKernel::Naive),
            "gemm" => Ok(NnKernel::Gemm),
            "packed" => Ok(NnKernel::GemmPacked),
            other => Err(format!(
                "unknown kernel {other:?} (expected naive|gemm|packed)"
            )),
        }
    }
}

impl fmt::Display for NnKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NnKernel::Naive => "naive",
            NnKernel::Gemm => "gemm",
            NnKernel::GemmPacked => "packed",
        })
    }
}

/// Selects how a batch of samples walks the network — the batching
/// counterpart of [`NnKernel`], and the same selector-plus-oracle
/// discipline: the per-sample path is retained verbatim as the reference
/// oracle, and the choice **never moves a number** (the
/// `batch_equivalence` proptest net pins outputs, guard-skip counters and
/// argmaxes bitwise across both paths). Only wall time changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BatchPath {
    /// Each sample walks the whole network alone (the reference oracle):
    /// the per-`(layer, bits)` weight panel is re-streamed once per
    /// sample.
    SampleMajor,
    /// A whole chunk of samples is carried layer-by-layer: each conv
    /// layer concatenates the samples' im2col panels into **one wide
    /// GEMM** (`m × k × (B·n)`; dense layers `m × k × B`), so the packed
    /// weight panel streams through cache once per batch — the software
    /// edition of the paper's weight-stationary MAC array. The default.
    #[default]
    LayerMajor,
}

impl BatchPath {
    /// Both paths, oracle first (test matrices iterate this).
    pub const ALL: [BatchPath; 2] = [BatchPath::SampleMajor, BatchPath::LayerMajor];

    /// Parses a CLI spelling (`"sample"` / `"layer"`).
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "sample" => Ok(BatchPath::SampleMajor),
            "layer" => Ok(BatchPath::LayerMajor),
            other => Err(format!(
                "unknown batch path {other:?} (expected sample|layer)"
            )),
        }
    }
}

impl fmt::Display for BatchPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BatchPath::SampleMajor => "sample",
            BatchPath::LayerMajor => "layer",
        })
    }
}

/// Default samples per layer-major chunk: big enough to amortize one
/// weight-panel stream over many activation columns, small enough that
/// the widened im2col/accumulator scratch stays cache-resident.
pub const DEFAULT_BATCH_SIZE: usize = 16;

/// The [`SubwordMode`] the packed kernel selects for a `bits`-wide
/// operand — [`SubwordMode::for_precision`] is the mode-selection
/// authority: the narrowest-lane, most-parallel mode that still holds
/// the operands (4-bit → `X4`, 8-bit → `X2`, wider → `X1`).
///
/// # Panics
///
/// Panics when `bits` is outside `1..=16` (callers validate first).
#[must_use]
pub(crate) fn mode_for_bits(bits: u32) -> SubwordMode {
    SubwordMode::for_precision(Precision::new(bits).expect("bits validated to 1..=16"))
}

/// Reusable buffers of the GEMM path. One `Scratch` amortizes the im2col
/// panel and accumulator allocations across layers of a forward pass —
/// and, via the batch entry points of `Network`, across samples of a
/// dataset sweep. Contents are fully overwritten before every use, so
/// reuse never affects results.
#[derive(Debug, Default)]
pub struct Scratch {
    /// im2col panel: one packed patch per output position (`n x k`).
    pub(crate) patches: Vec<i16>,
    /// Quantized activation vector of a dense layer.
    pub(crate) acts: Vec<i16>,
    /// GEMM accumulators (`m x n`, exact `i64`).
    pub(crate) acc: Vec<i64>,
    /// Subword-packed activation panel of the `GemmPacked` kernel
    /// (repacked per layer from `patches`/`acts`; the buffer is reused).
    pub(crate) packed: PackedPanel,
    /// Directly-filled activation panels of the batched `GemmPacked`
    /// path, keyed by fill structure (see `PackedPanel::begin_fill_reuse`)
    /// so each layer geometry keeps **its own** panel across forward
    /// calls: a repeat fill of an unchanged `X1` structure then skips the
    /// zeroing pass entirely. LRU order, capped entries/words (below).
    pub(crate) packed_pool: Vec<(u64, PackedPanel)>,
}

/// Entry cap of [`Scratch::packed_pool`] — comfortably above the
/// parameterized-layer count of the deepest scenario network, so a full
/// forward sweep keeps every layer's panel pooled.
const PANEL_POOL_MAX_ENTRIES: usize = 24;

/// Word cap (`u16`s, so bytes are 2x) of [`Scratch::packed_pool`] across
/// all entries: pooling holds one panel **per layer geometry** alive
/// where the single shared panel held only the largest, so bound the
/// total and evict least-recently-used panels past it.
const PANEL_POOL_MAX_WORDS: usize = 1 << 24;

impl Scratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Scratch::default()
    }

    /// The pooled packed panel for fill-structure `key`, plus the GEMM
    /// accumulator buffer (handed out together so the caller can hold
    /// both mutably). Creates the panel on first use; moves a hit to the
    /// back (LRU) and evicts from the front past the pool caps.
    pub(crate) fn pooled_panel_and_acc(&mut self, key: u64) -> (&mut PackedPanel, &mut Vec<i64>) {
        let entry = match self.packed_pool.iter().position(|(k, _)| *k == key) {
            Some(i) => self.packed_pool.remove(i),
            None => (key, PackedPanel::default()),
        };
        let words = |p: &PackedPanel| p.rows() * p.words_per_row();
        while !self.packed_pool.is_empty()
            && (self.packed_pool.len() + 1 > PANEL_POOL_MAX_ENTRIES
                || self
                    .packed_pool
                    .iter()
                    .map(|(_, p)| words(p))
                    .sum::<usize>()
                    + words(&entry.1)
                    > PANEL_POOL_MAX_WORDS)
        {
            self.packed_pool.remove(0);
        }
        self.packed_pool.push(entry);
        let (_, panel) = self.packed_pool.last_mut().expect("entry just pushed");
        (panel, &mut self.acc)
    }
}

/// Runs `f` with this thread's long-lived [`Scratch`], so convenience
/// wrappers and executor workers amortize the im2col/accumulator
/// allocations across calls instead of building a fresh `Scratch::new()`
/// each time. Falls back to a throwaway scratch when the thread-local is
/// already borrowed (a reentrant caller), which only costs allocations —
/// scratch contents never affect results.
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    use std::cell::RefCell;
    thread_local! {
        static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut Scratch::new()),
    })
}

/// One memoized weight quantization: the `i16` panel the GEMM consumes,
/// its scale, and the zero-weight counts the guard-skip statistics are
/// reproduced from.
#[derive(Debug)]
pub(crate) struct PackedWeights {
    /// Quantized weights as the GEMM's left operand (row-major, one filter
    /// or output neuron per row).
    pub qi16: Vec<i16>,
    /// Real value per grid step (`QuantizedTensor::scale`).
    pub scale: f64,
    /// Zero-weight count per spatial tap `ky*k + kx`, summed over filters
    /// and input channels (convolution only; empty for dense layers).
    /// Scaling each tap's count by the number of output positions where
    /// that tap is in bounds reproduces the naive loop's `zero_weight`
    /// counter exactly under padding.
    pub zeros_per_tap: Vec<u64>,
    /// Total zero weights (the dense layer's per-output-row zero count).
    pub zeros_total: u64,
    /// The same weights subword-packed at
    /// [`mode_for_bits`]`(bits)` — one filter/output neuron per panel
    /// row — pre-built at pack time so the `GemmPacked` hot path never
    /// re-packs weights.
    pub panel: PackedPanel,
}

/// Per-layer cache of [`PackedWeights`] keyed by bit width.
///
/// A precision sweep re-runs the same layer at many widths and the same
/// width across many samples; weight quantization is a pure function of
/// `(weights, bits)`, so it is computed once per key. `weights_mut`
/// (pruning, calibration) invalidates the cache. The cache is execution
/// state, not model identity: it is skipped by serialization, compares
/// equal regardless of contents, and clones empty.
///
/// Bit widths are bounded (`1..=16`), so the cache is one `OnceLock` slot
/// per width: hits on the forward hot path are lock-free reads — parallel
/// sample workers never contend — and a cold pack runs `get_or_init` (a
/// racing duplicate pack is possible and harmless: packing is pure, one
/// winner is kept).
#[derive(Default)]
pub(crate) struct WeightCache([OnceLock<Arc<PackedWeights>>; 16]);

impl WeightCache {
    /// The packed weights for `bits` (`1..=16`, validated by the caller),
    /// packing on first use.
    pub fn get_or_pack(
        &self,
        bits: u32,
        pack: impl FnOnce() -> PackedWeights,
    ) -> Arc<PackedWeights> {
        self.0[bits as usize - 1]
            .get_or_init(|| Arc::new(pack()))
            .clone()
    }

    /// Drops every memoized quantization (weights changed). Requires
    /// `&mut self` — exactly what `weights_mut` holds — so no reader can
    /// observe a half-cleared cache.
    pub fn invalidate(&mut self) {
        for slot in &mut self.0 {
            let _ = slot.take();
        }
    }

    /// Number of memoized bit widths (test hook).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.0.iter().filter(|slot| slot.get().is_some()).count()
    }
}

impl Clone for WeightCache {
    fn clone(&self) -> Self {
        // A clone may diverge (pruning) — start cold rather than share.
        WeightCache::default()
    }
}

impl fmt::Debug for WeightCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WeightCache(..)")
    }
}

/// Memoized activation quantizations keyed by `(slot, bits)` — the
/// activation-side mirror of [`WeightCache`].
///
/// A precision scan re-quantizes the *same* input activation at the same
/// bit width many times (the weight-operand scan of one layer holds
/// `abits` at full precision across every candidate weight width);
/// quantization is a pure function of `(input, bits)`
/// (property-tested in [`crate::quant`]), so it is computed once per key.
/// The caller maps `slot` to a sample index for a fixed layer — the
/// incremental precision search creates one cache per layer scan, so the
/// effective key is `(sample, layer, abits)`.
///
/// The same discipline as [`WeightCache`]: bit widths are bounded
/// (`1..=16`), so each slot is one `OnceLock` per width — hits on the
/// parallel scan path are lock-free reads, a cold quantization runs
/// `get_or_init` (racing duplicates are pure and harmless, one winner is
/// kept) — and staleness is handled by ownership: the cache lives no
/// longer than the scan of one layer over one immutable network, and
/// [`invalidate`](Self::invalidate) (requiring `&mut self`, like
/// `WeightCache::invalidate`) drops every memo when the cached inputs are
/// replaced.
#[derive(Default)]
pub struct ActivationCache {
    slots: Vec<[OnceLock<Arc<QuantizedTensor>>; 16]>,
}

impl ActivationCache {
    /// A cache with `slots` entries (one per sample of the scanned set),
    /// all cold.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        ActivationCache {
            slots: (0..slots)
                .map(|_| std::array::from_fn(|_| OnceLock::new()))
                .collect(),
        }
    }

    /// The memoized quantization for `(slot, bits)` (`bits` in `1..=16`),
    /// quantizing on first use.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range or `bits` outside `1..=16`.
    pub fn get_or_quantize(
        &self,
        slot: usize,
        bits: u32,
        quantize: impl FnOnce() -> QuantizedTensor,
    ) -> Arc<QuantizedTensor> {
        assert!((1..=16).contains(&bits), "bits {bits} outside 1..=16");
        self.slots[slot][bits as usize - 1]
            .get_or_init(|| Arc::new(quantize()))
            .clone()
    }

    /// Drops every memoized quantization (the cached inputs changed).
    /// Requires `&mut self`, so no reader can observe a half-cleared cache.
    pub fn invalidate(&mut self) {
        for slot in &mut self.slots {
            for cell in slot {
                let _ = cell.take();
            }
        }
    }

    /// Number of memoized `(slot, bits)` entries (test hook).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .flat_map(|s| s.iter())
            .filter(|cell| cell.get().is_some())
            .count()
    }

    /// Whether nothing is memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for ActivationCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ActivationCache({} slots)", self.slots.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_parse_and_display_roundtrip() {
        for k in NnKernel::ALL {
            assert_eq!(NnKernel::parse(&k.to_string()), Ok(k));
        }
        assert!(NnKernel::parse("fast")
            .unwrap_err()
            .contains("naive|gemm|packed"));
        assert_eq!(NnKernel::default(), NnKernel::GemmPacked);
    }

    #[test]
    fn batch_path_parse_and_display_roundtrip() {
        for p in BatchPath::ALL {
            assert_eq!(BatchPath::parse(&p.to_string()), Ok(p));
        }
        assert!(BatchPath::parse("wide")
            .unwrap_err()
            .contains("sample|layer"));
        assert_eq!(BatchPath::default(), BatchPath::LayerMajor);
        const { assert!(DEFAULT_BATCH_SIZE >= 1) };
    }

    #[test]
    fn thread_scratch_is_reused_and_reentrancy_safe() {
        // Two sequential borrows see the same buffer (capacity persists);
        // a nested borrow gets a fresh scratch instead of panicking.
        with_thread_scratch(|s| s.patches.resize(64, 7));
        let (outer_len, inner_len) = with_thread_scratch(|s| {
            let inner = with_thread_scratch(|nested| nested.patches.len());
            (s.patches.len(), inner)
        });
        assert_eq!(outer_len, 64, "thread-local scratch persists across calls");
        assert_eq!(
            inner_len, 0,
            "reentrant borrow falls back to a fresh scratch"
        );
    }

    #[test]
    fn mode_selection_follows_subword_authority() {
        for bits in 1u32..=16 {
            let mode = mode_for_bits(bits);
            assert_eq!(
                mode,
                SubwordMode::for_precision(Precision::new(bits).unwrap())
            );
            assert!(mode.lane_bits() >= bits, "{bits} bits must fit {mode}");
        }
        assert_eq!(mode_for_bits(4), SubwordMode::X4);
        assert_eq!(mode_for_bits(8), SubwordMode::X2);
        assert_eq!(mode_for_bits(16), SubwordMode::X1);
    }

    #[test]
    fn activation_cache_quantizes_once_per_key_and_invalidates() {
        use crate::tensor::Tensor;
        let mut cache = ActivationCache::new(2);
        let t = Tensor::random(1, 3, 3, 5);
        let mut quantizations = 0;
        for (slot, bits) in [(0usize, 8u32), (0, 8), (1, 8), (0, 4), (1, 8)] {
            let q = cache.get_or_quantize(slot, bits, || {
                quantizations += 1;
                QuantizedTensor::quantize(&t, bits).expect("valid bits")
            });
            assert_eq!(q.bits, bits);
        }
        assert_eq!(quantizations, 3, "one quantization per distinct key");
        assert_eq!(cache.len(), 3);
        cache.invalidate();
        assert!(cache.is_empty());
        assert!(format!("{cache:?}").contains("ActivationCache"));
    }

    /// Parallel-path hits are lock-free `OnceLock` reads: eight workers
    /// hammering the same `(slot, bits)` keys must agree bit-for-bit with
    /// a serial fill (no result drift), and every hit after the first
    /// returns the same memoized allocation (no re-quantization).
    #[test]
    fn activation_cache_hits_are_lock_free_under_parallel_scan() {
        use crate::tensor::Tensor;
        use dvafs_executor::Executor;
        let samples: Vec<Tensor> = (0..6).map(|s| Tensor::random(1, 4, 4, s)).collect();
        let cache = ActivationCache::new(samples.len());
        // 8 workers × (sample × bits) grid, every key claimed many times.
        let work: Vec<(usize, u32)> = (0..samples.len())
            .flat_map(|s| (1u32..=16).map(move |b| (s, b)))
            .cycle()
            .take(6 * 16 * 4)
            .collect();
        let parallel = Executor::new(8).par_map_indexed(&work, |_, &(slot, bits)| {
            let q = cache.get_or_quantize(slot, bits, || {
                QuantizedTensor::quantize(&samples[slot], bits).expect("valid bits")
            });
            (q.data.clone(), q.scale.to_bits())
        });
        for (&(slot, bits), (data, scale)) in work.iter().zip(&parallel) {
            let oracle = QuantizedTensor::quantize(&samples[slot], bits).expect("valid bits");
            assert_eq!(data, &oracle.data, "slot {slot} bits {bits} drifted");
            assert_eq!(*scale, oracle.scale.to_bits());
        }
        assert_eq!(cache.len(), 6 * 16, "every key memoized exactly once");
    }

    #[test]
    #[should_panic(expected = "outside 1..=16")]
    fn activation_cache_rejects_invalid_bits() {
        let cache = ActivationCache::new(1);
        let _ = cache.get_or_quantize(0, 17, || unreachable!("validated first"));
    }

    #[test]
    fn cache_packs_once_per_width_and_invalidates() {
        let mut cache = WeightCache::default();
        let mut packs = 0;
        for bits in [8u32, 8, 4, 8] {
            let _ = cache.get_or_pack(bits, || {
                packs += 1;
                PackedWeights {
                    qi16: vec![],
                    scale: 1.0,
                    zeros_per_tap: vec![],
                    zeros_total: 0,
                    panel: PackedPanel::default(),
                }
            });
        }
        assert_eq!(packs, 2, "one pack per distinct width");
        assert_eq!(cache.len(), 2);
        cache.invalidate();
        assert_eq!(cache.len(), 0);
        assert!(format!("{:?}", cache.clone()).contains("WeightCache"));
    }
}
