//! The MAC-kernel layer: how conv/dense layers execute their quantized
//! multiply-accumulates.
//!
//! Mirroring the netlist engine selector of `dvafs-arith`
//! (`netlist::Engine::{Scalar, Bitsliced}`), the NN hot path has two
//! interchangeable kernels:
//!
//! * [`NnKernel::Naive`] — the original 7-deep convolution loop (and the
//!   2-deep dense loop), retained verbatim as the **reference oracle**;
//! * [`NnKernel::Gemm`] — the default: activations are packed into an
//!   im2col panel and consumed by the blocked integer GEMM of
//!   [`dvafs_simd::gemm`] (`i16 x i16` products, exact `i64`
//!   accumulation), with per-`(layer, bits)` weight quantization memoized
//!   in a [`WeightCache`] across a precision sweep.
//!
//! Accumulation is exact, so the kernel choice **never moves a number**:
//! outputs are byte-identical and the `zero_weight`/`zero_act` guard-skip
//! counters are reproduced exactly from the packed representation (the
//! `Naive == Gemm` property tests pin both). Only wall time changes.

use std::fmt;
use std::sync::{Arc, OnceLock};

/// Selects the MAC kernel conv/dense layers execute on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum NnKernel {
    /// The original scalar layer loops — the reference oracle.
    Naive,
    /// im2col packing + blocked integer GEMM — the default.
    #[default]
    Gemm,
}

impl NnKernel {
    /// Both kernels, oracle first (test matrices iterate this).
    pub const ALL: [NnKernel; 2] = [NnKernel::Naive, NnKernel::Gemm];

    /// Parses a CLI spelling (`"naive"` / `"gemm"`).
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "naive" => Ok(NnKernel::Naive),
            "gemm" => Ok(NnKernel::Gemm),
            other => Err(format!("unknown kernel {other:?} (expected naive|gemm)")),
        }
    }
}

impl fmt::Display for NnKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NnKernel::Naive => "naive",
            NnKernel::Gemm => "gemm",
        })
    }
}

/// Reusable buffers of the GEMM path. One `Scratch` amortizes the im2col
/// panel and accumulator allocations across layers of a forward pass —
/// and, via the batch entry points of `Network`, across samples of a
/// dataset sweep. Contents are fully overwritten before every use, so
/// reuse never affects results.
#[derive(Debug, Default)]
pub struct Scratch {
    /// im2col panel: one packed patch per output position (`n x k`).
    pub(crate) patches: Vec<i16>,
    /// Quantized activation vector of a dense layer.
    pub(crate) acts: Vec<i16>,
    /// GEMM accumulators (`m x n`, exact `i64`).
    pub(crate) acc: Vec<i64>,
}

impl Scratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// One memoized weight quantization: the `i16` panel the GEMM consumes,
/// its scale, and the zero-weight counts the guard-skip statistics are
/// reproduced from.
#[derive(Debug)]
pub(crate) struct PackedWeights {
    /// Quantized weights as the GEMM's left operand (row-major, one filter
    /// or output neuron per row).
    pub qi16: Vec<i16>,
    /// Real value per grid step (`QuantizedTensor::scale`).
    pub scale: f64,
    /// Zero-weight count per spatial tap `ky*k + kx`, summed over filters
    /// and input channels (convolution only; empty for dense layers).
    /// Scaling each tap's count by the number of output positions where
    /// that tap is in bounds reproduces the naive loop's `zero_weight`
    /// counter exactly under padding.
    pub zeros_per_tap: Vec<u64>,
    /// Total zero weights (the dense layer's per-output-row zero count).
    pub zeros_total: u64,
}

/// Per-layer cache of [`PackedWeights`] keyed by bit width.
///
/// A precision sweep re-runs the same layer at many widths and the same
/// width across many samples; weight quantization is a pure function of
/// `(weights, bits)`, so it is computed once per key. `weights_mut`
/// (pruning, calibration) invalidates the cache. The cache is execution
/// state, not model identity: it is skipped by serialization, compares
/// equal regardless of contents, and clones empty.
///
/// Bit widths are bounded (`1..=16`), so the cache is one `OnceLock` slot
/// per width: hits on the forward hot path are lock-free reads — parallel
/// sample workers never contend — and a cold pack runs `get_or_init` (a
/// racing duplicate pack is possible and harmless: packing is pure, one
/// winner is kept).
#[derive(Default)]
pub(crate) struct WeightCache([OnceLock<Arc<PackedWeights>>; 16]);

impl WeightCache {
    /// The packed weights for `bits` (`1..=16`, validated by the caller),
    /// packing on first use.
    pub fn get_or_pack(
        &self,
        bits: u32,
        pack: impl FnOnce() -> PackedWeights,
    ) -> Arc<PackedWeights> {
        self.0[bits as usize - 1]
            .get_or_init(|| Arc::new(pack()))
            .clone()
    }

    /// Drops every memoized quantization (weights changed). Requires
    /// `&mut self` — exactly what `weights_mut` holds — so no reader can
    /// observe a half-cleared cache.
    pub fn invalidate(&mut self) {
        for slot in &mut self.0 {
            let _ = slot.take();
        }
    }

    /// Number of memoized bit widths (test hook).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.0.iter().filter(|slot| slot.get().is_some()).count()
    }
}

impl Clone for WeightCache {
    fn clone(&self) -> Self {
        // A clone may diverge (pruning) — start cold rather than share.
        WeightCache::default()
    }
}

impl fmt::Debug for WeightCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WeightCache(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_parse_and_display_roundtrip() {
        for k in NnKernel::ALL {
            assert_eq!(NnKernel::parse(&k.to_string()), Ok(k));
        }
        assert!(NnKernel::parse("fast").unwrap_err().contains("naive|gemm"));
        assert_eq!(NnKernel::default(), NnKernel::Gemm);
    }

    #[test]
    fn cache_packs_once_per_width_and_invalidates() {
        let mut cache = WeightCache::default();
        let mut packs = 0;
        for bits in [8u32, 8, 4, 8] {
            let _ = cache.get_or_pack(bits, || {
                packs += 1;
                PackedWeights {
                    qi16: vec![],
                    scale: 1.0,
                    zeros_per_tap: vec![],
                    zeros_total: 0,
                }
            });
        }
        assert_eq!(packs, 2, "one pack per distinct width");
        assert_eq!(cache.len(), 2);
        cache.invalidate();
        assert_eq!(cache.len(), 0);
        assert!(format!("{:?}", cache.clone()).contains("WeightCache"));
    }
}
