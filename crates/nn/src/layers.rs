//! CNN layers with an integer MAC data path.
//!
//! [`Conv2d`] implements equation (4) of the paper; [`Dense`] the
//! matrix-vector classifier layers; [`Layer::ReLU`] and
//! [`Layer::MaxPool2d`] the non-linearity and pooling stages of Fig. 5.
//! Convolution and dense layers execute on quantized integers with 64-bit
//! accumulation — the arithmetic a DVAFS MAC array performs — and report
//! the MAC/sparsity statistics that drive the Envision power model.

use crate::error::NnError;
use crate::quant::QuantizedTensor;
use crate::tensor::Tensor;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Execution statistics of one layer forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// MACs whose weight operand quantized to zero (guard-skippable).
    pub zero_weight_macs: u64,
    /// MACs whose activation operand quantized to zero (guard-skippable).
    pub zero_act_macs: u64,
}

impl LayerStats {
    /// Weight sparsity observed during the pass.
    #[must_use]
    pub fn weight_sparsity(&self) -> f64 {
        if self.macs == 0 {
            0.0
        } else {
            self.zero_weight_macs as f64 / self.macs as f64
        }
    }

    /// Activation (input) sparsity observed during the pass.
    #[must_use]
    pub fn input_sparsity(&self) -> f64 {
        if self.macs == 0 {
            0.0
        } else {
            self.zero_act_macs as f64 / self.macs as f64
        }
    }
}

/// A 2-D convolution layer (`F` filters of `K x K x C`, stride `S`,
/// symmetric zero padding), equation (4) of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    weights: Vec<f32>,
    bias: Vec<f32>,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
}

impl Conv2d {
    /// Creates a convolution with deterministic He-scaled pseudo-trained
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the stride is zero.
    #[must_use]
    pub fn random(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
            "convolution dimensions must be positive"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fan_in = (in_channels * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        let count = out_channels * in_channels * kernel * kernel;
        // Uniform(-sqrt(3)σ, sqrt(3)σ) has standard deviation σ.
        let lim = std * 3f32.sqrt();
        let weights = (0..count).map(|_| rng.gen_range(-lim..lim)).collect();
        let bias = (0..out_channels)
            .map(|_| rng.gen_range(-0.05..0.05))
            .collect();
        Conv2d {
            weights,
            bias,
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// Filter count (`F`).
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel size (`K`).
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Weight tensor as a flat slice (`F*C*K*K`).
    #[must_use]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Mutable weights (for pruning).
    #[must_use]
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    fn weights_tensor(&self) -> Tensor {
        let mut t = Tensor::zeros(1, 1, self.weights.len());
        t.as_mut_slice().copy_from_slice(&self.weights);
        t
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    fn forward(
        &self,
        input: &Tensor,
        wbits: u32,
        abits: u32,
    ) -> Result<(Tensor, LayerStats), NnError> {
        let (c, h, w) = input.shape();
        if c != self.in_channels
            || h + 2 * self.padding < self.kernel
            || w + 2 * self.padding < self.kernel
        {
            return Err(NnError::ShapeMismatch {
                expected: (self.in_channels, self.kernel, self.kernel),
                actual: (c, h, w),
            });
        }
        let qa = QuantizedTensor::quantize(input, abits)?;
        let qw = QuantizedTensor::quantize(&self.weights_tensor(), wbits)?;
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros(self.out_channels, oh, ow);
        let mut stats = LayerStats::default();
        let k = self.kernel;
        let pad = self.padding as isize;
        let scale = qa.scale * qw.scale;
        for f in 0..self.out_channels {
            let wbase = f * self.in_channels * k * k;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc: i64 = 0;
                    for ci in 0..self.in_channels {
                        for ky in 0..k {
                            let iy = (oy * self.stride + ky) as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue; // zero padding contributes nothing
                            }
                            for kx in 0..k {
                                let ix = (ox * self.stride + kx) as isize - pad;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let a = qa.data[(ci * h + iy as usize) * w + ix as usize];
                                let wv = qw.data[wbase + (ci * k + ky) * k + kx];
                                stats.macs += 1;
                                if wv == 0 {
                                    stats.zero_weight_macs += 1;
                                }
                                if a == 0 {
                                    stats.zero_act_macs += 1;
                                }
                                acc += i64::from(a) * i64::from(wv);
                            }
                        }
                    }
                    out.set(
                        f,
                        oy,
                        ox,
                        (acc as f64 * scale + f64::from(self.bias[f])) as f32,
                    );
                }
            }
        }
        Ok((out, stats))
    }

    /// MACs for one forward pass on an input of shape `(c, h, w)` —
    /// zero-padding taps excluded, matching the executed count.
    #[must_use]
    pub fn mac_count(&self, h: usize, w: usize) -> u64 {
        // Dense interior approximation: F * OH * OW * C * K * K.
        let (oh, ow) = self.out_hw(h, w);
        (self.out_channels * oh * ow * self.in_channels * self.kernel * self.kernel) as u64
    }
}

/// A fully-connected classifier layer (`O[z] = Σ W[z,m] I[m] + B[z]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    weights: Vec<f32>,
    bias: Vec<f32>,
    inputs: usize,
    outputs: usize,
}

impl Dense {
    /// Creates a dense layer with deterministic He-scaled weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn random(inputs: usize, outputs: usize, seed: u64) -> Self {
        assert!(
            inputs > 0 && outputs > 0,
            "dense dimensions must be positive"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let std = (2.0 / inputs as f32).sqrt();
        let lim = std * 3f32.sqrt();
        Dense {
            weights: (0..inputs * outputs)
                .map(|_| rng.gen_range(-lim..lim))
                .collect(),
            bias: (0..outputs).map(|_| rng.gen_range(-0.05..0.05)).collect(),
            inputs,
            outputs,
        }
    }

    /// Input features consumed (the flattened input length).
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output features produced.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Mutable weights (for pruning).
    #[must_use]
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// Mutable biases (for logit calibration).
    #[must_use]
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    fn weights_tensor(&self) -> Tensor {
        let mut t = Tensor::zeros(1, 1, self.weights.len());
        t.as_mut_slice().copy_from_slice(&self.weights);
        t
    }

    fn forward(
        &self,
        input: &Tensor,
        wbits: u32,
        abits: u32,
    ) -> Result<(Tensor, LayerStats), NnError> {
        if input.len() != self.inputs {
            return Err(NnError::ShapeMismatch {
                expected: (1, 1, self.inputs),
                actual: input.shape(),
            });
        }
        let qa = QuantizedTensor::quantize(input, abits)?;
        let qw = QuantizedTensor::quantize(&self.weights_tensor(), wbits)?;
        let scale = qa.scale * qw.scale;
        let mut out = Tensor::zeros(1, 1, self.outputs);
        let mut stats = LayerStats::default();
        for z in 0..self.outputs {
            let mut acc: i64 = 0;
            let base = z * self.inputs;
            for m in 0..self.inputs {
                let a = qa.data[m];
                let wv = qw.data[base + m];
                stats.macs += 1;
                if wv == 0 {
                    stats.zero_weight_macs += 1;
                }
                if a == 0 {
                    stats.zero_act_macs += 1;
                }
                acc += i64::from(a) * i64::from(wv);
            }
            out.set(
                0,
                0,
                z,
                (acc as f64 * scale + f64::from(self.bias[z])) as f32,
            );
        }
        Ok((out, stats))
    }
}

/// One stage of a CNN (Fig. 5): convolution, non-linearity, pooling or
/// classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Convolutional feature extraction (eq. 4).
    Conv2d(Conv2d),
    /// Rectified linear unit `f(u) = max(0, u)`.
    ReLU,
    /// Max pooling over `k x k` patches with stride `stride`.
    MaxPool2d {
        /// Pool window size.
        k: usize,
        /// Pool stride.
        stride: usize,
    },
    /// Fully-connected classifier layer.
    Dense(Dense),
}

impl Layer {
    /// Human-readable layer name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Layer::Conv2d(c) => format!("conv{}x{}x{}", c.kernel, c.kernel, c.out_channels),
            Layer::ReLU => "relu".to_string(),
            Layer::MaxPool2d { k, stride } => format!("maxpool{k}s{stride}"),
            Layer::Dense(d) => format!("fc{}", d.outputs()),
        }
    }

    /// Whether the layer has quantizable weights (conv/dense).
    #[must_use]
    pub fn is_parameterized(&self) -> bool {
        matches!(self, Layer::Conv2d(_) | Layer::Dense(_))
    }

    /// Executes the layer; `wbits`/`abits` only affect parameterized layers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the input does not fit and
    /// [`NnError::InvalidBits`] for bit widths outside `1..=16`.
    pub fn forward(
        &self,
        input: &Tensor,
        wbits: u32,
        abits: u32,
    ) -> Result<(Tensor, LayerStats), NnError> {
        match self {
            Layer::Conv2d(c) => c.forward(input, wbits, abits),
            Layer::Dense(d) => d.forward(input, wbits, abits),
            Layer::ReLU => {
                let mut out = input.clone();
                for v in out.as_mut_slice() {
                    *v = v.max(0.0);
                }
                Ok((out, LayerStats::default()))
            }
            Layer::MaxPool2d { k, stride } => {
                let (c, h, w) = input.shape();
                if h < *k || w < *k {
                    return Err(NnError::ShapeMismatch {
                        expected: (c, *k, *k),
                        actual: (c, h, w),
                    });
                }
                let oh = (h - k) / stride + 1;
                let ow = (w - k) / stride + 1;
                let mut out = Tensor::zeros(c, oh, ow);
                for ci in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut m = f32::NEG_INFINITY;
                            for ky in 0..*k {
                                for kx in 0..*k {
                                    m = m.max(input.get(ci, oy * stride + ky, ox * stride + kx));
                                }
                            }
                            out.set(ci, oy, ox, m);
                        }
                    }
                }
                Ok((out, LayerStats::default()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_identity_filter_passes_input_through() {
        // A 1x1 kernel with weight snapped exactly on the quant grid.
        let mut conv = Conv2d::random(1, 1, 1, 1, 0, 1);
        conv.weights_mut()[0] = 1.0;
        let input = Tensor::from_fn(1, 3, 3, |_, y, x| (y * 3 + x) as f32 / 10.0);
        let (out, stats) = conv.forward(&input, 16, 16).unwrap();
        assert_eq!(out.shape(), (1, 3, 3));
        assert_eq!(stats.macs, 9);
        // out = in + bias: the offset must be the same everywhere.
        let bias = out.get(0, 0, 0) - input.get(0, 0, 0);
        for y in 0..3 {
            for x in 0..3 {
                let got = out.get(0, y, x) - input.get(0, y, x);
                assert!((got - bias).abs() < 0.01, "y={y} x={x}: {got} vs {bias}");
            }
        }
    }

    #[test]
    fn conv_shapes_follow_stride_and_padding() {
        let conv = Conv2d::random(3, 8, 3, 2, 1, 2);
        let input = Tensor::random(3, 9, 9, 3);
        let (out, _) = conv.forward(&input, 8, 8).unwrap();
        // (9 + 2 - 3)/2 + 1 = 5.
        assert_eq!(out.shape(), (8, 5, 5));
    }

    #[test]
    fn conv_rejects_wrong_channel_count() {
        let conv = Conv2d::random(3, 4, 3, 1, 0, 4);
        let input = Tensor::random(2, 8, 8, 5);
        assert!(matches!(
            conv.forward(&input, 8, 8),
            Err(NnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn conv_mac_count_matches_dense_interior() {
        let conv = Conv2d::random(2, 4, 3, 1, 0, 6);
        let input = Tensor::random(2, 6, 6, 7);
        let (_, stats) = conv.forward(&input, 8, 8).unwrap();
        // No padding: executed MACs equal the analytic count.
        assert_eq!(stats.macs, conv.mac_count(6, 6));
        assert_eq!(stats.macs, 4 * 4 * 4 * 2 * 9);
    }

    #[test]
    fn relu_clamps_negative_values() {
        let mut t = Tensor::zeros(1, 1, 3);
        t.set(0, 0, 0, -1.0);
        t.set(0, 0, 1, 2.0);
        let (out, _) = Layer::ReLU.forward(&t, 16, 16).unwrap();
        assert_eq!(out.get(0, 0, 0), 0.0);
        assert_eq!(out.get(0, 0, 1), 2.0);
    }

    #[test]
    fn maxpool_takes_patch_maximum() {
        let t = Tensor::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
        let (out, _) = Layer::MaxPool2d { k: 2, stride: 2 }
            .forward(&t, 16, 16)
            .unwrap();
        assert_eq!(out.shape(), (1, 2, 2));
        assert_eq!(out.get(0, 0, 0), 5.0);
        assert_eq!(out.get(0, 1, 1), 15.0);
    }

    #[test]
    fn overlapping_pool_shape() {
        // AlexNet-style 3x3 stride-2 pooling.
        let t = Tensor::random(2, 13, 13, 8);
        let (out, _) = Layer::MaxPool2d { k: 3, stride: 2 }
            .forward(&t, 16, 16)
            .unwrap();
        assert_eq!(out.shape(), (2, 6, 6));
    }

    #[test]
    fn dense_computes_matrix_vector_product() {
        let mut d = Dense::random(2, 1, 9);
        d.weights_mut().copy_from_slice(&[0.5, -0.25]);
        let mut input = Tensor::zeros(1, 1, 2);
        input.set(0, 0, 0, 1.0);
        input.set(0, 0, 1, 1.0);
        let (out, stats) = d.forward(&input, 16, 16).unwrap();
        assert_eq!(stats.macs, 2);
        let bias = out.get(0, 0, 0) - 0.25;
        assert!(bias.abs() < 0.06, "residual {bias}");
    }

    #[test]
    fn dense_flattens_multi_channel_input() {
        let d = Dense::random(2 * 3 * 3, 5, 10);
        let input = Tensor::random(2, 3, 3, 11);
        let (out, _) = d.forward(&input, 8, 8).unwrap();
        assert_eq!(out.shape(), (1, 1, 5));
    }

    #[test]
    fn coarse_quantization_changes_conv_output() {
        let conv = Conv2d::random(1, 4, 3, 1, 0, 12);
        let input = Tensor::random(1, 8, 8, 13);
        let (fine, _) = conv.forward(&input, 16, 16).unwrap();
        let (coarse, _) = conv.forward(&input, 2, 2).unwrap();
        let diff: f32 = fine
            .as_slice()
            .iter()
            .zip(coarse.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.01, "2-bit output should differ from 16-bit");
    }

    #[test]
    fn sparsity_stats_flag_zero_operands() {
        let mut conv = Conv2d::random(1, 1, 3, 1, 0, 14);
        // Zero out half the kernel.
        for w in conv.weights_mut().iter_mut().take(4) {
            *w = 0.0;
        }
        let mut input = Tensor::random(1, 5, 5, 15);
        // Force some zero activations.
        for v in input.as_mut_slice().iter_mut().take(10) {
            *v = 0.0;
        }
        let (_, stats) = conv.forward(&input, 8, 8).unwrap();
        assert!(stats.weight_sparsity() > 0.3);
        assert!(stats.input_sparsity() > 0.1);
    }

    #[test]
    fn layer_names() {
        assert_eq!(
            Layer::Conv2d(Conv2d::random(1, 6, 5, 1, 2, 0)).name(),
            "conv5x5x6"
        );
        assert_eq!(Layer::Dense(Dense::random(10, 4, 0)).name(), "fc4");
        assert_eq!(Layer::MaxPool2d { k: 2, stride: 2 }.name(), "maxpool2s2");
    }
}
