//! CNN layers with an integer MAC data path.
//!
//! [`Conv2d`] implements equation (4) of the paper; [`Dense`] the
//! matrix-vector classifier layers; [`Layer::ReLU`] and
//! [`Layer::MaxPool2d`] the non-linearity and pooling stages of Fig. 5.
//! Convolution and dense layers execute on quantized integers with 64-bit
//! accumulation — the arithmetic a DVAFS MAC array performs — and report
//! the MAC/sparsity statistics that drive the Envision power model.
//!
//! Three interchangeable MAC kernels execute that arithmetic (see
//! [`crate::kernel`]): the original scalar loops ([`NnKernel::Naive`], the
//! reference oracle), the im2col + blocked-integer-GEMM path
//! ([`NnKernel::Gemm`]), and the default subword-packed GEMM
//! ([`NnKernel::GemmPacked`]) that shares the im2col packing and all
//! statistics bookkeeping with the `Gemm` path and only swaps the inner
//! product for the lane-packed one. Accumulation is exact in `i64`, so
//! all three produce byte-identical outputs and statistics.

use crate::error::NnError;
use crate::kernel::{mode_for_bits, NnKernel, PackedWeights, Scratch, WeightCache};
use crate::quant::QuantizedTensor;
use crate::tensor::Tensor;
use dvafs_arith::SubwordMode;
use dvafs_simd::gemm;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Packs one dense panel row (a sample's full activation vector) into a
/// `PackedPanel::begin_fill` row at `LANES` two's-complement fields of
/// `WBITS` bits per word, exactly where `repack` would place each
/// operand (`X1` is `<1, 16, { i16::MIN as i32 }>` — the word IS the
/// operand). The row tail past the last operand stays at the buffer's
/// pre-zeroed state. Returns the row's `(zero_count, has_min)` — `MIN`
/// is the mode's most negative lane value, which triggers the exact
/// min-correction kernel.
fn fill_row_packed<const LANES: usize, const WBITS: u16, const MIN: i32>(
    src: &[i32],
    row: &mut [u16],
) -> (u64, bool) {
    let mut zeros = 0u64;
    let mut min = false;
    if LANES == 1 {
        for (d, &q) in row.iter_mut().zip(src) {
            zeros += u64::from(q == 0);
            min |= q == MIN;
            *d = q as u16;
        }
    } else {
        let mask = ((1u32 << WBITS) - 1) as u16;
        for (d, chunk) in row.iter_mut().zip(src.chunks(LANES)) {
            let mut word = 0u16;
            for (l, &q) in chunk.iter().enumerate() {
                zeros += u64::from(q == 0);
                min |= q == MIN;
                word |= ((q as u16) & mask) << (l as u16 * WBITS);
            }
            *d = word;
        }
    }
    (zeros, min)
}

/// Pool key for dense-layer panel fills (see [`Scratch::pooled_panel_and_acc`]).
///
/// A dense `X1` fill writes every operand word of every row, so a reused
/// buffer needs no re-zeroing once `begin_fill_reuse` has pinned the
/// `(rows, k, mode)` geometry — one shared key covers all dense layers.
/// The value can never collide with a [`conv_fill_key`]: a conv key's low
/// nibble holds `kernel >= 1` while its stride nibble holds `stride >= 1`,
/// and this constant has a zero stride nibble.
const DENSE_FILL_KEY: u64 = 1;

/// Pool key for a conv-layer im2col panel fill, or `None` when a field
/// overflows its bit budget (callers then fall back to an unpooled,
/// always-zeroed fill).
///
/// The key must capture everything that determines *which* panel words
/// `pack_im2col_packed` writes — input shape, kernel geometry, and batch
/// size — because a pooled `X1` buffer is reused without re-zeroing and
/// the structural padding words rely on stale zeros from the previous
/// fill of identical structure.
fn conv_fill_key(
    c: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    b: usize,
) -> Option<u64> {
    if kernel < 16 && stride < 16 && padding < 16 && c < 4096 && h < 4096 && w < 4096 && b < 65536 {
        Some(
            kernel as u64
                | (stride as u64) << 4
                | (padding as u64) << 8
                | (c as u64) << 12
                | (h as u64) << 24
                | (w as u64) << 36
                | (b as u64) << 48,
        )
    } else {
        None
    }
}

/// Execution statistics of one layer forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// MACs whose weight operand quantized to zero (guard-skippable).
    pub zero_weight_macs: u64,
    /// MACs whose activation operand quantized to zero (guard-skippable).
    pub zero_act_macs: u64,
}

impl LayerStats {
    /// Weight sparsity observed during the pass.
    #[must_use]
    pub fn weight_sparsity(&self) -> f64 {
        if self.macs == 0 {
            0.0
        } else {
            self.zero_weight_macs as f64 / self.macs as f64
        }
    }

    /// Activation (input) sparsity observed during the pass.
    #[must_use]
    pub fn input_sparsity(&self) -> f64 {
        if self.macs == 0 {
            0.0
        } else {
            self.zero_act_macs as f64 / self.macs as f64
        }
    }
}

/// A 2-D convolution layer (`F` filters of `K x K x C`, stride `S`,
/// symmetric zero padding), equation (4) of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    weights: Vec<f32>,
    bias: Vec<f32>,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// Memoized per-bit-width weight quantizations (execution state, not
    /// model identity: ignored by `PartialEq`, cleared by `weights_mut`).
    #[serde(skip)]
    cache: WeightCache,
}

impl PartialEq for Conv2d {
    fn eq(&self, other: &Self) -> bool {
        self.weights == other.weights
            && self.bias == other.bias
            && self.in_channels == other.in_channels
            && self.out_channels == other.out_channels
            && self.kernel == other.kernel
            && self.stride == other.stride
            && self.padding == other.padding
    }
}

impl Conv2d {
    /// Creates a convolution with deterministic He-scaled pseudo-trained
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the stride is zero.
    #[must_use]
    pub fn random(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
            "convolution dimensions must be positive"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fan_in = (in_channels * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        let count = out_channels * in_channels * kernel * kernel;
        // Uniform(-sqrt(3)σ, sqrt(3)σ) has standard deviation σ.
        let lim = std * 3f32.sqrt();
        let weights = (0..count).map(|_| rng.gen_range(-lim..lim)).collect();
        let bias = (0..out_channels)
            .map(|_| rng.gen_range(-0.05..0.05))
            .collect();
        Conv2d {
            weights,
            bias,
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cache: WeightCache::default(),
        }
    }

    /// Filter count (`F`).
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel size (`K`).
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Weight tensor as a flat slice (`F*C*K*K`).
    #[must_use]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Mutable weights (for pruning). Invalidates the memoized weight
    /// quantizations — the next forward pass re-packs.
    #[must_use]
    pub fn weights_mut(&mut self) -> &mut [f32] {
        self.cache.invalidate();
        &mut self.weights
    }

    fn weights_tensor(&self) -> Tensor {
        let mut t = Tensor::zeros(1, 1, self.weights.len());
        t.as_mut_slice().copy_from_slice(&self.weights);
        t
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    fn forward_with(
        &self,
        input: &Tensor,
        wbits: u32,
        abits: u32,
        kernel: NnKernel,
        scratch: &mut Scratch,
    ) -> Result<(Tensor, LayerStats), NnError> {
        let (c, h, w) = input.shape();
        if c != self.in_channels
            || h + 2 * self.padding < self.kernel
            || w + 2 * self.padding < self.kernel
        {
            return Err(NnError::ShapeMismatch {
                expected: (self.in_channels, self.kernel, self.kernel),
                actual: (c, h, w),
            });
        }
        let qa = QuantizedTensor::quantize(input, abits)?;
        self.forward_quant(&qa, wbits, kernel, scratch)
    }

    /// Executes the convolution on an already-quantized input activation —
    /// the entry point the incremental precision search drives through its
    /// per-`(sample, layer, abits)` [`crate::kernel::ActivationCache`]
    /// memo. Quantization is a pure function of `(input, bits)`, so this
    /// is bit-identical to quantizing inline.
    pub(crate) fn forward_quant(
        &self,
        qa: &QuantizedTensor,
        wbits: u32,
        kernel: NnKernel,
        scratch: &mut Scratch,
    ) -> Result<(Tensor, LayerStats), NnError> {
        let (c, h, w) = qa.shape;
        if c != self.in_channels
            || h + 2 * self.padding < self.kernel
            || w + 2 * self.padding < self.kernel
        {
            return Err(NnError::ShapeMismatch {
                expected: (self.in_channels, self.kernel, self.kernel),
                actual: (c, h, w),
            });
        }
        match kernel {
            NnKernel::Naive => self.forward_naive(qa, wbits),
            NnKernel::Gemm => self.forward_gemm(qa, wbits, scratch, false),
            NnKernel::GemmPacked => self.forward_gemm(qa, wbits, scratch, true),
        }
    }

    /// The original 7-deep scalar loop — the reference oracle the GEMM
    /// path is property-tested against. Kept verbatim (the input
    /// quantization moved to the callers; the MAC loop is untouched).
    fn forward_naive(
        &self,
        qa: &QuantizedTensor,
        wbits: u32,
    ) -> Result<(Tensor, LayerStats), NnError> {
        let (_, h, w) = qa.shape;
        let qw = QuantizedTensor::quantize(&self.weights_tensor(), wbits)?;
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros(self.out_channels, oh, ow);
        let mut stats = LayerStats::default();
        let k = self.kernel;
        let pad = self.padding as isize;
        let scale = qa.scale * qw.scale;
        for f in 0..self.out_channels {
            let wbase = f * self.in_channels * k * k;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc: i64 = 0;
                    for ci in 0..self.in_channels {
                        for ky in 0..k {
                            let iy = (oy * self.stride + ky) as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue; // zero padding contributes nothing
                            }
                            for kx in 0..k {
                                let ix = (ox * self.stride + kx) as isize - pad;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let a = qa.data[(ci * h + iy as usize) * w + ix as usize];
                                let wv = qw.data[wbase + (ci * k + ky) * k + kx];
                                stats.macs += 1;
                                if wv == 0 {
                                    stats.zero_weight_macs += 1;
                                }
                                if a == 0 {
                                    stats.zero_act_macs += 1;
                                }
                                acc += i64::from(a) * i64::from(wv);
                            }
                        }
                    }
                    out.set(
                        f,
                        oy,
                        ox,
                        (acc as f64 * scale + f64::from(self.bias[f])) as f32,
                    );
                }
            }
        }
        Ok((out, stats))
    }

    /// The memoized weight quantization for `wbits` (packed on first use;
    /// `weights_mut` invalidates).
    fn packed_weights(&self, wbits: u32) -> Result<Arc<PackedWeights>, NnError> {
        if wbits == 0 || wbits > 16 {
            return Err(NnError::InvalidBits { bits: wbits });
        }
        Ok(self.cache.get_or_pack(wbits, || {
            let qw = QuantizedTensor::quantize(&self.weights_tensor(), wbits)
                .expect("bit width validated above");
            // Layout is [f][ci][ky][kx], so index % K² is the spatial tap.
            let k2 = self.kernel * self.kernel;
            let mut zeros_per_tap = vec![0u64; k2];
            let mut zeros_total = 0u64;
            let mut qi16 = Vec::with_capacity(qw.data.len());
            for (i, &q) in qw.data.iter().enumerate() {
                if q == 0 {
                    zeros_per_tap[i % k2] += 1;
                    zeros_total += 1;
                }
                qi16.push(q as i16);
            }
            // Pre-pack the subword panel at the width's own mode (one
            // filter per row): the GemmPacked hot path then only packs
            // activations.
            let panel = gemm::PackedPanel::pack(
                &qi16,
                self.out_channels,
                self.in_channels * k2,
                mode_for_bits(wbits),
            );
            PackedWeights {
                qi16,
                scale: qw.scale,
                zeros_per_tap,
                zeros_total,
                panel,
            }
        }))
    }

    /// Per-tap in-bounds output counts along one spatial axis: entry `kk`
    /// is the number of output positions `o` in `0..out_len` whose input
    /// coordinate `o*stride + kk - padding` lands inside `0..dim`. These
    /// counts are what the naive loop's per-MAC guards reduce to, so the
    /// GEMM path (and the exact [`mac_count`](Self::mac_count)) rebuilds
    /// the statistics from them without touching any data.
    fn axis_tap_counts(&self, out_len: usize, dim: usize) -> Vec<u64> {
        let pad = self.padding as isize;
        (0..self.kernel)
            .map(|kk| {
                (0..out_len)
                    .filter(|o| {
                        let i = (o * self.stride + kk) as isize - pad;
                        i >= 0 && (i as usize) < dim
                    })
                    .count() as u64
            })
            .collect()
    }

    /// Packs one sample's im2col panel into the **pre-zeroed** `patches`
    /// (length `n * klen`), counting in-bounds zero activations as it
    /// goes — a padding tap is a *skipped* MAC, not a zero-operand MAC,
    /// so structural zeros come from the zeroed buffer and are not
    /// counted. Shared by the per-sample and batched `Gemm` paths, so
    /// their panels (and zero-activation counts) are bit-identical by
    /// construction.
    fn pack_im2col(&self, qa: &QuantizedTensor, patches: &mut [i16]) -> u64 {
        let (_, h, w) = qa.shape;
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let c = self.in_channels;
        let klen = c * k * k;
        let pad = self.padding as isize;
        let mut zero_acts = 0u64;
        for oy in 0..oh {
            for ky in 0..k {
                let iy = (oy * self.stride + ky) as isize - pad;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                let iy = iy as usize;
                for ox in 0..ow {
                    let row = (oy * ow + ox) * klen;
                    // Hoist the per-tap ix bounds check: tap kx is in
                    // bounds iff 0 <= ox*stride + kx - pad < w, so the
                    // in-bounds taps form one contiguous kx range and the
                    // two innermost loops run over contiguous reads
                    // (src[ix0..]) and contiguous writes (dst[kx_lo..]).
                    let base = (ox * self.stride) as isize - pad;
                    let kx_lo = usize::try_from(-base).unwrap_or(0).min(k);
                    let kx_hi = usize::try_from(w as isize - base).unwrap_or(0).min(k);
                    if kx_lo >= kx_hi {
                        continue;
                    }
                    let ix0 = (base + kx_lo as isize) as usize;
                    for ci in 0..c {
                        let src = &qa.data[(ci * h + iy) * w + ix0..][..kx_hi - kx_lo];
                        let dst_at = row + (ci * k + ky) * k + kx_lo;
                        let dst = &mut patches[dst_at..][..kx_hi - kx_lo];
                        for (d, &q) in dst.iter_mut().zip(src) {
                            zero_acts += u64::from(q == 0);
                            *d = q as i16;
                        }
                    }
                }
            }
        }
        zero_acts
    }

    /// [`pack_im2col`](Self::pack_im2col)'s walk writing one sample's
    /// im2col rows straight into a `PackedPanel::begin_fill` buffer at
    /// `LANES` two's-complement fields of `WBITS` bits per word (`X1` is
    /// `<1, 16, { i16::MIN as i32 }>` — the word IS the operand), so the
    /// batched packed path skips the `i16` staging buffer and the repack
    /// pass entirely. `words` is this sample's pre-zeroed row block
    /// (`n * stride` words); operand `t` of panel row `r` lands in word
    /// `r*stride + t/LANES` exactly as `repack` would place it —
    /// identical taps, identical zero accounting, bit-identical panels
    /// by construction. Returns the sample's `(zero_acts, has_min)`
    /// (`MIN` is the mode's most negative lane value, which triggers the
    /// exact min-correction kernel).
    fn pack_im2col_packed<const LANES: usize, const WBITS: u16, const MIN: i32>(
        &self,
        qa: &QuantizedTensor,
        words: &mut [u16],
        stride: usize,
    ) -> (u64, bool) {
        let (_, h, w) = qa.shape;
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let c = self.in_channels;
        let pad = self.padding as isize;
        let mut zero_acts = 0u64;
        let mut has_min = false;
        for oy in 0..oh {
            for ky in 0..k {
                let iy = (oy * self.stride + ky) as isize - pad;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                let iy = iy as usize;
                for ox in 0..ow {
                    let row = (oy * ow + ox) * stride;
                    let base = (ox * self.stride) as isize - pad;
                    let kx_lo = usize::try_from(-base).unwrap_or(0).min(k);
                    let kx_hi = usize::try_from(w as isize - base).unwrap_or(0).min(k);
                    if kx_lo >= kx_hi {
                        continue;
                    }
                    let ix0 = (base + kx_lo as isize) as usize;
                    for ci in 0..c {
                        let src = &qa.data[(ci * h + iy) * w + ix0..][..kx_hi - kx_lo];
                        let t0 = (ci * k + ky) * k + kx_lo;
                        if LANES == 1 {
                            // One operand per word: a contiguous store run,
                            // like the staging path but already in panel
                            // layout.
                            let dst = &mut words[row + t0..][..kx_hi - kx_lo];
                            for (d, &q) in dst.iter_mut().zip(src) {
                                zero_acts += u64::from(q == 0);
                                has_min |= q == MIN;
                                *d = q as u16;
                            }
                        } else {
                            // Sub-word lanes: adjacent taps from different
                            // `ky` share words, so deposit fields with `|=`
                            // over the pre-zeroed buffer.
                            for (j, &q) in src.iter().enumerate() {
                                zero_acts += u64::from(q == 0);
                                has_min |= q == MIN;
                                let t = t0 + j;
                                words[row + t / LANES] |= ((q as u16)
                                    & (((1u32 << WBITS) - 1) as u16))
                                    << ((t % LANES) as u16 * WBITS);
                            }
                        }
                    }
                }
            }
        }
        (zero_acts, has_min)
    }

    /// The data-independent guard-skip statistics of one GEMM conv pass
    /// on an `h x w` input, reproduced exactly from the packed
    /// representation: tap `(ky, kx)` is in bounds at `py[ky]*px[kx]`
    /// output positions. Returns `(macs, zero_weight_macs)`; the
    /// data-dependent `zero_act_macs` comes from
    /// [`pack_im2col`](Self::pack_im2col).
    fn gemm_mac_stats(&self, pw: &PackedWeights, h: usize, w: usize) -> (u64, u64) {
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let py = self.axis_tap_counts(oh, h);
        let px = self.axis_tap_counts(ow, w);
        let spatial_taps: u64 = py.iter().sum::<u64>() * px.iter().sum::<u64>();
        let mut zero_weight_macs = 0u64;
        for (ky, &cy) in py.iter().enumerate() {
            for (kx, &cx) in px.iter().enumerate() {
                zero_weight_macs += pw.zeros_per_tap[ky * k + kx] * cy * cx;
            }
        }
        (
            (self.out_channels * self.in_channels) as u64 * spatial_taps,
            zero_weight_macs,
        )
    }

    /// The im2col + blocked-integer-GEMM path. Patches are packed at the
    /// filters' own layout with structural zeros where a tap falls in the
    /// padding; those zeros contribute nothing to the exact `i64` sums, so
    /// outputs are byte-identical to [`forward_naive`](Self::forward_naive).
    ///
    /// With `packed` set this is the `GemmPacked` kernel: the identical
    /// im2col panel (and therefore the identical statistics bookkeeping)
    /// is subword-packed at the activation width's [`mode_for_bits`] and
    /// multiplied against the pre-packed weight panel by the exact packed
    /// GEMM — same numbers, fewer lane words.
    fn forward_gemm(
        &self,
        qa: &QuantizedTensor,
        wbits: u32,
        scratch: &mut Scratch,
        packed: bool,
    ) -> Result<(Tensor, LayerStats), NnError> {
        let (_, h, w) = qa.shape;
        let pw = self.packed_weights(wbits)?;
        let (oh, ow) = self.out_hw(h, w);
        let f = self.out_channels;
        let klen = self.in_channels * self.kernel * self.kernel;
        let n = oh * ow;

        scratch.patches.clear();
        scratch.patches.resize(n * klen, 0);
        let zero_acts = self.pack_im2col(qa, &mut scratch.patches);

        scratch.acc.clear();
        scratch.acc.resize(f * n, 0);
        if packed {
            scratch
                .packed
                .repack(&scratch.patches, n, klen, mode_for_bits(qa.bits));
            gemm::gemm_packed(&pw.panel, &scratch.packed, &mut scratch.acc);
        } else {
            gemm::gemm_i16(&pw.qi16, &scratch.patches, f, klen, n, &mut scratch.acc);
        }

        let (macs, zero_weight_macs) = self.gemm_mac_stats(&pw, h, w);
        let stats = LayerStats {
            macs,
            zero_weight_macs,
            zero_act_macs: f as u64 * zero_acts,
        };

        let scale = qa.scale * pw.scale;
        let mut out = Tensor::zeros(f, oh, ow);
        let data = out.as_mut_slice();
        for fi in 0..f {
            let bias = f64::from(self.bias[fi]);
            for (dst, &acc) in data[fi * n..(fi + 1) * n]
                .iter_mut()
                .zip(&scratch.acc[fi * n..(fi + 1) * n])
            {
                *dst = (acc as f64 * scale + bias) as f32;
            }
        }
        Ok((out, stats))
    }

    /// Executes the convolution on a whole batch of already-quantized
    /// inputs with **one wide GEMM**: each sample's im2col panel (packed
    /// by the same [`pack_im2col`](Self::pack_im2col) the per-sample path
    /// uses) becomes `n` extra rows of a shared `(B·n) x k` activation
    /// panel, so the packed weight panel streams through cache once per
    /// batch instead of once per sample. Every output element is still an
    /// independent exact-`i64` dot product over the same operands, so
    /// outputs and statistics are bit-identical to running
    /// [`forward_quant`](Self::forward_quant) per sample.
    ///
    /// Falls back to the per-sample path for the naive kernel, single
    /// samples, or mixed grid geometry (still bit-identical — only wall
    /// time changes).
    pub(crate) fn forward_quant_batch(
        &self,
        qas: &[&QuantizedTensor],
        wbits: u32,
        kernel: NnKernel,
        scratch: &mut Scratch,
    ) -> Result<Vec<(Tensor, LayerStats)>, NnError> {
        let fusable = kernel != NnKernel::Naive
            && qas.len() > 1
            && qas
                .iter()
                .all(|qa| qa.shape == qas[0].shape && qa.bits == qas[0].bits);
        if !fusable {
            return qas
                .iter()
                .map(|qa| self.forward_quant(qa, wbits, kernel, scratch))
                .collect();
        }
        let (c, h, w) = qas[0].shape;
        if c != self.in_channels
            || h + 2 * self.padding < self.kernel
            || w + 2 * self.padding < self.kernel
        {
            return Err(NnError::ShapeMismatch {
                expected: (self.in_channels, self.kernel, self.kernel),
                actual: (c, h, w),
            });
        }
        let pw = self.packed_weights(wbits)?;
        let (oh, ow) = self.out_hw(h, w);
        let f = self.out_channels;
        let klen = self.in_channels * self.kernel * self.kernel;
        let n = oh * ow;
        let b = qas.len();
        let total = b * n;

        // One concatenated panel: sample `si` owns rows `si*n..(si+1)*n`.
        let mode = mode_for_bits(qas[0].bits);
        let mut zero_acts = Vec::with_capacity(b);
        if kernel == NnKernel::GemmPacked {
            // im2col packs the wide panel directly at the activation
            // mode's lane geometry — no i16 staging buffer and no repack
            // pass ([`pack_im2col_packed`] walks the same taps as
            // `pack_im2col`). The panel is pooled per fill structure, so
            // a repeated `X1` fill of this exact geometry (every suffix
            // re-forward of a precision scan) skips the zeroing pass.
            let key = conv_fill_key(
                self.in_channels,
                h,
                w,
                self.kernel,
                self.stride,
                self.padding,
                b,
            );
            let (panel, acc) = scratch.pooled_panel_and_acc(key.unwrap_or(u64::MAX));
            // The GEMM fully overwrites its output, so only grow the
            // accumulator — no per-call zero fill of `f * total` elements.
            if acc.len() < f * total {
                acc.resize(f * total, 0);
            }
            let acc = &mut acc[..f * total];
            let (words, stride, _) = if let Some(key) = key {
                panel.begin_fill_reuse(key, total, klen, mode)
            } else {
                let (words, stride) = panel.begin_fill(total, klen, mode);
                (words, stride, false)
            };
            let mut has_min = false;
            for (si, qa) in qas.iter().enumerate() {
                let block = &mut words[si * n * stride..(si + 1) * n * stride];
                let (zeros, min) = match mode {
                    SubwordMode::X1 => {
                        self.pack_im2col_packed::<1, 16, { i16::MIN as i32 }>(qa, block, stride)
                    }
                    SubwordMode::X2 => self.pack_im2col_packed::<2, 8, -128>(qa, block, stride),
                    SubwordMode::X4 => self.pack_im2col_packed::<4, 4, -8>(qa, block, stride),
                };
                zero_acts.push(zeros);
                has_min |= min;
            }
            panel.finish_fill(has_min);
            gemm::gemm_packed(&pw.panel, panel, acc);
        } else {
            if scratch.acc.len() < f * total {
                scratch.acc.resize(f * total, 0);
            }
            let acc = &mut scratch.acc[..f * total];
            scratch.patches.clear();
            scratch.patches.resize(total * klen, 0);
            for (si, qa) in qas.iter().enumerate() {
                let panel = &mut scratch.patches[si * n * klen..(si + 1) * n * klen];
                zero_acts.push(self.pack_im2col(qa, panel));
            }
            gemm::gemm_i16(&pw.qi16, &scratch.patches, f, klen, total, acc);
        }

        let (macs, zero_weight_macs) = self.gemm_mac_stats(&pw, h, w);
        // Slice each sample's output columns back out: filter `fi` of
        // sample `si` lives at `acc[fi*total + si*n ..][..n]`. The scale
        // stays per-sample (per-tensor quantization grids).
        let mut results = Vec::with_capacity(b);
        for (si, qa) in qas.iter().enumerate() {
            let scale = qa.scale * pw.scale;
            let mut data = Vec::with_capacity(f * n);
            for fi in 0..f {
                let bias = f64::from(self.bias[fi]);
                let acc_row = &scratch.acc[fi * total + si * n..][..n];
                data.extend(
                    acc_row
                        .iter()
                        .map(|&acc| (acc as f64 * scale + bias) as f32),
                );
            }
            let stats = LayerStats {
                macs,
                zero_weight_macs,
                zero_act_macs: f as u64 * zero_acts[si],
            };
            results.push((Tensor::from_vec(f, oh, ow, data), stats));
        }
        Ok(results)
    }

    /// MACs for one forward pass on an input of shape `(c, h, w)` —
    /// **exact**: zero-padding taps are excluded, matching the count the
    /// forward pass executes (the former dense-interior approximation
    /// over-counted padded convolutions by up to ~20 % on LeNet's conv1).
    #[must_use]
    pub fn mac_count(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.out_hw(h, w);
        let py: u64 = self.axis_tap_counts(oh, h).iter().sum();
        let px: u64 = self.axis_tap_counts(ow, w).iter().sum();
        (self.out_channels * self.in_channels) as u64 * py * px
    }
}

/// A fully-connected classifier layer (`O[z] = Σ W[z,m] I[m] + B[z]`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    weights: Vec<f32>,
    bias: Vec<f32>,
    inputs: usize,
    outputs: usize,
    /// Memoized per-bit-width weight quantizations (execution state; see
    /// [`Conv2d::cache`]).
    #[serde(skip)]
    cache: WeightCache,
}

impl PartialEq for Dense {
    fn eq(&self, other: &Self) -> bool {
        self.weights == other.weights
            && self.bias == other.bias
            && self.inputs == other.inputs
            && self.outputs == other.outputs
    }
}

impl Dense {
    /// Creates a dense layer with deterministic He-scaled weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn random(inputs: usize, outputs: usize, seed: u64) -> Self {
        assert!(
            inputs > 0 && outputs > 0,
            "dense dimensions must be positive"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let std = (2.0 / inputs as f32).sqrt();
        let lim = std * 3f32.sqrt();
        Dense {
            weights: (0..inputs * outputs)
                .map(|_| rng.gen_range(-lim..lim))
                .collect(),
            bias: (0..outputs).map(|_| rng.gen_range(-0.05..0.05)).collect(),
            inputs,
            outputs,
            cache: WeightCache::default(),
        }
    }

    /// Input features consumed (the flattened input length).
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output features produced.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Mutable weights (for pruning). Invalidates the memoized weight
    /// quantizations — the next forward pass re-packs.
    #[must_use]
    pub fn weights_mut(&mut self) -> &mut [f32] {
        self.cache.invalidate();
        &mut self.weights
    }

    /// Mutable biases (for logit calibration). Biases are not quantized,
    /// so the weight cache stays valid.
    #[must_use]
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    fn weights_tensor(&self) -> Tensor {
        let mut t = Tensor::zeros(1, 1, self.weights.len());
        t.as_mut_slice().copy_from_slice(&self.weights);
        t
    }

    fn forward_with(
        &self,
        input: &Tensor,
        wbits: u32,
        abits: u32,
        kernel: NnKernel,
        scratch: &mut Scratch,
    ) -> Result<(Tensor, LayerStats), NnError> {
        if input.len() != self.inputs {
            return Err(NnError::ShapeMismatch {
                expected: (1, 1, self.inputs),
                actual: input.shape(),
            });
        }
        let qa = QuantizedTensor::quantize(input, abits)?;
        self.forward_quant(&qa, wbits, kernel, scratch)
    }

    /// Executes the layer on an already-quantized input activation (see
    /// [`Conv2d::forward_quant`]).
    pub(crate) fn forward_quant(
        &self,
        qa: &QuantizedTensor,
        wbits: u32,
        kernel: NnKernel,
        scratch: &mut Scratch,
    ) -> Result<(Tensor, LayerStats), NnError> {
        let (c, h, w) = qa.shape;
        if c * h * w != self.inputs {
            return Err(NnError::ShapeMismatch {
                expected: (1, 1, self.inputs),
                actual: (c, h, w),
            });
        }
        match kernel {
            NnKernel::Naive => self.forward_naive(qa, wbits),
            NnKernel::Gemm => self.forward_gemm(qa, wbits, scratch, false),
            NnKernel::GemmPacked => self.forward_gemm(qa, wbits, scratch, true),
        }
    }

    /// The original 2-deep scalar loop — the reference oracle. Kept
    /// verbatim (the input quantization moved to the callers; the MAC
    /// loop is untouched).
    fn forward_naive(
        &self,
        qa: &QuantizedTensor,
        wbits: u32,
    ) -> Result<(Tensor, LayerStats), NnError> {
        let qw = QuantizedTensor::quantize(&self.weights_tensor(), wbits)?;
        let scale = qa.scale * qw.scale;
        let mut out = Tensor::zeros(1, 1, self.outputs);
        let mut stats = LayerStats::default();
        for z in 0..self.outputs {
            let mut acc: i64 = 0;
            let base = z * self.inputs;
            for m in 0..self.inputs {
                let a = qa.data[m];
                let wv = qw.data[base + m];
                stats.macs += 1;
                if wv == 0 {
                    stats.zero_weight_macs += 1;
                }
                if a == 0 {
                    stats.zero_act_macs += 1;
                }
                acc += i64::from(a) * i64::from(wv);
            }
            out.set(
                0,
                0,
                z,
                (acc as f64 * scale + f64::from(self.bias[z])) as f32,
            );
        }
        Ok((out, stats))
    }

    /// The memoized weight quantization for `wbits` (see
    /// [`Conv2d::packed_weights`]).
    fn packed_weights(&self, wbits: u32) -> Result<Arc<PackedWeights>, NnError> {
        if wbits == 0 || wbits > 16 {
            return Err(NnError::InvalidBits { bits: wbits });
        }
        Ok(self.cache.get_or_pack(wbits, || {
            let qw = QuantizedTensor::quantize(&self.weights_tensor(), wbits)
                .expect("bit width validated above");
            let mut qi16 = Vec::new();
            let zeros_total = qw.fill_i16(&mut qi16);
            let panel =
                gemm::PackedPanel::pack(&qi16, self.outputs, self.inputs, mode_for_bits(wbits));
            PackedWeights {
                qi16,
                scale: qw.scale,
                zeros_per_tap: Vec::new(),
                zeros_total,
                panel,
            }
        }))
    }

    /// The dense GEMM path: one exact `i16`-panel dot product per output
    /// neuron. Every weight is consumed exactly once and every activation
    /// once per output row, so the guard-skip counters are the packed
    /// zero counts directly.
    ///
    /// With `packed` set this is the `GemmPacked` kernel: the identical
    /// activation vector (and zero count) is subword-packed into a
    /// one-row panel and dotted against the pre-packed weight rows by the
    /// exact packed dot — same numbers, fewer lane words.
    fn forward_gemm(
        &self,
        qa: &QuantizedTensor,
        wbits: u32,
        scratch: &mut Scratch,
        packed: bool,
    ) -> Result<(Tensor, LayerStats), NnError> {
        let pw = self.packed_weights(wbits)?;
        let zero_acts = qa.fill_i16(&mut scratch.acts);
        if packed {
            scratch
                .packed
                .repack(&scratch.acts, 1, self.inputs, mode_for_bits(qa.bits));
        }
        let scale = qa.scale * pw.scale;
        let mut out = Tensor::zeros(1, 1, self.outputs);
        let data = out.as_mut_slice();
        for (z, dst) in data.iter_mut().enumerate() {
            let acc = if packed {
                gemm::dot_packed(&pw.panel, z, &scratch.packed, 0)
            } else {
                gemm::dot_i16(
                    &pw.qi16[z * self.inputs..(z + 1) * self.inputs],
                    &scratch.acts,
                )
            };
            *dst = (acc as f64 * scale + f64::from(self.bias[z])) as f32;
        }
        let stats = LayerStats {
            macs: (self.outputs * self.inputs) as u64,
            zero_weight_macs: pw.zeros_total,
            zero_act_macs: self.outputs as u64 * zero_acts,
        };
        Ok((out, stats))
    }

    /// Executes the layer on a whole batch of already-quantized inputs
    /// with one `outputs x inputs x B` GEMM: each sample's activation
    /// vector becomes one row of a shared `B x inputs` right-hand panel,
    /// so the packed weight rows stream once per batch. Every output
    /// element is the same exact-`i64` dot product over the same
    /// operands, so outputs and statistics are bit-identical to running
    /// [`forward_quant`](Self::forward_quant) per sample. Falls back to
    /// the per-sample path for the naive kernel, single samples, or
    /// mixed grid geometry.
    pub(crate) fn forward_quant_batch(
        &self,
        qas: &[&QuantizedTensor],
        wbits: u32,
        kernel: NnKernel,
        scratch: &mut Scratch,
    ) -> Result<Vec<(Tensor, LayerStats)>, NnError> {
        let fusable = kernel != NnKernel::Naive
            && qas.len() > 1
            && qas
                .iter()
                .all(|qa| qa.shape == qas[0].shape && qa.bits == qas[0].bits);
        if !fusable {
            return qas
                .iter()
                .map(|qa| self.forward_quant(qa, wbits, kernel, scratch))
                .collect();
        }
        {
            let (c, h, w) = qas[0].shape;
            if c * h * w != self.inputs {
                return Err(NnError::ShapeMismatch {
                    expected: (1, 1, self.inputs),
                    actual: (c, h, w),
                });
            }
        }
        let pw = self.packed_weights(wbits)?;
        let b = qas.len();
        let mode = mode_for_bits(qas[0].bits);
        let mut zero_counts = Vec::with_capacity(b);
        if kernel == NnKernel::GemmPacked {
            // Direct panel fill at the activation mode's lane geometry —
            // each sample's vector is one panel row, deposited over the
            // pre-zeroed buffer (see the conv batch path). The dense walk
            // writes every operand word, so its pooled panel reuses
            // without re-zeroing under the shared dense key (the
            // structure is fully pinned by the `(rows, k, mode)` check).
            let (panel, acc) = scratch.pooled_panel_and_acc(DENSE_FILL_KEY);
            // The GEMM fully overwrites its output, so only grow the
            // accumulator — no per-call zero fill.
            if acc.len() < self.outputs * b {
                acc.resize(self.outputs * b, 0);
            }
            let acc = &mut acc[..self.outputs * b];
            let (words, stride, _) = panel.begin_fill_reuse(DENSE_FILL_KEY, b, self.inputs, mode);
            let mut has_min = false;
            for (si, qa) in qas.iter().enumerate() {
                let row = &mut words[si * stride..(si + 1) * stride];
                let (zeros, min) = match mode {
                    SubwordMode::X1 => fill_row_packed::<1, 16, { i16::MIN as i32 }>(&qa.data, row),
                    SubwordMode::X2 => fill_row_packed::<2, 8, -128>(&qa.data, row),
                    SubwordMode::X4 => fill_row_packed::<4, 4, -8>(&qa.data, row),
                };
                zero_counts.push(zeros);
                has_min |= min;
            }
            panel.finish_fill(has_min);
            gemm::gemm_packed(&pw.panel, panel, acc);
        } else {
            if scratch.acc.len() < self.outputs * b {
                scratch.acc.resize(self.outputs * b, 0);
            }
            let acc = &mut scratch.acc[..self.outputs * b];
            scratch.patches.clear();
            scratch.patches.resize(b * self.inputs, 0);
            for (si, qa) in qas.iter().enumerate() {
                let row = &mut scratch.patches[si * self.inputs..(si + 1) * self.inputs];
                let mut zeros = 0u64;
                for (dst, &q) in row.iter_mut().zip(&qa.data) {
                    zeros += u64::from(q == 0);
                    *dst = q as i16;
                }
                zero_counts.push(zeros);
            }
            gemm::gemm_i16(
                &pw.qi16,
                &scratch.patches,
                self.outputs,
                self.inputs,
                b,
                acc,
            );
        }

        // Sample `si` of output row `z` lives at `acc[z*b + si]`.
        let mut results = Vec::with_capacity(b);
        for (si, qa) in qas.iter().enumerate() {
            let scale = qa.scale * pw.scale;
            let data: Vec<f32> = (0..self.outputs)
                .map(|z| (scratch.acc[z * b + si] as f64 * scale + f64::from(self.bias[z])) as f32)
                .collect();
            let stats = LayerStats {
                macs: (self.outputs * self.inputs) as u64,
                zero_weight_macs: pw.zeros_total,
                zero_act_macs: self.outputs as u64 * zero_counts[si],
            };
            results.push((Tensor::from_vec(1, 1, self.outputs, data), stats));
        }
        Ok(results)
    }
}

/// One stage of a CNN (Fig. 5): convolution, non-linearity, pooling or
/// classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Convolutional feature extraction (eq. 4).
    Conv2d(Conv2d),
    /// Rectified linear unit `f(u) = max(0, u)`.
    ReLU,
    /// Max pooling over `k x k` patches with stride `stride`.
    MaxPool2d {
        /// Pool window size.
        k: usize,
        /// Pool stride.
        stride: usize,
    },
    /// Fully-connected classifier layer.
    Dense(Dense),
}

impl Layer {
    /// Human-readable layer name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Layer::Conv2d(c) => format!("conv{}x{}x{}", c.kernel, c.kernel, c.out_channels),
            Layer::ReLU => "relu".to_string(),
            Layer::MaxPool2d { k, stride } => format!("maxpool{k}s{stride}"),
            Layer::Dense(d) => format!("fc{}", d.outputs()),
        }
    }

    /// Whether the layer has quantizable weights (conv/dense).
    #[must_use]
    pub fn is_parameterized(&self) -> bool {
        matches!(self, Layer::Conv2d(_) | Layer::Dense(_))
    }

    /// Quantizes and packs this layer's weights for `wbits` ahead of the
    /// first forward pass (a no-op for non-parameterized layers and for
    /// widths already cached). Long-lived callers — `dvafs serve` keeps
    /// networks alive across requests — use this to pin the packing cost
    /// to model load instead of the first inference.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidBits`] for widths outside `1..=16`.
    pub fn warm_weights(&self, wbits: u32) -> Result<(), NnError> {
        match self {
            Layer::Conv2d(c) => c.packed_weights(wbits).map(|_| ()),
            Layer::Dense(d) => d.packed_weights(wbits).map(|_| ()),
            Layer::ReLU | Layer::MaxPool2d { .. } => Ok(()),
        }
    }

    /// Executes the layer; `wbits`/`abits` only affect parameterized layers.
    ///
    /// Runs on the default MAC kernel with a throwaway scratch — hot paths
    /// should use [`forward_with`](Self::forward_with) and reuse a
    /// [`Scratch`] across layers and samples.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the input does not fit and
    /// [`NnError::InvalidBits`] for bit widths outside `1..=16`.
    pub fn forward(
        &self,
        input: &Tensor,
        wbits: u32,
        abits: u32,
    ) -> Result<(Tensor, LayerStats), NnError> {
        self.forward_with(
            input,
            wbits,
            abits,
            NnKernel::default(),
            &mut Scratch::new(),
        )
    }

    /// Executes the layer on an explicit MAC kernel with caller-provided
    /// scratch buffers. The kernel choice never changes outputs or
    /// statistics — only wall time.
    ///
    /// # Errors
    ///
    /// Same as [`forward`](Self::forward).
    pub fn forward_with(
        &self,
        input: &Tensor,
        wbits: u32,
        abits: u32,
        kernel: NnKernel,
        scratch: &mut Scratch,
    ) -> Result<(Tensor, LayerStats), NnError> {
        match self {
            Layer::Conv2d(c) => c.forward_with(input, wbits, abits, kernel, scratch),
            Layer::Dense(d) => d.forward_with(input, wbits, abits, kernel, scratch),
            Layer::ReLU => {
                let mut out = input.clone();
                for v in out.as_mut_slice() {
                    *v = v.max(0.0);
                }
                Ok((out, LayerStats::default()))
            }
            Layer::MaxPool2d { k, stride } => {
                let (c, h, w) = input.shape();
                if h < *k || w < *k {
                    return Err(NnError::ShapeMismatch {
                        expected: (c, *k, *k),
                        actual: (c, h, w),
                    });
                }
                let oh = (h - k) / stride + 1;
                let ow = (w - k) / stride + 1;
                let mut out = Tensor::zeros(c, oh, ow);
                for ci in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut m = f32::NEG_INFINITY;
                            for ky in 0..*k {
                                for kx in 0..*k {
                                    m = m.max(input.get(ci, oy * stride + ky, ox * stride + kx));
                                }
                            }
                            out.set(ci, oy, ox, m);
                        }
                    }
                }
                Ok((out, LayerStats::default()))
            }
        }
    }

    /// Executes a **parameterized** layer on an already-quantized input
    /// activation — the incremental-search fast path, fed from the
    /// per-`(sample, layer, abits)` [`crate::kernel::ActivationCache`].
    /// Bit-identical to [`forward_with`](Self::forward_with) because
    /// quantization is a pure function of `(input, abits)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the input does not fit or
    /// when called on a non-parameterized layer (ReLU / pooling layers
    /// take no quantized operands — callers route them through
    /// [`forward_with`](Self::forward_with)).
    pub(crate) fn forward_prequantized(
        &self,
        qa: &QuantizedTensor,
        wbits: u32,
        kernel: NnKernel,
        scratch: &mut Scratch,
    ) -> Result<(Tensor, LayerStats), NnError> {
        match self {
            Layer::Conv2d(c) => c.forward_quant(qa, wbits, kernel, scratch),
            Layer::Dense(d) => d.forward_quant(qa, wbits, kernel, scratch),
            Layer::ReLU | Layer::MaxPool2d { .. } => Err(NnError::ShapeMismatch {
                expected: (0, 0, 0),
                actual: qa.shape,
            }),
        }
    }

    /// Executes the layer on a whole chunk of samples — the `LayerMajor`
    /// step: parameterized layers quantize each input at `abits` (in
    /// sample order; quantization is per-sample, so grids and scales are
    /// unchanged) and fuse the batch into one wide GEMM; ReLU/pooling
    /// layers run per sample. Bit-identical to mapping
    /// [`forward_with`](Self::forward_with) over the samples.
    ///
    /// # Errors
    ///
    /// Same per-sample errors as [`forward_with`](Self::forward_with);
    /// the first failing sample (in sample order) of this layer wins.
    pub(crate) fn forward_batch_with(
        &self,
        inputs: &[Tensor],
        wbits: u32,
        abits: u32,
        kernel: NnKernel,
        scratch: &mut Scratch,
    ) -> Result<Vec<(Tensor, LayerStats)>, NnError> {
        match self {
            Layer::Conv2d(_) | Layer::Dense(_) => {
                // Validate-then-quantize per sample, in sample order, so a
                // bad sample surfaces the same error the per-sample path
                // would raise for it.
                let mut qas = Vec::with_capacity(inputs.len());
                for input in inputs {
                    self.validate_input(input)?;
                    qas.push(QuantizedTensor::quantize(input, abits)?);
                }
                let refs: Vec<&QuantizedTensor> = qas.iter().collect();
                self.forward_prequantized_batch(&refs, wbits, kernel, scratch)
            }
            Layer::ReLU | Layer::MaxPool2d { .. } => inputs
                .iter()
                .map(|input| self.forward_with(input, wbits, abits, kernel, scratch))
                .collect(),
        }
    }

    /// The batch counterpart of
    /// [`forward_prequantized`](Self::forward_prequantized): a whole
    /// chunk of already-quantized inputs through one parameterized layer
    /// as one wide GEMM.
    ///
    /// # Errors
    ///
    /// Same as [`forward_prequantized`](Self::forward_prequantized).
    pub(crate) fn forward_prequantized_batch(
        &self,
        qas: &[&QuantizedTensor],
        wbits: u32,
        kernel: NnKernel,
        scratch: &mut Scratch,
    ) -> Result<Vec<(Tensor, LayerStats)>, NnError> {
        match self {
            Layer::Conv2d(c) => c.forward_quant_batch(qas, wbits, kernel, scratch),
            Layer::Dense(d) => d.forward_quant_batch(qas, wbits, kernel, scratch),
            Layer::ReLU | Layer::MaxPool2d { .. } => Err(NnError::ShapeMismatch {
                expected: (0, 0, 0),
                actual: qas.first().map_or((0, 0, 0), |qa| qa.shape),
            }),
        }
    }

    /// The shape validation [`forward_with`](Self::forward_with) performs
    /// before quantizing (parameterized layers only).
    fn validate_input(&self, input: &Tensor) -> Result<(), NnError> {
        match self {
            Layer::Conv2d(c) => {
                let (ci, h, w) = input.shape();
                if ci != c.in_channels
                    || h + 2 * c.padding < c.kernel
                    || w + 2 * c.padding < c.kernel
                {
                    return Err(NnError::ShapeMismatch {
                        expected: (c.in_channels, c.kernel, c.kernel),
                        actual: (ci, h, w),
                    });
                }
                Ok(())
            }
            Layer::Dense(d) => {
                if input.len() != d.inputs {
                    return Err(NnError::ShapeMismatch {
                        expected: (1, 1, d.inputs),
                        actual: input.shape(),
                    });
                }
                Ok(())
            }
            Layer::ReLU | Layer::MaxPool2d { .. } => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_identity_filter_passes_input_through() {
        // A 1x1 kernel with weight snapped exactly on the quant grid.
        let mut conv = Conv2d::random(1, 1, 1, 1, 0, 1);
        conv.weights_mut()[0] = 1.0;
        let input = Tensor::from_fn(1, 3, 3, |_, y, x| (y * 3 + x) as f32 / 10.0);
        let (out, stats) = conv
            .forward_with(&input, 16, 16, NnKernel::default(), &mut Scratch::new())
            .unwrap();
        assert_eq!(out.shape(), (1, 3, 3));
        assert_eq!(stats.macs, 9);
        // out = in + bias: the offset must be the same everywhere.
        let bias = out.get(0, 0, 0) - input.get(0, 0, 0);
        for y in 0..3 {
            for x in 0..3 {
                let got = out.get(0, y, x) - input.get(0, y, x);
                assert!((got - bias).abs() < 0.01, "y={y} x={x}: {got} vs {bias}");
            }
        }
    }

    #[test]
    fn conv_shapes_follow_stride_and_padding() {
        let conv = Conv2d::random(3, 8, 3, 2, 1, 2);
        let input = Tensor::random(3, 9, 9, 3);
        let (out, _) = conv
            .forward_with(&input, 8, 8, NnKernel::default(), &mut Scratch::new())
            .unwrap();
        // (9 + 2 - 3)/2 + 1 = 5.
        assert_eq!(out.shape(), (8, 5, 5));
    }

    #[test]
    fn conv_rejects_wrong_channel_count() {
        let conv = Conv2d::random(3, 4, 3, 1, 0, 4);
        let input = Tensor::random(2, 8, 8, 5);
        assert!(matches!(
            conv.forward_with(&input, 8, 8, NnKernel::default(), &mut Scratch::new()),
            Err(NnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn conv_mac_count_matches_dense_interior() {
        let conv = Conv2d::random(2, 4, 3, 1, 0, 6);
        let input = Tensor::random(2, 6, 6, 7);
        let (_, stats) = conv
            .forward_with(&input, 8, 8, NnKernel::default(), &mut Scratch::new())
            .unwrap();
        // No padding: executed MACs equal the analytic count.
        assert_eq!(stats.macs, conv.mac_count(6, 6));
        assert_eq!(stats.macs, 4 * 4 * 4 * 2 * 9);
    }

    #[test]
    fn relu_clamps_negative_values() {
        let mut t = Tensor::zeros(1, 1, 3);
        t.set(0, 0, 0, -1.0);
        t.set(0, 0, 1, 2.0);
        let (out, _) = Layer::ReLU.forward(&t, 16, 16).unwrap();
        assert_eq!(out.get(0, 0, 0), 0.0);
        assert_eq!(out.get(0, 0, 1), 2.0);
    }

    #[test]
    fn maxpool_takes_patch_maximum() {
        let t = Tensor::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
        let (out, _) = Layer::MaxPool2d { k: 2, stride: 2 }
            .forward(&t, 16, 16)
            .unwrap();
        assert_eq!(out.shape(), (1, 2, 2));
        assert_eq!(out.get(0, 0, 0), 5.0);
        assert_eq!(out.get(0, 1, 1), 15.0);
    }

    #[test]
    fn overlapping_pool_shape() {
        // AlexNet-style 3x3 stride-2 pooling.
        let t = Tensor::random(2, 13, 13, 8);
        let (out, _) = Layer::MaxPool2d { k: 3, stride: 2 }
            .forward(&t, 16, 16)
            .unwrap();
        assert_eq!(out.shape(), (2, 6, 6));
    }

    #[test]
    fn dense_computes_matrix_vector_product() {
        let mut d = Dense::random(2, 1, 9);
        d.weights_mut().copy_from_slice(&[0.5, -0.25]);
        let mut input = Tensor::zeros(1, 1, 2);
        input.set(0, 0, 0, 1.0);
        input.set(0, 0, 1, 1.0);
        let (out, stats) = d
            .forward_with(&input, 16, 16, NnKernel::default(), &mut Scratch::new())
            .unwrap();
        assert_eq!(stats.macs, 2);
        let bias = out.get(0, 0, 0) - 0.25;
        assert!(bias.abs() < 0.06, "residual {bias}");
    }

    #[test]
    fn dense_flattens_multi_channel_input() {
        let d = Dense::random(2 * 3 * 3, 5, 10);
        let input = Tensor::random(2, 3, 3, 11);
        let (out, _) = d
            .forward_with(&input, 8, 8, NnKernel::default(), &mut Scratch::new())
            .unwrap();
        assert_eq!(out.shape(), (1, 1, 5));
    }

    #[test]
    fn coarse_quantization_changes_conv_output() {
        let conv = Conv2d::random(1, 4, 3, 1, 0, 12);
        let input = Tensor::random(1, 8, 8, 13);
        let (fine, _) = conv
            .forward_with(&input, 16, 16, NnKernel::default(), &mut Scratch::new())
            .unwrap();
        let (coarse, _) = conv
            .forward_with(&input, 2, 2, NnKernel::default(), &mut Scratch::new())
            .unwrap();
        let diff: f32 = fine
            .as_slice()
            .iter()
            .zip(coarse.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.01, "2-bit output should differ from 16-bit");
    }

    #[test]
    fn sparsity_stats_flag_zero_operands() {
        let mut conv = Conv2d::random(1, 1, 3, 1, 0, 14);
        // Zero out half the kernel.
        for w in conv.weights_mut().iter_mut().take(4) {
            *w = 0.0;
        }
        let mut input = Tensor::random(1, 5, 5, 15);
        // Force some zero activations.
        for v in input.as_mut_slice().iter_mut().take(10) {
            *v = 0.0;
        }
        let (_, stats) = conv
            .forward_with(&input, 8, 8, NnKernel::default(), &mut Scratch::new())
            .unwrap();
        assert!(stats.weight_sparsity() > 0.3);
        assert!(stats.input_sparsity() > 0.1);
    }

    #[test]
    fn layer_names() {
        assert_eq!(
            Layer::Conv2d(Conv2d::random(1, 6, 5, 1, 2, 0)).name(),
            "conv5x5x6"
        );
        assert_eq!(Layer::Dense(Dense::random(10, 4, 0)).name(), "fc4");
        assert_eq!(Layer::MaxPool2d { k: 2, stride: 2 }.name(), "maxpool2s2");
    }
}
