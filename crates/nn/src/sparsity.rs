//! Network sparsity: measurement and injection.
//!
//! CNNs are "extremely sparse" (paper Section IV-B, \[12\] \[22\]): trained
//! weights cluster around zero and ReLU zeroes a large fraction of
//! activations. Envision guards zero operands to skip their MACs, which
//! multiplies its energy savings (Table III lists per-layer weight and
//! input sparsities up to ~90 %). Since our weights are synthetic, this
//! module *injects* a target weight sparsity by magnitude pruning — the
//! same distribution shape pruned training produces — and measures the
//! activation sparsity a forward pass actually exhibits.

use crate::dataset::SyntheticDataset;
use crate::layers::Layer;
use crate::network::{Network, QuantConfig};
use serde::{Deserialize, Serialize};

/// Per-layer sparsity measured over a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsityReport {
    /// Index of the parameterized layer.
    pub layer_index: usize,
    /// Layer name.
    pub layer_name: String,
    /// Fraction of zero weight operands over all executed MACs.
    pub weight_sparsity: f64,
    /// Fraction of zero activation operands over all executed MACs.
    pub input_sparsity: f64,
    /// MACs executed per input.
    pub macs_per_input: u64,
}

/// Prunes the smallest-magnitude weights of every parameterized layer so
/// that at least `target` of each layer's weights are exactly zero.
///
/// # Panics
///
/// Panics if `target` is outside `[0, 1)`.
pub fn prune_to_sparsity(net: &mut Network, target: f64) {
    assert!(
        (0.0..1.0).contains(&target),
        "sparsity target must be in [0, 1)"
    );
    for layer in net.layers_mut() {
        let weights: &mut [f32] = match layer {
            Layer::Conv2d(c) => c.weights_mut(),
            Layer::Dense(d) => d.weights_mut(),
            _ => continue,
        };
        let mut mags: Vec<f32> = weights.iter().map(|w| w.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).expect("weights are finite"));
        let cut = ((weights.len() as f64) * target).floor() as usize;
        if cut == 0 {
            continue;
        }
        let threshold = mags[cut - 1];
        for w in weights.iter_mut() {
            if w.abs() <= threshold {
                *w = 0.0;
            }
        }
    }
}

/// Measures per-layer weight and activation sparsity over a dataset at a
/// quantization configuration.
///
/// # Panics
///
/// Panics if inference fails (shapes/config assumed validated).
#[must_use]
pub fn measure_sparsity(
    net: &Network,
    data: &SyntheticDataset,
    config: &QuantConfig,
) -> Vec<SparsityReport> {
    let param_layers = net.parameterized_layers();
    let mut totals = vec![(0u64, 0u64, 0u64); param_layers.len()];
    // One batched forward per chunk on the network's `BatchPath`, with the
    // thread-local scratch shared by the other convenience wrappers — the
    // per-sample statistics are bit-identical on either path.
    crate::kernel::with_thread_scratch(|scratch| {
        for chunk in data.images().chunks(net.batch_size()) {
            let results = net
                .forward_batch(chunk, config, scratch)
                .expect("inference must succeed");
            for (_, stats) in results {
                for (slot, &li) in param_layers.iter().enumerate() {
                    let s = stats[li];
                    totals[slot].0 += s.macs;
                    totals[slot].1 += s.zero_weight_macs;
                    totals[slot].2 += s.zero_act_macs;
                }
            }
        }
    });
    param_layers
        .iter()
        .zip(totals.iter())
        .map(|(&li, &(macs, zw, za))| SparsityReport {
            layer_index: li,
            layer_name: net.layers()[li].name(),
            weight_sparsity: if macs > 0 {
                zw as f64 / macs as f64
            } else {
                0.0
            },
            input_sparsity: if macs > 0 {
                za as f64 / macs as f64
            } else {
                0.0
            },
            macs_per_input: macs / data.len() as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense};

    fn net() -> Network {
        Network::new(
            "s",
            vec![
                Layer::Conv2d(Conv2d::random(1, 4, 3, 1, 0, 60)),
                Layer::ReLU,
                Layer::Dense(Dense::random(4 * 6 * 6, 4, 61)),
            ],
        )
    }

    #[test]
    fn pruning_reaches_target() {
        let mut n = net();
        prune_to_sparsity(&mut n, 0.5);
        for layer in n.layers() {
            if let Layer::Conv2d(c) = layer {
                let zeros = c.weights().iter().filter(|w| **w == 0.0).count();
                let frac = zeros as f64 / c.weights().len() as f64;
                assert!(frac >= 0.5, "conv sparsity {frac}");
            }
        }
    }

    #[test]
    fn zero_target_is_identity() {
        let mut a = net();
        let b = net();
        prune_to_sparsity(&mut a, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn measured_weight_sparsity_tracks_injection() {
        let mut n = net();
        prune_to_sparsity(&mut n, 0.6);
        let data = SyntheticDataset::new(4, 2, 1, 8, 8, 62);
        let cfg = QuantConfig::uniform(n.layer_count(), 8, 8);
        let reports = measure_sparsity(&n, &data, &cfg);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(
                r.weight_sparsity >= 0.5,
                "{} weight sparsity {}",
                r.layer_name,
                r.weight_sparsity
            );
            assert!(r.macs_per_input > 0);
        }
    }

    #[test]
    fn relu_induces_activation_sparsity_downstream() {
        let n = net();
        let data = SyntheticDataset::new(4, 2, 1, 8, 8, 63);
        let cfg = QuantConfig::uniform(n.layer_count(), 8, 8);
        let reports = measure_sparsity(&n, &data, &cfg);
        // The dense layer sits behind a ReLU: roughly half its input
        // activations are zero.
        let dense = &reports[1];
        assert!(
            dense.input_sparsity > 0.2,
            "post-ReLU input sparsity {}",
            dense.input_sparsity
        );
    }

    #[test]
    #[should_panic(expected = "sparsity target")]
    fn pruning_rejects_full_sparsity() {
        let mut n = net();
        prune_to_sparsity(&mut n, 1.0);
    }
}
