//! # dvafs-nn — fixed-point CNN substrate
//!
//! Convolutional-network machinery for the Deep Learning side of the DVAFS
//! paper (Sections IV and V): CNN inference on an integer MAC data path
//! with *per-layer* weight/activation precision, the per-layer minimum-bit
//! search behind Fig. 6, and the sparsity statistics that feed Envision's
//! Table III.
//!
//! ## Substitutions
//!
//! The paper evaluates pretrained LeNet-5 / AlexNet / VGG16 on MNIST,
//! ImageNet and LFW. Neither the datasets nor the trained weights are
//! available here, so:
//!
//! * [`dataset`] generates synthetic structured classification sets;
//! * [`models`] builds the papers' topologies with deterministic
//!   pseudo-trained weights (He-scaled, optionally pruned to a target
//!   sparsity);
//! * accuracy is measured **relative to the same network at full
//!   precision** — exactly the paper's "99 % relative accuracy" criterion
//!   (\[22\]), which never references true labels.
//!
//! ## Example
//!
//! ```
//! use dvafs_nn::models;
//! use dvafs_nn::network::QuantConfig;
//! use dvafs_nn::dataset::SyntheticDataset;
//!
//! let net = models::lenet5(7);
//! let data = SyntheticDataset::digits(8, 11);
//! let full = QuantConfig::uniform(net.layer_count(), 16, 16);
//! let coarse = QuantConfig::uniform(net.layer_count(), 4, 4);
//! let agreement = net.relative_accuracy(&data, &coarse, &full);
//! assert!((0.0..=1.0).contains(&agreement));
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod error;
pub mod kernel;
pub mod layers;
pub mod models;
pub mod network;
pub mod precision;
pub mod quant;
pub mod sparsity;
pub mod tensor;

pub use error::NnError;
pub use kernel::{ActivationCache, BatchPath, NnKernel, Scratch, DEFAULT_BATCH_SIZE};
pub use network::{Network, QuantConfig};
pub use precision::SearchStrategy;
pub use tensor::Tensor;
