//! Symmetric fixed-point quantization of weights and activations.
//!
//! The paper runs CNNs at 1–16-bit fixed point (Section IV-B): each tensor
//! is mapped onto a symmetric integer grid `q ∈ [-(2^(b-1)-1), 2^(b-1)-1]`
//! with a per-tensor scale, and the MAC data path operates on the grid
//! indices — exactly what [`QuantizedTensor`] carries.

use crate::error::NnError;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A tensor snapped to a `bits`-wide symmetric integer grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    /// Grid indices (each fits `bits` signed bits).
    pub data: Vec<i32>,
    /// Real value per grid step; `value = data * scale`.
    pub scale: f64,
    /// Grid width in bits.
    pub bits: u32,
    /// Original shape `(channels, height, width)`.
    pub shape: (usize, usize, usize),
}

impl QuantizedTensor {
    /// Quantizes a tensor to `bits` with a per-tensor symmetric scale.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidBits`] when `bits` is outside `1..=16`,
    /// and [`NnError::NonFiniteInput`] when any element is NaN or ±inf —
    /// a non-finite element would poison `max_abs`, make the scale NaN,
    /// and silently collapse the whole grid to zero.
    pub fn quantize(t: &Tensor, bits: u32) -> Result<Self, NnError> {
        if bits == 0 || bits > 16 {
            return Err(NnError::InvalidBits { bits });
        }
        if t.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(NnError::NonFiniteInput);
        }
        let qmax = if bits == 1 {
            1
        } else {
            (1i32 << (bits - 1)) - 1
        };
        let max_abs = f64::from(t.max_abs());
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / f64::from(qmax)
        };
        let data = t
            .as_slice()
            .iter()
            .map(|&v| {
                let q = (f64::from(v) / scale).round();
                q.clamp(f64::from(-qmax), f64::from(qmax)) as i32
            })
            .collect();
        Ok(QuantizedTensor {
            data,
            scale,
            bits,
            shape: t.shape(),
        })
    }

    /// Reconstructs the real-valued tensor on the grid.
    #[must_use]
    pub fn dequantize(&self) -> Tensor {
        let (c, h, w) = self.shape;
        let mut t = Tensor::zeros(c, h, w);
        for (dst, &q) in t.as_mut_slice().iter_mut().zip(self.data.iter()) {
            *dst = (f64::from(q) * self.scale) as f32;
        }
        t
    }

    /// Fraction of zero grid indices (quantization-induced sparsity).
    #[must_use]
    pub fn zero_fraction(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|q| **q == 0).count() as f64 / self.data.len() as f64
    }

    /// Copies the grid indices into an `i16` panel for the blocked GEMM
    /// (every index fits: `bits <= 16` means `|q| <= 32767`), returning
    /// the number of zero indices — the operand-sparsity count the
    /// guard-skip statistics are built from. `buf` is cleared first.
    pub fn fill_i16(&self, buf: &mut Vec<i16>) -> u64 {
        buf.clear();
        buf.reserve(self.data.len());
        let mut zeros = 0u64;
        for &q in &self.data {
            zeros += u64::from(q == 0);
            buf.push(q as i16);
        }
        zeros
    }

    /// Worst-case representable magnitude on this grid.
    #[must_use]
    pub fn qmax(&self) -> i32 {
        if self.bits == 1 {
            1
        } else {
            (1i32 << (self.bits - 1)) - 1
        }
    }
}

/// Root-mean-square quantization error of a tensor at a bit width.
///
/// # Errors
///
/// Returns [`NnError::InvalidBits`] when `bits` is outside `1..=16`.
pub fn quantization_rmse(t: &Tensor, bits: u32) -> Result<f64, NnError> {
    let q = QuantizedTensor::quantize(t, bits)?;
    let d = q.dequantize();
    let se: f64 = t
        .as_slice()
        .iter()
        .zip(d.as_slice())
        .map(|(&a, &b)| {
            let e = f64::from(a - b);
            e * e
        })
        .sum();
    Ok((se / t.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_on_grid_values_is_exact() {
        let mut t = Tensor::zeros(1, 1, 4);
        t.set(0, 0, 0, 1.0);
        t.set(0, 0, 1, -1.0);
        t.set(0, 0, 2, 0.5);
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        let d = q.dequantize();
        for i in 0..4 {
            assert!((d.get(0, 0, i) - t.get(0, 0, i)).abs() < 0.01);
        }
    }

    #[test]
    fn rmse_decreases_with_bits() {
        let t = Tensor::random(2, 16, 16, 1);
        let e2 = quantization_rmse(&t, 2).unwrap();
        let e4 = quantization_rmse(&t, 4).unwrap();
        let e8 = quantization_rmse(&t, 8).unwrap();
        assert!(e2 > e4 && e4 > e8, "{e2} {e4} {e8}");
    }

    #[test]
    fn one_bit_grid_is_sign_like() {
        let t = Tensor::random(1, 4, 4, 2);
        let q = QuantizedTensor::quantize(&t, 1).unwrap();
        assert!(q.data.iter().all(|&v| (-1..=1).contains(&v)));
    }

    #[test]
    fn zero_tensor_quantizes_to_zero() {
        let t = Tensor::zeros(1, 2, 2);
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        assert!(q.data.iter().all(|&v| v == 0));
        assert_eq!(q.zero_fraction(), 1.0);
    }

    #[test]
    fn values_fit_declared_bits() {
        let t = Tensor::random(2, 8, 8, 3);
        for bits in [2u32, 4, 8, 12, 16] {
            let q = QuantizedTensor::quantize(&t, bits).unwrap();
            let m = q.qmax();
            assert!(q.data.iter().all(|&v| v.abs() <= m), "bits={bits}");
        }
    }

    #[test]
    fn fill_i16_preserves_values_and_counts_zeros() {
        let mut t = Tensor::zeros(1, 1, 5);
        t.set(0, 0, 0, 1.0);
        t.set(0, 0, 3, -1.0);
        let q = QuantizedTensor::quantize(&t, 16).unwrap();
        let mut buf = vec![7i16; 2]; // stale contents must be discarded
        let zeros = q.fill_i16(&mut buf);
        assert_eq!(zeros, 3);
        assert_eq!(buf.len(), 5);
        for (lane, &q32) in buf.iter().zip(&q.data) {
            assert_eq!(i32::from(*lane), q32);
        }
    }

    #[test]
    fn invalid_bits_rejected() {
        let t = Tensor::zeros(1, 1, 1);
        assert!(QuantizedTensor::quantize(&t, 0).is_err());
        assert!(QuantizedTensor::quantize(&t, 17).is_err());
    }

    #[test]
    fn non_finite_inputs_rejected() {
        // A single NaN/±inf element used to slip through: `max_abs`
        // became NaN, the scale became NaN, and every grid index
        // clamped to 0 — a silently wrong all-zero tensor. It must be a
        // hard error instead.
        for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut t = Tensor::zeros(1, 2, 2);
            t.set(0, 0, 0, 1.0);
            t.set(0, 1, 1, poison);
            assert_eq!(
                QuantizedTensor::quantize(&t, 8),
                Err(NnError::NonFiniteInput),
                "poison={poison}"
            );
            assert_eq!(quantization_rmse(&t, 8), Err(NnError::NonFiniteInput));
        }
        // Finite extremes are still fine.
        let mut t = Tensor::zeros(1, 1, 2);
        t.set(0, 0, 0, f32::MAX);
        t.set(0, 0, 1, f32::MIN);
        assert!(QuantizedTensor::quantize(&t, 8).is_ok());
    }

    mod purity {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Quantization is a **pure function** of `(input, bits)` —
            /// the assumption the per-`(sample, layer, abits)` activation
            /// memo of the incremental precision search rests on: two
            /// calls on the same input produce bitwise-equal grids,
            /// bit-identical scales, and equal shapes, independent of
            /// call order or repetition.
            #[test]
            fn quantize_is_pure_in_input_and_bits(
                seed in any::<u64>(),
                c in 1usize..=3,
                h in 1usize..=6,
                w in 1usize..=6,
                bits in 1u32..=16,
            ) {
                let t = Tensor::random(c, h, w, seed);
                let a = QuantizedTensor::quantize(&t, bits).unwrap();
                // Interleave a different-width call: no hidden state may
                // leak between quantizations.
                let _ = QuantizedTensor::quantize(&t, (bits % 16) + 1).unwrap();
                let b = QuantizedTensor::quantize(&t, bits).unwrap();
                let c2 = QuantizedTensor::quantize(&t.clone(), bits).unwrap();
                for q in [&b, &c2] {
                    prop_assert_eq!(&a.data, &q.data);
                    prop_assert_eq!(a.scale.to_bits(), q.scale.to_bits());
                    prop_assert_eq!(a.bits, q.bits);
                    prop_assert_eq!(a.shape, q.shape);
                }
            }
        }
    }
}
