//! Synthetic structured classification datasets.
//!
//! Substitute for MNIST / ImageNet / LFW (none of which are available in
//! this environment). Each class is a deterministic spatial pattern —
//! Gabor-like gratings with class-specific orientation and frequency plus
//! per-sample noise and jitter — so images carry real, learnable structure
//! while remaining fully reproducible. The paper's Fig. 6 metric (relative
//! accuracy vs. the full-precision network) never consults true labels, so
//! any structured input distribution exercises the same quantization
//! search; labels are still provided for absolute-accuracy experiments.

use crate::tensor::Tensor;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A deterministic synthetic labeled image set.
///
/// # Example
///
/// ```
/// use dvafs_nn::dataset::SyntheticDataset;
///
/// let d = SyntheticDataset::digits(16, 1);
/// assert_eq!(d.len(), 16);
/// assert_eq!(d.images()[0].shape(), (1, 28, 28));
/// assert!(d.labels().iter().all(|&l| l < 10));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticDataset {
    images: Vec<Tensor>,
    labels: Vec<usize>,
    classes: usize,
}

impl SyntheticDataset {
    /// Generates `samples` images of `channels x height x width` across
    /// `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `samples` or `classes` is zero.
    #[must_use]
    pub fn new(
        samples: usize,
        classes: usize,
        channels: usize,
        height: usize,
        width: usize,
        seed: u64,
    ) -> Self {
        assert!(
            samples > 0 && classes > 0,
            "dataset dimensions must be positive"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut images = Vec::with_capacity(samples);
        let mut labels = Vec::with_capacity(samples);
        for i in 0..samples {
            let class = i % classes;
            let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            let jitter: f32 = rng.gen_range(0.9..1.1);
            let noise_seed: u64 = rng.gen();
            let mut noise_rng = rand::rngs::StdRng::seed_from_u64(noise_seed);
            // Class-specific orientation and spatial frequency.
            let angle = std::f32::consts::PI * class as f32 / classes as f32;
            let freq = (0.15 + 0.55 * (class as f32 / classes as f32)) * jitter;
            let (s, c) = angle.sin_cos();
            let img = Tensor::from_fn(channels, height, width, |ch, y, x| {
                let u = (x as f32 * c + y as f32 * s) * freq;
                let carrier = (u + phase + ch as f32 * 0.7).sin();
                let envelope = {
                    let dy = y as f32 - height as f32 / 2.0;
                    let dx = x as f32 - width as f32 / 2.0;
                    (-(dx * dx + dy * dy) / (2.0 * (width as f32 / 3.0).powi(2))).exp()
                };
                carrier * envelope + noise_rng.gen_range(-0.12..0.12)
            });
            images.push(img);
            labels.push(class);
        }
        SyntheticDataset {
            images,
            labels,
            classes,
        }
    }

    /// A 10-class digit-like set: `1 x 28 x 28` (the MNIST geometry used
    /// for LeNet-5).
    #[must_use]
    pub fn digits(samples: usize, seed: u64) -> Self {
        SyntheticDataset::new(samples, 10, 1, 28, 28, seed)
    }

    /// An ImageNet-like RGB set with configurable resolution (AlexNet uses
    /// 227, VGG16 224; tests use smaller sizes).
    #[must_use]
    pub fn image_like(samples: usize, size: usize, classes: usize, seed: u64) -> Self {
        SyntheticDataset::new(samples, classes, 3, size, size, seed)
    }

    /// The images.
    #[must_use]
    pub fn images(&self) -> &[Tensor] {
        &self.images
    }

    /// The labels (class index per image).
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the set is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticDataset::digits(8, 5);
        let b = SyntheticDataset::digits(8, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let d = SyntheticDataset::new(8, 4, 1, 8, 8, 1);
        assert_eq!(d.labels(), &[0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn different_classes_produce_different_images() {
        let d = SyntheticDataset::new(2, 2, 1, 16, 16, 2);
        let diff: f32 = d.images()[0]
            .as_slice()
            .iter()
            .zip(d.images()[1].as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff > 1.0,
            "classes should be visually distinct, diff={diff}"
        );
    }

    #[test]
    fn image_like_has_rgb_channels() {
        let d = SyntheticDataset::image_like(2, 32, 100, 3);
        assert_eq!(d.images()[0].shape(), (3, 32, 32));
        assert_eq!(d.classes(), 100);
    }

    #[test]
    fn values_are_bounded() {
        let d = SyntheticDataset::digits(4, 9);
        for img in d.images() {
            assert!(img.max_abs() <= 1.2);
        }
    }
}
