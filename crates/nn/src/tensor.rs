//! A minimal CHW tensor for CNN inference.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense 3-D tensor in `(channels, height, width)` layout, `f32` values.
///
/// Activations and weights are carried as floats but always live on a
/// fixed-point grid after quantization; the integer MAC path operates on
/// the grid indices (see [`crate::quant`]).
///
/// # Example
///
/// ```
/// use dvafs_nn::Tensor;
///
/// let mut t = Tensor::zeros(2, 3, 3);
/// t.set(1, 2, 2, 5.0);
/// assert_eq!(t.get(1, 2, 2), 5.0);
/// assert_eq!(t.len(), 18);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    channels: usize,
    height: usize,
    width: usize,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "tensor dimensions must be positive"
        );
        Tensor {
            data: vec![0.0; channels * height * width],
            channels,
            height,
            width,
        }
    }

    /// Creates a tensor taking ownership of `data` (CHW order) — no
    /// zero-fill pass, for producers that already computed every element
    /// (the batched forward paths build outputs this way).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `data.len()` disagrees with
    /// the shape.
    #[must_use]
    pub fn from_vec(channels: usize, height: usize, width: usize, data: Vec<f32>) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "tensor dimensions must be positive"
        );
        assert_eq!(
            data.len(),
            channels * height * width,
            "data length must match the shape"
        );
        Tensor {
            data,
            channels,
            height,
            width,
        }
    }

    /// Creates a tensor from a closure over `(c, y, x)`.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize, usize) -> f32>(
        channels: usize,
        height: usize,
        width: usize,
        mut f: F,
    ) -> Self {
        let mut t = Tensor::zeros(channels, height, width);
        for c in 0..channels {
            for y in 0..height {
                for x in 0..width {
                    t.set(c, y, x, f(c, y, x));
                }
            }
        }
        t
    }

    /// Creates a tensor with deterministic uniform values in `[-1, 1)`.
    #[must_use]
    pub fn random(channels: usize, height: usize, width: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut t = Tensor::zeros(channels, height, width);
        for v in &mut t.data {
            *v = rng.gen_range(-1.0..1.0);
        }
        t
    }

    /// Shape as `(channels, height, width)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        (c * self.height + y) * self.width + x
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on out-of-range indices.
    #[inline]
    #[must_use]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.index(c, y, x)]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        let i = self.index(c, y, x);
        self.data[i] = v;
    }

    /// Flat view of the data.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Maximum absolute value (0 for an all-zero tensor).
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Fraction of exactly-zero elements.
    #[must_use]
    pub fn zero_fraction(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|v| **v == 0.0).count() as f64 / self.data.len() as f64
    }

    /// Index of the largest element in the flattened tensor (argmax), used
    /// for classification decisions. Ties resolve to the lowest index.
    #[must_use]
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut t = Tensor::zeros(2, 4, 5);
        assert_eq!(t.shape(), (2, 4, 5));
        assert_eq!(t.len(), 40);
        t.set(1, 3, 4, -2.5);
        assert_eq!(t.get(1, 3, 4), -2.5);
        assert_eq!(t.get(0, 0, 0), 0.0);
    }

    #[test]
    fn from_fn_indexes_correctly() {
        let t = Tensor::from_fn(2, 2, 2, |c, y, x| (c * 100 + y * 10 + x) as f32);
        assert_eq!(t.get(1, 0, 1), 101.0);
        assert_eq!(t.get(0, 1, 0), 10.0);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Tensor::random(1, 8, 8, 42);
        let b = Tensor::random(1, 8, 8, 42);
        assert_eq!(a, b);
        assert_ne!(a, Tensor::random(1, 8, 8, 43));
    }

    #[test]
    fn max_abs_and_zero_fraction() {
        let mut t = Tensor::zeros(1, 2, 2);
        t.set(0, 0, 0, -3.0);
        t.set(0, 1, 1, 2.0);
        assert_eq!(t.max_abs(), 3.0);
        assert!((t.zero_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn argmax_finds_peak() {
        let mut t = Tensor::zeros(1, 1, 5);
        t.set(0, 0, 3, 9.0);
        assert_eq!(t.argmax(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = Tensor::zeros(0, 1, 1);
    }
}
