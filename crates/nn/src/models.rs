//! The paper's network topologies: LeNet-5, AlexNet and VGG16.
//!
//! Two views are provided:
//!
//! * **Executable networks** ([`lenet5`], [`alexnet`], [`vgg16`]) with
//!   deterministic pseudo-trained weights. AlexNet and VGG16 take an input
//!   resolution and a channel-scale factor so the quantization experiments
//!   stay laptop-tractable (the paper's full-resolution weight sets are
//!   hundreds of megabytes of trained parameters we do not have).
//! * **Analytic per-layer MAC counts** at the paper's native resolutions
//!   ([`alexnet_conv_macs`], [`vgg16_conv_macs`], [`lenet5_conv_macs`]) —
//!   these drive Envision's Table III workload model and match the paper's
//!   MMACs/frame column (e.g. VGG16 conv1 = 87 MMACs, conv2 = 1850 MMACs).

use crate::dataset::SyntheticDataset;
use crate::layers::{Conv2d, Dense, Layer};
use crate::network::Network;
use serde::{Deserialize, Serialize};

/// Output spatial size of a convolution/pool stage.
#[must_use]
fn out_size(input: usize, k: usize, stride: usize, pad: usize) -> usize {
    (input + 2 * pad - k) / stride + 1
}

fn scaled(channels: usize, scale: f64) -> usize {
    ((channels as f64 * scale).round() as usize).max(1)
}

/// LeNet-5 on 28×28 single-channel inputs (the MNIST geometry):
/// conv5x5x6 (pad 2) → pool → conv5x5x16 → pool → fc120 → fc84 → fc10.
#[must_use]
pub fn lenet5(seed: u64) -> Network {
    Network::new(
        "LeNet-5",
        vec![
            Layer::Conv2d(Conv2d::random(1, 6, 5, 1, 2, seed)),
            Layer::ReLU,
            Layer::MaxPool2d { k: 2, stride: 2 },
            Layer::Conv2d(Conv2d::random(6, 16, 5, 1, 0, seed.wrapping_add(1))),
            Layer::ReLU,
            Layer::MaxPool2d { k: 2, stride: 2 },
            Layer::Dense(Dense::random(16 * 5 * 5, 120, seed.wrapping_add(2))),
            Layer::ReLU,
            Layer::Dense(Dense::random(120, 84, seed.wrapping_add(3))),
            Layer::ReLU,
            Layer::Dense(Dense::random(84, 10, seed.wrapping_add(4))),
        ],
    )
}

/// AlexNet with a configurable input resolution and channel scale
/// (`input = 227`, `scale = 1.0` is the paper's network; smaller values
/// keep the precision search tractable).
///
/// # Panics
///
/// Panics if the input is too small for the layer cascade (`input >= 67`,
/// below which the final max-pool output vanishes).
#[must_use]
pub fn alexnet(input: usize, scale: f64, seed: u64) -> Network {
    // Below 67x67 the final 3x3/2 max-pool output vanishes (p5 = 0) and the
    // classifier head would get zero inputs.
    assert!(input >= 67, "AlexNet needs at least 67x67 inputs");
    let c1 = scaled(96, scale);
    let c2 = scaled(256, scale);
    let c3 = scaled(384, scale);
    let c4 = scaled(384, scale);
    let c5 = scaled(256, scale);
    let f1 = scaled(512, scale);
    let f2 = scaled(256, scale);

    let s1 = out_size(input, 11, 4, 0);
    let p1 = out_size(s1, 3, 2, 0);
    let s2 = out_size(p1, 5, 1, 2);
    let p2 = out_size(s2, 3, 2, 0);
    let s3 = out_size(p2, 3, 1, 1);
    let p5 = out_size(s3, 3, 2, 0);
    let flat = c5 * p5 * p5;

    Network::new(
        "AlexNet",
        vec![
            Layer::Conv2d(Conv2d::random(3, c1, 11, 4, 0, seed)),
            Layer::ReLU,
            Layer::MaxPool2d { k: 3, stride: 2 },
            Layer::Conv2d(Conv2d::random(c1, c2, 5, 1, 2, seed.wrapping_add(1))),
            Layer::ReLU,
            Layer::MaxPool2d { k: 3, stride: 2 },
            Layer::Conv2d(Conv2d::random(c2, c3, 3, 1, 1, seed.wrapping_add(2))),
            Layer::ReLU,
            Layer::Conv2d(Conv2d::random(c3, c4, 3, 1, 1, seed.wrapping_add(3))),
            Layer::ReLU,
            Layer::Conv2d(Conv2d::random(c4, c5, 3, 1, 1, seed.wrapping_add(4))),
            Layer::ReLU,
            Layer::MaxPool2d { k: 3, stride: 2 },
            Layer::Dense(Dense::random(flat, f1, seed.wrapping_add(5))),
            Layer::ReLU,
            Layer::Dense(Dense::random(f1, f2, seed.wrapping_add(6))),
            Layer::ReLU,
            Layer::Dense(Dense::random(f2, 10, seed.wrapping_add(7))),
        ],
    )
}

/// VGG16 with a configurable input resolution and channel scale
/// (`input = 224`, `scale = 1.0` is the paper's network).
///
/// # Panics
///
/// Panics if the input is not divisible by 32 (five pooling stages).
#[must_use]
pub fn vgg16(input: usize, scale: f64, seed: u64) -> Network {
    assert!(
        input >= 32 && input % 32 == 0,
        "VGG16 input must be a multiple of 32"
    );
    let blocks: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    let mut layers = Vec::new();
    let mut in_c = 3usize;
    let mut seed_i = seed;
    for (base, reps) in blocks {
        let c = scaled(base, scale);
        for _ in 0..reps {
            layers.push(Layer::Conv2d(Conv2d::random(in_c, c, 3, 1, 1, seed_i)));
            layers.push(Layer::ReLU);
            in_c = c;
            seed_i = seed_i.wrapping_add(1);
        }
        layers.push(Layer::MaxPool2d { k: 2, stride: 2 });
    }
    let final_hw = input / 32;
    let flat = in_c * final_hw * final_hw;
    let f1 = scaled(512, scale);
    layers.push(Layer::Dense(Dense::random(
        flat,
        f1,
        seed_i.wrapping_add(1),
    )));
    layers.push(Layer::ReLU);
    layers.push(Layer::Dense(Dense::random(f1, f1, seed_i.wrapping_add(2))));
    layers.push(Layer::ReLU);
    layers.push(Layer::Dense(Dense::random(f1, 10, seed_i.wrapping_add(3))));
    Network::new("VGG16", layers)
}

/// A validated, fully-resolved model request: which topology, at what
/// input resolution and channel scale, from which weight seed.
///
/// [`lenet5`], [`alexnet`] and [`vgg16`] are the right constructors for
/// code that controls its own arguments — they `panic!` on geometry the
/// layer cascade cannot support. `ModelSpec` is the boundary-facing view
/// for callers handling *untrusted* input (the `dvafs serve` request
/// codec): [`ModelSpec::resolve`] applies per-model defaults, turns every
/// panic precondition into an `Err`, and the resulting spec builds the
/// network and its matching evaluation dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    name: &'static str,
    input: usize,
    scale: f64,
    seed: u64,
}

impl ModelSpec {
    /// Known model names, resolution defaults, and validation rules, in
    /// the order the paper introduces the networks.
    pub const KNOWN: [&'static str; 3] = ["lenet5", "alexnet", "vgg16"];

    /// Resolves a model request, applying defaults where the caller gave
    /// none: LeNet-5 is fixed at 28×28 / scale 1; AlexNet defaults to
    /// 67×67 at scale 0.125 and VGG16 to 32×32 at scale 0.0625 (the
    /// smallest geometries the cascades support — service-sized, like the
    /// fig6 scenarios).
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for an unknown model name, a
    /// non-finite or non-positive channel scale, or an input resolution
    /// the topology cannot support (AlexNet < 67; VGG16 not a positive
    /// multiple of 32; LeNet-5 anything but 28).
    pub fn resolve(
        name: &str,
        input: Option<usize>,
        scale: Option<f64>,
        seed: u64,
    ) -> Result<Self, String> {
        let scale_val = scale.unwrap_or(match name {
            "lenet5" => 1.0,
            "alexnet" => 0.125,
            _ => 0.0625,
        });
        if !scale_val.is_finite() || scale_val <= 0.0 {
            return Err(format!(
                "scale must be a positive finite number, got {scale_val}"
            ));
        }
        match name {
            "lenet5" => {
                let input = input.unwrap_or(28);
                if input != 28 {
                    return Err(format!("lenet5 is fixed at 28x28 inputs, got {input}"));
                }
                if scale.is_some() && scale_val != 1.0 {
                    return Err(format!("lenet5 has no channel scale, got {scale_val}"));
                }
                Ok(ModelSpec {
                    name: "lenet5",
                    input,
                    scale: 1.0,
                    seed,
                })
            }
            "alexnet" => {
                let input = input.unwrap_or(67);
                if input < 67 {
                    return Err(format!("alexnet needs at least 67x67 inputs, got {input}"));
                }
                Ok(ModelSpec {
                    name: "alexnet",
                    input,
                    scale: scale_val,
                    seed,
                })
            }
            "vgg16" => {
                let input = input.unwrap_or(32);
                if input < 32 || input % 32 != 0 {
                    return Err(format!(
                        "vgg16 input must be a positive multiple of 32, got {input}"
                    ));
                }
                Ok(ModelSpec {
                    name: "vgg16",
                    input,
                    scale: scale_val,
                    seed,
                })
            }
            other => Err(format!(
                "unknown model {other:?} — available: {}",
                Self::KNOWN.join(", ")
            )),
        }
    }

    /// The resolved model name (one of [`KNOWN`](Self::KNOWN)).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The resolved input resolution (height = width; LeNet-5 is 28).
    #[must_use]
    pub fn input(&self) -> usize {
        self.input
    }

    /// The resolved channel scale (LeNet-5 is 1.0).
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The weight seed the network is built from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builds the network. Cannot panic: every geometry precondition was
    /// checked by [`resolve`](Self::resolve).
    #[must_use]
    pub fn build(&self) -> Network {
        match self.name {
            "lenet5" => lenet5(self.seed),
            "alexnet" => alexnet(self.input, self.scale, self.seed),
            _ => vgg16(self.input, self.scale, self.seed),
        }
    }

    /// A deterministic evaluation set matching this model's input
    /// geometry: the MNIST-like digit set for LeNet-5, an RGB image-like
    /// set at the resolved resolution otherwise (10 classes either way).
    #[must_use]
    pub fn dataset(&self, samples: usize, seed: u64) -> SyntheticDataset {
        match self.name {
            "lenet5" => SyntheticDataset::digits(samples, seed),
            _ => SyntheticDataset::image_like(samples, self.input, 10, seed),
        }
    }
}

/// Analytic per-layer MAC count of one convolution.
#[must_use]
pub fn conv_macs(in_c: usize, out_c: usize, k: usize, out_h: usize, out_w: usize) -> u64 {
    (in_c * out_c * k * k * out_h * out_w) as u64
}

/// Name + MAC count of a CONV layer at the paper's native resolution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerMacs {
    /// Layer label (paper notation, e.g. `"VGG2"`).
    pub name: String,
    /// Multiply-accumulates per frame.
    pub macs: u64,
}

impl LayerMacs {
    /// MACs in millions (the paper's MMACs/frame column).
    #[must_use]
    pub fn mmacs(&self) -> f64 {
        self.macs as f64 / 1e6
    }
}

/// AlexNet's five CONV layers at 227×227 (grouped convolutions as in the
/// original: conv2/4/5 see half the input channels).
#[must_use]
pub fn alexnet_conv_macs() -> Vec<LayerMacs> {
    vec![
        LayerMacs {
            name: "AlexNet1".into(),
            macs: conv_macs(3, 96, 11, 55, 55),
        },
        LayerMacs {
            name: "AlexNet2".into(),
            macs: conv_macs(48, 256, 5, 27, 27),
        },
        LayerMacs {
            name: "AlexNet3".into(),
            macs: conv_macs(256, 384, 3, 13, 13),
        },
        LayerMacs {
            name: "AlexNet4".into(),
            macs: conv_macs(192, 384, 3, 13, 13),
        },
        LayerMacs {
            name: "AlexNet5".into(),
            macs: conv_macs(192, 256, 3, 13, 13),
        },
    ]
}

/// VGG16's thirteen CONV layers at 224×224.
#[must_use]
pub fn vgg16_conv_macs() -> Vec<LayerMacs> {
    let spec: [(usize, usize, usize); 13] = [
        (3, 64, 224),
        (64, 64, 224),
        (64, 128, 112),
        (128, 128, 112),
        (128, 256, 56),
        (256, 256, 56),
        (256, 256, 56),
        (256, 512, 28),
        (512, 512, 28),
        (512, 512, 28),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
    ];
    spec.iter()
        .enumerate()
        .map(|(i, &(ic, oc, hw))| LayerMacs {
            name: format!("VGG{}", i + 1),
            macs: conv_macs(ic, oc, 3, hw, hw),
        })
        .collect()
}

/// LeNet-5's two CONV layers at the 28×28 MNIST geometry.
#[must_use]
pub fn lenet5_conv_macs() -> Vec<LayerMacs> {
    vec![
        LayerMacs {
            name: "LeNet1".into(),
            macs: conv_macs(1, 6, 5, 28, 28),
        },
        LayerMacs {
            name: "LeNet2".into(),
            macs: conv_macs(6, 16, 5, 10, 10),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDataset;
    use crate::network::QuantConfig;
    use crate::tensor::Tensor;

    #[test]
    fn lenet5_forward_shape() {
        let net = lenet5(1);
        let cfg = QuantConfig::uniform(net.layer_count(), 16, 16);
        let input = Tensor::random(1, 28, 28, 2);
        let (out, _) = net.forward(&input, &cfg).unwrap();
        assert_eq!(out.shape(), (1, 1, 10));
    }

    #[test]
    fn lenet5_has_five_parameterized_layers() {
        assert_eq!(lenet5(1).parameterized_layers().len(), 5);
    }

    #[test]
    fn alexnet_small_forward() {
        let net = alexnet(67, 0.125, 3);
        let cfg = QuantConfig::uniform(net.layer_count(), 16, 16);
        let input = Tensor::random(3, 67, 67, 4);
        let (out, _) = net.forward(&input, &cfg).unwrap();
        assert_eq!(out.shape(), (1, 1, 10));
        assert_eq!(net.parameterized_layers().len(), 8);
    }

    #[test]
    fn vgg16_small_forward() {
        let net = vgg16(32, 0.0625, 5);
        let cfg = QuantConfig::uniform(net.layer_count(), 16, 16);
        let input = Tensor::random(3, 32, 32, 6);
        let (out, _) = net.forward(&input, &cfg).unwrap();
        assert_eq!(out.shape(), (1, 1, 10));
        assert_eq!(net.parameterized_layers().len(), 16);
    }

    #[test]
    fn alexnet_macs_match_paper_table3() {
        let m = alexnet_conv_macs();
        // Paper Table III MMACs/frame: 104, 224, 150, 112.
        assert!((m[0].mmacs() - 104.0).abs() < 3.0, "conv1 {}", m[0].mmacs());
        assert!((m[1].mmacs() - 224.0).abs() < 3.0, "conv2 {}", m[1].mmacs());
        assert!((m[2].mmacs() - 150.0).abs() < 3.0, "conv3 {}", m[2].mmacs());
        assert!((m[3].mmacs() - 112.0).abs() < 3.0, "conv4 {}", m[3].mmacs());
    }

    #[test]
    fn vgg16_macs_match_paper_range() {
        let m = vgg16_conv_macs();
        assert_eq!(m.len(), 13);
        // Paper: VGG1 = 87, layers 2-13 span 462..1850 MMACs.
        assert!((m[0].mmacs() - 87.0).abs() < 1.0, "conv1 {}", m[0].mmacs());
        let rest: Vec<f64> = m[1..].iter().map(LayerMacs::mmacs).collect();
        let lo = rest.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rest.iter().cloned().fold(0.0, f64::max);
        assert!((lo - 462.4).abs() < 2.0, "min {lo}");
        assert!((hi - 1849.7).abs() < 2.0, "max {hi}");
        // Paper total: 15346 MMACs.
        let total: f64 = m.iter().map(LayerMacs::mmacs).sum();
        assert!((total - 15346.0).abs() / 15346.0 < 0.02, "total {total}");
    }

    #[test]
    fn lenet_macs_are_sub_mmac() {
        let m = lenet5_conv_macs();
        assert!(m[0].mmacs() < 1.0 && m[1].mmacs() < 1.0);
    }

    #[test]
    fn networks_are_deterministic_per_seed() {
        let a = lenet5(9);
        let b = lenet5(9);
        let data = SyntheticDataset::digits(2, 1);
        let cfg = QuantConfig::uniform(a.layer_count(), 8, 8);
        assert_eq!(
            a.predict(&data.images()[0], &cfg).unwrap(),
            b.predict(&data.images()[0], &cfg).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn vgg_rejects_bad_input_size() {
        let _ = vgg16(50, 1.0, 0);
    }

    #[test]
    fn model_spec_defaults_match_direct_constructors() {
        let spec = ModelSpec::resolve("lenet5", None, None, 9).unwrap();
        assert_eq!(spec.name(), "lenet5");
        assert_eq!(spec.input(), 28);
        let data = spec.dataset(2, 1);
        let cfg = QuantConfig::uniform(spec.build().layer_count(), 8, 8);
        // Spec-built networks are the same networks: identical predictions.
        assert_eq!(
            spec.build().predict(&data.images()[0], &cfg).unwrap(),
            lenet5(9).predict(&data.images()[0], &cfg).unwrap()
        );
        let alex = ModelSpec::resolve("alexnet", None, None, 3).unwrap();
        assert_eq!(alex.input(), 67);
        assert_eq!(alex.build().parameterized_layers().len(), 8);
        assert_eq!(alex.dataset(2, 1).images()[0].shape(), (3, 67, 67));
        let vgg = ModelSpec::resolve("vgg16", Some(64), Some(0.0625), 5).unwrap();
        assert_eq!(vgg.build().parameterized_layers().len(), 16);
        assert_eq!(vgg.dataset(2, 1).images()[0].shape(), (3, 64, 64));
    }

    #[test]
    fn model_spec_rejects_untrusted_geometry_without_panicking() {
        for (name, input, scale) in [
            ("resnet", None, None),
            ("alexnet", Some(32), None),
            ("vgg16", Some(50), None),
            ("vgg16", Some(0), None),
            ("lenet5", Some(32), None),
            ("lenet5", None, Some(0.5)),
            ("alexnet", None, Some(0.0)),
            ("alexnet", None, Some(f64::NAN)),
            ("alexnet", None, Some(-1.0)),
        ] {
            let r = ModelSpec::resolve(name, input, scale, 0);
            assert!(r.is_err(), "{name} {input:?} {scale:?} resolved: {r:?}");
        }
        // The unknown-name error lists what is available.
        let err = ModelSpec::resolve("resnet", None, None, 0).unwrap_err();
        for known in ModelSpec::KNOWN {
            assert!(err.contains(known), "{err}");
        }
    }

    #[test]
    fn warm_weights_validates_and_is_idempotent() {
        let net = lenet5(4);
        let cfg = QuantConfig::uniform(net.layer_count(), 8, 8);
        net.warm_weights(&cfg).unwrap();
        net.warm_weights(&cfg).unwrap();
        // A warmed network predicts identically to a cold one.
        let data = SyntheticDataset::digits(2, 7);
        let cold = lenet5(4);
        assert_eq!(
            net.predict_all(&data, &cfg).unwrap(),
            cold.predict_all(&data, &cfg).unwrap()
        );
        let short = QuantConfig::uniform(1, 8, 8);
        assert!(matches!(
            net.warm_weights(&short),
            Err(crate::NnError::ConfigLengthMismatch { .. })
        ));
        let bad = QuantConfig::uniform(net.layer_count(), 0, 8);
        assert!(matches!(
            net.warm_weights(&bad),
            Err(crate::NnError::InvalidBits { .. })
        ));
    }
}
