//! Per-layer minimum-precision search (the generator behind Fig. 6).
//!
//! Following \[22\], each layer's weights (Fig. 6a) and input feature maps
//! (Fig. 6b) are quantized independently while the rest of the network
//! stays at full precision; the minimum bit width that keeps *relative
//! accuracy* (agreement with the full-precision network) at or above a
//! target — 99 % in the paper — is that layer's requirement. A DVAFS
//! processor then runs every layer at its own precision.
//!
//! The end-to-end experiment is the `fig6` scenario of the registry
//! (`dvafs::scenario`): `dvafs run fig6` (add `--fast` for the CI-sized
//! configuration) from `crates/bench`.
//!
//! The search's inference hot path runs on the network's MAC kernel
//! ([`crate::kernel::NnKernel`], blocked GEMM by default with per-layer
//! weight-quantization memoized across the scan; `Network::with_kernel`
//! selects the naive oracle). The kernel never changes a search result —
//! only wall time (`bench_sweep` asserts exactly that on fig6).

use crate::dataset::SyntheticDataset;
use crate::kernel::{with_thread_scratch, ActivationCache, BatchPath};
use crate::network::{Network, QuantConfig};
use crate::quant::QuantizedTensor;
use crate::tensor::Tensor;
use dvafs_executor::Executor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Selects how the per-layer scan evaluates candidate bit widths.
///
/// Mirroring [`crate::kernel::NnKernel`] (and `netlist::Engine` in
/// `dvafs-arith`), the strategy is an execution choice, never a semantic
/// one: both strategies produce bit-identical [`LayerRequirement`]s for
/// every network, operand, target and thread count (property-tested in
/// `tests/search_equivalence.rs`), so only wall time changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SearchStrategy {
    /// The original full-forward rescan — every candidate width re-runs
    /// the whole cascade. Retained verbatim as the **reference oracle**.
    Rescan,
    /// The default: the full-precision prefix of each scanned layer is
    /// computed once per `(sample, layer)` and reused across all candidate
    /// widths, and activation quantization is memoized per
    /// `(sample, layer, abits)` in an [`ActivationCache`] — turning the
    /// search from O(layers x widths x full-forward) into
    /// O(layers x widths x suffix-forward).
    #[default]
    Incremental,
}

impl SearchStrategy {
    /// Both strategies, oracle first (test matrices iterate this).
    pub const ALL: [SearchStrategy; 2] = [SearchStrategy::Rescan, SearchStrategy::Incremental];

    /// Parses a CLI spelling (`"rescan"` / `"incremental"`).
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "rescan" => Ok(SearchStrategy::Rescan),
            "incremental" => Ok(SearchStrategy::Incremental),
            other => Err(format!(
                "unknown search strategy {other:?} (expected rescan|incremental)"
            )),
        }
    }
}

impl fmt::Display for SearchStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SearchStrategy::Rescan => "rescan",
            SearchStrategy::Incremental => "incremental",
        })
    }
}

/// Which operand of a layer is being scaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Layer weights (Fig. 6a).
    Weights,
    /// Layer input feature maps / activations (Fig. 6b).
    Activations,
}

/// Result of the search for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerRequirement {
    /// Index of the layer inside the network.
    pub layer_index: usize,
    /// Human-readable layer name.
    pub layer_name: String,
    /// Minimum bits meeting the target.
    pub bits: u32,
    /// Relative accuracy achieved at that width.
    pub relative_accuracy: f64,
}

/// Number of distinct classes a network predicts over a dataset at full
/// precision — a degeneracy check for pseudo-trained networks.
///
/// A collapsed classifier (1–2 distinct classes) makes the relative-accuracy
/// metric meaningless: any quantization "agrees" with the reference. Such
/// networks should be passed through [`Network::calibrate_logits`] before a
/// precision search.
///
/// # Panics
///
/// Panics if inference fails.
#[must_use]
pub fn prediction_diversity(net: &Network, data: &SyntheticDataset) -> usize {
    let cfg = QuantConfig::uniform(net.layer_count(), 16, 16);
    let preds = net.predict_all(data, &cfg).expect("inference must succeed");
    let distinct: std::collections::HashSet<usize> = preds.into_iter().collect();
    distinct.len()
}

/// Per-layer minimum-bit search at a relative-accuracy target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionSearch {
    target: f64,
    full_bits: u32,
    /// Execution strategy, not search identity: guaranteed to never change
    /// a [`LayerRequirement`], so it is skipped by serialization like
    /// `Network`'s kernel field.
    #[serde(skip)]
    strategy: SearchStrategy,
}

impl PrecisionSearch {
    /// Creates a search with the paper's 99 % relative-accuracy target.
    #[must_use]
    pub fn new() -> Self {
        PrecisionSearch {
            target: 0.99,
            full_bits: 16,
            strategy: SearchStrategy::default(),
        }
    }

    /// Overrides the scan strategy (builder form).
    #[must_use]
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The scan strategy candidate widths are evaluated on.
    #[must_use]
    pub fn strategy(&self) -> SearchStrategy {
        self.strategy
    }

    /// Overrides the relative-accuracy target (`0 < target <= 1`).
    ///
    /// # Panics
    ///
    /// Panics if the target is outside `(0, 1]`.
    #[must_use]
    pub fn with_target(mut self, target: f64) -> Self {
        assert!(target > 0.0 && target <= 1.0, "target must be in (0, 1]");
        self.target = target;
        self
    }

    /// The relative-accuracy target.
    #[must_use]
    pub fn target(&self) -> f64 {
        self.target
    }

    /// Finds, for every parameterized layer, the minimum bit width of
    /// `operand` that keeps relative accuracy at or above the target while
    /// all other layers stay at full precision.
    ///
    /// Accuracy is not perfectly monotone in bits, so the scan walks down
    /// from full precision and stops at the last width that still meets
    /// the target.
    #[must_use]
    pub fn search(
        &self,
        net: &Network,
        data: &SyntheticDataset,
        operand: Operand,
    ) -> Vec<LayerRequirement> {
        self.search_with(net, data, operand, &Executor::serial())
    }

    /// Like [`search`](Self::search), with the per-layer scans distributed
    /// over `exec`'s workers (layers are independent: each scans with the
    /// rest of the network at full precision) and the reference inference
    /// parallelized over samples. Scan depth varies per layer, so workers
    /// claim layers dynamically; results merge in layer order and are
    /// bit-identical to a serial search for any thread count.
    #[must_use]
    pub fn search_with(
        &self,
        net: &Network,
        data: &SyntheticDataset,
        operand: Operand,
        exec: &Executor,
    ) -> Vec<LayerRequirement> {
        match self.strategy {
            SearchStrategy::Rescan => self.search_rescan(net, data, operand, exec),
            SearchStrategy::Incremental => self.search_incremental(net, data, operand, exec),
        }
    }

    /// The original full-forward scan, retained verbatim as the reference
    /// oracle [`SearchStrategy::Incremental`] is proven against.
    fn search_rescan(
        &self,
        net: &Network,
        data: &SyntheticDataset,
        operand: Operand,
        exec: &Executor,
    ) -> Vec<LayerRequirement> {
        let full = QuantConfig::uniform(net.layer_count(), self.full_bits, self.full_bits);
        let reference = net
            .predict_all_with(data, &full, exec)
            .expect("full-precision inference must succeed");
        let layers = net.parameterized_layers();
        // The scans nest a per-sample map inside the per-layer map. Cap the
        // inner width so outer × inner ≈ exec's worker count instead of
        // spawning threads² workers; with few layers and few threads the
        // inner map degenerates to serial. (Determinism is unaffected —
        // thread counts never change results.)
        let outer_workers = exec.threads().min(layers.len()).max(1);
        let inner = Executor::new(exec.threads() / outer_workers);
        exec.par_map_indexed(&layers, |_, &li| {
            let mut best_bits = self.full_bits;
            let mut best_acc = 1.0;
            for bits in (1..self.full_bits).rev() {
                let mut cfg = full.clone();
                match operand {
                    Operand::Weights => cfg.set_layer(li, bits, self.full_bits),
                    Operand::Activations => cfg.set_layer(li, self.full_bits, bits),
                }
                let acc = net.relative_accuracy_vs_with(data, &cfg, &reference, &inner);
                if acc >= self.target {
                    best_bits = bits;
                    best_acc = acc;
                } else {
                    break;
                }
            }
            LayerRequirement {
                layer_index: li,
                layer_name: net.layers()[li].name(),
                bits: best_bits,
                relative_accuracy: best_acc,
            }
        })
    }

    /// The prefix-cached scan behind [`SearchStrategy::Incremental`].
    ///
    /// The scan only ever perturbs one layer, so for every sample the
    /// full-precision cascade through layers `0..li` is **identical**
    /// across all candidate widths of layer `li`. One full-precision pass
    /// per sample records (a) the tensor entering every parameterized
    /// layer and (b) the final argmax — which doubles as the reference
    /// prediction the rescan oracle computes via `predict_all_with`, on
    /// the same per-layer code path and therefore bit-identical. Each
    /// candidate width then costs one prequantized layer execution plus a
    /// suffix forward from `li + 1`.
    ///
    /// Within one layer's scan the quantized input activation only depends
    /// on `(sample, abits)`, so it is memoized in a per-layer
    /// [`ActivationCache`] (quantization is a pure function of
    /// `(input, bits)` — property-tested in `crate::quant`); cache hits on
    /// the inner parallel path are lock-free reads.
    fn search_incremental(
        &self,
        net: &Network,
        data: &SyntheticDataset,
        operand: Operand,
        exec: &Executor,
    ) -> Vec<LayerRequirement> {
        let full = QuantConfig::uniform(net.layer_count(), self.full_bits, self.full_bits);
        // Prefix pass: one full-precision forward per sample, walking the
        // same layer calls `Network::forward_with` / `forward_batch` make,
        // keeping each parameterized layer's input instead of dropping it.
        // Under `BatchPath::LayerMajor` workers claim whole chunks and
        // carry them layer-by-layer (one wide GEMM per layer); the
        // per-sample walk is the oracle. Accumulation is exact either way,
        // so the prefix tensors and argmaxes are bit-identical.
        let prefix: Vec<(Vec<Tensor>, usize)> = match net.batch_path() {
            BatchPath::SampleMajor => exec.par_map_indexed(data.images(), |_, img| {
                with_thread_scratch(|scratch| {
                    let mut x = img.clone();
                    let mut inputs = Vec::new();
                    for (i, layer) in net.layers().iter().enumerate() {
                        let p = full.layer(i);
                        let (out, _) = layer
                            .forward_with(&x, p.weights, p.activations, net.kernel(), scratch)
                            .expect("full-precision inference must succeed");
                        let consumed = std::mem::replace(&mut x, out);
                        if layer.is_parameterized() {
                            inputs.push(consumed);
                        }
                    }
                    (inputs, x.argmax())
                })
            }),
            BatchPath::LayerMajor => {
                let chunks: Vec<&[Tensor]> = data.images().chunks(net.batch_size()).collect();
                let per_chunk: Vec<Vec<(Vec<Tensor>, usize)>> =
                    exec.par_map_indexed(&chunks, |_, chunk| {
                        with_thread_scratch(|scratch| {
                            let mut xs: Vec<Tensor> = chunk.to_vec();
                            let mut inputs: Vec<Vec<Tensor>> = vec![Vec::new(); chunk.len()];
                            for (i, layer) in net.layers().iter().enumerate() {
                                let p = full.layer(i);
                                let outs = layer
                                    .forward_batch_with(
                                        &xs,
                                        p.weights,
                                        p.activations,
                                        net.kernel(),
                                        scratch,
                                    )
                                    .expect("full-precision inference must succeed");
                                let keep = layer.is_parameterized();
                                let consumed = std::mem::replace(
                                    &mut xs,
                                    outs.into_iter().map(|(out, _)| out).collect(),
                                );
                                if keep {
                                    for (per_sample, x) in inputs.iter_mut().zip(consumed) {
                                        per_sample.push(x);
                                    }
                                }
                            }
                            inputs
                                .into_iter()
                                .zip(xs)
                                .map(|(ins, x)| (ins, x.argmax()))
                                .collect()
                        })
                    });
                per_chunk.into_iter().flatten().collect()
            }
        };
        let layers = net.parameterized_layers();
        // Same nested-executor split as the rescan oracle (see
        // `search_rescan`): outer over layers, inner over samples.
        let outer_workers = exec.threads().min(layers.len()).max(1);
        let inner = Executor::new(exec.threads() / outer_workers);
        exec.par_map_indexed(&layers, |rank, &li| {
            // One memo per scanned layer: slot = sample, width = abits —
            // the `(sample, layer, abits)` key of the tentpole.
            let acts = ActivationCache::new(prefix.len());
            let mut best_bits = self.full_bits;
            let mut best_acc = 1.0;
            for bits in (1..self.full_bits).rev() {
                let mut cfg = full.clone();
                let (wbits, abits) = match operand {
                    Operand::Weights => (bits, self.full_bits),
                    Operand::Activations => (self.full_bits, bits),
                };
                cfg.set_layer(li, wbits, abits);
                // Under `BatchPath::LayerMajor` the candidate layer and the
                // suffix both run batched (workers claim whole chunks; the
                // memo slot stays the global sample index `ci * bs + j`
                // because chunks are contiguous); the per-sample walk is the
                // oracle. Exact accumulation keeps the agreement count
                // bit-identical across both paths.
                let agree: usize = match net.batch_path() {
                    BatchPath::SampleMajor => inner
                        .par_map_indexed(&prefix, |si, (inputs, reference)| {
                            with_thread_scratch(|scratch| {
                                let qa = acts.get_or_quantize(si, abits, || {
                                    QuantizedTensor::quantize(&inputs[rank], abits)
                                        .expect("bit widths validated by the scan")
                                });
                                let (out, _) = net.layers()[li]
                                    .forward_prequantized(&qa, wbits, net.kernel(), scratch)
                                    .expect("scan inference must succeed");
                                let (logits, _) = net
                                    .forward_from(li + 1, &out, &cfg, scratch)
                                    .expect("suffix inference must succeed");
                                usize::from(logits.argmax() == *reference)
                            })
                        })
                        .into_iter()
                        .sum(),
                    BatchPath::LayerMajor => {
                        let bs = net.batch_size();
                        let chunks: Vec<&[(Vec<Tensor>, usize)]> = prefix.chunks(bs).collect();
                        inner
                            .par_map_indexed(&chunks, |ci, chunk| {
                                with_thread_scratch(|scratch| {
                                    let qas: Vec<_> = chunk
                                        .iter()
                                        .enumerate()
                                        .map(|(j, (inputs, _))| {
                                            acts.get_or_quantize(ci * bs + j, abits, || {
                                                QuantizedTensor::quantize(&inputs[rank], abits)
                                                    .expect("bit widths validated by the scan")
                                            })
                                        })
                                        .collect();
                                    let refs: Vec<&QuantizedTensor> =
                                        qas.iter().map(|qa| qa.as_ref()).collect();
                                    let outs = net.layers()[li]
                                        .forward_prequantized_batch(
                                            &refs,
                                            wbits,
                                            net.kernel(),
                                            scratch,
                                        )
                                        .expect("scan inference must succeed");
                                    let mids: Vec<Tensor> =
                                        outs.into_iter().map(|(out, _)| out).collect();
                                    let logits = net
                                        .forward_batch_from(li + 1, &mids, &cfg, scratch)
                                        .expect("suffix inference must succeed");
                                    logits
                                        .into_iter()
                                        .zip(chunk.iter())
                                        .filter(|((out, _), (_, reference))| {
                                            out.argmax() == *reference
                                        })
                                        .count()
                                })
                            })
                            .into_iter()
                            .sum()
                    }
                };
                let acc = agree as f64 / prefix.len() as f64;
                if acc >= self.target {
                    best_bits = bits;
                    best_acc = acc;
                } else {
                    break;
                }
            }
            LayerRequirement {
                layer_index: li,
                layer_name: net.layers()[li].name(),
                bits: best_bits,
                relative_accuracy: best_acc,
            }
        })
    }

    /// Builds a mixed-precision configuration from independent weight and
    /// activation requirements (other layers' entries stay at full
    /// precision).
    #[must_use]
    pub fn to_config(
        &self,
        net: &Network,
        weights: &[LayerRequirement],
        activations: &[LayerRequirement],
    ) -> QuantConfig {
        let mut cfg = QuantConfig::uniform(net.layer_count(), self.full_bits, self.full_bits);
        for w in weights {
            let a = activations
                .iter()
                .find(|a| a.layer_index == w.layer_index)
                .map_or(self.full_bits, |a| a.bits);
            cfg.set_layer(w.layer_index, w.bits, a);
        }
        cfg
    }
}

impl Default for PrecisionSearch {
    fn default() -> Self {
        PrecisionSearch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Layer};

    fn tiny_net() -> Network {
        Network::new(
            "tiny",
            vec![
                Layer::Conv2d(Conv2d::random(1, 6, 3, 1, 0, 40)),
                Layer::ReLU,
                Layer::MaxPool2d { k: 2, stride: 2 },
                Layer::Dense(Dense::random(6 * 5 * 5, 8, 41)),
                Layer::ReLU,
                Layer::Dense(Dense::random(8, 4, 42)),
            ],
        )
    }

    fn data() -> SyntheticDataset {
        SyntheticDataset::new(24, 4, 1, 12, 12, 50)
    }

    #[test]
    fn search_returns_one_entry_per_parameterized_layer() {
        let net = tiny_net();
        let reqs = PrecisionSearch::new().search(&net, &data(), Operand::Weights);
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].layer_index, 0);
        assert!(reqs.iter().all(|r| (1..=16).contains(&r.bits)));
    }

    #[test]
    fn requirements_meet_the_target() {
        let net = tiny_net();
        let d = data();
        let search = PrecisionSearch::new().with_target(0.9);
        for op in [Operand::Weights, Operand::Activations] {
            for r in search.search(&net, &d, op) {
                assert!(
                    r.relative_accuracy >= 0.9,
                    "{} at {} bits only reaches {}",
                    r.layer_name,
                    r.bits,
                    r.relative_accuracy
                );
            }
        }
    }

    #[test]
    fn looser_target_never_needs_more_bits() {
        let net = tiny_net();
        let d = data();
        let strict = PrecisionSearch::new()
            .with_target(0.99)
            .search(&net, &d, Operand::Weights);
        let loose = PrecisionSearch::new()
            .with_target(0.75)
            .search(&net, &d, Operand::Weights);
        for (s, l) in strict.iter().zip(loose.iter()) {
            assert!(
                l.bits <= s.bits,
                "{}: loose {} > strict {}",
                s.layer_name,
                l.bits,
                s.bits
            );
        }
    }

    #[test]
    fn parallel_search_is_bit_identical_to_serial() {
        let net = tiny_net();
        let d = data();
        let search = PrecisionSearch::new().with_target(0.9);
        for op in [Operand::Weights, Operand::Activations] {
            let serial = search.search(&net, &d, op);
            let parallel = search.search_with(&net, &d, op, &Executor::new(4));
            assert_eq!(serial, parallel);
        }
    }

    #[test]
    fn to_config_merges_weight_and_activation_requirements() {
        let net = tiny_net();
        let d = data();
        let search = PrecisionSearch::new().with_target(0.8);
        let w = search.search(&net, &d, Operand::Weights);
        let a = search.search(&net, &d, Operand::Activations);
        let cfg = search.to_config(&net, &w, &a);
        assert_eq!(cfg.len(), net.layer_count());
        for r in &w {
            assert_eq!(cfg.layer(r.layer_index).weights, r.bits);
        }
        // The merged config should still score near the target.
        let full = QuantConfig::uniform(net.layer_count(), 16, 16);
        let acc = net.relative_accuracy(&d, &cfg, &full);
        assert!(acc >= 0.5, "merged config collapsed to {acc}");
    }

    #[test]
    #[should_panic(expected = "target must be in")]
    fn invalid_target_rejected() {
        let _ = PrecisionSearch::new().with_target(0.0);
    }

    #[test]
    fn strategy_parses_and_displays() {
        for s in SearchStrategy::ALL {
            assert_eq!(SearchStrategy::parse(&s.to_string()), Ok(s));
        }
        assert_eq!(SearchStrategy::default(), SearchStrategy::Incremental);
        assert!(SearchStrategy::parse("bogus")
            .unwrap_err()
            .contains("rescan|incremental"));
    }

    #[test]
    fn incremental_matches_rescan_on_the_tiny_net() {
        // The full equivalence net lives in tests/search_equivalence.rs;
        // this is the in-module smoke check.
        let net = tiny_net();
        let d = data();
        for op in [Operand::Weights, Operand::Activations] {
            let rescan = PrecisionSearch::new()
                .with_target(0.9)
                .with_strategy(SearchStrategy::Rescan)
                .search(&net, &d, op);
            let incremental = PrecisionSearch::new()
                .with_target(0.9)
                .with_strategy(SearchStrategy::Incremental)
                .search(&net, &d, op);
            assert_eq!(rescan, incremental);
        }
    }
}
