//! Multiplier-level evaluation sweeps: the data behind Fig. 2, Fig. 3a and
//! Fig. 3b.

use dvafs_arith::activity::{extract_das_profile, extract_dvafs_profile, ActivityProfile};
use dvafs_arith::metrics::{operand_stream, precision_relative_rmse, relative_rmse};
use dvafs_arith::multiplier::{
    ApproximateMultiplier, KulkarniMultiplier, KyawMultiplier, LiuMultiplier, TruncatedMultiplier,
};
use dvafs_tech::power::{extract_k_params, EnergySample, KParams, MultiplierEnergyModel};
use dvafs_tech::scaling::{OperatingPoint, ScalingMode};
use dvafs_tech::technology::Technology;
use serde::{Deserialize, Serialize};

/// One point of a Fig. 3b energy-vs-RMSE curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RmsePoint {
    /// Design label.
    pub design: String,
    /// Product RMSE relative to full scale (x axis of Fig. 3b).
    pub rmse: f64,
    /// Energy relative to the design's own exact implementation (y axis).
    pub energy: f64,
}

/// The multiplier-level sweep harness.
///
/// # Example
///
/// ```
/// use dvafs::sweep::MultiplierSweep;
///
/// let sweep = MultiplierSweep::new();
/// let fig3a = sweep.fig3a();
/// assert_eq!(fig3a.len(), 12); // 3 regimes x 4 precisions
/// ```
#[derive(Debug, Clone)]
pub struct MultiplierSweep {
    tech: Technology,
    das_profile: ActivityProfile,
    dvafs_profile: ActivityProfile,
    samples: usize,
    seed: u64,
}

impl MultiplierSweep {
    /// Creates the sweep on the paper's 40 nm technology.
    #[must_use]
    pub fn new() -> Self {
        let seed = 0x5EE9;
        MultiplierSweep {
            tech: Technology::lp40(),
            das_profile: extract_das_profile(200, seed),
            dvafs_profile: extract_dvafs_profile(200, seed),
            samples: 2000,
            seed,
        }
    }

    /// The extracted DAS activity profile.
    #[must_use]
    pub fn das_profile(&self) -> &ActivityProfile {
        &self.das_profile
    }

    /// The extracted DVAFS activity profile.
    #[must_use]
    pub fn dvafs_profile(&self) -> &ActivityProfile {
        &self.dvafs_profile
    }

    /// Table I: the extracted k parameters.
    #[must_use]
    pub fn table1(&self) -> Vec<KParams> {
        extract_k_params(&self.tech, &self.das_profile, &self.dvafs_profile)
    }

    /// Fig. 2: operating points (frequency, slack, voltage, activity) for
    /// all regimes and precisions.
    #[must_use]
    pub fn fig2(&self) -> Vec<OperatingPoint> {
        let mut out = Vec::new();
        for mode in ScalingMode::ALL {
            out.extend(OperatingPoint::sweep(
                &self.tech,
                mode,
                &self.das_profile,
                &self.dvafs_profile,
            ));
        }
        out
    }

    /// Fig. 3a: energy per word across regimes and precisions, normalized
    /// to the non-reconfigurable 16-bit baseline (2.16 pJ).
    #[must_use]
    pub fn fig3a(&self) -> Vec<EnergySample> {
        MultiplierEnergyModel::new(
            self.tech.clone(),
            self.das_profile.clone(),
            self.dvafs_profile.clone(),
        )
        .fig3a_sweep()
    }

    /// Fig. 3b: the DVAFS energy-vs-RMSE curve against the four baselines
    /// (\[3\], \[3\]+VS, \[4\], \[5\], \[8\]).
    #[must_use]
    pub fn fig3b(&self) -> Vec<RmsePoint> {
        let pairs = operand_stream(self.samples, self.seed);
        let mut out = Vec::new();

        // DVAFS: precision maps to RMSE, energy from the Fig. 3a model
        // normalized to its own full-precision (reconfigurable) point.
        let model = MultiplierEnergyModel::new(
            self.tech.clone(),
            self.das_profile.clone(),
            self.dvafs_profile.clone(),
        );
        let own_full = model.energy_per_word(ScalingMode::Dvafs, 16).relative;
        for bits in [12u32, 8, 4] {
            let s = model.energy_per_word(ScalingMode::Dvafs, bits);
            out.push(RmsePoint {
                design: "DVAFS".to_string(),
                rmse: precision_relative_rmse(bits, &pairs),
                energy: s.relative / own_full,
            });
        }

        // Liu [3] with and without voltage scaling, at several recovery
        // depths.
        for k in [0u32, 2, 6, 12] {
            let m = LiuMultiplier::new(k);
            out.push(RmsePoint {
                design: "Liu [3]".to_string(),
                rmse: relative_rmse(&m, &pairs),
                energy: m.relative_energy(),
            });
            let mv = LiuMultiplier::new(k).with_voltage_scaling();
            out.push(RmsePoint {
                design: "Liu [3]+VS".to_string(),
                rmse: relative_rmse(&mv, &pairs),
                energy: mv.relative_energy(),
            });
        }

        // Kulkarni [4] and Kyaw [5]: fixed design points.
        let kulkarni = KulkarniMultiplier::new();
        out.push(RmsePoint {
            design: "Kulkarni [4]".to_string(),
            rmse: relative_rmse(&kulkarni, &pairs),
            energy: kulkarni.relative_energy(),
        });
        let kyaw = KyawMultiplier::new(8);
        out.push(RmsePoint {
            design: "Kyaw [5]".to_string(),
            rmse: relative_rmse(&kyaw, &pairs),
            energy: kyaw.relative_energy(),
        });

        // de la Guia Solaz [8]: the run-time truncated multiplier sweep.
        for t in [4u32, 8, 12, 16, 20] {
            let m = TruncatedMultiplier::new(t);
            out.push(RmsePoint {
                design: "Trunc [8]".to_string(),
                rmse: relative_rmse(&m, &pairs),
                energy: m.relative_energy(),
            });
        }
        out
    }
}

impl Default for MultiplierSweep {
    fn default() -> Self {
        MultiplierSweep::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> MultiplierSweep {
        MultiplierSweep::new()
    }

    #[test]
    fn fig2_covers_all_modes_and_precisions() {
        let points = sweep().fig2();
        assert_eq!(points.len(), 12);
        // DVAFS frequencies follow Fig. 2a.
        let dvafs: Vec<f64> = points
            .iter()
            .filter(|p| p.mode == ScalingMode::Dvafs)
            .map(|p| p.frequency_mhz)
            .collect();
        assert_eq!(dvafs, vec![500.0, 500.0, 250.0, 125.0]);
    }

    #[test]
    fn table1_shape() {
        let t = sweep().table1();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].bits, 4);
        assert_eq!(t[0].n, 4);
        assert!(t[0].k0 > 5.0);
    }

    #[test]
    fn fig3b_dvafs_wins_at_low_accuracy() {
        let points = sweep().fig3b();
        // The lowest-energy point below 1e-3 relative RMSE must be DVAFS.
        let coarse: Vec<&RmsePoint> = points.iter().filter(|p| p.rmse > 1e-3).collect();
        let best = coarse
            .iter()
            .min_by(|a, b| a.energy.partial_cmp(&b.energy).expect("finite"))
            .expect("some coarse points exist");
        assert_eq!(best.design, "DVAFS", "best coarse point: {best:?}");
    }

    #[test]
    fn fig3b_truncated_is_competitive_at_high_accuracy() {
        // Paper: [8] consumes less energy than DVAFS at high accuracy.
        let points = sweep().fig3b();
        let dvafs_12b = points
            .iter()
            .find(|p| p.design == "DVAFS" && p.rmse < 1e-3)
            .expect("12-bit DVAFS point");
        let trunc_fine = points
            .iter()
            .filter(|p| p.design == "Trunc [8]" && p.rmse < dvafs_12b.rmse)
            .map(|p| p.energy)
            .fold(f64::INFINITY, f64::min);
        assert!(
            trunc_fine < dvafs_12b.energy * 1.5,
            "trunc {trunc_fine} vs DVAFS {}",
            dvafs_12b.energy
        );
    }

    #[test]
    fn fig3b_rmse_values_span_paper_axis() {
        // Fig. 3b's x axis runs from ~1e-6 to ~1e-2.
        let points = sweep().fig3b();
        let lo = points
            .iter()
            .map(|p| p.rmse)
            .filter(|r| *r > 0.0)
            .fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|p| p.rmse).fold(0.0, f64::max);
        assert!(lo < 1e-4, "finest RMSE {lo}");
        assert!(hi > 1e-3, "coarsest RMSE {hi}");
    }
}
