//! Multiplier-level evaluation sweeps: the data behind Fig. 2, Fig. 3a and
//! Fig. 3b.
//!
//! Every sweep runs on a [`Executor`]: work is partitioned by index
//! (grid cells, Monte-Carlo chunks) and merged in index order, so results
//! are **bit-identical** for any thread count — `cargo test` enforces this
//! with property tests over thread counts and seeds.

use dvafs_arith::activity::{
    extract_das_profile_with, extract_dvafs_profile_with, ActivityProfile,
};
use dvafs_arith::metrics::{
    operand_stream_chunked, precision_sum_squared_error, relative_rmse_from_partials,
    sum_squared_error,
};
use dvafs_arith::multiplier::{
    ApproximateMultiplier, KulkarniMultiplier, KyawMultiplier, LiuMultiplier, TruncatedMultiplier,
};
use dvafs_arith::netlist::Engine;
use dvafs_executor::Executor;
use dvafs_tech::power::{extract_k_params, EnergySample, KParams, MultiplierEnergyModel};
use dvafs_tech::scaling::{OperatingPoint, ScalingMode};
use dvafs_tech::technology::Technology;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// One point of a Fig. 3b energy-vs-RMSE curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RmsePoint {
    /// Design label.
    pub design: String,
    /// Product RMSE relative to full scale (x axis of Fig. 3b).
    pub rmse: f64,
    /// Energy relative to the design's own exact implementation (y axis).
    pub energy: f64,
}

/// The multiplier-level sweep harness.
///
/// # Example
///
/// ```
/// use dvafs::sweep::MultiplierSweep;
///
/// let sweep = MultiplierSweep::new();
/// let fig3a = sweep.fig3a();
/// assert_eq!(fig3a.len(), 12); // 3 regimes x 4 precisions
/// ```
#[derive(Debug, Clone)]
pub struct MultiplierSweep {
    tech: Technology,
    samples: usize,
    seed: u64,
    exec: Executor,
    engine: Engine,
    /// Activity profiles (DAS, DVAFS), extracted lazily on first use so the
    /// builder can finish configuring the engine and executor first. The
    /// choice of either never moves a number — only wall time.
    profiles: OnceLock<(ActivityProfile, ActivityProfile)>,
}

impl MultiplierSweep {
    /// Default root seed (activity extraction and Monte-Carlo streams).
    pub const DEFAULT_SEED: u64 = 0x5EE9;
    /// Operand-pair count of the activity extraction runs.
    const PROFILE_SAMPLES: usize = 200;

    /// Creates the sweep on the paper's 40 nm technology.
    #[must_use]
    pub fn new() -> Self {
        MultiplierSweep::with_seed(Self::DEFAULT_SEED)
    }

    /// Creates the sweep rooted at an explicit seed: activity profiles are
    /// re-extracted and Monte-Carlo operand chunks re-derived from it, so
    /// two sweeps with the same seed produce bit-identical figures.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        MultiplierSweep {
            tech: Technology::lp40(),
            samples: 2000,
            seed,
            exec: Executor::from_env(),
            engine: Engine::default(),
            profiles: OnceLock::new(),
        }
    }

    /// Overrides the Monte-Carlo sample count of the Fig. 3b RMSE streams
    /// (the paper-scale default is 2000).
    #[must_use]
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Runs this sweep on an explicit executor (thread count). The default
    /// is [`Executor::from_env`]; results do not depend on the choice.
    #[must_use]
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// Runs the gate-level toggle simulations on an explicit netlist
    /// engine. The default is the bitsliced engine; [`Engine::Scalar`] is
    /// the reference oracle `bench_sweep` times against it. Results do not
    /// depend on the choice (the equivalence suite enforces it); profiles
    /// already extracted are discarded so the requested engine really does
    /// the work.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self.profiles = OnceLock::new();
        self
    }

    /// The root seed of this sweep.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The executor sweeps run on.
    #[must_use]
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The netlist engine toggle simulations run on.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The (DAS, DVAFS) profiles, extracting them on first use: the seven
    /// per-precision/per-mode streams are independent toggle simulations,
    /// fanned out on the executor in 64-sample bitsliced words and merged
    /// in sweep order.
    fn profiles(&self) -> &(ActivityProfile, ActivityProfile) {
        self.profiles.get_or_init(|| {
            (
                extract_das_profile_with(Self::PROFILE_SAMPLES, self.seed, self.engine, &self.exec),
                extract_dvafs_profile_with(
                    Self::PROFILE_SAMPLES,
                    self.seed,
                    self.engine,
                    &self.exec,
                ),
            )
        })
    }

    /// The extracted DAS activity profile.
    #[must_use]
    pub fn das_profile(&self) -> &ActivityProfile {
        &self.profiles().0
    }

    /// The extracted DVAFS activity profile.
    #[must_use]
    pub fn dvafs_profile(&self) -> &ActivityProfile {
        &self.profiles().1
    }

    /// Table I: the extracted k parameters.
    #[must_use]
    pub fn table1(&self) -> Vec<KParams> {
        extract_k_params(&self.tech, self.das_profile(), self.dvafs_profile())
    }

    /// Fig. 2: operating points (frequency, slack, voltage, activity) for
    /// all regimes and precisions. Grid cells are derived in parallel and
    /// merged in grid order.
    #[must_use]
    pub fn fig2(&self) -> Vec<OperatingPoint> {
        // Extract the profiles up front, not lazily from inside a worker.
        let (das, dvafs) = self.profiles();
        self.exec
            .par_map_indexed(&ScalingMode::precision_grid(), |_, &(mode, bits)| {
                OperatingPoint::derive(&self.tech, mode, bits, das, dvafs)
            })
    }

    /// Fig. 3a: energy per word across regimes and precisions, normalized
    /// to the non-reconfigurable 16-bit baseline (2.16 pJ). Grid cells are
    /// evaluated in parallel and merged in grid order.
    #[must_use]
    pub fn fig3a(&self) -> Vec<EnergySample> {
        let model = MultiplierEnergyModel::new(
            self.tech.clone(),
            self.das_profile().clone(),
            self.dvafs_profile().clone(),
        );
        self.exec
            .par_map_indexed(&ScalingMode::precision_grid(), |_, &(mode, bits)| {
                model.energy_per_word(mode, bits)
            })
    }

    /// Fig. 3b: the DVAFS energy-vs-RMSE curve against the four baselines
    /// (\[3\], \[3\]+VS, \[4\], \[5\], \[8\]).
    ///
    /// The Monte-Carlo RMSE integrals run as per-error-model × per-chunk
    /// tasks: operand chunk `c` is seeded from the root seed and `c` alone
    /// (see [`dvafs_arith::metrics::chunk_seed`]), and per-chunk
    /// squared-error partials are folded in chunk order — so the curve is
    /// bit-identical whether the task grid runs on one thread or many.
    /// Design points that share an error model (`[3]+VS` computes the same
    /// products as `[3]`, only at a scaled supply) share one integration:
    /// its partials feed both rows, which is exactly the f64 fold each row
    /// performed when it integrated separately.
    #[must_use]
    pub fn fig3b(&self) -> Vec<RmsePoint> {
        let chunks = operand_stream_chunked(self.samples, self.seed);
        let (models, jobs) = self.fig3b_models_and_jobs();

        // One task per (error model, chunk), model-major so model m's
        // partials are the contiguous slice [m*chunks .. (m+1)*chunks],
        // already in chunk order.
        let tasks: Vec<(usize, usize)> = (0..models.len())
            .flat_map(|m| (0..chunks.len()).map(move |c| (m, c)))
            .collect();
        let partials = self
            .exec
            .par_map_indexed(&tasks, |_, &(m, c)| models[m].sum_squared_error(&chunks[c]));

        jobs.iter()
            .map(|job| RmsePoint {
                design: job.design.to_string(),
                rmse: relative_rmse_from_partials(
                    &partials[job.model * chunks.len()..(job.model + 1) * chunks.len()],
                    self.samples,
                ),
                energy: job.energy,
            })
            .collect()
    }

    /// The Fig. 3b error models (each integrated once per chunk) and the
    /// design points referencing them, in the figure's plotting order.
    fn fig3b_models_and_jobs(&self) -> (Vec<Fig3bModel>, Vec<Fig3bJob>) {
        // DVAFS: precision maps to RMSE, energy from the Fig. 3a model
        // normalized to its own full-precision (reconfigurable) point.
        let model = MultiplierEnergyModel::new(
            self.tech.clone(),
            self.das_profile().clone(),
            self.dvafs_profile().clone(),
        );
        let own_full = model.energy_per_word(ScalingMode::Dvafs, 16).relative;
        let mut models = Vec::new();
        let mut jobs = Vec::new();
        for bits in [12u32, 8, 4] {
            models.push(Fig3bModel::Precision(bits));
            jobs.push(Fig3bJob {
                design: "DVAFS",
                energy: model.energy_per_word(ScalingMode::Dvafs, bits).relative / own_full,
                model: models.len() - 1,
            });
        }

        // Liu [3] with and without voltage scaling, at several recovery
        // depths; the VS twin multiplies identically, so both rows share
        // one error model.
        for k in [0u32, 2, 6, 12] {
            models.push(Fig3bModel::baseline(LiuMultiplier::new(k)));
            jobs.push(Fig3bJob {
                design: "Liu [3]",
                energy: LiuMultiplier::new(k).relative_energy(),
                model: models.len() - 1,
            });
            jobs.push(Fig3bJob {
                design: "Liu [3]+VS",
                energy: LiuMultiplier::new(k)
                    .with_voltage_scaling()
                    .relative_energy(),
                model: models.len() - 1,
            });
        }
        // Kulkarni [4] and Kyaw [5]: fixed design points.
        for (design, m) in [
            (
                "Kulkarni [4]",
                Fig3bModel::baseline(KulkarniMultiplier::new()),
            ),
            ("Kyaw [5]", Fig3bModel::baseline(KyawMultiplier::new(8))),
        ] {
            let energy = m.relative_energy();
            models.push(m);
            jobs.push(Fig3bJob {
                design,
                energy,
                model: models.len() - 1,
            });
        }
        // de la Guia Solaz [8]: the run-time truncated multiplier sweep.
        for t in [4u32, 8, 12, 16, 20] {
            let m = Fig3bModel::baseline(TruncatedMultiplier::new(t));
            let energy = m.relative_energy();
            models.push(m);
            jobs.push(Fig3bJob {
                design: "Trunc [8]",
                energy,
                model: models.len() - 1,
            });
        }
        (models, jobs)
    }
}

/// One Fig. 3b error integrand: how to sum a design's squared product
/// error over an operand chunk.
enum Fig3bModel {
    /// DVAFS at a precision: squared error of MSB truncation.
    Precision(u32),
    /// A baseline approximate multiplier.
    Baseline(Box<dyn ApproximateMultiplier + Send + Sync>),
}

impl Fig3bModel {
    fn baseline<M: ApproximateMultiplier + Send + Sync + 'static>(multiplier: M) -> Self {
        Fig3bModel::Baseline(Box::new(multiplier))
    }

    fn relative_energy(&self) -> f64 {
        match self {
            Fig3bModel::Precision(_) => unreachable!("precision points precompute energy"),
            Fig3bModel::Baseline(m) => m.relative_energy(),
        }
    }

    fn sum_squared_error(&self, chunk: &[(u16, u16)]) -> f64 {
        match self {
            Fig3bModel::Precision(bits) => precision_sum_squared_error(*bits, chunk),
            Fig3bModel::Baseline(multiplier) => sum_squared_error(multiplier.as_ref(), chunk),
        }
    }
}

/// One plotted Fig. 3b design point: a label, the energy it plots at, and
/// the index of the error model whose RMSE it shares.
struct Fig3bJob {
    design: &'static str,
    energy: f64,
    model: usize,
}

impl Default for MultiplierSweep {
    fn default() -> Self {
        MultiplierSweep::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> MultiplierSweep {
        MultiplierSweep::new()
    }

    #[test]
    fn fig2_covers_all_modes_and_precisions() {
        let points = sweep().fig2();
        assert_eq!(points.len(), 12);
        // DVAFS frequencies follow Fig. 2a.
        let dvafs: Vec<f64> = points
            .iter()
            .filter(|p| p.mode == ScalingMode::Dvafs)
            .map(|p| p.frequency_mhz)
            .collect();
        assert_eq!(dvafs, vec![500.0, 500.0, 250.0, 125.0]);
    }

    #[test]
    fn table1_shape() {
        let t = sweep().table1();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].bits, 4);
        assert_eq!(t[0].n, 4);
        assert!(t[0].k0 > 5.0);
    }

    #[test]
    fn fig3b_dvafs_wins_at_low_accuracy() {
        let points = sweep().fig3b();
        // The lowest-energy point below 1e-3 relative RMSE must be DVAFS.
        let coarse: Vec<&RmsePoint> = points.iter().filter(|p| p.rmse > 1e-3).collect();
        let best = coarse
            .iter()
            .min_by(|a, b| a.energy.partial_cmp(&b.energy).expect("finite"))
            .expect("some coarse points exist");
        assert_eq!(best.design, "DVAFS", "best coarse point: {best:?}");
    }

    #[test]
    fn fig3b_truncated_is_competitive_at_high_accuracy() {
        // Paper: [8] consumes less energy than DVAFS at high accuracy.
        let points = sweep().fig3b();
        let dvafs_12b = points
            .iter()
            .find(|p| p.design == "DVAFS" && p.rmse < 1e-3)
            .expect("12-bit DVAFS point");
        let trunc_fine = points
            .iter()
            .filter(|p| p.design == "Trunc [8]" && p.rmse < dvafs_12b.rmse)
            .map(|p| p.energy)
            .fold(f64::INFINITY, f64::min);
        assert!(
            trunc_fine < dvafs_12b.energy * 1.5,
            "trunc {trunc_fine} vs DVAFS {}",
            dvafs_12b.energy
        );
    }

    #[test]
    fn seeds_change_samples_but_not_fig3a_orderings() {
        // Different seeds must draw different Monte-Carlo samples (the
        // measured baseline RMSEs move) while the Fig. 3a energy ordering
        // across regimes and precisions — the paper's claim — is seed-
        // independent.
        let a = MultiplierSweep::with_seed(1).with_samples(512);
        let b = MultiplierSweep::with_seed(2).with_samples(512);
        assert_eq!(a.seed(), 1);

        let rmse = |s: &MultiplierSweep| {
            s.fig3b()
                .iter()
                .filter(|p| p.design == "Liu [3]" && p.rmse > 0.0)
                .map(|p| p.rmse)
                .collect::<Vec<f64>>()
        };
        assert_ne!(rmse(&a), rmse(&b), "distinct seeds drew identical samples");

        let order = |s: &MultiplierSweep| {
            let mut fig3a = s.fig3a();
            fig3a.sort_by(|x, y| x.relative.partial_cmp(&y.relative).expect("finite"));
            fig3a
                .iter()
                .map(|e| (e.mode, e.bits))
                .collect::<Vec<(ScalingMode, u32)>>()
        };
        assert_eq!(order(&a), order(&b), "Fig. 3a ordering drifted with seed");
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let serial = MultiplierSweep::new()
            .with_samples(512)
            .with_executor(Executor::serial());
        let parallel = MultiplierSweep::new()
            .with_samples(512)
            .with_executor(Executor::new(4));
        assert_eq!(serial.fig2(), parallel.fig2());
        assert_eq!(serial.fig3a(), parallel.fig3a());
        assert_eq!(serial.fig3b(), parallel.fig3b());
        assert_eq!(serial.table1(), parallel.table1());
    }

    #[test]
    fn fig3b_rmse_values_span_paper_axis() {
        // Fig. 3b's x axis runs from ~1e-6 to ~1e-2.
        let points = sweep().fig3b();
        let lo = points
            .iter()
            .map(|p| p.rmse)
            .filter(|r| *r > 0.0)
            .fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|p| p.rmse).fold(0.0, f64::max);
        assert!(lo < 1e-4, "finest RMSE {lo}");
        assert!(hi > 1e-3, "coarsest RMSE {hi}");
    }
}
