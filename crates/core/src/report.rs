//! Plain-text table rendering for the experiment binaries.
//!
//! The benchmark harness prints the paper's tables and figure series as
//! aligned text; this module holds the small formatter they share.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use dvafs::report::TextTable;
///
/// let mut t = TextTable::new(vec!["mode", "P [mW]"]);
/// t.row(vec!["1x16b".into(), "36".into()]);
/// let s = t.to_string();
/// assert!(s.contains("1x16b"));
/// assert!(s.contains("P [mW]"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with a fixed number of decimals (helper for binaries).
#[must_use]
pub fn fmt_f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a float in scientific notation with 2 significant decimals.
#[must_use]
pub fn fmt_e(v: f64) -> String {
    format!("{v:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["12345".into(), "x".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("12345"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        let s = t.to_string();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_e(0.000123), "1.23e-4");
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }
}
