//! Plain-text table and JSON rendering for the experiment binaries.
//!
//! The benchmark harness prints the paper's tables and figure series as
//! aligned text; this module holds the small formatter they share, plus
//! [`json`] — stable JSON serialization of the figure data used by the
//! golden snapshot tests (`tests/golden/*.json`) and the `BENCH_sweep.json`
//! emitter. (The offline `serde` stub under `vendor/` has no serializer,
//! so the JSON here is hand-rendered; swap to `serde_json` when a registry
//! is available.)

use std::fmt;

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use dvafs::report::TextTable;
///
/// let mut t = TextTable::new(vec!["mode", "P [mW]"]);
/// t.row(vec!["1x16b".into(), "36".into()]);
/// let s = t.to_string();
/// assert!(s.contains("1x16b"));
/// assert!(s.contains("P [mW]"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with a fixed number of decimals (helper for binaries).
#[must_use]
pub fn fmt_f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a float in scientific notation with 2 significant decimals.
#[must_use]
pub fn fmt_e(v: f64) -> String {
    format!("{v:.2e}")
}

pub mod json {
    //! Stable JSON rendering of the paper's figure data.
    //!
    //! Floats are rendered with Rust's shortest-roundtrip `Display`, so a
    //! serialized figure is an exact (bit-level) record of the computed
    //! values — which is what lets `tests/golden_figures.rs` assert strict
    //! equality and lets the determinism guarantee extend to the JSON
    //! artefacts.

    use crate::sweep::RmsePoint;
    use dvafs_envision::measure::NetworkSummary;
    use dvafs_tech::power::EnergySample;
    use dvafs_tech::scaling::OperatingPoint;

    /// Escapes a string for a JSON string literal.
    #[must_use]
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Renders a float as a JSON number (shortest roundtrip; non-finite
    /// values become `null`, which no figure produces).
    #[must_use]
    pub fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// Joins pre-rendered JSON values into a multi-line array (one element
    /// per line, for reviewable golden-fixture diffs).
    #[must_use]
    pub fn array(elements: &[String]) -> String {
        if elements.is_empty() {
            return "[]".to_string();
        }
        format!("[\n  {}\n]", elements.join(",\n  "))
    }

    /// Fig. 2 operating points as a JSON array.
    #[must_use]
    pub fn fig2_to_json(points: &[OperatingPoint]) -> String {
        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "{{\"mode\":\"{}\",\"bits\":{},\"lanes\":{},\"frequency_mhz\":{},\
                     \"v_as\":{},\"v_nas\":{},\"positive_slack_ns\":{},\
                     \"activity_per_word\":{},\"depth_ratio\":{}}}",
                    escape(&p.mode.to_string()),
                    p.bits,
                    p.lanes,
                    num(p.frequency_mhz),
                    num(p.v_as),
                    num(p.v_nas),
                    num(p.positive_slack_ns),
                    num(p.activity_per_word),
                    num(p.depth_ratio),
                )
            })
            .collect();
        array(&rows)
    }

    /// Fig. 3a energy samples as a JSON array.
    #[must_use]
    pub fn fig3a_to_json(samples: &[EnergySample]) -> String {
        let rows: Vec<String> = samples
            .iter()
            .map(|s| {
                format!(
                    "{{\"mode\":\"{}\",\"bits\":{},\"relative\":{},\"picojoules\":{}}}",
                    escape(&s.mode.to_string()),
                    s.bits,
                    num(s.relative),
                    num(s.picojoules),
                )
            })
            .collect();
        array(&rows)
    }

    /// Fig. 3b energy-vs-RMSE points as a JSON array.
    #[must_use]
    pub fn fig3b_to_json(points: &[RmsePoint]) -> String {
        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "{{\"design\":\"{}\",\"rmse\":{},\"energy\":{}}}",
                    escape(&p.design),
                    num(p.rmse),
                    num(p.energy),
                )
            })
            .collect();
        array(&rows)
    }

    /// Table III network summaries as a JSON array.
    #[must_use]
    pub fn table3_to_json(summaries: &[NetworkSummary]) -> String {
        let rows: Vec<String> = summaries
            .iter()
            .map(|s| {
                let layer_rows: Vec<String> = s
                    .rows
                    .iter()
                    .map(|r| {
                        let l = &r.layer;
                        format!(
                            "{{\"layer\":\"{}\",\"mode\":\"{}\",\"f_mhz\":{},\
                             \"weight_bits\":{},\"input_bits\":{},\"weight_sparsity\":{},\
                             \"input_sparsity\":{},\"mmacs_per_frame\":{},\"v\":{},\
                             \"power_mw\":{},\"tops_per_w\":{}}}",
                            escape(&l.name),
                            escape(&l.mode.to_string()),
                            num(l.f_mhz),
                            l.weight_bits,
                            l.input_bits,
                            num(l.weight_sparsity),
                            num(l.input_sparsity),
                            num(l.mmacs_per_frame),
                            num(r.v),
                            num(r.power_mw),
                            num(r.tops_per_w),
                        )
                    })
                    .collect();
                format!(
                    "{{\"name\":\"{}\",\"total_mmacs\":{},\"avg_power_mw\":{},\
                     \"avg_tops_per_w\":{},\"fps\":{},\"rows\":[{}]}}",
                    escape(&s.name),
                    num(s.total_mmacs),
                    num(s.avg_power_mw),
                    num(s.avg_tops_per_w),
                    num(s.fps),
                    layer_rows.join(","),
                )
            })
            .collect();
        array(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["12345".into(), "x".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("12345"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        let s = t.to_string();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_e(0.000123), "1.23e-4");
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }

    #[test]
    fn json_escape_and_num() {
        assert_eq!(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json::num(1.5), "1.5");
        assert_eq!(json::num(f64::NAN), "null");
        // Shortest-roundtrip: parsing the text back recovers the bits.
        let v = 0.1234567890123_f64.sqrt();
        assert_eq!(json::num(v).parse::<f64>().unwrap().to_bits(), v.to_bits());
        assert_eq!(json::array(&[]), "[]");
    }

    #[test]
    fn json_figures_render_valid_shapes() {
        let sweep = crate::sweep::MultiplierSweep::new().with_samples(256);
        let fig3b = json::fig3b_to_json(&sweep.fig3b());
        assert!(fig3b.starts_with("[\n  {\"design\":\"DVAFS\""));
        assert!(fig3b.ends_with("}\n]"));
        let fig2 = json::fig2_to_json(&sweep.fig2());
        assert_eq!(fig2.matches("\"mode\"").count(), 12);
        let fig3a = json::fig3a_to_json(&sweep.fig3a());
        assert_eq!(fig3a.matches("\"bits\"").count(), 12);
    }
}
