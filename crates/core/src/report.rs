//! Plain-text table and JSON rendering primitives for the experiment
//! scenarios.
//!
//! The scenario registry ([`crate::scenario`]) prints the paper's tables
//! and figure series as aligned text; this module holds the small
//! formatter they share, plus [`json`] — the low-level escaping/number
//! helpers the generic serializer ([`crate::scenario::render`]) builds
//! JSON from — and the [`SweepTiming`]/[`bench_sweep_json`] performance
//! record the `bench_sweep` scenario emits. (The offline `serde` stub
//! under `vendor/` has no serializer, so the JSON here is hand-rendered;
//! swap to `serde_json` when a registry is available.)

use std::fmt;
use std::time::Instant;

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use dvafs::report::TextTable;
///
/// let mut t = TextTable::new(vec!["mode", "P [mW]"]);
/// t.row(vec!["1x16b".into(), "36".into()]);
/// let s = t.to_string();
/// assert!(s.contains("1x16b"));
/// assert!(s.contains("P [mW]"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with a fixed number of decimals (helper for binaries).
#[must_use]
pub fn fmt_f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a float in scientific notation with 2 significant decimals.
#[must_use]
pub fn fmt_e(v: f64) -> String {
    format!("{v:.2e}")
}

/// One timed scenario of the `bench_sweep` performance record.
///
/// Four comparisons share the record, all against `serial_ms` (one
/// thread, bitsliced engine, subword-packed GEMM kernel — the shipping
/// configuration): thread scaling (`parallel_ms`), netlist-engine scaling
/// (`scalar_ms`, the scalar-oracle engine), NN-kernel scaling against
/// both retained oracles (`naive_ms`, the naive MAC loops, and `gemm_ms`,
/// the plain blocked GEMM) and precision-search scaling (`rescan_ms`).
/// Every wall time is a median of N timed repeats after a warmup pass
/// (N is `ScenarioCtx::repeats`).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTiming {
    /// Scenario identifier (e.g. `"fig3b"`).
    pub figure: String,
    /// Serial (1-thread) wall time in milliseconds, bitsliced engine,
    /// subword-packed GEMM kernel.
    pub serial_ms: f64,
    /// Parallel wall time in milliseconds at the configured worker count.
    pub parallel_ms: f64,
    /// Serial (1-thread) wall time in milliseconds on the scalar netlist
    /// engine — the reference oracle the bitsliced engine is timed against.
    /// Scenarios without a gate-level component time close to `serial_ms`.
    pub scalar_ms: f64,
    /// Serial (1-thread) wall time in milliseconds on the naive NN MAC
    /// kernel — the original reference oracle. Scenarios without a CNN in
    /// the loop time close to `serial_ms`.
    pub naive_ms: f64,
    /// Serial (1-thread) wall time in milliseconds on the plain blocked
    /// GEMM kernel — the oracle the subword-packed GEMM is timed against.
    /// Scenarios without a CNN in the loop time close to `serial_ms`.
    pub gemm_ms: f64,
    /// Serial wall time with the rescan precision-search oracle (the
    /// pre-incremental full-forward scan). Scenarios without a precision
    /// search in the loop time close to `serial_ms`.
    pub rescan_ms: f64,
    /// Serial wall time on the per-sample forward oracle
    /// (`BatchPath::SampleMajor`) — the pre-batching baseline the shipping
    /// layer-major fused-batch forward is timed against. Scenarios without
    /// a CNN in the loop time close to `serial_ms`.
    pub sample_major_ms: f64,
}

impl SweepTiming {
    /// Serial-over-parallel speedup (> 1 means parallel won).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            0.0
        }
    }

    /// Scalar-over-bitsliced speedup at one thread (> 1 means the
    /// bitsliced engine won).
    #[must_use]
    pub fn engine_speedup(&self) -> f64 {
        if self.serial_ms > 0.0 {
            self.scalar_ms / self.serial_ms
        } else {
            0.0
        }
    }

    /// Naive-over-packed NN-kernel speedup at one thread (> 1 means the
    /// shipping packed GEMM beat the naive loops).
    #[must_use]
    pub fn kernel_speedup(&self) -> f64 {
        if self.serial_ms > 0.0 {
            self.naive_ms / self.serial_ms
        } else {
            0.0
        }
    }

    /// Gemm-over-packed NN-kernel speedup at one thread (> 1 means the
    /// subword-packed GEMM beat the plain blocked GEMM).
    #[must_use]
    pub fn packed_speedup(&self) -> f64 {
        if self.serial_ms > 0.0 {
            self.gemm_ms / self.serial_ms
        } else {
            0.0
        }
    }

    /// Rescan-over-incremental precision-search speedup at one thread
    /// (> 1 means the prefix-cached incremental search won).
    #[must_use]
    pub fn search_speedup(&self) -> f64 {
        if self.serial_ms > 0.0 {
            self.rescan_ms / self.serial_ms
        } else {
            0.0
        }
    }

    /// Sample-major-over-layer-major batch-path speedup at one thread
    /// (> 1 means the fused wide-GEMM batch forward won).
    #[must_use]
    pub fn batch_speedup(&self) -> f64 {
        if self.serial_ms > 0.0 {
            self.sample_major_ms / self.serial_ms
        } else {
            0.0
        }
    }
}

/// Times one closure in milliseconds, discarding its result.
pub fn time_ms<R>(f: impl FnOnce() -> R) -> f64 {
    let start = Instant::now();
    let _ = f();
    start.elapsed().as_secs_f64() * 1e3
}

/// Runs `f` `repeats` times (clamped to ≥ 1) and returns the median wall
/// time in milliseconds plus the last result — `bench_sweep`'s
/// measurement primitive (the median is robust against the one-off stalls
/// a mean would absorb; an even count averages the two middle samples).
pub fn median_time_ms<R>(repeats: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let repeats = repeats.max(1);
    let mut times = Vec::with_capacity(repeats);
    let mut result = None;
    for _ in 0..repeats {
        // Drop the previous repeat's result *before* starting the clock —
        // deallocating a large result inside the timed closure would bias
        // every repeat after the first.
        result = None;
        times.push(time_ms(|| result = Some(f())));
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    let mid = times.len() / 2;
    let median = if times.len() % 2 == 1 {
        times[mid]
    } else {
        (times[mid - 1] + times[mid]) / 2.0
    };
    (median, result.expect("repeats >= 1"))
}

/// Renders the `BENCH_sweep.json` document: per-scenario serial vs
/// parallel wall time, scalar-engine vs bitsliced-engine wall time
/// (`bitsliced_ms` repeats `serial_ms` so the engine columns read as a
/// pair), naive-kernel and plain-GEMM-kernel wall time against the
/// shipping subword-packed kernel (`packed_ms` likewise repeats
/// `serial_ms`; `gemm_ms` is the *measured* plain-GEMM oracle time),
/// per-sample-oracle vs layer-major fused-batch wall time
/// (`layer_major_ms` repeats `serial_ms`; `sample_major_ms` is the
/// measured per-sample oracle time), the measured thread count, the host
/// parallelism, and the per-measurement repeat count, so the workspace's
/// performance trajectory is recorded per commit by CI.
#[must_use]
pub fn bench_sweep_json(
    timings: &[SweepTiming],
    threads: usize,
    fast: bool,
    repeats: usize,
) -> String {
    let rows: Vec<String> = timings
        .iter()
        .map(|t| {
            format!(
                "    {{\"figure\":\"{}\",\"serial_ms\":{:.3},\"parallel_ms\":{:.3},\
                 \"speedup\":{:.3},\"scalar_ms\":{:.3},\"bitsliced_ms\":{:.3},\
                 \"engine_speedup\":{:.3},\"naive_ms\":{:.3},\"gemm_ms\":{:.3},\
                 \"packed_ms\":{:.3},\"kernel_speedup\":{:.3},\
                 \"packed_speedup\":{:.3},\"rescan_ms\":{:.3},\
                 \"incremental_ms\":{:.3},\"search_speedup\":{:.3},\
                 \"sample_major_ms\":{:.3},\"layer_major_ms\":{:.3},\
                 \"batch_speedup\":{:.3}}}",
                t.figure,
                t.serial_ms,
                t.parallel_ms,
                t.speedup(),
                t.scalar_ms,
                t.serial_ms,
                t.engine_speedup(),
                t.naive_ms,
                t.gemm_ms,
                t.serial_ms,
                t.kernel_speedup(),
                t.packed_speedup(),
                t.rescan_ms,
                t.serial_ms,
                t.search_speedup(),
                t.sample_major_ms,
                t.serial_ms,
                t.batch_speedup()
            )
        })
        .collect();
    format!
        (
        "{{\n  \"threads\": {},\n  \"host_parallelism\": {},\n  \"fast\": {},\n  \"repeats\": {},\n  \"figures\": [\n{}\n  ]\n}}\n",
        threads,
        dvafs_executor::Executor::host_parallelism(),
        fast,
        repeats,
        rows.join(",\n")
    )
}

pub mod json {
    //! Low-level JSON building blocks (escaping, number and array layout).
    //!
    //! Floats are rendered with Rust's shortest-roundtrip `Display`, so a
    //! serialized figure is an exact (bit-level) record of the computed
    //! values — which is what lets `tests/golden_figures.rs` assert strict
    //! equality and lets the determinism guarantee extend to the JSON
    //! artefacts. The per-figure serialization itself lives in the generic
    //! scenario serializer, [`crate::scenario::render`].

    /// Escapes a string for a JSON string literal.
    #[must_use]
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Renders a float as a JSON number (shortest roundtrip; non-finite
    /// values become `null`, which no figure produces).
    #[must_use]
    pub fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// Joins pre-rendered JSON values into a multi-line array (one element
    /// per line, for reviewable golden-fixture diffs).
    #[must_use]
    pub fn array(elements: &[String]) -> String {
        if elements.is_empty() {
            return "[]".to_string();
        }
        format!("[\n  {}\n]", elements.join(",\n  "))
    }

    /// A parsed JSON value — the *reading* half of this module, added for
    /// the `dvafs serve` request codec (the vendored `serde` stub has no
    /// deserializer either). Objects keep their key order in a `Vec` so
    /// nothing about parsing depends on hash-map iteration.
    #[derive(Debug, Clone, PartialEq)]
    pub enum JsonValue {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (always carried as `f64`).
        Num(f64),
        /// A string literal, unescaped.
        Str(String),
        /// An array.
        Array(Vec<JsonValue>),
        /// An object, as `(key, value)` pairs in source order.
        Object(Vec<(String, JsonValue)>),
    }

    impl JsonValue {
        /// Looks up a key in an object (first occurrence); `None` for
        /// non-objects.
        #[must_use]
        pub fn get(&self, key: &str) -> Option<&JsonValue> {
            match self {
                JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The string payload, if this is a string.
        #[must_use]
        pub fn as_str(&self) -> Option<&str> {
            match self {
                JsonValue::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The boolean payload, if this is a boolean.
        #[must_use]
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                JsonValue::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The numeric payload, if this is a number.
        #[must_use]
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                JsonValue::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The numeric payload as a non-negative integer: present, whole,
        /// in `0..=2^53` (exactly representable), else `None`.
        #[must_use]
        pub fn as_u64(&self) -> Option<u64> {
            let n = self.as_f64()?;
            let max = 9_007_199_254_740_992.0; // 2^53
            if n.fract() == 0.0 && (0.0..=max).contains(&n) {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Some(n as u64)
            } else {
                None
            }
        }
    }

    /// Parses one JSON document (any trailing non-whitespace is an error).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    const MAX_DEPTH: usize = 64;

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while let Some(&b) = bytes.get(*pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                *pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => expect(bytes, pos, "null").map(|()| JsonValue::Null),
            Some(b't') => expect(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => expect(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
            Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos, depth + 1)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(JsonValue::Array(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut pairs = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, ":")?;
                    let value = parse_value(bytes, pos, depth + 1)?;
                    pairs.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(JsonValue::Object(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                    }
                }
            }
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
        let start = *pos;
        while let Some(&b) = bytes.get(*pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                *pos += 1;
            } else {
                break;
            }
        }
        let token = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number token");
        token
            .parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number {token:?} at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hi = parse_hex4(bytes, *pos + 1)?;
                            *pos += 4;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if bytes.get(*pos + 1) == Some(&b'\\')
                                    && bytes.get(*pos + 2) == Some(&b'u')
                                {
                                    let lo = parse_hex4(bytes, *pos + 3)?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("invalid low surrogate".to_string());
                                    }
                                    *pos += 6;
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| "invalid surrogate pair".to_string())?
                                } else {
                                    return Err("lone high surrogate".to_string());
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err("lone low surrogate".to_string());
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("invalid escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(&b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", *pos))
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
        let slice = bytes
            .get(at..at + 4)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(slice).map_err(|_| "invalid \\u escape".to_string())?;
        u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["12345".into(), "x".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("12345"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        let s = t.to_string();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_e(0.000123), "1.23e-4");
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }

    #[test]
    fn json_escape_and_num() {
        assert_eq!(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json::num(1.5), "1.5");
        assert_eq!(json::num(f64::NAN), "null");
        // Shortest-roundtrip: parsing the text back recovers the bits.
        let v = 0.1234567890123_f64.sqrt();
        assert_eq!(json::num(v).parse::<f64>().unwrap().to_bits(), v.to_bits());
        assert_eq!(json::array(&[]), "[]");
    }

    #[test]
    fn sweep_timing_speedup() {
        let t = SweepTiming {
            figure: "fig3b".into(),
            serial_ms: 100.0,
            parallel_ms: 25.0,
            scalar_ms: 800.0,
            naive_ms: 450.0,
            gemm_ms: 250.0,
            rescan_ms: 350.0,
            sample_major_ms: 150.0,
        };
        assert!((t.speedup() - 4.0).abs() < 1e-12);
        assert!((t.engine_speedup() - 8.0).abs() < 1e-12);
        assert!((t.kernel_speedup() - 4.5).abs() < 1e-12);
        assert!((t.packed_speedup() - 2.5).abs() < 1e-12);
        assert!((t.search_speedup() - 3.5).abs() < 1e-12);
        assert!((t.batch_speedup() - 1.5).abs() < 1e-12);
        let zero = SweepTiming {
            parallel_ms: 0.0,
            serial_ms: 0.0,
            ..t
        };
        assert_eq!(zero.speedup(), 0.0);
        assert_eq!(zero.engine_speedup(), 0.0);
        assert_eq!(zero.kernel_speedup(), 0.0);
        assert_eq!(zero.packed_speedup(), 0.0);
        assert_eq!(zero.search_speedup(), 0.0);
        assert_eq!(zero.batch_speedup(), 0.0);
    }

    #[test]
    fn bench_sweep_json_shape() {
        let doc = bench_sweep_json(
            &[SweepTiming {
                figure: "fig2".into(),
                serial_ms: 1.0,
                parallel_ms: 0.5,
                scalar_ms: 6.0,
                naive_ms: 4.5,
                gemm_ms: 2.0,
                rescan_ms: 3.0,
                sample_major_ms: 2.5,
            }],
            4,
            true,
            3,
        );
        assert!(doc.contains("\"threads\": 4"));
        assert!(doc.contains("\"host_parallelism\""));
        assert!(doc.contains("\"repeats\": 3"));
        assert!(doc.contains("\"figure\":\"fig2\""));
        assert!(doc.contains("\"speedup\":2.000"));
        assert!(doc.contains("\"scalar_ms\":6.000"));
        assert!(doc.contains("\"bitsliced_ms\":1.000"));
        assert!(doc.contains("\"engine_speedup\":6.000"));
        assert!(doc.contains("\"naive_ms\":4.500"));
        assert!(doc.contains("\"gemm_ms\":2.000"));
        assert!(doc.contains("\"packed_ms\":1.000"));
        assert!(doc.contains("\"kernel_speedup\":4.500"));
        assert!(doc.contains("\"packed_speedup\":2.000"));
        assert!(doc.contains("\"rescan_ms\":3.000"));
        assert!(doc.contains("\"incremental_ms\":1.000"));
        assert!(doc.contains("\"search_speedup\":3.000"));
        assert!(doc.contains("\"sample_major_ms\":2.500"));
        assert!(doc.contains("\"layer_major_ms\":1.000"));
        assert!(doc.contains("\"batch_speedup\":2.500"));
        assert!(doc.ends_with("}\n"));
    }

    #[test]
    fn json_parse_roundtrips_escaped_strings() {
        // parse ∘ escape = identity, including the escapes `escape` emits.
        for s in [
            "plain",
            "a\"b\\c\nd\t\r",
            "unicode ✓ ünïcode",
            "\u{1}\u{1f}",
        ] {
            let doc = format!("\"{}\"", json::escape(s));
            assert_eq!(json::parse(&doc).unwrap().as_str(), Some(s), "{doc}");
        }
        // And explicit \u escapes, surrogate pairs included.
        assert_eq!(
            json::parse("\"\\u0041\\ud83d\\ude00\"").unwrap().as_str(),
            Some("A😀")
        );
    }

    #[test]
    fn json_parse_reads_nested_documents() {
        let v = json::parse(
            "{\"op\": \"run\", \"fast\": true, \"n\": 3, \"x\": -1.5e2, \
             \"arr\": [1, null, {\"k\": false}]}",
        )
        .unwrap();
        assert_eq!(v.get("op").and_then(json::JsonValue::as_str), Some("run"));
        assert_eq!(v.get("fast").and_then(json::JsonValue::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(json::JsonValue::as_u64), Some(3));
        assert_eq!(v.get("x").and_then(json::JsonValue::as_f64), Some(-150.0));
        let json::JsonValue::Array(arr) = v.get("arr").unwrap() else {
            panic!("expected array")
        };
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1], json::JsonValue::Null);
        assert_eq!(
            arr[2].get("k").and_then(json::JsonValue::as_bool),
            Some(false)
        );
        // `as_u64` refuses fractions and negatives.
        assert_eq!(json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(json::parse("-2").unwrap().as_u64(), None);
        assert_eq!(json::parse("0").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn json_parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\":}",
            "nul",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"lone \\ud800 surrogate\"",
            "{} trailing",
            "1..2",
            "{1: 2}",
        ] {
            assert!(json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Deep nesting is bounded, not a stack overflow.
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(json::parse(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn time_ms_is_nonnegative() {
        assert!(time_ms(|| 40 + 2) >= 0.0);
    }

    #[test]
    fn median_time_returns_last_result_and_runs_n_times() {
        let mut runs = 0;
        let (ms, last) = median_time_ms(5, || {
            runs += 1;
            runs
        });
        assert_eq!(runs, 5);
        assert_eq!(last, 5);
        assert!(ms >= 0.0);
        // Zero repeats clamps to one.
        let (_, once) = median_time_ms(0, || 7);
        assert_eq!(once, 7);
    }
}
