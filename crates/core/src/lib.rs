//! # dvafs — Dynamic-Voltage-Accuracy-Frequency-Scaling
//!
//! A production-style reproduction of *DVAFS: Trading Computational
//! Accuracy for Energy Through Dynamic-Voltage-Accuracy-Frequency-Scaling*
//! (Moons, Uytterhoeven, Dehaene, Verhelst — DATE 2017).
//!
//! DVAFS is a circuit-level approximate-computing technique: a
//! subword-parallel multiplier processes `N` reduced-precision words per
//! cycle, so at constant computational throughput the clock — and with it
//! the supply voltage of the **whole** system, including control and
//! memory — can scale down together with switching activity. This crate
//! ties the substrate crates together and adds the run-time policy:
//!
//! * [`controller`] — [`DvafsController`]: pick mode, frequency and rail
//!   voltages for a precision requirement, and schedule mixed-precision
//!   task sequences (e.g. CNN layers);
//! * [`scenario`] — the experiment registry: every figure and table of
//!   the paper as a pluggable [`scenario::Scenario`] with structured
//!   results (run them with `dvafs list` / `dvafs run <id>` from
//!   `crates/bench`);
//! * [`sweep`] — regenerates the paper's multiplier-level evaluation data
//!   (Fig. 2, Fig. 3a, Fig. 3b);
//! * [`serve`] — the long-running request/reply engine behind
//!   `dvafs serve`: newline-delimited JSON over stdin/stdout or TCP,
//!   deterministic ordered replies, and model caches that amortize
//!   across requests;
//! * [`faultplan`] — deterministic fault injection for the serving
//!   layer: seeded per-request panic/delay/oversize/garble schedules
//!   that let chaos tests prove serve degrades per-request, never
//!   per-process;
//! * [`executor`] — the deterministic parallel sweep executor (re-exported
//!   [`dvafs_executor`]): every sweep above runs serial or parallel with
//!   bit-identical results;
//! * [`report`] — plain-text table and JSON rendering primitives shared
//!   by the scenario serializer and the golden snapshot tests.
//!
//! Substrates, re-exported here: [`dvafs_arith`] (gate-level
//! precision-scalable arithmetic), [`dvafs_tech`] (delay/voltage/power
//! models), [`dvafs_simd`] (the SIMD vector processor of Section III-B),
//! [`dvafs_nn`] (fixed-point CNNs, Fig. 6) and [`dvafs_envision`] (the
//! Envision chip of Section V).
//!
//! ## Quickstart
//!
//! ```
//! use dvafs::controller::DvafsController;
//! use dvafs_arith::Precision;
//!
//! let controller = DvafsController::new();
//! let plan = controller.plan(Precision::new(4)?)?;
//! assert_eq!(plan.mode.lanes(), 4);          // 4x4b subwords
//! assert!(plan.frequency_mhz < 200.0);       // clock scaled down
//! assert!(plan.v_as < 1.1);                  // rails scaled down
//! assert!(plan.relative_energy_per_word < 0.1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod controller;
pub mod faultplan;
pub mod report;
pub mod scenario;
pub mod serve;
pub mod sweep;

/// Deterministic parallel sweep execution (the [`dvafs_executor`] crate,
/// re-exported so `dvafs::executor::Executor` is the canonical path).
pub mod executor {
    pub use dvafs_executor::{Executor, THREADS_ENV};
}

pub use controller::{DvafsController, OperatingPlan};
pub use dvafs_arith as arith;
pub use dvafs_envision as envision;
pub use dvafs_nn as nn;
pub use dvafs_simd as simd;
pub use dvafs_tech as tech;
pub use executor::Executor;
pub use sweep::MultiplierSweep;

/// Convenience re-exports for typical use.
pub mod prelude {
    pub use crate::controller::{DvafsController, OperatingPlan};
    pub use crate::executor::Executor;
    pub use crate::scenario::{Scenario, ScenarioCtx, ScenarioResult};
    pub use crate::sweep::MultiplierSweep;
    pub use dvafs_arith::{Precision, SubwordMode};
    pub use dvafs_tech::{ScalingMode, Technology};
}
