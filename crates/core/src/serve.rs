//! `dvafs serve` — the long-running request/reply engine (ROADMAP item 3).
//!
//! The paper's Envision processor is an always-on inference engine; this
//! module is the workspace's equivalent: a std-only service that keeps
//! networks — and with them the per-(layer, bits) [`WeightCache`] panels
//! and thread-local im2col scratch — alive across requests instead of
//! rebuilding them per CLI invocation.
//!
//! ## Wire format
//!
//! Newline-delimited JSON, one request object in, one reply object out,
//! over stdin/stdout (`dvafs serve`) or TCP (`dvafs serve --listen ADDR`).
//! Requests (`"op"` selects; unknown keys are ignored for forward
//! compatibility; a numeric `"id"` is echoed back, defaulting to the
//! request's 0-based sequence number):
//!
//! ```text
//! {"op":"ping"}
//! {"op":"list"}
//! {"op":"run","scenario":"fig2","format":"json","fast":true,"threads":1}
//! {"op":"predict","model":"lenet5","samples":4,"wbits":8,"abits":8}
//! {"op":"shutdown"}
//! ```
//!
//! A `run` reply's `"output"` field carries **exactly** the bytes
//! `dvafs run <id> --format <f> --out DIR` would write to
//! `DIR/<id>.<ext>` (the rendering shared via [`scenario::render`]), so
//! served scenario output is byte-comparable to the golden fixtures. A
//! `predict` reply carries the argmax predictions of
//! [`Network::predict_all`] over a [`ModelSpec`]-resolved network and
//! dataset. Failures — unparseable lines, unknown ops or scenarios,
//! invalid model geometry — are **replies**, not connection errors:
//! `{"id":N,"ok":false,"error":"..."}`.
//!
//! ## Scheduling and determinism
//!
//! A session is [`Executor::pipeline_ordered_policy`]: the connection
//! reader produces requests, the worker pool executes them concurrently
//! (`--threads`), and replies are written back **in request order** with
//! at most `--queue` requests in flight (bounded-queue backpressure — a
//! slow client stalls the reader, not memory). Because every handler is a
//! pure function of its request, the reply stream is byte-identical for
//! any worker count: serving is just another execution strategy, like the
//! bitsliced engine or the packed kernel, and moves no number. The one
//! deliberate exclusion is `bench_sweep`, whose output is wall-clock
//! measurement: it is rejected with an error reply rather than allowed to
//! break the guarantee.
//!
//! ## Failure model
//!
//! The paper's contract — degrade controllably, never fall over — is the
//! serving layer's contract too: **every fault is contained to the
//! request that caused it.** Concretely:
//!
//! * a panicking handler is contained by [`PanicPolicy::Isolate`] and
//!   answered `{"ok":false,"error":"internal: ..."}` at its position in
//!   the reply stream; later requests (including ones already in flight)
//!   are unaffected and keep their exact no-fault reply bytes;
//! * a request line longer than [`MAX_REQUEST_BYTES`] is **drained, not
//!   buffered**, and answered with an error reply;
//! * a line that is not valid UTF-8 gets an error reply and the session
//!   continues (only a transport-level read error fuses the stream);
//! * with `--deadline-ms N`, a `run`/`predict` whose execution overruns
//!   the wall deadline has its result discarded and replaced by an error
//!   reply — the check happens *after* execution, so the reply is always
//!   either the complete result or the deadline error, nothing partial;
//! * under TCP each accepted connection carries a read timeout
//!   (`--idle-timeout-ms`): an idle client is closed cleanly with a
//!   stderr note instead of stalling the sequential accept loop, and
//!   `--max-requests N` caps a session the same clean way;
//! * a panic inside the model cache recovers the poisoned lock and
//!   rebuilds (see [`ServeState`]).
//!
//! All of this is provable because faults are injectable: a seeded
//! [`FaultPlan`](crate::faultplan::FaultPlan) (`--fault-plan`, test-only,
//! or the `DVAFS_FAULT_PLAN` environment variable) deterministically
//! panics, delays, oversizes or garbles chosen requests, and the chaos
//! tests assert the process survives with every non-faulted reply
//! byte-identical to the fault-free transcript.
//!
//! [`WeightCache`]: dvafs_nn::kernel::WeightCache
//! [`Network::predict_all`]: dvafs_nn::Network::predict_all
//! [`ModelSpec`]: dvafs_nn::models::ModelSpec

use crate::faultplan::{FaultKind, FaultPlan};
use crate::report::json::{self, JsonValue};
use crate::scenario::{self, Format, ScenarioCtx};
use dvafs_executor::{Executor, PanicPolicy};
use dvafs_nn::models::ModelSpec;
use dvafs_nn::network::QuantConfig;
use dvafs_nn::Network;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Wire-protocol version, reported by `ping`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Default bound on in-flight requests per session (`--queue`).
pub const DEFAULT_QUEUE: usize = 32;

/// Upper bound on `predict` samples per request, so one request cannot
/// hold the worker pool for minutes.
pub const MAX_PREDICT_SAMPLES: usize = 4096;

/// Upper bound on one request line's bytes (excluding the newline). An
/// oversized line is *drained* from the stream — never accumulated in
/// memory — and answered with an ordered error reply, so an abusive or
/// broken client costs one buffer, not the process.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Default per-connection read timeout under TCP (`--idle-timeout-ms`):
/// a client this idle is closed cleanly so the sequential accept loop
/// can serve the next one.
pub const DEFAULT_IDLE_TIMEOUT_MS: u64 = 30_000;

/// Server configuration: worker count, in-flight request bound, and the
/// fault-containment knobs of the failure model (module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOpts {
    /// Workers executing requests concurrently (1 = fully serial).
    pub threads: usize,
    /// Bounded-queue capacity: at most this many requests are parsed but
    /// not yet replied to (clamped to ≥ 1).
    pub queue: usize,
    /// Per-request wall deadline for `run`/`predict` (`--deadline-ms`):
    /// a request whose execution overruns it has its result discarded
    /// and replaced by an error reply. `None` disables the check.
    pub deadline_ms: Option<u64>,
    /// Session cap (`--max-requests`): after this many requests the
    /// session closes cleanly, as if the client had sent EOF. `None`
    /// serves until EOF/shutdown.
    pub max_requests: Option<usize>,
    /// Per-connection read timeout under TCP (`--idle-timeout-ms`,
    /// milliseconds): an idle connection is closed cleanly with a stderr
    /// note. `None` disables the timeout; stdio sessions ignore it.
    pub idle_timeout_ms: Option<u64>,
    /// Deterministic fault injection (`--fault-plan` /
    /// `DVAFS_FAULT_PLAN`) — test-only; `None` in production.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            threads: Executor::from_env().threads(),
            queue: DEFAULT_QUEUE,
            deadline_ms: None,
            max_requests: None,
            idle_timeout_ms: Some(DEFAULT_IDLE_TIMEOUT_MS),
            fault_plan: None,
        }
    }
}

/// What a finished session reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOutcome {
    /// Requests answered (including error replies).
    pub served: usize,
    /// Whether a `shutdown` request ended the session (as opposed to EOF
    /// or a disconnect) — the TCP accept loop stops serving when true.
    pub shutdown: bool,
    /// Whether the session ended because the connection's read timeout
    /// expired (TCP idle client) — closed cleanly, noted on stderr by
    /// the accept loop.
    pub timed_out: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ModelKey {
    name: &'static str,
    input: usize,
    /// `f64::to_bits` of the channel scale (hashable, exact).
    scale_bits: u64,
    seed: u64,
}

/// The state that outlives a request — and, under TCP, a connection:
/// built networks keyed by resolved spec. Holding `Arc<Network>` (never
/// cloning the network) is what preserves the interior weight-panel cache
/// across requests; a `Network` clone would start cold.
///
/// The cache lock is **poison-recovering**: a contained panic while the
/// lock was held (e.g. mid-`build`) clears the poison flag and drops the
/// possibly half-updated entries, so the next `predict` rebuilds from
/// cold instead of panicking for the rest of the session.
#[derive(Debug, Default)]
pub struct ServeState {
    models: Mutex<HashMap<ModelKey, Arc<Network>>>,
}

impl ServeState {
    /// Fresh state with an empty model cache.
    #[must_use]
    pub fn new() -> Self {
        ServeState::default()
    }

    /// Takes the cache lock, recovering from poison by clearing both the
    /// flag and the stale entries (a rebuild costs a warm-up; a bricked
    /// cache costs every later request in the session).
    fn lock_models(&self) -> MutexGuard<'_, HashMap<ModelKey, Arc<Network>>> {
        self.models.lock().unwrap_or_else(|poisoned| {
            self.models.clear_poison();
            let mut guard = poisoned.into_inner();
            guard.clear();
            guard
        })
    }

    /// Number of distinct networks currently cached.
    #[must_use]
    pub fn cached_models(&self) -> usize {
        self.lock_models().len()
    }

    fn model_for(&self, spec: &ModelSpec) -> Arc<Network> {
        let key = ModelKey {
            name: spec.name(),
            input: spec.input(),
            scale_bits: spec.scale().to_bits(),
            seed: spec.seed(),
        };
        let mut cache = self.lock_models();
        Arc::clone(cache.entry(key).or_insert_with(|| Arc::new(spec.build())))
    }
}

/// One parsed request (the `"op"` dispatch of the wire format).
#[derive(Debug, Clone, PartialEq)]
enum Request {
    Ping,
    List,
    Run {
        scenario: String,
        format: Format,
        fast: bool,
        threads: usize,
    },
    Predict {
        model: String,
        input: Option<usize>,
        scale: Option<f64>,
        model_seed: u64,
        samples: usize,
        data_seed: u64,
        wbits: u32,
        abits: u32,
    },
    Shutdown,
}

/// A request line after parsing: reply id plus either the request or the
/// error to report. Errors are envelope-level data, not session errors —
/// a malformed line still produces an ordered reply.
#[derive(Debug, Clone, PartialEq)]
struct Envelope {
    id: u64,
    seq: usize,
    parsed: Result<Request, String>,
}

fn get_u64(obj: &JsonValue, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
    }
}

fn get_usize(obj: &JsonValue, key: &str, default: usize) -> Result<usize, String> {
    #[allow(clippy::cast_possible_truncation)]
    get_u64(obj, key, default as u64).map(|v| v as usize)
}

fn get_bits(obj: &JsonValue, key: &str) -> Result<u32, String> {
    let v = get_u64(obj, key, 16)?;
    if (1..=16).contains(&v) {
        #[allow(clippy::cast_possible_truncation)]
        Ok(v as u32)
    } else {
        Err(format!("{key:?} must be in 1..=16, got {v}"))
    }
}

fn get_str<'a>(obj: &'a JsonValue, key: &str) -> Result<Option<&'a str>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("{key:?} must be a string")),
    }
}

fn get_bool(obj: &JsonValue, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("{key:?} must be a boolean")),
    }
}

/// Parses one request line. The reply id defaults to the request's
/// sequence number; an explicit numeric `"id"` overrides it (and is
/// honored even when the rest of the request is invalid, so a client can
/// correlate its errors).
fn parse_request(line: &str, seq: usize) -> Envelope {
    let seq_id = seq as u64;
    let doc = match json::parse(line) {
        Ok(doc) => doc,
        Err(e) => {
            return Envelope {
                id: seq_id,
                seq,
                parsed: Err(format!("unparseable request: {e}")),
            }
        }
    };
    if !matches!(doc, JsonValue::Object(_)) {
        return Envelope {
            id: seq_id,
            seq,
            parsed: Err("request must be a JSON object".to_string()),
        };
    }
    let id = match doc.get("id") {
        None => seq_id,
        Some(v) => match v.as_u64() {
            Some(id) => id,
            None => {
                return Envelope {
                    id: seq_id,
                    seq,
                    parsed: Err("\"id\" must be a non-negative integer".to_string()),
                }
            }
        },
    };
    let parsed = parse_op(&doc);
    Envelope { id, seq, parsed }
}

fn parse_op(doc: &JsonValue) -> Result<Request, String> {
    let op = get_str(doc, "op")?.ok_or("missing \"op\"")?;
    match op {
        "ping" => Ok(Request::Ping),
        "list" => Ok(Request::List),
        "shutdown" => Ok(Request::Shutdown),
        "run" => {
            let scenario = get_str(doc, "scenario")?
                .ok_or("run: missing \"scenario\"")?
                .to_string();
            let format = match get_str(doc, "format")? {
                None => Format::Json,
                Some(f) => Format::parse(f)?,
            };
            let fast = get_bool(doc, "fast", false)?;
            let threads = get_usize(doc, "threads", 1)?;
            if threads == 0 {
                return Err("\"threads\" must be positive".to_string());
            }
            Ok(Request::Run {
                scenario,
                format,
                fast,
                threads,
            })
        }
        "predict" => {
            let model = get_str(doc, "model")?.unwrap_or("lenet5").to_string();
            let input = match get_usize(doc, "input", 0)? {
                0 => None,
                n => Some(n),
            };
            let scale = match doc.get("scale") {
                None => None,
                Some(v) => Some(
                    v.as_f64()
                        .ok_or_else(|| "\"scale\" must be a number".to_string())?,
                ),
            };
            let samples = get_usize(doc, "samples", 8)?;
            if !(1..=MAX_PREDICT_SAMPLES).contains(&samples) {
                return Err(format!(
                    "\"samples\" must be in 1..={MAX_PREDICT_SAMPLES}, got {samples}"
                ));
            }
            Ok(Request::Predict {
                model,
                input,
                scale,
                model_seed: get_u64(doc, "model_seed", 1)?,
                samples,
                data_seed: get_u64(doc, "data_seed", 2)?,
                wbits: get_bits(doc, "wbits")?,
                abits: get_bits(doc, "abits")?,
            })
        }
        other => Err(format!(
            "unknown op {other:?} — available: ping, list, run, predict, shutdown"
        )),
    }
}

fn error_reply(id: u64, message: &str) -> String {
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":\"{}\"}}",
        json::escape(message)
    )
}

/// Executes one parsed request and renders its one-line reply.
fn execute_request(env: &Envelope, state: &ServeState) -> (String, bool) {
    let id = env.id;
    let request = match &env.parsed {
        Ok(r) => r,
        Err(e) => return (error_reply(id, e), false),
    };
    match request {
        Request::Ping => (
            format!("{{\"id\":{id},\"ok\":true,\"op\":\"ping\",\"protocol\":{PROTOCOL_VERSION}}}"),
            false,
        ),
        Request::List => {
            let ids: Vec<String> = scenario::registry()
                .iter()
                .map(|s| format!("\"{}\"", json::escape(s.id())))
                .collect();
            (
                format!(
                    "{{\"id\":{id},\"ok\":true,\"op\":\"list\",\"scenarios\":[{}]}}",
                    ids.join(",")
                ),
                false,
            )
        }
        Request::Shutdown => (
            format!(
                "{{\"id\":{id},\"ok\":true,\"op\":\"shutdown\",\"served\":{}}}",
                env.seq + 1
            ),
            true,
        ),
        Request::Run {
            scenario: sid,
            format,
            fast,
            threads,
        } => {
            let Some(s) = scenario::find(sid) else {
                let known: Vec<&str> = scenario::registry().iter().map(|s| s.id()).collect();
                return (
                    error_reply(
                        id,
                        &format!("unknown scenario {sid:?} — available: {}", known.join(", ")),
                    ),
                    false,
                );
            };
            if s.id() == "bench_sweep" {
                return (
                    error_reply(
                        id,
                        "bench_sweep measures wall time and cannot produce a \
                         deterministic reply; use `dvafs run bench_sweep` instead",
                    ),
                    false,
                );
            }
            let ctx = ScenarioCtx::new().with_threads(*threads).with_fast(*fast);
            let result = s.run(&ctx);
            let rendered = scenario::render(s.label(), s.title(), &result, *format);
            (
                format!(
                    "{{\"id\":{id},\"ok\":true,\"op\":\"run\",\"scenario\":\"{}\",\
                     \"format\":\"{}\",\"output\":\"{}\"}}",
                    json::escape(s.id()),
                    format.extension(),
                    json::escape(&rendered)
                ),
                false,
            )
        }
        Request::Predict {
            model,
            input,
            scale,
            model_seed,
            samples,
            data_seed,
            wbits,
            abits,
        } => {
            let spec = match ModelSpec::resolve(model, *input, *scale, *model_seed) {
                Ok(spec) => spec,
                Err(e) => return (error_reply(id, &e), false),
            };
            let net = state.model_for(&spec);
            let config = QuantConfig::uniform(net.layer_count(), *wbits, *abits);
            if let Err(e) = net.warm_weights(&config) {
                return (error_reply(id, &e.to_string()), false);
            }
            let data = spec.dataset(*samples, *data_seed);
            match net.predict_all(&data, &config) {
                Ok(preds) => {
                    let rendered: Vec<String> = preds.iter().map(ToString::to_string).collect();
                    (
                        format!(
                            "{{\"id\":{id},\"ok\":true,\"op\":\"predict\",\
                             \"model\":\"{}\",\"samples\":{samples},\
                             \"wbits\":{wbits},\"abits\":{abits},\
                             \"predictions\":[{}]}}",
                            json::escape(spec.name()),
                            rendered.join(",")
                        ),
                        false,
                    )
                }
                Err(e) => (error_reply(id, &e.to_string()), false),
            }
        }
    }
}

/// One bounded line read off the wire.
enum LineRead {
    /// A complete line (newline stripped), at most [`MAX_REQUEST_BYTES`].
    Line(Vec<u8>),
    /// The line exceeded [`MAX_REQUEST_BYTES`]: its bytes were consumed
    /// from the stream (up to and including the newline, or EOF) but
    /// **never accumulated** beyond the cap.
    Oversized,
    /// Clean end of stream.
    Eof,
    /// The transport's read timeout expired (TCP idle client).
    TimedOut,
    /// A non-timeout transport error.
    Failed(std::io::Error),
}

/// Reads one newline-terminated line without ever buffering more than
/// [`MAX_REQUEST_BYTES`] of it: past the cap the remainder of the line is
/// drained chunk-by-chunk straight out of the `BufRead` buffer. A final
/// unterminated line before EOF still counts as a line.
fn read_bounded_line<R: BufRead>(reader: &mut R) -> LineRead {
    let mut line: Vec<u8> = Vec::new();
    let mut dropped = false;
    loop {
        let (consumed, at_newline) = {
            let chunk = match reader.fill_buf() {
                Ok(chunk) => chunk,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return LineRead::TimedOut
                }
                Err(e) => return LineRead::Failed(e),
            };
            if chunk.is_empty() {
                return if dropped {
                    LineRead::Oversized
                } else if line.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line(std::mem::take(&mut line))
                };
            }
            let newline = chunk.iter().position(|&b| b == b'\n');
            let keep = newline.unwrap_or(chunk.len());
            if !dropped {
                if line.len() + keep > MAX_REQUEST_BYTES {
                    dropped = true;
                    line = Vec::new(); // release, don't retain, the prefix
                } else {
                    line.extend_from_slice(&chunk[..keep]);
                }
            }
            (newline.map_or(chunk.len(), |p| p + 1), newline.is_some())
        };
        reader.consume(consumed);
        if at_newline {
            return if dropped {
                LineRead::Oversized
            } else {
                LineRead::Line(std::mem::take(&mut line))
            };
        }
    }
}

fn oversized_reply_message() -> String {
    format!("request line exceeds {MAX_REQUEST_BYTES} bytes (line drained, not buffered)")
}

/// The request stream: one [`Envelope`] per non-blank line, fused after
/// `shutdown` (the shutdown request itself is still yielded and answered;
/// anything after it on the stream is never read), after `max_requests`
/// requests, or after a transport error. Read-site faults from an active
/// [`FaultPlan`] (oversize, garble) are injected here, *after* the real
/// line has been consumed from the stream — injection can change this
/// request's reply but never desynchronizes the stream.
struct RequestIter<'a, R: BufRead> {
    reader: R,
    seq: usize,
    fused: bool,
    /// `max_requests` session cap (`None` = unbounded).
    limit: Option<usize>,
    /// Active fault plan for read-site injection.
    plan: Option<&'a FaultPlan>,
    /// seq → reply id, recorded for every yielded envelope so the
    /// consumer can still echo the right id when the worker *task* for
    /// this envelope panicked away the envelope itself.
    ids: &'a Mutex<HashMap<usize, u64>>,
    /// Set when the stream ended on a read timeout (idle TCP client).
    timed_out: &'a AtomicBool,
}

impl<R: BufRead> Iterator for RequestIter<'_, R> {
    type Item = Envelope;

    fn next(&mut self) -> Option<Envelope> {
        if self.fused {
            return None;
        }
        if self.limit.is_some_and(|cap| self.seq >= cap) {
            self.fused = true; // session cap: close as cleanly as EOF
            return None;
        }
        loop {
            let seq = self.seq;
            let env = match read_bounded_line(&mut self.reader) {
                LineRead::Eof => return None,
                LineRead::TimedOut => {
                    self.fused = true;
                    self.timed_out.store(true, Ordering::Relaxed);
                    return None;
                }
                LineRead::Failed(e) => {
                    self.fused = true;
                    Envelope {
                        id: seq as u64,
                        seq,
                        parsed: Err(format!("read error: {e}")),
                    }
                }
                LineRead::Oversized => Envelope {
                    id: seq as u64,
                    seq,
                    parsed: Err(oversized_reply_message()),
                },
                LineRead::Line(bytes) => match String::from_utf8(bytes) {
                    Err(_) => Envelope {
                        id: seq as u64,
                        seq,
                        parsed: Err("request is not valid UTF-8".to_string()),
                    },
                    Ok(text) => {
                        let trimmed = text.trim();
                        if trimmed.is_empty() {
                            continue; // blank lines are keep-alives, not requests
                        }
                        match self.plan.and_then(|p| p.fault(seq)) {
                            Some(FaultKind::Oversize) => Envelope {
                                id: seq as u64,
                                seq,
                                parsed: Err(oversized_reply_message()),
                            },
                            // Truncated JSON: exercises the real
                            // malformed-request reply path.
                            Some(FaultKind::Garble) => parse_request("{\"op\":\"garbled", seq),
                            _ => parse_request(trimmed, seq),
                        }
                    }
                },
            };
            self.seq += 1;
            if env.parsed == Ok(Request::Shutdown) {
                self.fused = true;
            }
            self.ids
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(seq, env.id);
            return Some(env);
        }
    }
}

/// Serves one connection: reads newline-delimited JSON requests from
/// `reader`, writes one reply line per request to `writer` **in request
/// order**, executing up to `opts.threads` requests concurrently with at
/// most `opts.queue` in flight. Returns how many requests were answered
/// and whether a `shutdown` request ended the session.
///
/// Determinism contract: the written reply bytes are a pure function of
/// the request bytes — independent of `opts.threads`, `opts.queue`, and
/// scheduling — because replies are consumed in request order off
/// [`Executor::pipeline_ordered`] and every handler is deterministic.
///
/// # Errors
///
/// Returns the first I/O error raised while writing replies (request
/// *parse* problems are error replies, not errors here).
pub fn serve_session<R, W>(
    reader: R,
    writer: &mut W,
    opts: &ServeOpts,
    state: &ServeState,
) -> std::io::Result<SessionOutcome>
where
    R: BufRead + Send,
    W: Write,
{
    let exec = Executor::new(opts.threads);
    let ids: Mutex<HashMap<usize, u64>> = Mutex::new(HashMap::new());
    let timed_out = AtomicBool::new(false);
    let requests = RequestIter {
        reader,
        seq: 0,
        fused: false,
        limit: opts.max_requests,
        plan: opts.fault_plan.as_ref(),
        ids: &ids,
        timed_out: &timed_out,
    };
    let plan = opts.fault_plan.as_ref();
    let mut served = 0usize;
    let mut shutdown = false;
    let mut io_error: Option<std::io::Error> = None;
    // PanicPolicy::Isolate is the whole point of the serving posture: a
    // panicking handler costs its own request an "internal:" error reply
    // — in order, id echoed — and nothing else.
    exec.pipeline_ordered_policy(
        PanicPolicy::Isolate,
        opts.queue,
        requests,
        |seq, env| {
            let started = Instant::now();
            match plan.and_then(|p| p.fault(seq)) {
                Some(FaultKind::Panic) => panic!("injected fault: panic at request {seq}"),
                Some(FaultKind::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
                _ => {}
            }
            let (reply, is_shutdown) = execute_request(&env, state);
            if let Some(deadline) = opts.deadline_ms {
                // Checked around the expensive ops only; the result of an
                // overrunning request is discarded *after* it completed,
                // so the reply is deterministically all-or-error.
                let expensive = matches!(
                    env.parsed,
                    Ok(Request::Run { .. } | Request::Predict { .. })
                );
                if expensive && started.elapsed().as_millis() > u128::from(deadline) {
                    return (
                        error_reply(
                            env.id,
                            &format!("deadline: request exceeded {deadline}ms; result discarded"),
                        ),
                        false,
                    );
                }
            }
            (reply, is_shutdown)
        },
        |seq, result| {
            let (reply, is_shutdown) = match result {
                Ok(pair) => {
                    ids.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .remove(&seq);
                    pair
                }
                Err(task_panic) => {
                    // The envelope died with its task; the id survives in
                    // the side map the reader maintains.
                    let id = ids
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .remove(&seq)
                        .unwrap_or(seq as u64);
                    (
                        error_reply(id, &format!("internal: {}", task_panic.message)),
                        false,
                    )
                }
            };
            if io_error.is_none() {
                let r = writeln!(writer, "{reply}").and_then(|()| writer.flush());
                match r {
                    Ok(()) => served += 1,
                    Err(e) => io_error = Some(e),
                }
            }
            shutdown |= is_shutdown;
        },
    );
    match io_error {
        Some(e) => Err(e),
        None => Ok(SessionOutcome {
            served,
            shutdown,
            timed_out: timed_out.load(Ordering::Relaxed),
        }),
    }
}

/// The TCP accept loop: serves connections sequentially on `listener`
/// (deterministic replies need ordered request streams, and one pipeline
/// already saturates the worker pool), sharing one [`ServeState`] so
/// model caches persist across connections. A client `shutdown` request
/// stops the loop; a connection-level I/O error is logged to stderr and
/// the loop continues with the next client.
///
/// Each accepted connection gets `opts.idle_timeout_ms` as its read
/// timeout: a hung client is closed cleanly (stderr note) instead of
/// stalling every later connection behind the sequential accept loop.
///
/// # Errors
///
/// Returns the listener's `accept` error, which is fatal for the loop.
pub fn serve_tcp(listener: &TcpListener, opts: &ServeOpts) -> std::io::Result<()> {
    let state = ServeState::new();
    for conn in listener.incoming() {
        let stream = conn?;
        if let Some(ms) = opts.idle_timeout_ms.filter(|&ms| ms > 0) {
            stream.set_read_timeout(Some(Duration::from_millis(ms)))?;
        }
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        match serve_session(reader, &mut writer, opts, &state) {
            Ok(outcome) if outcome.shutdown => return Ok(()),
            Ok(outcome) => {
                if outcome.timed_out {
                    eprintln!(
                        "dvafs: serve: closed idle connection after {}ms \
                         read timeout ({} request(s) answered)",
                        opts.idle_timeout_ms.unwrap_or_default(),
                        outcome.served
                    );
                }
            }
            Err(e) => eprintln!("dvafs: serve connection error: {e}"),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn serve_bytes(input: &str, threads: usize, queue: usize) -> (String, SessionOutcome) {
        let state = ServeState::new();
        let mut out = Vec::new();
        let outcome = serve_session(
            Cursor::new(input.to_string()),
            &mut out,
            &ServeOpts {
                threads,
                queue,
                ..ServeOpts::default()
            },
            &state,
        )
        .expect("in-memory serve cannot fail on io");
        (String::from_utf8(out).expect("replies are utf-8"), outcome)
    }

    fn serve_with_opts(input: &str, opts: &ServeOpts) -> (String, SessionOutcome) {
        let state = ServeState::new();
        let mut out = Vec::new();
        let outcome = serve_session(Cursor::new(input.to_string()), &mut out, opts, &state)
            .expect("in-memory serve cannot fail on io");
        (String::from_utf8(out).expect("replies are utf-8"), outcome)
    }

    #[test]
    fn ping_list_and_shutdown_replies() {
        let (out, outcome) = serve_bytes("{\"op\":\"ping\"}\n{\"op\":\"list\"}\n", 1, 4);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            format!("{{\"id\":0,\"ok\":true,\"op\":\"ping\",\"protocol\":{PROTOCOL_VERSION}}}")
        );
        assert!(lines[1].contains("\"scenarios\":[\"fig2\""), "{}", lines[1]);
        assert!(!outcome.shutdown);
        assert_eq!(outcome.served, 2);

        let (out, outcome) = serve_bytes("{\"op\":\"shutdown\"}\n{\"op\":\"ping\"}\n", 1, 4);
        // Requests after shutdown are never read, let alone answered.
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("\"op\":\"shutdown\""));
        assert!(out.contains("\"served\":1"));
        assert!(outcome.shutdown);
    }

    #[test]
    fn malformed_and_unknown_requests_get_error_replies() {
        let input = "not json\n\
                     [1,2]\n\
                     {\"op\":\"frobnicate\"}\n\
                     {\"op\":\"run\"}\n\
                     {\"op\":\"run\",\"scenario\":\"nope\"}\n\
                     {\"op\":\"run\",\"scenario\":\"bench_sweep\"}\n\
                     {\"op\":\"predict\",\"model\":\"resnet\"}\n\
                     {\"op\":\"predict\",\"wbits\":0}\n\
                     {\"op\":\"predict\",\"samples\":0}\n\
                     {\"id\":77,\"op\":\"frobnicate\"}\n";
        let (out, outcome) = serve_bytes(input, 2, 4);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.contains("\"ok\":false")), "{out}");
        assert!(lines[0].contains("unparseable request"));
        assert!(lines[1].contains("must be a JSON object"));
        assert!(lines[2].contains("unknown op"));
        assert!(lines[3].contains("missing \\\"scenario\\\""));
        assert!(lines[4].contains("unknown scenario"));
        assert!(lines[5].contains("bench_sweep"));
        assert!(lines[6].contains("unknown model"));
        assert!(lines[7].contains("1..=16"));
        assert!(lines[8].contains("\\\"samples\\\""));
        // Explicit ids are echoed even on errors.
        assert!(lines[9].starts_with("{\"id\":77,"));
        assert!(!outcome.shutdown);
    }

    #[test]
    fn predict_replies_match_in_process_inference_and_cache_models() {
        let req = "{\"op\":\"predict\",\"model\":\"lenet5\",\"samples\":4,\
                   \"wbits\":6,\"abits\":8}\n";
        let state = ServeState::new();
        let mut out = Vec::new();
        let opts = ServeOpts {
            threads: 2,
            queue: 4,
            ..ServeOpts::default()
        };
        let two = format!("{req}{req}");
        serve_session(Cursor::new(two), &mut out, &opts, &state).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // Identical requests, identical replies (modulo the echoed id).
        assert_eq!(
            lines[0].replacen("\"id\":0", "\"id\":1", 1),
            lines[1].to_string()
        );
        // One model served both requests.
        assert_eq!(state.cached_models(), 1);
        // And the predictions are exactly predict_all's.
        let spec = ModelSpec::resolve("lenet5", None, None, 1).unwrap();
        let config = QuantConfig::uniform(spec.build().layer_count(), 6, 8);
        let expected = spec
            .build()
            .predict_all(&spec.dataset(4, 2), &config)
            .unwrap();
        let rendered: Vec<String> = expected.iter().map(ToString::to_string).collect();
        assert!(
            lines[0].contains(&format!("\"predictions\":[{}]", rendered.join(","))),
            "{}",
            lines[0]
        );
    }

    #[test]
    fn blank_lines_are_skipped_and_ids_keep_counting() {
        let (out, _) = serve_bytes("\n\n{\"op\":\"ping\"}\n\n{\"op\":\"ping\"}\n", 1, 2);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"id\":0,"));
        assert!(lines[1].starts_with("{\"id\":1,"));
    }

    #[test]
    fn model_cache_recovers_from_poison() {
        let state = Arc::new(ServeState::new());
        // Warm the cache, then poison its lock from a panicking thread —
        // the shape a contained mid-build panic leaves behind.
        let spec = ModelSpec::resolve("lenet5", None, None, 1).unwrap();
        let _ = state.model_for(&spec);
        assert_eq!(state.cached_models(), 1);
        let poisoner = Arc::clone(&state);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.models.lock().expect("first lock is clean");
            panic!("poison the model cache");
        })
        .join();
        assert!(state.models.is_poisoned());
        // Recovery: the stale entries are dropped, the flag cleared, and
        // predict works again for the rest of the session.
        assert_eq!(state.cached_models(), 0);
        assert!(!state.models.is_poisoned());
        let rebuilt = state.model_for(&spec);
        assert_eq!(state.cached_models(), 1);
        drop(rebuilt);
        let (out, _) = serve_bytes("{\"op\":\"predict\",\"samples\":2}\n", 1, 1);
        assert!(out.contains("\"ok\":true"), "{out}");
    }

    #[test]
    fn oversized_lines_are_drained_not_buffered() {
        // An over-cap line gets an ordered error reply; the requests on
        // either side are answered exactly as if it had been well-formed.
        let huge = format!(
            "{{\"op\":\"ping\",\"pad\":\"{}\"}}",
            "x".repeat(MAX_REQUEST_BYTES)
        );
        let input = format!("{{\"op\":\"ping\"}}\n{huge}\n{{\"op\":\"list\"}}\n");
        let (out, outcome) = serve_bytes(&input, 2, 4);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"op\":\"ping\""));
        assert!(lines[1].contains("\"ok\":false"), "{}", lines[1]);
        assert!(
            lines[1].contains(&format!("exceeds {MAX_REQUEST_BYTES} bytes")),
            "{}",
            lines[1]
        );
        assert!(lines[1].starts_with("{\"id\":1,"));
        assert!(lines[2].contains("\"scenarios\""));
        assert_eq!(outcome.served, 3);

        // Exactly at the cap is still a (merely unparseable) request,
        // pinning the boundary.
        let at_cap = "x".repeat(MAX_REQUEST_BYTES);
        let (out, _) = serve_bytes(&format!("{at_cap}\n"), 1, 1);
        assert!(out.contains("unparseable request"), "{out}");
        let over_cap = "x".repeat(MAX_REQUEST_BYTES + 1);
        let (out, _) = serve_bytes(&format!("{over_cap}\n"), 1, 1);
        assert!(out.contains("exceeds"), "{out}");
    }

    #[test]
    fn invalid_utf8_line_gets_error_reply_and_session_continues() {
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"{\"op\":\"ping\"}\n");
        input.extend_from_slice(&[0xff, 0xfe, b'{', 0x80, b'\n']);
        input.extend_from_slice(b"{\"op\":\"ping\"}\n");
        let state = ServeState::new();
        let mut out = Vec::new();
        let outcome = serve_session(
            Cursor::new(input),
            &mut out,
            &ServeOpts {
                threads: 2,
                queue: 2,
                ..ServeOpts::default()
            },
            &state,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("\"ok\":true"));
        assert_eq!(
            lines[1],
            "{\"id\":1,\"ok\":false,\"error\":\"request is not valid UTF-8\"}"
        );
        assert!(lines[2].contains("\"ok\":true"));
        assert_eq!(outcome.served, 3);
        assert!(!outcome.timed_out);
    }

    #[test]
    fn injected_panic_is_contained_to_its_request() {
        let input = "{\"op\":\"ping\"}\n\
                     {\"id\":9,\"op\":\"ping\"}\n\
                     {\"op\":\"list\"}\n";
        let (clean, _) = serve_bytes(input, 3, 4);
        let opts = ServeOpts {
            threads: 3,
            queue: 4,
            fault_plan: Some(FaultPlan::parse("panic@1").unwrap()),
            ..ServeOpts::default()
        };
        let (out, outcome) = serve_with_opts(input, &opts);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        // The faulted request: ordered error reply, explicit id echoed
        // even though the envelope died with its task.
        assert_eq!(
            lines[1],
            "{\"id\":9,\"ok\":false,\"error\":\"internal: injected fault: \
             panic at request 1\"}"
        );
        // Its neighbors: byte-identical to the fault-free run.
        let clean_lines: Vec<&str> = clean.lines().collect();
        assert_eq!(lines[0], clean_lines[0]);
        assert_eq!(lines[2], clean_lines[2]);
        assert_eq!(outcome.served, 3);
    }

    #[test]
    fn deadline_discards_overrunning_results_deterministically() {
        // delay(60) ≫ deadline(1): the run result is computed, then
        // discarded in favor of the deadline error. Cheap ops (ping) are
        // not deadline-checked, so a delayed ping still answers normally.
        let input = "{\"op\":\"run\",\"scenario\":\"fig2\",\"format\":\"json\",\"fast\":true}\n\
                     {\"op\":\"ping\"}\n";
        let opts = ServeOpts {
            threads: 2,
            queue: 2,
            deadline_ms: Some(1),
            fault_plan: Some(FaultPlan::parse("delay@0:60,delay@1:60").unwrap()),
            ..ServeOpts::default()
        };
        let (out, _) = serve_with_opts(input, &opts);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"id\":0,\"ok\":false,\"error\":\"deadline: request exceeded \
             1ms; result discarded\"}"
        );
        assert!(lines[1].contains("\"op\":\"ping\""), "{}", lines[1]);
        // Without the delays the same deadline is never tripped by the
        // fast ops themselves... a generous deadline keeps run intact.
        let opts = ServeOpts {
            threads: 2,
            queue: 2,
            deadline_ms: Some(600_000),
            ..ServeOpts::default()
        };
        let (out, _) = serve_with_opts(input, &opts);
        assert!(out.lines().next().unwrap().contains("\"ok\":true"));
    }

    #[test]
    fn max_requests_caps_the_session_cleanly() {
        let input = "{\"op\":\"ping\"}\n".repeat(5);
        let opts = ServeOpts {
            threads: 2,
            queue: 4,
            max_requests: Some(3),
            ..ServeOpts::default()
        };
        let (out, outcome) = serve_with_opts(&input, &opts);
        assert_eq!(out.lines().count(), 3);
        assert_eq!(outcome.served, 3);
        assert!(!outcome.shutdown);
        assert!(!outcome.timed_out);
    }

    #[test]
    fn reply_stream_is_identical_across_worker_counts() {
        let input = "{\"op\":\"ping\"}\n\
                     {\"op\":\"predict\",\"samples\":3,\"wbits\":5,\"abits\":7}\n\
                     {\"op\":\"list\"}\n\
                     bad\n\
                     {\"op\":\"predict\",\"samples\":2}\n\
                     {\"op\":\"shutdown\"}\n";
        let (baseline, _) = serve_bytes(input, 1, 1);
        for (threads, queue) in [(2, 1), (3, 2), (4, 8), (8, 3)] {
            let (out, outcome) = serve_bytes(input, threads, queue);
            assert_eq!(
                out, baseline,
                "replies diverged at {threads} threads / queue {queue}"
            );
            assert!(outcome.shutdown);
            assert_eq!(outcome.served, 6);
        }
    }
}
