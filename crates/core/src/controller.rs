//! The DVAFS run-time controller: from a precision requirement to a full
//! operating point.
//!
//! This is the paper's contribution expressed as a policy: given how many
//! bits a task actually needs (a JPEG DCT tolerates 4, LeNet-5 layers 1–6,
//! AlexNet layers 5–9 — Fig. 6), choose the subword mode, drop the clock by
//! the subword factor at constant throughput, and lower both rails onto the
//! calibrated delay model. The controller also schedules task *sequences*
//! (e.g. a CNN's layers) and estimates total energy, which is how an
//! Envision-class processor hops between operating points at run time.

use dvafs_arith::activity::{extract_das_profile, extract_dvafs_profile, ActivityProfile};
use dvafs_arith::{ArithError, Precision, SubwordMode};
use dvafs_executor::Executor;
use dvafs_tech::scaling::{OperatingPoint, ScalingMode};
use dvafs_tech::technology::Technology;
use serde::{Deserialize, Serialize};

/// A fully-resolved DVAFS operating decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPlan {
    /// Requested precision.
    pub precision: Precision,
    /// Chosen subword mode.
    pub mode: SubwordMode,
    /// Clock in MHz (nominal / lanes, constant computational throughput).
    pub frequency_mhz: f64,
    /// Accuracy-scalable rail in volts.
    pub v_as: f64,
    /// Non-accuracy-scalable rail in volts.
    pub v_nas: f64,
    /// Estimated data-path energy per word relative to full precision.
    pub relative_energy_per_word: f64,
}

/// The DVAFS policy engine.
///
/// # Example
///
/// ```
/// use dvafs::controller::DvafsController;
/// use dvafs_arith::Precision;
///
/// let c = DvafsController::new();
/// let p8 = c.plan(Precision::new(8)?)?;
/// let p16 = c.plan(Precision::new(16)?)?;
/// assert!(p8.relative_energy_per_word < p16.relative_energy_per_word);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DvafsController {
    tech: Technology,
    das_profile: ActivityProfile,
    dvafs_profile: ActivityProfile,
    exec: Executor,
}

impl DvafsController {
    /// Extraction sample count.
    const SAMPLES: usize = 150;
    /// Extraction seed.
    const SEED: u64 = 0xC0117;

    /// Creates a controller on the 40 nm LP technology with freshly
    /// extracted activity profiles.
    #[must_use]
    pub fn new() -> Self {
        DvafsController::with_technology(Technology::lp40())
    }

    /// Creates a controller for a specific technology.
    #[must_use]
    pub fn with_technology(tech: Technology) -> Self {
        DvafsController {
            tech,
            das_profile: extract_das_profile(Self::SAMPLES, Self::SEED),
            dvafs_profile: extract_dvafs_profile(Self::SAMPLES, Self::SEED),
            exec: Executor::from_env(),
        }
    }

    /// Plans task sequences on an explicit executor (thread count). Plans
    /// and energy totals do not depend on the choice.
    #[must_use]
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// The technology the controller plans for.
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Plans the operating point for a precision requirement.
    ///
    /// The profiles cover the paper's 4/8/12/16-bit grid; requirements in
    /// between are planned at the next precision on the grid (a 5-bit task
    /// runs as `2x8b`, as Envision does for VGG16's 5-bit weights).
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::InvalidPrecision`] only through `Precision`
    /// construction by callers; planning itself cannot fail for a valid
    /// precision.
    pub fn plan(&self, precision: Precision) -> Result<OperatingPlan, ArithError> {
        let grid_bits = match precision.bits() {
            1..=4 => 4,
            5..=8 => 8,
            9..=12 => 12,
            _ => 16,
        };
        let op = OperatingPoint::derive(
            &self.tech,
            ScalingMode::Dvafs,
            grid_bits,
            &self.das_profile,
            &self.dvafs_profile,
        );
        Ok(OperatingPlan {
            precision,
            mode: SubwordMode::for_precision(precision),
            frequency_mhz: op.frequency_mhz,
            v_as: op.v_as,
            v_nas: op.v_nas,
            relative_energy_per_word: op.energy_per_word_relative(&self.tech),
        })
    }

    /// Plans a sequence of `(precision, words)` tasks — e.g. CNN layers at
    /// their Fig. 6 requirements — and returns the per-task plans plus the
    /// total relative energy (words weighted), normalized so running every
    /// word at full precision costs `1.0` per word.
    ///
    /// Per-task plans are derived in parallel on the controller's executor;
    /// the energy reduction folds the plans in task order, so totals are
    /// bit-identical to a serial schedule.
    ///
    /// # Errors
    ///
    /// Propagates planning errors (none for valid precisions).
    pub fn schedule(
        &self,
        tasks: &[(Precision, u64)],
    ) -> Result<(Vec<OperatingPlan>, f64), ArithError> {
        let plans = self
            .exec
            .try_par_map_indexed(tasks, |_, &(p, _)| self.plan(p))?;
        let mut energy = 0.0f64;
        let mut words = 0u64;
        for (plan, &(_, n)) in plans.iter().zip(tasks) {
            energy += plan.relative_energy_per_word * n as f64;
            words += n;
        }
        let avg = if words == 0 {
            0.0
        } else {
            energy / words as f64
        };
        Ok((plans, avg))
    }
}

impl Default for DvafsController {
    fn default() -> Self {
        DvafsController::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> DvafsController {
        DvafsController::new()
    }

    #[test]
    fn full_precision_plan_is_nominal() {
        let c = controller();
        let p = c.plan(Precision::new(16).unwrap()).unwrap();
        assert_eq!(p.mode, SubwordMode::X1);
        assert_eq!(p.frequency_mhz, 500.0);
        assert_eq!(p.v_as, 1.1);
        assert!((p.relative_energy_per_word - 1.0).abs() < 1e-9);
    }

    #[test]
    fn four_bit_plan_engages_full_dvafs() {
        let c = controller();
        let p = c.plan(Precision::new(4).unwrap()).unwrap();
        assert_eq!(p.mode, SubwordMode::X4);
        assert_eq!(p.frequency_mhz, 125.0);
        assert!(p.v_as < 0.85 && p.v_nas < 0.95);
        assert!(p.relative_energy_per_word < 0.06);
    }

    #[test]
    fn off_grid_precision_rounds_up() {
        let c = controller();
        let p5 = c.plan(Precision::new(5).unwrap()).unwrap();
        assert_eq!(p5.mode, SubwordMode::X2);
        assert_eq!(p5.frequency_mhz, 250.0);
        let p9 = c.plan(Precision::new(9).unwrap()).unwrap();
        assert_eq!(p9.mode, SubwordMode::X1);
        assert_eq!(p9.frequency_mhz, 500.0);
    }

    #[test]
    fn energy_monotone_in_precision_on_grid() {
        let c = controller();
        let mut prev = f64::INFINITY;
        for bits in [16u32, 12, 8, 4] {
            let e = c
                .plan(Precision::new(bits).unwrap())
                .unwrap()
                .relative_energy_per_word;
            assert!(e < prev, "{bits}b energy {e} not below {prev}");
            prev = e;
        }
    }

    #[test]
    fn schedule_weights_by_word_count() {
        let c = controller();
        let p4 = Precision::new(4).unwrap();
        let p16 = Precision::new(16).unwrap();
        let (_, only4) = c.schedule(&[(p4, 1000)]).unwrap();
        let (_, mixed) = c.schedule(&[(p4, 500), (p16, 500)]).unwrap();
        let (plans, only16) = c.schedule(&[(p16, 1000)]).unwrap();
        assert_eq!(plans.len(), 1);
        assert!(only4 < mixed && mixed < only16);
        assert!((mixed - (only4 + only16) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_schedule_is_bit_identical_to_serial() {
        let tasks: Vec<(Precision, u64)> = (1..=16)
            .map(|b| (Precision::new(b).unwrap(), u64::from(b) * 100))
            .collect();
        let serial = controller().with_executor(Executor::serial());
        let parallel = controller().with_executor(Executor::new(4));
        let (sp, se) = serial.schedule(&tasks).unwrap();
        let (pp, pe) = parallel.schedule(&tasks).unwrap();
        assert_eq!(sp, pp);
        assert_eq!(se.to_bits(), pe.to_bits());
    }

    #[test]
    fn empty_schedule_is_zero_energy() {
        let c = controller();
        let (plans, avg) = c.schedule(&[]).unwrap();
        assert!(plans.is_empty());
        assert_eq!(avg, 0.0);
    }

    #[test]
    fn envision_technology_controller() {
        let c = DvafsController::with_technology(Technology::fdsoi28());
        let p = c.plan(Precision::new(4).unwrap()).unwrap();
        assert_eq!(p.frequency_mhz, 50.0);
        assert!(p.v_as <= 0.70, "28nm 4x4b rail {}", p.v_as);
    }
}
