//! Deterministic fault injection for `dvafs serve` (PR 10's chaos
//! harness).
//!
//! The paper's whole thesis is *controlled* degradation: DVAFS trades
//! bounded error for energy and keeps operating through it. The serving
//! layer claims the same contract — degrade per-request, never
//! per-process — and a claim like that is only worth anything if it is
//! *tested under fault*. This module is the test instrument: a
//! [`FaultPlan`] names, **by request sequence number**, exactly which
//! requests of a serve session are sabotaged and how. Because the plan is
//! data (parseable, renderable, seedable), a chaos proptest can sweep
//! random plans × thread counts × queue depths and assert byte-level
//! invariants against a fault-free golden run — and a CI smoke step can
//! replay one fixed plan forever.
//!
//! ## Fault kinds and injection sites
//!
//! Each entry targets one request `seq` (the 0-based, blank-line-skipping
//! sequence number the wire protocol already echoes as the default `id`).
//! Two sites exist, chosen by the kind:
//!
//! | kind | site | effect |
//! |------|------|--------|
//! | [`Panic`](FaultKind::Panic) | worker (`execute`) | the request's task panics mid-execution |
//! | [`Delay(ms)`](FaultKind::Delay) | worker (`execute`) | the task sleeps before executing (reorders completion, trips `--deadline-ms`) |
//! | [`Oversize`](FaultKind::Oversize) | reader | the request line is treated as exceeding `MAX_REQUEST_BYTES` |
//! | [`Garble`](FaultKind::Garble) | reader | the request line is replaced with truncated JSON |
//!
//! A `Panic`/`Garble`/`Oversize` fault turns that request's reply into an
//! ordered `{"ok":false,...}` error; a `Delay` leaves the reply bytes
//! untouched unless a deadline is configured. No fault, ever, may change
//! any *other* request's reply byte — that is the invariant the chaos
//! tests pin.
//!
//! ## Spelling
//!
//! Plans round-trip through a compact text form, usable both in the
//! [`DVAFS_FAULT_PLAN`] environment variable and the test-only
//! `dvafs serve --fault-plan` flag:
//!
//! ```text
//! panic@3,delay@5:40,oversize@7,garble@2
//! ```
//!
//! (`kind@seq`, comma-separated, `delay` carrying its milliseconds after
//! a colon; at most one fault per seq — later entries for the same seq
//! are rejected, not silently merged.)

use std::collections::BTreeMap;
use std::fmt;

/// Environment variable carrying a serialized [`FaultPlan`] for
/// `dvafs serve` (the `--fault-plan` flag takes precedence). Test-only:
/// production deployments leave it unset and no injection code runs.
pub const FAULT_PLAN_ENV: &str = "DVAFS_FAULT_PLAN";

/// Upper bound on an injected delay, so a seeded plan cannot stall a
/// chaos run into a CI timeout (parse rejects larger values).
pub const MAX_DELAY_MS: u64 = 1_000;

/// One injected fault (see the module table for site and effect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the request's worker task.
    Panic,
    /// Sleep this many milliseconds before executing the request.
    Delay(u64),
    /// Treat the request line as exceeding the request-size cap.
    Oversize,
    /// Replace the request line with truncated (unparseable) JSON.
    Garble,
}

impl FaultKind {
    /// Whether this fault changes the faulted request's *reply* (as
    /// opposed to only its timing). `Delay` is reply-preserving unless a
    /// deadline is configured — the caller owns that qualifier.
    #[must_use]
    pub fn faults_reply(&self) -> bool {
        !matches!(self, FaultKind::Delay(_))
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Delay(ms) => write!(f, "delay:{ms}"),
            FaultKind::Oversize => write!(f, "oversize"),
            FaultKind::Garble => write!(f, "garble"),
        }
    }
}

/// A deterministic per-session fault schedule: at most one [`FaultKind`]
/// per request sequence number.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<usize, FaultKind>,
}

impl FaultPlan {
    /// The empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Parses the `kind@seq[:ms]` comma-separated spelling (see module
    /// docs). Whitespace around entries is tolerated; an empty string is
    /// the empty plan.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending entry for unknown kinds,
    /// missing/unparseable seq, a `delay` without (or with an oversized)
    /// millisecond count, or two entries targeting the same seq.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for entry in text.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (kind_text, seq_text) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault entry {entry:?}: expected kind@seq"))?;
            let (seq_text, arg) = match seq_text.split_once(':') {
                Some((s, a)) => (s, Some(a)),
                None => (seq_text, None),
            };
            let seq: usize = seq_text
                .trim()
                .parse()
                .map_err(|_| format!("fault entry {entry:?}: bad seq {seq_text:?}"))?;
            let kind = match (kind_text.trim(), arg) {
                ("panic", None) => FaultKind::Panic,
                ("oversize", None) => FaultKind::Oversize,
                ("garble", None) => FaultKind::Garble,
                ("delay", Some(ms)) => {
                    let ms: u64 = ms
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault entry {entry:?}: bad delay ms {ms:?}"))?;
                    if ms > MAX_DELAY_MS {
                        return Err(format!(
                            "fault entry {entry:?}: delay exceeds {MAX_DELAY_MS}ms"
                        ));
                    }
                    FaultKind::Delay(ms)
                }
                ("delay", None) => {
                    return Err(format!("fault entry {entry:?}: delay needs delay@seq:ms"))
                }
                (other, _) => {
                    return Err(format!(
                        "fault entry {entry:?}: unknown kind {other:?} \
                         (panic, delay, oversize, garble)"
                    ))
                }
            };
            if plan.faults.insert(seq, kind).is_some() {
                return Err(format!("fault entry {entry:?}: seq {seq} already faulted"));
            }
        }
        Ok(plan)
    }

    /// A deterministic pseudo-random plan over requests `0..len`: each
    /// seq is faulted with probability ~1/4, the kind drawn uniformly
    /// (delays in `1..=50` ms). Same `(seed, len)`, same plan — always;
    /// the chaos proptest derives its plans from proptest-chosen seeds so
    /// every failure replays.
    #[must_use]
    pub fn seeded(seed: u64, len: usize) -> Self {
        let mut plan = FaultPlan::new();
        let mut state = seed;
        let mut next = move || {
            // splitmix64: tiny, seedable, and good enough to scatter
            // faults — no dependency on the vendored rand stub.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for seq in 0..len {
            let roll = next();
            if roll % 4 != 0 {
                continue;
            }
            let kind = match (roll >> 2) % 4 {
                0 => FaultKind::Panic,
                1 => FaultKind::Delay(1 + (roll >> 4) % 50),
                2 => FaultKind::Oversize,
                _ => FaultKind::Garble,
            };
            plan.faults.insert(seq, kind);
        }
        plan
    }

    /// The fault scheduled for request `seq`, if any.
    #[must_use]
    pub fn fault(&self, seq: usize) -> Option<FaultKind> {
        self.faults.get(&seq).copied()
    }

    /// Whether request `seq`'s *reply* is expected to become an error
    /// under this plan (`deadline` tells whether a `Delay` can trip a
    /// configured per-request deadline; pass `None` when no deadline is
    /// set).
    #[must_use]
    pub fn faults_reply_of(&self, seq: usize, deadline_ms: Option<u64>) -> bool {
        match self.fault(seq) {
            None => false,
            Some(FaultKind::Delay(ms)) => deadline_ms.is_some_and(|d| ms > d),
            Some(_) => true,
        }
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of faulted requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Iterates `(seq, kind)` in seq order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, FaultKind)> + '_ {
        self.faults.iter().map(|(&s, &k)| (s, k))
    }
}

impl fmt::Display for FaultPlan {
    /// Renders the plan in the exact spelling [`FaultPlan::parse`]
    /// accepts (entries in seq order), so plans round-trip through the
    /// environment variable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (seq, kind) in &self.faults {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            match kind {
                FaultKind::Delay(ms) => write!(f, "delay@{seq}:{ms}")?,
                other => write!(f, "{other}@{seq}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        let text = "garble@2,panic@3,delay@5:40,oversize@7";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.fault(3), Some(FaultKind::Panic));
        assert_eq!(plan.fault(5), Some(FaultKind::Delay(40)));
        assert_eq!(plan.fault(7), Some(FaultKind::Oversize));
        assert_eq!(plan.fault(2), Some(FaultKind::Garble));
        assert_eq!(plan.fault(0), None);
        assert_eq!(plan.to_string(), text);
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn parse_tolerates_whitespace_and_empty() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ").unwrap().is_empty());
        let plan = FaultPlan::parse(" panic@1 , delay@2:3 ,").unwrap();
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for (bad, what) in [
            ("panic", "expected kind@seq"),
            ("panic@x", "bad seq"),
            ("explode@1", "unknown kind"),
            ("delay@1", "delay needs"),
            ("delay@1:soon", "bad delay ms"),
            ("delay@1:999999", "exceeds"),
            ("panic@1,garble@1", "already faulted"),
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.contains(what), "{bad:?}: {err}");
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::seeded(7, 40);
        let b = FaultPlan::seeded(7, 40);
        assert_eq!(a, b);
        // A different seed almost surely differs (pinned for this seed
        // pair so a splitmix64 regression is loud).
        assert_ne!(a, FaultPlan::seeded(8, 40));
        for (seq, kind) in a.iter() {
            assert!(seq < 40);
            if let FaultKind::Delay(ms) = kind {
                assert!((1..=50).contains(&ms));
            }
        }
        // Seeded plans round-trip through the text spelling too.
        assert_eq!(FaultPlan::parse(&a.to_string()).unwrap(), a);
        assert!(FaultPlan::seeded(1, 0).is_empty());
    }

    #[test]
    fn reply_fault_classification() {
        let plan = FaultPlan::parse("panic@0,delay@1:40,oversize@2,garble@3").unwrap();
        for seq in [0, 2, 3] {
            assert!(plan.faults_reply_of(seq, None), "seq {seq}");
            assert!(plan.faults_reply_of(seq, Some(10)), "seq {seq}");
        }
        // A delay only faults the reply when it overruns a deadline.
        assert!(!plan.faults_reply_of(1, None));
        assert!(!plan.faults_reply_of(1, Some(100)));
        assert!(plan.faults_reply_of(1, Some(10)));
        assert!(!plan.faults_reply_of(9, Some(10)));
    }
}
