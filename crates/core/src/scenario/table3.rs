//! Table III: per-layer power and efficiency of VGG16, AlexNet and
//! LeNet-5 on Envision, with sparsity and DVAFS scaling.

use super::{DataTable, Scenario, ScenarioCtx, ScenarioResult, Value};
use crate::report::{fmt_f, TextTable};
use dvafs_envision::chip::EnvisionChip;
use dvafs_envision::measure::table3_with;

/// The Table III scenario (`dvafs run table3`).
pub struct Table3;

impl Scenario for Table3 {
    fn id(&self) -> &'static str {
        "table3"
    }

    fn label(&self) -> &'static str {
        "Table III"
    }

    fn title(&self) -> &'static str {
        "per-layer power on Envision (sparsity + DVAFS)"
    }

    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult {
        let chip = EnvisionChip::new();
        let summaries = table3_with(&chip, ctx.executor());
        let mut r = ScenarioResult::new();

        // Paper totals for comparison: (name, P mW, TOPS/W, fps).
        let paper_totals = [
            ("VGG16", 26.0, 2.0, 3.3),
            ("AlexNet", 44.0, 1.8, 47.0),
            ("LeNet-5", 25.0, 3.0, 13000.0),
        ];

        for s in &summaries {
            r.line(format_args!(
                "{} ({:.1} MMACs/frame)",
                s.name, s.total_mmacs
            ));
            let mut t = TextTable::new(vec![
                "layer", "mode", "f[MHz]", "V[V]", "wght[b]", "in[b]", "wsp%", "isp%", "MMACs",
                "P[mW]", "TOPS/W",
            ]);
            for row in &s.rows {
                let l = &row.layer;
                t.row(vec![
                    l.name.clone(),
                    l.mode.to_string(),
                    fmt_f(l.f_mhz, 0),
                    fmt_f(row.v, 2),
                    l.weight_bits.to_string(),
                    l.input_bits.to_string(),
                    fmt_f(l.weight_sparsity * 100.0, 0),
                    fmt_f(l.input_sparsity * 100.0, 0),
                    fmt_f(l.mmacs_per_frame, 1),
                    fmt_f(row.power_mw, 1),
                    fmt_f(row.tops_per_w, 1),
                ]);
            }
            r.line(t);
            let p = paper_totals
                .iter()
                .find(|(n, ..)| *n == s.name)
                .expect("paper totals exist");
            r.line(format_args!(
                "total: P = {:.1} mW (paper {:.0}), eff = {:.1} TOPS/W (paper {:.1}), {:.1} fps (paper {})",
                s.avg_power_mw, p.1, s.avg_tops_per_w, p.2, s.fps, p.3
            ));
            r.blank();
        }
        r.line("(per-layer modes, precisions and sparsities follow the published table; power");
        r.line(" and efficiency are produced by the calibrated chip model)");

        let mut data = DataTable::new(
            "table3",
            vec![
                "name",
                "total_mmacs",
                "avg_power_mw",
                "avg_tops_per_w",
                "fps",
                "rows",
            ],
        );
        for s in &summaries {
            let mut layers = DataTable::new(
                "rows",
                vec![
                    "layer",
                    "mode",
                    "f_mhz",
                    "weight_bits",
                    "input_bits",
                    "weight_sparsity",
                    "input_sparsity",
                    "mmacs_per_frame",
                    "v",
                    "power_mw",
                    "tops_per_w",
                ],
            );
            for row in &s.rows {
                let l = &row.layer;
                layers.push_row(vec![
                    l.name.clone().into(),
                    l.mode.to_string().into(),
                    l.f_mhz.into(),
                    l.weight_bits.into(),
                    l.input_bits.into(),
                    l.weight_sparsity.into(),
                    l.input_sparsity.into(),
                    l.mmacs_per_frame.into(),
                    row.v.into(),
                    row.power_mw.into(),
                    row.tops_per_w.into(),
                ]);
            }
            data.push_row(vec![
                s.name.clone().into(),
                s.total_mmacs.into(),
                s.avg_power_mw.into(),
                s.avg_tops_per_w.into(),
                s.fps.into(),
                Value::Nested(layers),
            ]);
        }
        r.push_table(data);
        r
    }
}
