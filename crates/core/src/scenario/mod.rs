//! Pluggable paper experiments: every figure and table of the DATE 2017
//! evaluation as a named, machine-readable [`Scenario`].
//!
//! The original harness grew as one hand-rolled binary per artefact, each
//! with its own `main`, arg parsing and ad-hoc printing. This module turns
//! experiments into *data*:
//!
//! * [`Scenario`] — the experiment interface: an id (`"fig2"`), a banner
//!   label/title, and `run(&ScenarioCtx) -> ScenarioResult`;
//! * [`ScenarioCtx`] — everything a run needs: the root seed, fast-mode,
//!   and the deterministic parallel [`Executor`];
//! * [`ScenarioResult`] — structured tables plus the legacy presentation
//!   text, rendered to text/JSON/CSV by the one generic serializer in
//!   [`render`];
//! * [`registry`] — the static table of all scenarios, in paper order.
//!
//! The `dvafs` CLI in `crates/bench` (`dvafs list`, `dvafs run <id>`) is a
//! thin front-end over this module, and the legacy one-binary-per-figure
//! entry points are shims that delegate here — their stdout is
//! byte-identical to the pre-registry harness, which the smoke tests
//! enforce by diffing subprocess output against [`render::render`].
//!
//! ## Determinism
//!
//! A scenario run is a pure function of its context: same seed, same
//! fast-mode ⇒ bit-identical [`ScenarioResult`] for *any* thread count
//! (the executor merges in index order). The one exception is
//! `bench_sweep`, whose artifact records wall-clock timings; its tables
//! and text stay deterministic.

mod ablations;
mod bench_sweep;
mod cnn_layerwise;
mod fig2;
mod fig3a;
mod fig3b;
mod fig4;
mod fig6;
mod fig6_vgg;
mod fig8;
pub mod render;
pub mod result;
mod table1;
mod table2;
mod table3;

pub use ablations::Ablations;
pub use bench_sweep::BenchSweep;
pub use cnn_layerwise::CnnLayerwise;
pub use fig2::Fig2;
pub use fig3a::Fig3a;
pub use fig3b::Fig3b;
pub use fig4::Fig4;
pub use fig6::Fig6;
pub use fig6_vgg::Fig6Vgg;
pub use fig8::Fig8;
pub use render::{banner_text, render, Format};
pub use result::{Artifact, DataTable, ScenarioResult, Value};
pub use table1::Table1;
pub use table2::Table2;
pub use table3::Table3;

use dvafs_arith::netlist::Engine;
use dvafs_executor::Executor;
use dvafs_nn::{BatchPath, NnKernel, SearchStrategy, DEFAULT_BATCH_SIZE};

/// Shared root seed of every experiment (full determinism). The
/// multiplier-level sweeps additionally pin their own
/// [`crate::sweep::MultiplierSweep::DEFAULT_SEED`] so the golden fixtures
/// of Fig. 2/3a/3b stay stable independently of this value.
pub const EXPERIMENT_SEED: u64 = 0xDA7E2017;

/// Everything a scenario run depends on: root seed, fast-mode, and the
/// executor the sweeps parallelize on.
#[derive(Debug, Clone)]
pub struct ScenarioCtx {
    /// Root seed for stimulus generation, synthetic models and datasets.
    pub seed: u64,
    /// Reduced problem sizes for CI smoke runs (`--fast`). Scenarios that
    /// are already CI-sized ignore it — see [`Scenario::fast_note`].
    pub fast: bool,
    /// Netlist evaluation engine for the gate-level scenarios (bitsliced
    /// by default; scalar is the reference oracle `bench_sweep` times
    /// against it). Never moves a number — only wall time.
    pub engine: Engine,
    /// MAC kernel for the NN scenarios (subword-packed GEMM by default;
    /// the naive layer loops and the plain blocked GEMM are the reference
    /// oracles `bench_sweep` times against it). Like the engine, it never
    /// moves a number — only wall time.
    pub kernel: NnKernel,
    /// Timed repeats per measurement in `bench_sweep` (median-of-N after a
    /// warmup pass; `--repeats`, default 3). Ignored by every other
    /// scenario.
    pub repeats: usize,
    /// Precision-search strategy for the fig6-family scenarios
    /// (prefix-cached incremental by default; the full-forward rescan is
    /// the reference oracle `bench_sweep` times against it). Like the
    /// engine and kernel, it never moves a number — only wall time.
    pub search: SearchStrategy,
    /// Batch path of the NN scenarios (layer-major fused wide GEMM by
    /// default; the per-sample walk is the reference oracle `bench_sweep`
    /// times against it). Like the kernel, it never moves a number — only
    /// wall time.
    pub batch_path: BatchPath,
    /// Samples per layer-major chunk (`--batch-size`, default
    /// [`DEFAULT_BATCH_SIZE`]). Also execution-only.
    pub batch_size: usize,
    exec: Executor,
}

impl ScenarioCtx {
    /// The default context: [`EXPERIMENT_SEED`], full problem sizes, the
    /// bitsliced netlist engine, and the environment-configured executor.
    #[must_use]
    pub fn new() -> Self {
        ScenarioCtx {
            seed: EXPERIMENT_SEED,
            fast: false,
            engine: Engine::default(),
            kernel: NnKernel::default(),
            repeats: 3,
            search: SearchStrategy::default(),
            batch_path: BatchPath::default(),
            batch_size: DEFAULT_BATCH_SIZE,
            exec: Executor::from_env(),
        }
    }

    /// Replaces the executor with an explicit worker count.
    #[must_use]
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_executor(Executor::new(threads))
    }

    /// Replaces the executor.
    #[must_use]
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// Sets fast-mode (reduced problem sizes).
    #[must_use]
    pub fn with_fast(mut self, fast: bool) -> Self {
        self.fast = fast;
        self
    }

    /// Replaces the netlist engine (see [`ScenarioCtx::engine`]).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the NN MAC kernel (see [`ScenarioCtx::kernel`]).
    #[must_use]
    pub fn with_kernel(mut self, kernel: NnKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Replaces the precision-search strategy (see [`ScenarioCtx::search`]).
    #[must_use]
    pub fn with_search(mut self, search: SearchStrategy) -> Self {
        self.search = search;
        self
    }

    /// Replaces the NN batch path (see [`ScenarioCtx::batch_path`]).
    #[must_use]
    pub fn with_batch_path(mut self, batch_path: BatchPath) -> Self {
        self.batch_path = batch_path;
        self
    }

    /// Replaces the layer-major chunk size (clamped to ≥ 1; see
    /// [`ScenarioCtx::batch_size`]).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Replaces the `bench_sweep` repeat count (clamped to ≥ 1).
    #[must_use]
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Replaces the root seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The executor scenario sweeps run on.
    #[must_use]
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The executor's worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// This context with a single-threaded executor (used by
    /// `bench_sweep` to time serial baselines).
    #[must_use]
    pub fn serial(&self) -> Self {
        self.clone().with_executor(Executor::serial())
    }
}

impl Default for ScenarioCtx {
    fn default() -> Self {
        ScenarioCtx::new()
    }
}

/// One registered paper experiment.
///
/// Implementations are stateless unit structs; all run state comes from
/// the [`ScenarioCtx`], so a scenario can be executed concurrently, timed,
/// or embedded in other scenarios (`bench_sweep` does exactly that).
pub trait Scenario: Sync {
    /// Stable machine id, the `dvafs run` argument (e.g. `"fig2"`).
    fn id(&self) -> &'static str;

    /// The banner label — the paper artefact name (e.g. `"Fig. 2"`).
    fn label(&self) -> &'static str;

    /// The banner title — what the experiment reproduces.
    fn title(&self) -> &'static str;

    /// What `--fast` shrinks for this scenario (`dvafs list` shows this).
    /// The default documents the common case: nothing, the workload is
    /// already CI-sized.
    fn fast_note(&self) -> &'static str {
        "no-op (workload is already CI-sized)"
    }

    /// Runs the experiment and returns its structured result.
    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult;
}

/// Checks the cycle-level SIMD machine's read-back outputs against the
/// exact software reference selected by `nn_kernel` — the naive tap loop,
/// the blocked GEMM, or the subword-packed GEMM (all provably identical;
/// this exercises whichever path the run selected). Shared by the
/// fig4/table2 scenarios.
pub(crate) fn simd_outputs_match(
    report: &dvafs_simd::processor::KernelReport,
    kernel: &dvafs_simd::kernels::ConvKernel,
    nn_kernel: NnKernel,
) -> bool {
    match nn_kernel {
        NnKernel::Naive => report.outputs_match(kernel),
        NnKernel::Gemm => report.outputs_match_gemm(kernel),
        NnKernel::GemmPacked => report.outputs_match_packed(kernel),
    }
}

/// The scenario registry, in paper order (figures, tables, then the
/// repo-level ablations and the performance sweep).
static REGISTRY: [&dyn Scenario; 13] = [
    &Fig2,
    &Fig3a,
    &Fig3b,
    &Fig4,
    &Fig6,
    &Fig6Vgg,
    &CnnLayerwise,
    &Fig8,
    &Table1,
    &Table2,
    &Table3,
    &Ablations,
    &BenchSweep,
];

/// All registered scenarios.
#[must_use]
pub fn registry() -> &'static [&'static dyn Scenario] {
    &REGISTRY
}

/// Looks a scenario up by id.
#[must_use]
pub fn find(id: &str) -> Option<&'static dyn Scenario> {
    REGISTRY.iter().copied().find(|s| s.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let mut ids: Vec<&str> = registry().iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), 13);
        for id in &ids {
            assert!(find(id).is_some(), "find({id})");
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 13, "duplicate scenario ids");
        assert!(find("nope").is_none());
    }

    #[test]
    fn ctx_builders() {
        let ctx = ScenarioCtx::new()
            .with_threads(3)
            .with_fast(true)
            .with_seed(7);
        assert_eq!(ctx.threads(), 3);
        assert!(ctx.fast);
        assert_eq!(ctx.seed, 7);
        assert_eq!(ctx.engine, Engine::Bitsliced);
        assert_eq!(ctx.kernel, NnKernel::GemmPacked);
        assert_eq!(ctx.repeats, 3);
        assert_eq!(ctx.search, SearchStrategy::Incremental);
        assert_eq!(ctx.serial().threads(), 1);
        assert_eq!(ctx.serial().seed, 7);
        // serial() preserves the engine and kernel; the builders swap them.
        let scalar = ctx.clone().with_engine(Engine::Scalar);
        assert_eq!(scalar.engine, Engine::Scalar);
        assert_eq!(scalar.serial().engine, Engine::Scalar);
        let naive = ctx.with_kernel(NnKernel::Naive).with_repeats(0);
        assert_eq!(naive.kernel, NnKernel::Naive);
        assert_eq!(naive.serial().kernel, NnKernel::Naive);
        assert_eq!(naive.repeats, 1, "repeats clamps to >= 1");
        let rescan = naive.with_search(SearchStrategy::Rescan);
        assert_eq!(rescan.search, SearchStrategy::Rescan);
        assert_eq!(rescan.serial().search, SearchStrategy::Rescan);
        assert_eq!(rescan.batch_path, BatchPath::LayerMajor);
        assert_eq!(rescan.batch_size, DEFAULT_BATCH_SIZE);
        let sample = rescan
            .with_batch_path(BatchPath::SampleMajor)
            .with_batch_size(0);
        assert_eq!(sample.batch_path, BatchPath::SampleMajor);
        assert_eq!(sample.serial().batch_path, BatchPath::SampleMajor);
        assert_eq!(sample.batch_size, 1, "batch size clamps to >= 1");
    }
}
