//! Table II: power distribution and consumption of the SIMD processor at
//! T = SW x N words/cycle x 500/N MHz.

use super::{DataTable, Scenario, ScenarioCtx, ScenarioResult};
use crate::report::{fmt_f, TextTable};
use dvafs_simd::energy::SimdEnergyModel;
use dvafs_simd::kernels::ConvKernel;
use dvafs_simd::processor::{ProcConfig, Processor};
use dvafs_tech::domains::PowerDomain;
use dvafs_tech::scaling::ScalingMode;

/// The Table II scenario (`dvafs run table2`).
pub struct Table2;

impl Scenario for Table2 {
    fn id(&self) -> &'static str {
        "table2"
    }

    fn label(&self) -> &'static str {
        "Table II"
    }

    fn title(&self) -> &'static str {
        "SIMD power split (V, mem/nas/as %, P)"
    }

    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult {
        let model = SimdEnergyModel::new();
        let kernel = ConvKernel::random(25, 2048, ctx.seed);

        // Paper rows for direct comparison: (sw, label, Vnas, Vas, mem, nas, as, P).
        type PaperRow = (usize, &'static str, f64, f64, u32, u32, u32, u32);
        let paper: [PaperRow; 10] = [
            (8, "1x16b", 1.1, 1.1, 31, 46, 23, 36),
            (8, "1x8b", 1.1, 1.0, 24, 64, 12, 24),
            (8, "1x4b", 1.1, 0.9, 17, 77, 6, 20),
            (8, "2x8b", 0.9, 0.9, 39, 48, 13, 15),
            (8, "4x4b", 0.8, 0.7, 47, 44, 9, 7),
            (64, "1x16b", 1.1, 1.1, 31, 32, 37, 289),
            (64, "1x8b", 1.1, 1.0, 29, 49, 22, 160),
            (64, "1x4b", 1.1, 0.9, 23, 64, 13, 111),
            (64, "2x8b", 0.9, 0.9, 41, 39, 20, 103),
            (64, "4x4b", 0.8, 0.7, 53, 33, 14, 45),
        ];
        let configs: [(&str, ScalingMode, u32); 5] = [
            ("1x16b", ScalingMode::Dvas, 16),
            ("1x8b", ScalingMode::Dvas, 8),
            ("1x4b", ScalingMode::Dvas, 4),
            ("2x8b", ScalingMode::Dvafs, 8),
            ("4x4b", ScalingMode::Dvafs, 4),
        ];

        let mut t = TextTable::new(vec![
            "SW",
            "mode",
            "Vnas",
            "Vas",
            "mem%",
            "nas%",
            "as%",
            "P[mW]",
            "",
            "paper P[mW]",
            "paper mem/nas/as",
        ]);
        // Each row simulates the whole kernel: run the row grid in parallel
        // and merge in table order.
        let grid: Vec<(usize, &str, ScalingMode, u32)> = [8usize, 64]
            .into_iter()
            .flat_map(|sw| configs.iter().map(move |&(l, s, b)| (sw, l, s, b)))
            .collect();
        let reports = ctx
            .executor()
            .par_map_indexed(&grid, |_, &(sw, _, scaling, bits)| {
                let cfg = ProcConfig::new(sw, scaling, bits).expect("valid config");
                let r = Processor::with_model(cfg, model.clone())
                    .run_kernel(&kernel)
                    .expect("kernel runs");
                // Power numbers are only meaningful if the machine computed
                // the right outputs.
                assert!(
                    super::simd_outputs_match(&r, &kernel, ctx.kernel),
                    "outputs must stay bit-exact"
                );
                r
            });

        let mut data = DataTable::new(
            "table2",
            vec![
                "sw", "mode", "v_nas", "v_as", "mem_pct", "nas_pct", "as_pct", "power_mw",
            ],
        );
        for (&(sw, label, _, _), rep) in grid.iter().zip(&reports) {
            let pr = paper
                .iter()
                .find(|p| p.0 == sw && p.1 == label)
                .expect("paper row exists");
            t.row(vec![
                sw.to_string(),
                label.to_string(),
                fmt_f(rep.run.rails.voltage(PowerDomain::NonScalable), 2),
                fmt_f(rep.run.rails.voltage(PowerDomain::AccuracyScalable), 2),
                fmt_f(rep.run.share(PowerDomain::Memory), 0),
                fmt_f(rep.run.share(PowerDomain::NonScalable), 0),
                fmt_f(rep.run.share(PowerDomain::AccuracyScalable), 0),
                fmt_f(rep.run.avg_power_w * 1e3, 1),
                String::new(),
                pr.7.to_string(),
                format!("{}/{}/{}", pr.4, pr.5, pr.6),
            ]);
            data.push_row(vec![
                sw.into(),
                label.into(),
                rep.run.rails.voltage(PowerDomain::NonScalable).into(),
                rep.run.rails.voltage(PowerDomain::AccuracyScalable).into(),
                rep.run.share(PowerDomain::Memory).into(),
                rep.run.share(PowerDomain::NonScalable).into(),
                rep.run.share(PowerDomain::AccuracyScalable).into(),
                (rep.run.avg_power_w * 1e3).into(),
            ]);
        }
        let mut r = ScenarioResult::new();
        r.line(t);
        r.line("(rows 1x8b/1x4b are DVAS operating points; 2x8b/4x4b are DVAFS; memory rail");
        r.line(" fixed at 1.1 V as in the paper)");
        r.push_table(data);
        r
    }
}
