//! Fig. 3a: energy per word of the reconfigurable multiplier in DAS, DVAS
//! and DVAFS regimes, normalized to the non-reconfigurable 16-bit baseline
//! (2.16 pJ/word in 40 nm LP).

use super::{DataTable, Scenario, ScenarioCtx, ScenarioResult};
use crate::report::{fmt_f, TextTable};
use crate::sweep::MultiplierSweep;
use dvafs_tech::scaling::ScalingMode;

/// The Fig. 3a scenario (`dvafs run fig3a`).
pub struct Fig3a;

impl Scenario for Fig3a {
    fn id(&self) -> &'static str {
        "fig3a"
    }

    fn label(&self) -> &'static str {
        "Fig. 3a"
    }

    fn title(&self) -> &'static str {
        "multiplier energy/word vs precision"
    }

    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult {
        let sweep = MultiplierSweep::new()
            .with_engine(ctx.engine)
            .with_executor(ctx.executor().clone());
        let samples = sweep.fig3a();
        let mut r = ScenarioResult::new();

        let mut t = TextTable::new(vec!["mode", "bits", "E/word [rel]", "E/word [pJ]"]);
        for s in &samples {
            t.row(vec![
                s.mode.to_string(),
                format!("{}b", s.bits),
                fmt_f(s.relative, 4),
                fmt_f(s.picojoules, 3),
            ]);
        }
        r.line(t);

        let e16 = samples
            .iter()
            .find(|s| s.mode == ScalingMode::Dvafs && s.bits == 16)
            .expect("16b sample present");
        let e4 = samples
            .iter()
            .find(|s| s.mode == ScalingMode::Dvafs && s.bits == 4)
            .expect("4b sample present");
        r.line(format_args!(
            "reconfiguration overhead at 16b: {:.0}% (paper: 21%, 2.63 pJ vs 2.16 pJ)",
            (e16.relative - 1.0) * 100.0
        ));
        r.line(format_args!(
            "DVAFS saving at 4x4b vs baseline: {:.1}% (paper: >95%)",
            (1.0 - e4.relative) * 100.0
        ));
        r.line(format_args!(
            "multiplier dynamic range 16b -> 4b: {:.1}x (paper: ~20x)",
            e16.relative / e4.relative
        ));

        let mut data = DataTable::new("fig3a", vec!["mode", "bits", "relative", "picojoules"]);
        for s in &samples {
            data.push_row(vec![
                s.mode.to_string().into(),
                s.bits.into(),
                s.relative.into(),
                s.picojoules.into(),
            ]);
        }
        r.push_table(data);
        r
    }
}
