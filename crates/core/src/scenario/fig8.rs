//! Fig. 8: Envision's relative energy per operation at (a) constant
//! 200 MHz and (b) constant 76 GOPS throughput.

use super::{DataTable, Scenario, ScenarioCtx, ScenarioResult};
use crate::report::{fmt_f, TextTable};
use dvafs_envision::chip::EnvisionChip;
use dvafs_envision::measure::Fig8Sweep;
use dvafs_tech::scaling::ScalingMode;

/// The Fig. 8 scenario (`dvafs run fig8`).
pub struct Fig8;

impl Scenario for Fig8 {
    fn id(&self) -> &'static str {
        "fig8"
    }

    fn label(&self) -> &'static str {
        "Fig. 8"
    }

    fn title(&self) -> &'static str {
        "Envision energy/op at constant f and constant T"
    }

    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult {
        let sweep = Fig8Sweep::new(EnvisionChip::new()).with_executor(ctx.executor().clone());
        let mut r = ScenarioResult::new();

        for (label, key, samples) in [
            ("Fig. 8a  constant f = 200 MHz", "fig8a", sweep.fig8a()),
            ("Fig. 8b  constant T = 76 GOPS", "fig8b", sweep.fig8b()),
        ] {
            r.line(label);
            let mut t = TextTable::new(vec![
                "mode",
                "bits",
                "f [MHz]",
                "V [V]",
                "P [mW]",
                "E/op [rel]",
            ]);
            for s in &samples {
                t.row(vec![
                    s.mode.to_string(),
                    format!("{}b", s.bits),
                    fmt_f(s.f_mhz, 0),
                    fmt_f(s.v, 2),
                    fmt_f(s.power_mw, 1),
                    fmt_f(s.energy_rel, 3),
                ]);
            }
            r.line(t);
            let gain = |m: ScalingMode| {
                let e16 = samples
                    .iter()
                    .find(|s| s.mode == ScalingMode::Das && s.bits == 16)
                    .expect("baseline present")
                    .energy_rel;
                let e4 = samples
                    .iter()
                    .find(|s| s.mode == m && s.bits == 4)
                    .expect("4b point present")
                    .energy_rel;
                e16 / e4
            };
            r.line(format_args!(
                "16b -> 4b gains: DAS {:.1}x | DVAS {:.1}x | DVAFS {:.1}x",
                gain(ScalingMode::Das),
                gain(ScalingMode::Dvas),
                gain(ScalingMode::Dvafs)
            ));
            r.blank();

            let mut data = DataTable::new(
                key,
                vec!["mode", "bits", "f_mhz", "v", "power_mw", "energy_rel"],
            );
            for s in &samples {
                data.push_row(vec![
                    s.mode.to_string().into(),
                    s.bits.into(),
                    s.f_mhz.into(),
                    s.v.into(),
                    s.power_mw.into(),
                    s.energy_rel.into(),
                ]);
            }
            r.push_table(data);
        }
        r.line("paper anchors: 300 mW @16b/200MHz (0.25 TOPS/W real); 2.4x (DAS) and 3.8x");
        r.line("(DVAS) at constant f; 104-108 mW @4x4b/200MHz (2.8 TOPS/W); 18 mW @4x4b/50MHz");
        r.line("(4.2 TOPS/W) — 6.9x/4.1x better than DAS/DVAS at constant throughput.");
        r
    }
}
