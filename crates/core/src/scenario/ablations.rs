//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! 1. **Operand isolation** in the subword multiplier — gating operands
//!    before the partial-product cells (vs. killing products afterwards)
//!    is what reaches the paper's `k3` activity reduction.
//! 2. **Optimized sign extension** in the Booth–Wallace multiplier — the
//!    inverted-bit + constant scheme vs. naive sign-bit replication, which
//!    keeps high columns toggling under input gating (`k0`).
//! 3. **Voltage-rail quantization** — how much of the DVAFS energy win a
//!    coarse power grid gives back.

use super::{DataTable, Scenario, ScenarioCtx, ScenarioResult};
use crate::report::{fmt_f, TextTable};
use dvafs_arith::multiplier::dvafs::{
    build_subword_multiplier, build_subword_multiplier_unisolated,
};
use dvafs_arith::multiplier::exact::{build_booth_wallace, build_booth_wallace_naive};
use dvafs_arith::multiplier::DvafsMultiplier;
use dvafs_arith::netlist::{to_bits, Engine, Netlist};
use dvafs_arith::subword::SubwordMode;
use dvafs_tech::delay::DelayModel;
use dvafs_tech::voltage::VoltageSolver;
use rand::{Rng, SeedableRng};

/// The design-choice ablations scenario (`dvafs run ablations`).
pub struct Ablations;

fn drive_subword(
    engine: Engine,
    netlist: &Netlist,
    mode: SubwordMode,
    pairs: &[(u16, u16)],
) -> f64 {
    engine
        .simulate_stream(netlist, pairs.len(), |s| {
            let (a, b) = pairs[s];
            DvafsMultiplier::stimulus(a, b, mode)
        })
        .weighted_toggles
}

fn drive_booth(engine: Engine, netlist: &Netlist, bits: u32, pairs: &[(u16, u16)]) -> f64 {
    let drop = 16 - bits;
    engine
        .simulate_stream(netlist, pairs.len(), |s| {
            // Gate LSBs as a DAS data path does (arithmetic truncation).
            let (a, b) = pairs[s];
            let aq = ((a as i16 >> drop) << drop) as u16;
            let bq = ((b as i16 >> drop) << drop) as u16;
            let mut inputs = to_bits(u64::from(aq), 16);
            inputs.extend(to_bits(u64::from(bq), 16));
            inputs
        })
        .weighted_toggles
}

impl Scenario for Ablations {
    fn id(&self) -> &'static str {
        "ablations"
    }

    fn label(&self) -> &'static str {
        "Ablations"
    }

    fn title(&self) -> &'static str {
        "design choices behind the extracted parameters"
    }

    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult {
        let exec = ctx.executor();
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let pairs: Vec<(u16, u16)> = (0..150).map(|_| (rng.gen(), rng.gen())).collect();
        let mut r = ScenarioResult::new();

        // 1. Operand isolation in the subword multiplier.
        r.line("1. Operand isolation (subword multiplier, per-cycle activity vs 1x16b)");
        let isolated = build_subword_multiplier();
        let unisolated = build_subword_multiplier_unisolated();
        let modes = [
            (SubwordMode::X1, 1.0),
            (SubwordMode::X2, 1.0 / 1.82),
            (SubwordMode::X4, 1.0 / 3.2),
        ];
        // Each toggle simulation is independent: drive both designs at every
        // mode in parallel, design-major so row m reads [m] and [3 + m].
        let sub_grid: Vec<(&Netlist, SubwordMode)> = [&isolated, &unisolated]
            .into_iter()
            .flat_map(|n| modes.iter().map(move |&(m, _)| (n, m)))
            .collect();
        let toggles = exec.par_map_indexed(&sub_grid, |_, &(n, m)| {
            drive_subword(ctx.engine, n, m, &pairs)
        });
        let (base_iso, base_un) = (toggles[0], toggles[3]);
        let mut t = TextTable::new(vec!["mode", "isolated", "unisolated", "paper k3 target"]);
        let mut isolation = DataTable::new(
            "operand_isolation",
            vec!["mode", "isolated", "unisolated", "paper_k3_target"],
        );
        for (m, (mode, paper)) in modes.into_iter().enumerate() {
            t.row(vec![
                mode.to_string(),
                fmt_f(toggles[m] / base_iso, 3),
                fmt_f(toggles[3 + m] / base_un, 3),
                fmt_f(paper, 3),
            ]);
            isolation.push_row(vec![
                mode.to_string().into(),
                (toggles[m] / base_iso).into(),
                (toggles[3 + m] / base_un).into(),
                paper.into(),
            ]);
        }
        r.line(t);

        // 2. Sign-extension scheme in the Booth-Wallace multiplier.
        r.line("2. Sign-extension scheme (Booth-Wallace, DAS activity vs 16b)");
        let optimized = build_booth_wallace(16);
        let naive = build_booth_wallace_naive(16);
        let booth_grid: Vec<(&Netlist, u32)> = [&optimized, &naive]
            .into_iter()
            .flat_map(|n| [16u32, 12, 8, 4].into_iter().map(move |b| (n, b)))
            .collect();
        let booth = exec.par_map_indexed(&booth_grid, |_, &(n, b)| {
            drive_booth(ctx.engine, n, b, &pairs)
        });
        // Both columns normalized to the OPTIMIZED design's 16-bit activity so
        // the absolute switched-capacitance cost of naive replication shows.
        let b_opt = booth[0];
        let mut t = TextTable::new(vec!["precision", "optimized", "naive replication"]);
        let mut sign_ext = DataTable::new(
            "sign_extension",
            vec!["bits", "optimized", "naive_replication"],
        );
        for (i, bits) in [16u32, 12, 8, 4].into_iter().enumerate() {
            t.row(vec![
                format!("{bits}b"),
                fmt_f(booth[i] / b_opt, 3),
                fmt_f(booth[4 + i] / b_opt, 3),
            ]);
            sign_ext.push_row(vec![
                bits.into(),
                (booth[i] / b_opt).into(),
                (booth[4 + i] / b_opt).into(),
            ]);
        }
        r.line(t);
        r.line(format_args!(
            "(cells: optimized {} vs naive {})",
            optimized.gate_count(),
            naive.gate_count()
        ));
        r.blank();

        // 3. Voltage-rail quantization.
        r.line("3. Rail quantization: DVAFS 4x4b energy factor vs grid step");
        let model = DelayModel::calibrate(1.1, &[(0.9, 2.0), (0.75, 8.0)]).expect("calibrates");
        let mut t = TextTable::new(vec!["step [V]", "V(8x slack)", "(V/Vnom)^2"]);
        let mut rails = DataTable::new(
            "rail_quantization",
            vec!["step_v", "v_at_8x_slack", "energy_factor"],
        );
        for step in [0.005f64, 0.01, 0.05, 0.10] {
            let solver = VoltageSolver::new(model, 0.70, step);
            let v = solver.min_voltage(8.0);
            t.row(vec![
                fmt_f(step, 3),
                fmt_f(v, 3),
                fmt_f((v / 1.1) * (v / 1.1), 3),
            ]);
            rails.push_row(vec![step.into(), v.into(), ((v / 1.1) * (v / 1.1)).into()]);
        }
        r.line(t);
        r.line("a 0.1 V grid gives back ~15-25% of the voltage-scaling energy win,");
        r.line("which is why split rails with fine steps matter in a DVAFS system.");

        r.push_table(isolation);
        r.push_table(sign_ext);
        r.push_table(rails);
        r
    }
}
