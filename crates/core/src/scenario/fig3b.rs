//! Fig. 3b: relative energy vs product RMSE for DVAFS against the
//! approximate-multiplier baselines \[3\], \[3\]+VS, \[4\], \[5\] and \[8\].

use super::{DataTable, Scenario, ScenarioCtx, ScenarioResult};
use crate::report::{fmt_e, fmt_f, TextTable};
use crate::sweep::MultiplierSweep;

/// The Fig. 3b scenario (`dvafs run fig3b`).
pub struct Fig3b;

impl Scenario for Fig3b {
    fn id(&self) -> &'static str {
        "fig3b"
    }

    fn label(&self) -> &'static str {
        "Fig. 3b"
    }

    fn title(&self) -> &'static str {
        "energy vs RMSE: DVAFS against [3], [4], [5], [8]"
    }

    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult {
        let sweep = MultiplierSweep::new()
            .with_engine(ctx.engine)
            .with_executor(ctx.executor().clone());
        // Sweep order feeds the data table (and the golden fixture); the
        // presentation sorts a copy, as the original binary always did.
        let points = sweep.fig3b();
        let mut sorted = points.clone();
        sorted.sort_by(|a, b| {
            a.design
                .cmp(&b.design)
                .then(a.rmse.partial_cmp(&b.rmse).expect("finite"))
        });

        let mut r = ScenarioResult::new();
        let mut t = TextTable::new(vec!["design", "RMSE [-]", "relative energy [-]"]);
        for p in &sorted {
            t.row(vec![p.design.clone(), fmt_e(p.rmse), fmt_f(p.energy, 3)]);
        }
        r.line(t);
        r.line("expected shape (paper): DVAFS dominates below ~1e-4 RMSE; the programmable");
        r.line("truncated multiplier [8] is the closest competitor at high accuracy; [3]-[5]");
        r.line("are fixed design points with higher energy at matched accuracy.");

        let mut data = DataTable::new("fig3b", vec!["design", "rmse", "energy"]);
        for p in &points {
            data.push_row(vec![
                p.design.clone().into(),
                p.rmse.into(),
                p.energy.into(),
            ]);
        }
        r.push_table(data);
        r
    }
}
