//! Fig. 2: operating frequency (a), positive slack at the nominal rail
//! (b), supply voltage at zero slack (c) and relative switching activity
//! (d) of the DVAFS multiplier at constant 500 MOPS.

use super::{DataTable, Scenario, ScenarioCtx, ScenarioResult};
use crate::report::{fmt_f, TextTable};
use crate::sweep::MultiplierSweep;
use dvafs_tech::scaling::ScalingMode;

/// The Fig. 2 scenario (`dvafs run fig2`).
pub struct Fig2;

impl Scenario for Fig2 {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn label(&self) -> &'static str {
        "Fig. 2"
    }

    fn title(&self) -> &'static str {
        "f, slack, V and activity vs precision @ 500 MOPS"
    }

    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult {
        let sweep = MultiplierSweep::new()
            .with_engine(ctx.engine)
            .with_executor(ctx.executor().clone());
        let points = sweep.fig2();
        let mut r = ScenarioResult::new();

        for (label, metric) in [
            ("Fig. 2a  Operating frequency [MHz]", 0usize),
            ("Fig. 2b  Positive slack @1.1V [ns]", 1),
            ("Fig. 2c  Supply voltage Vas @0 slack [V]", 2),
            ("Fig. 2d  Relative activity per word [-]", 3),
        ] {
            r.line(label);
            let mut t = TextTable::new(vec!["mode", "16b", "12b", "8b", "4b"]);
            for mode in ScalingMode::ALL {
                let series: Vec<String> = points
                    .iter()
                    .filter(|p| p.mode == mode)
                    .map(|p| match metric {
                        0 => fmt_f(p.frequency_mhz, 0),
                        1 => fmt_f(p.positive_slack_ns, 2),
                        2 => fmt_f(p.v_as, 2),
                        _ => fmt_f(p.activity_per_word, 3),
                    })
                    .collect();
                let mut cells = vec![mode.to_string()];
                cells.extend(series);
                t.row(cells);
            }
            r.line(t);
        }
        r.line("paper anchors: DVAFS f = 500/500/250/125 MHz; DAS slack ~1 ns @4b;");
        r.line("DVAFS slack ~7 ns @4x4b; DVAS V -> 0.9 V; DVAFS V -> 0.75 V;");
        r.line("activity drop 12.5x (DAS) and 3.2x per cycle (DVAFS) at 4b.");

        let mut data = DataTable::new(
            "fig2",
            vec![
                "mode",
                "bits",
                "lanes",
                "frequency_mhz",
                "v_as",
                "v_nas",
                "positive_slack_ns",
                "activity_per_word",
                "depth_ratio",
            ],
        );
        for p in &points {
            data.push_row(vec![
                p.mode.to_string().into(),
                p.bits.into(),
                p.lanes.into(),
                p.frequency_mhz.into(),
                p.v_as.into(),
                p.v_nas.into(),
                p.positive_slack_ns.into(),
                p.activity_per_word.into(),
                p.depth_ratio.into(),
            ]);
        }
        r.push_table(data);
        r
    }
}
