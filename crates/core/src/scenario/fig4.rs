//! Fig. 4: energy per word of the SIMD processor (lanes + memory) vs
//! precision at constant throughput, for SW = 8 and SW = 64.

use super::{DataTable, Scenario, ScenarioCtx, ScenarioResult};
use crate::report::{fmt_f, TextTable};
use dvafs_simd::energy::SimdEnergyModel;
use dvafs_simd::kernels::ConvKernel;
use dvafs_simd::processor::{ProcConfig, Processor};
use dvafs_tech::scaling::ScalingMode;

/// The Fig. 4 scenario (`dvafs run fig4`).
pub struct Fig4;

impl Scenario for Fig4 {
    fn id(&self) -> &'static str {
        "fig4"
    }

    fn label(&self) -> &'static str {
        "Fig. 4"
    }

    fn title(&self) -> &'static str {
        "SIMD processor energy/word vs precision @ constant T"
    }

    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult {
        let model = SimdEnergyModel::new();
        let kernel = ConvKernel::random(25, 2048, ctx.seed);

        // The full evaluation grid, row-major as the table prints it. Each
        // cell simulates the whole kernel, so cells run in parallel and
        // merge in grid order (the 1x16b DAS cell — cell 0 of each SW
        // block by `precision_grid`'s contract — doubles as the SW's
        // baseline).
        let grid: Vec<(usize, ScalingMode, u32)> = [8usize, 64]
            .into_iter()
            .flat_map(|sw| {
                ScalingMode::precision_grid()
                    .into_iter()
                    .map(move |(mode, b)| (sw, mode, b))
            })
            .collect();
        let energies = ctx
            .executor()
            .par_map_indexed(&grid, |_, &(sw, mode, bits)| {
                let cfg = ProcConfig::new(sw, mode, bits).expect("valid config");
                let r = Processor::with_model(cfg, model.clone())
                    .run_kernel(&kernel)
                    .expect("kernel runs");
                assert!(
                    super::simd_outputs_match(&r, &kernel, ctx.kernel),
                    "outputs must stay bit-exact"
                );
                r.energy_per_word()
            });

        let mut r = ScenarioResult::new();
        let mut t = TextTable::new(vec!["SW", "mode", "16b", "12b", "8b", "4b"]);
        let cells_per_sw = ScalingMode::ALL.len() * ScalingMode::PRECISIONS.len();
        for (s, sw) in [8usize, 64].into_iter().enumerate() {
            // Baseline: the same-width processor at 1x16b (DAS is row 0).
            let base = energies[s * cells_per_sw];
            for (m, mode) in ScalingMode::ALL.into_iter().enumerate() {
                let row = s * cells_per_sw + m * 4;
                let series: Vec<String> = energies[row..row + 4]
                    .iter()
                    .map(|&e| fmt_f(e / base, 3))
                    .collect();
                let mut cells = vec![sw.to_string(), mode.to_string()];
                cells.extend(series);
                t.row(cells);
            }
        }
        r.line(t);
        r.line("(energy relative to the same-SW 1x16b processor at 500 MHz)");
        r.line("paper anchors: DVAFS reaches ~0.15 (85% saving) at 4x4b; DAS/DVAS stop near");
        r.line("0.40-0.55 because decode and memory do not scale; SW=64 gains more in DVAS,");
        r.line("while DVAFS is strong even at SW=8.");

        let mut data = DataTable::new(
            "fig4",
            vec!["sw", "mode", "bits", "energy_per_word", "relative"],
        );
        for (cell, (&(sw, mode, bits), &e)) in grid.iter().zip(&energies).enumerate() {
            let base = energies[(cell / cells_per_sw) * cells_per_sw];
            data.push_row(vec![
                sw.into(),
                mode.to_string().into(),
                bits.into(),
                e.into(),
                (e / base).into(),
            ]);
        }
        r.push_table(data);
        r
    }
}
