//! Fig. 6: per-layer minimum quantization (weights and input feature
//! maps) of LeNet-5 and AlexNet at 99 % relative accuracy.
//!
//! Substitution note: weights are synthetic pseudo-trained parameters and
//! the data is a synthetic structured set, so the *absolute* bit counts
//! differ from the published trained networks; the reproduced claims are
//! (1) the requirement varies layer to layer, (2) it is far below 16 bits,
//! (3) deeper/wider AlexNet needs more bits than LeNet-5.

use super::{DataTable, Scenario, ScenarioCtx, ScenarioResult};
use crate::report::TextTable;
use dvafs_nn::dataset::SyntheticDataset;
use dvafs_nn::models;
use dvafs_nn::precision::{LayerRequirement, Operand, PrecisionSearch};

/// The Fig. 6 scenario (`dvafs run fig6`).
pub struct Fig6;

impl Scenario for Fig6 {
    fn id(&self) -> &'static str {
        "fig6"
    }

    fn label(&self) -> &'static str {
        "Fig. 6"
    }

    fn title(&self) -> &'static str {
        "per-layer bits @ 99% relative accuracy"
    }

    fn fast_note(&self) -> &'static str {
        "shrinks datasets (48->12 / 24->6 samples) and the AlexNet stand-in (scale 0.25->0.125)"
    }

    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult {
        let exec = ctx.executor();
        // The scan strategy comes from the context (prefix-cached
        // incremental by default, the rescan oracle when bench_sweep times
        // the search speedup); like the kernel, it never moves a number.
        let search = PrecisionSearch::new().with_strategy(ctx.search);
        let mut r = ScenarioResult::new();

        // `--fast` shrinks datasets and the AlexNet stand-in so CI smoke
        // tests exercise the full search path in seconds; paper-scale
        // numbers need the default configuration.
        let fast = ctx.fast;
        if fast {
            r.line("(--fast: reduced dataset/model sizes, figures not paper-scale)\n");
        }
        let alex_input = 67; // minimum resolution the AlexNet pool cascade supports
        let (lenet_samples, alex_scale, alex_samples) =
            if fast { (12, 0.125, 6) } else { (48, 0.25, 24) };

        // A pseudo-trained classifier whose predictions collapsed to one or
        // two classes makes the relative-accuracy metric vacuous; center its
        // logits first (see Network::calibrate_logits).
        let ensure_diverse = |net: &mut dvafs_nn::Network, data: &SyntheticDataset| {
            if dvafs_nn::precision::prediction_diversity(net, data) < 3 {
                net.calibrate_logits(data);
            }
        };

        // LeNet-5 on the digit-like 28x28 set. The MAC kernel comes from
        // the context (blocked GEMM by default, the naive oracle when
        // bench_sweep times the kernel speedup); it never moves a number.
        let mut lenet = models::lenet5(ctx.seed)
            .with_kernel(ctx.kernel)
            .with_batch_path(ctx.batch_path)
            .with_batch_size(ctx.batch_size);
        let digits = SyntheticDataset::digits(lenet_samples, ctx.seed + 1);
        ensure_diverse(&mut lenet, &digits);
        let lw = search.search_with(&lenet, &digits, Operand::Weights, exec);
        let la = search.search_with(&lenet, &digits, Operand::Activations, exec);

        // AlexNet at reduced resolution/width (substitution; see DESIGN.md).
        let mut alexnet = models::alexnet(alex_input, alex_scale, ctx.seed + 2)
            .with_kernel(ctx.kernel)
            .with_batch_path(ctx.batch_path)
            .with_batch_size(ctx.batch_size);
        let images = SyntheticDataset::image_like(alex_samples, alex_input, 10, ctx.seed + 3);
        ensure_diverse(&mut alexnet, &images);
        let aw = search.search_with(&alexnet, &images, Operand::Weights, exec);
        let aa = search.search_with(&alexnet, &images, Operand::Activations, exec);

        for (title, w, a) in [
            ("LeNet-5 (paper: 1-6 bits)", (&lw, &la)),
            ("AlexNet (paper: 5-9 bits)", (&aw, &aa)),
        ]
        .map(|(t, p)| (t, p.0, p.1))
        {
            r.line(title);
            let mut t = TextTable::new(vec!["layer", "weights [bits]", "inputs [bits]"]);
            for (rw, ra) in w.iter().zip(a.iter()) {
                t.row(vec![
                    rw.layer_name.clone(),
                    rw.bits.to_string(),
                    ra.bits.to_string(),
                ]);
            }
            r.line(t);
        }

        let max = |reqs: &[LayerRequirement]| reqs.iter().map(|req| req.bits).max().unwrap_or(16);
        r.line(format_args!(
            "LeNet-5 max requirement: {}b | AlexNet max requirement: {}b",
            max(&lw).max(max(&la)),
            max(&aw).max(max(&aa))
        ));
        r.line("(the deeper, wider network needs more precision, as in the paper)");

        let mut data = DataTable::new(
            "fig6",
            vec!["network", "layer", "weight_bits", "input_bits"],
        );
        for (network, w, a) in [("LeNet-5", &lw, &la), ("AlexNet", &aw, &aa)] {
            for (rw, ra) in w.iter().zip(a.iter()) {
                data.push_row(vec![
                    network.into(),
                    rw.layer_name.clone().into(),
                    rw.bits.into(),
                    ra.bits.into(),
                ]);
            }
        }
        r.push_table(data);
        r
    }
}
