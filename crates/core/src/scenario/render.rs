//! The generic scenario serializer: one renderer each for text, JSON and
//! CSV over [`ScenarioResult`]s, replacing the per-figure `fig*_to_json`
//! functions that used to live in `dvafs::report::json`.
//!
//! Guarantees the test suite pins down:
//!
//! * **Text** is the legacy presentation: the experiment banner followed
//!   by the byte-identical body the original figure binaries printed.
//! * **JSON** renders every [`DataTable`] as an array of row objects with
//!   shortest-roundtrip floats — a single-table result is a bare array
//!   (byte-identical to the pre-registry golden fixtures), a multi-table
//!   result is an object keyed by table.
//! * **CSV** renders the same tables with the same scalar formatting, one
//!   section per table; nested tables are denormalized into their parent
//!   rows so every value in the JSON appears in the CSV.

use super::result::{DataTable, ScenarioResult, Value};
use crate::report::json::{escape, num};
use crate::report::TextTable;

/// An output format of the `dvafs` CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Legacy presentation text (banner + tables + paper anchors).
    Text,
    /// Machine-readable JSON (golden-fixture compatible).
    Json,
    /// Flat CSV, one section per data table.
    Csv,
}

impl Format {
    /// Parses a `--format` argument value.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized value back as the error message payload.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            other => Err(format!(
                "unknown format {other:?} (expected text, json or csv)"
            )),
        }
    }

    /// The file extension artifacts of this format are written with.
    #[must_use]
    pub fn extension(self) -> &'static str {
        match self {
            Format::Text => "txt",
            Format::Json => "json",
            Format::Csv => "csv",
        }
    }
}

/// The experiment banner every figure binary prints first (label is the
/// paper artefact name, e.g. `"Fig. 2"`).
#[must_use]
pub fn banner_text(label: &str, title: &str) -> String {
    format!("=== DVAFS reproduction | {label}: {title} ===\n\n")
}

/// Renders a result in one format. `label`/`title` feed the text banner
/// and are ignored by the machine-readable formats.
#[must_use]
pub fn render(label: &str, title: &str, result: &ScenarioResult, format: Format) -> String {
    match format {
        Format::Text => format!("{}{}", banner_text(label, title), result.text()),
        Format::Json => render_json(result),
        Format::Csv => render_csv(result),
    }
}

/// One row as a JSON object: `{"col":value,...}`, no whitespace.
fn row_object(table: &DataTable, row: &[Value]) -> String {
    let fields: Vec<String> = table
        .columns()
        .iter()
        .zip(row)
        .map(|(col, cell)| format!("\"{}\":{}", escape(col), cell_json(cell)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

fn cell_json(cell: &Value) -> String {
    match cell {
        Value::Str(s) => format!("\"{}\"", escape(s)),
        Value::Int(i) => i.to_string(),
        Value::Float(v) => num(*v),
        // Nested tables render inline (the multi-line layout is reserved
        // for the top level, where golden diffs are reviewed).
        Value::Nested(t) => {
            let rows: Vec<String> = t.rows().iter().map(|r| row_object(t, r)).collect();
            format!("[{}]", rows.join(","))
        }
    }
}

/// A table as a multi-line JSON array of row objects (one row per line —
/// the layout the golden fixtures pin).
#[must_use]
pub fn table_to_json(table: &DataTable) -> String {
    let rows: Vec<String> = table.rows().iter().map(|r| row_object(table, r)).collect();
    crate::report::json::array(&rows)
}

/// The JSON rendering of a whole result: a bare array for a single table,
/// an object keyed by table for several. No trailing newline, so a written
/// file is byte-comparable to the golden fixtures.
#[must_use]
pub fn render_json(result: &ScenarioResult) -> String {
    match result.tables() {
        [single] => table_to_json(single),
        many => {
            let entries: Vec<String> = many
                .iter()
                .map(|t| format!("\"{}\": {}", escape(t.key()), table_to_json(t)))
                .collect();
            format!("{{\n{}\n}}", entries.join(",\n"))
        }
    }
}

/// Escapes one CSV field (RFC 4180: quote when a comma, quote, or line
/// break is present; double embedded quotes).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Denormalizes a table with one nested-table column into flat rows: the
/// parent's scalar cells are repeated on every child row. A parent row
/// whose nested table is empty still emits one row (child cells blank).
///
/// # Panics
///
/// Panics when a table nests more than one table column per row (no
/// scenario produces that shape).
#[must_use]
pub fn flatten_table(table: &DataTable) -> DataTable {
    if !table.has_nested() {
        return table.clone();
    }
    let nested_idx: Vec<usize> = table
        .rows()
        .iter()
        .flat_map(|r| {
            r.iter()
                .enumerate()
                .filter(|(_, c)| matches!(c, Value::Nested(_)))
                .map(|(i, _)| i)
        })
        .collect::<std::collections::BTreeSet<usize>>()
        .into_iter()
        .collect();
    assert_eq!(
        nested_idx.len(),
        1,
        "table {}: CSV flattening supports exactly one nested column",
        table.key()
    );
    let nested_col = nested_idx[0];
    let child_columns: Vec<String> = table
        .rows()
        .iter()
        .find_map(|r| match &r[nested_col] {
            Value::Nested(t) => Some(t.columns().to_vec()),
            _ => None,
        })
        .unwrap_or_default();
    let mut columns: Vec<String> = table
        .columns()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != nested_col)
        .map(|(_, c)| c.clone())
        .collect();
    columns.extend(child_columns.iter().cloned());
    let mut flat = DataTable::new(table.key(), columns);
    for row in table.rows() {
        let scalars: Vec<Value> = row
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != nested_col)
            .map(|(_, c)| c.clone())
            .collect();
        let children: &[Vec<Value>] = match &row[nested_col] {
            Value::Nested(t) => t.rows(),
            _ => &[],
        };
        if children.is_empty() {
            let mut cells = scalars.clone();
            cells.extend(child_columns.iter().map(|_| Value::Str(String::new())));
            flat.push_row(cells);
        }
        for child in children {
            let mut cells = scalars.clone();
            cells.extend(child.iter().cloned());
            flat.push_row(cells);
        }
    }
    flat
}

/// One flattened table as CSV: a header line, then one line per row, with
/// the same scalar formatting as the JSON rendering.
#[must_use]
pub fn table_to_csv(table: &DataTable) -> String {
    let flat = flatten_table(table);
    let mut out = String::new();
    out.push_str(
        &flat
            .columns()
            .iter()
            .map(|c| csv_field(c))
            .collect::<Vec<String>>()
            .join(","),
    );
    out.push('\n');
    for row in flat.rows() {
        out.push_str(
            &row.iter()
                .map(|c| csv_field(&c.to_text()))
                .collect::<Vec<String>>()
                .join(","),
        );
        out.push('\n');
    }
    out
}

/// The CSV rendering of a whole result: one section per table, separated
/// by a blank line and introduced by a `# key` comment when the result
/// holds more than one table.
#[must_use]
pub fn render_csv(result: &ScenarioResult) -> String {
    match result.tables() {
        [single] => table_to_csv(single),
        many => many
            .iter()
            .map(|t| format!("# {}\n{}", t.key(), table_to_csv(t)))
            .collect::<Vec<String>>()
            .join("\n"),
    }
}

/// A table's generic plain-text rendering (column-aligned, same cell text
/// as the CSV) — the shape the serializer agreement tests compare against.
#[must_use]
pub fn table_to_text(table: &DataTable) -> TextTable {
    let flat = flatten_table(table);
    let mut t = TextTable::new(flat.columns().to_vec());
    for row in flat.rows() {
        t.row(row.iter().map(Value::to_text).collect());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataTable {
        let mut t = DataTable::new("sample", vec!["name", "bits", "e"]);
        t.push_row(vec!["a,b".into(), 16u32.into(), 0.5f64.into()]);
        t.push_row(vec!["q\"x".into(), 4u32.into(), 500.0f64.into()]);
        t
    }

    #[test]
    fn json_single_table_is_bare_array() {
        let mut r = ScenarioResult::new();
        r.push_table(sample());
        assert_eq!(
            render_json(&r),
            "[\n  {\"name\":\"a,b\",\"bits\":16,\"e\":0.5},\n  \
             {\"name\":\"q\\\"x\",\"bits\":4,\"e\":500}\n]"
        );
    }

    #[test]
    fn json_multi_table_is_keyed_object() {
        let mut r = ScenarioResult::new();
        r.push_table(sample());
        let mut t2 = DataTable::new("other", vec!["x"]);
        t2.push_row(vec![1u32.into()]);
        r.push_table(t2);
        let json = render_json(&r);
        assert!(json.starts_with("{\n\"sample\": [\n"));
        assert!(json.contains("\"other\": [\n  {\"x\":1}\n]"));
        assert!(json.ends_with("\n}"));
    }

    #[test]
    fn csv_escapes_and_matches_json_values() {
        let csv = table_to_csv(&sample());
        assert_eq!(csv, "name,bits,e\n\"a,b\",16,0.5\n\"q\"\"x\",4,500\n");
    }

    #[test]
    fn nested_tables_flatten_into_parent_rows() {
        let mut inner = DataTable::new("rows", vec!["layer", "p"]);
        inner.push_row(vec!["L1".into(), 1.5f64.into()]);
        inner.push_row(vec!["L2".into(), 2.5f64.into()]);
        let mut outer = DataTable::new("nets", vec!["name", "total", "rows"]);
        outer.push_row(vec!["net".into(), 4.0f64.into(), Value::Nested(inner)]);
        let flat = flatten_table(&outer);
        assert_eq!(flat.columns(), ["name", "total", "layer", "p"]);
        assert_eq!(flat.rows().len(), 2);
        assert_eq!(flat.rows()[1][0], Value::Str("net".into()));
        assert_eq!(flat.rows()[1][3], Value::Float(2.5));
        // JSON keeps the nesting inline.
        let json = table_to_json(&outer);
        assert!(
            json.contains("\"rows\":[{\"layer\":\"L1\",\"p\":1.5},{\"layer\":\"L2\",\"p\":2.5}]")
        );
    }

    #[test]
    fn format_parsing() {
        assert_eq!(Format::parse("json").unwrap(), Format::Json);
        assert_eq!(Format::parse("csv").unwrap(), Format::Csv);
        assert_eq!(Format::parse("text").unwrap(), Format::Text);
        assert!(Format::parse("yaml").is_err());
        assert_eq!(Format::Json.extension(), "json");
    }

    #[test]
    fn text_rendering_prepends_banner() {
        let mut r = ScenarioResult::new();
        r.line("body");
        let s = render("Fig. X", "a title", &r, Format::Text);
        assert_eq!(s, "=== DVAFS reproduction | Fig. X: a title ===\n\nbody\n");
    }
}
