//! Table I: the D(V)A(F)S parameters of the 16-bit subword-parallel
//! multiplier, extracted from gate-level simulation.

use super::{DataTable, Scenario, ScenarioCtx, ScenarioResult};
use crate::report::{fmt_f, TextTable};
use crate::sweep::MultiplierSweep;
use dvafs_arith::activity::paper_table1;

/// The Table I scenario (`dvafs run table1`).
pub struct Table1;

impl Scenario for Table1 {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn label(&self) -> &'static str {
        "Table I"
    }

    fn title(&self) -> &'static str {
        "D(V)A(F)S parameters of the multiplier"
    }

    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult {
        let sweep = MultiplierSweep::new()
            .with_engine(ctx.engine)
            .with_executor(ctx.executor().clone());
        let ours = sweep.table1();
        let paper = paper_table1();
        let mut r = ScenarioResult::new();

        let mut t = TextTable::new(vec![
            "parameter",
            "4b",
            "8b",
            "12b",
            "16b",
            "",
            "paper 4b",
            "paper 8b",
            "paper 12b",
            "paper 16b",
        ]);
        let col =
            |f: &dyn Fn(usize) -> f64| -> Vec<String> { (0..4).map(|i| fmt_f(f(i), 2)).collect() };
        // `ours` is ordered 4, 8, 12, 16; paper_table1 likewise.
        let rows: Vec<(&str, Vec<String>, Vec<String>)> = vec![
            ("k0", col(&|i| ours[i].k0), col(&|i| paper[i].k0)),
            ("k1", col(&|i| ours[i].k1), col(&|i| paper[i].k1)),
            ("k2", col(&|i| ours[i].k2), col(&|i| paper[i].k2)),
            ("k3", col(&|i| ours[i].k3), col(&|i| paper[i].k3)),
            ("k4", col(&|i| ours[i].k4), col(&|i| paper[i].k4)),
            (
                "k5",
                col(&|i| ours[i].k5),
                (0..4).map(|_| "-".to_string()).collect(),
            ),
            (
                "N",
                (0..4).map(|i| ours[i].n.to_string()).collect(),
                (0..4).map(|i| paper[i].n.to_string()).collect(),
            ),
        ];
        for (name, o, p) in rows {
            let mut cells = vec![name.to_string()];
            cells.extend(o);
            cells.push(String::new());
            cells.extend(p);
            t.row(cells);
        }
        r.line(t);
        r.line("(ours: extracted from toggle simulation of the mode-gated multiplier netlist");
        r.line(" plus the calibrated 40nm alpha-power delay model; paper: Table I values)");

        let mut data = DataTable::new(
            "table1",
            vec!["bits", "n", "k0", "k1", "k2", "k3", "k4", "k5"],
        );
        for k in &ours {
            data.push_row(vec![
                k.bits.into(),
                k.n.into(),
                k.k0.into(),
                k.k1.into(),
                k.k2.into(),
                k.k3.into(),
                k.k4.into(),
                k.k5.into(),
            ]);
        }
        r.push_table(data);
        r
    }
}
