//! The `BENCH_sweep.json` emitter: wall time of **every registered
//! scenario**, serial vs parallel *and* scalar-engine vs bitsliced-engine,
//! plus thread count and host parallelism — the per-commit performance
//! record CI uploads as an artifact.
//!
//! Since the registry refactor this scenario times the real experiments
//! through [`super::registry`], so the perf trajectory covers every
//! figure and table, not just the parallelized multiplier sweeps. While
//! timing, it also *verifies* the determinism contract twice over: each
//! scenario's parallel [`ScenarioResult`] is asserted equal to the serial
//! one, and the scalar-oracle run is asserted equal to the bitsliced one,
//! before a timing is recorded. The gate-level scenarios (fig2/fig3a/
//! fig3b/table1/ablations) are where `engine_speedup` bites; scenarios
//! without a netlist in the loop time near 1x.
//!
//! Timings go to the JSON artifact only — the presentation text stays
//! byte-stable across thread counts and runs, so smoke tests can diff it
//! like any other scenario. Without `--fast` this runs every scenario at
//! paper scale twice (minutes of gate-level simulation); CI uses `--fast`.

use super::{registry, DataTable, Scenario, ScenarioCtx, ScenarioResult};
use crate::report::{bench_sweep_json, time_ms, SweepTiming};
use dvafs_arith::netlist::Engine;

/// The performance-sweep scenario (`dvafs run bench_sweep`).
pub struct BenchSweep;

impl Scenario for BenchSweep {
    fn id(&self) -> &'static str {
        "bench_sweep"
    }

    fn label(&self) -> &'static str {
        "BENCH sweep"
    }

    fn title(&self) -> &'static str {
        "serial vs parallel wall time per scenario"
    }

    fn fast_note(&self) -> &'static str {
        "runs every timed scenario in its own fast configuration"
    }

    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult {
        let serial_ctx = ctx.serial();
        // The scalar-oracle run: one thread, scalar netlist engine — the
        // pre-bitslicing baseline every engine_speedup column is against.
        let scalar_ctx = serial_ctx.clone().with_engine(Engine::Scalar);
        let mut timings = Vec::new();
        let mut r = ScenarioResult::new();

        // Warm the process-wide memoized delay-model calibrations so the
        // first timed run isn't charged their one-time grid searches.
        let _ = dvafs_tech::technology::Technology::lp40();
        let _ = dvafs_tech::technology::Technology::fdsoi28();

        for s in registry() {
            if s.id() == self.id() {
                continue; // timing the timer would recurse
            }
            let mut serial_result = None;
            let serial_ms = time_ms(|| serial_result = Some(s.run(&serial_ctx)));
            let mut parallel_result = None;
            let parallel_ms = time_ms(|| parallel_result = Some(s.run(ctx)));
            let mut scalar_result = None;
            let scalar_ms = time_ms(|| scalar_result = Some(s.run(&scalar_ctx)));
            assert!(
                serial_result == parallel_result,
                "{}: parallel result diverged from serial",
                s.id()
            );
            assert!(
                scalar_result == serial_result,
                "{}: scalar-engine result diverged from bitsliced",
                s.id()
            );
            r.line(format_args!(
                "measured {}: serial and parallel runs bit-identical",
                s.id()
            ));
            timings.push(SweepTiming {
                figure: s.id().to_string(),
                serial_ms,
                parallel_ms,
                scalar_ms,
            });
        }

        let mut data = DataTable::new(
            "timings",
            vec![
                "scenario",
                "serial_ms",
                "parallel_ms",
                "speedup",
                "scalar_ms",
                "engine_speedup",
            ],
        );
        for t in &timings {
            data.push_row(vec![
                t.figure.clone().into(),
                t.serial_ms.into(),
                t.parallel_ms.into(),
                t.speedup().into(),
                t.scalar_ms.into(),
                t.engine_speedup().into(),
            ]);
        }
        r.push_table(data);
        r.push_artifact(
            "BENCH_sweep.json",
            bench_sweep_json(&timings, ctx.threads(), ctx.fast),
        );
        r
    }
}
