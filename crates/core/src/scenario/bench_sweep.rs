//! The `BENCH_sweep.json` emitter: wall time of **every registered
//! scenario**, serial vs parallel, scalar-engine vs bitsliced-engine *and*
//! naive-/plain-GEMM-kernel vs subword-packed-kernel, plus thread count,
//! host parallelism and the repeat count — the per-commit performance
//! record CI uploads as an artifact.
//!
//! Since the registry refactor this scenario times the real experiments
//! through [`super::registry`], so the perf trajectory covers every
//! figure and table, not just the parallelized multiplier sweeps. While
//! timing, it also *verifies* the determinism contract six times over:
//! each scenario's parallel [`ScenarioResult`] is asserted equal to the
//! serial one, the scalar-netlist-oracle run is asserted equal to the
//! bitsliced one, the naive-MAC-kernel-oracle and plain-GEMM-oracle runs
//! are asserted equal to the subword-packed one, the rescan-search-oracle
//! run is asserted equal to the incremental one, and the
//! sample-major-forward-oracle run is asserted equal to the layer-major
//! fused-batch one, before a timing is recorded. The gate-level scenarios
//! (fig2/fig3a/fig3b/table1/ablations) are where `engine_speedup` bites;
//! `kernel_speedup`, `packed_speedup`, `search_speedup` and
//! `batch_speedup` bite on the CNN scenarios
//! (fig6/fig6_vgg/cnn_layerwise); scenarios without any of them in the
//! loop time near 1x.
//!
//! Timing hygiene: one untimed serial warmup pass per scenario warms the
//! process-wide state (page cache, allocator, memoized calibrations)
//! before anything is measured, then each measurement is the **median of
//! N timed repeats** (`ScenarioCtx::repeats`, default 3, `--repeats N`
//! on the CLI) — the median also absorbs the per-configuration cold
//! start the shared warmup cannot reach (thread spin-up in the parallel
//! run, first-touch in the oracle runs); at `--repeats 1` those
//! first-run costs land in the recorded number, which is why only the
//! artifact-focused CI step and the smoke tests use it. The parallel
//! measurement defaults to the host parallelism
//! when the invoking context is serial — a 1-thread `run --all` must not
//! record a meaningless 1-thread "parallel" column, and nothing hardcodes
//! a worker count.
//!
//! Timings go to the JSON artifact only — the presentation text stays
//! byte-stable across thread counts and runs, so smoke tests can diff it
//! like any other scenario. Without `--fast` this runs every scenario at
//! paper scale many times (minutes of gate-level simulation); CI uses
//! `--fast`.

use super::{registry, DataTable, Scenario, ScenarioCtx, ScenarioResult};
use crate::report::{bench_sweep_json, median_time_ms, SweepTiming};
use dvafs_arith::netlist::Engine;
use dvafs_executor::Executor;
use dvafs_nn::{BatchPath, NnKernel, SearchStrategy};

/// The performance-sweep scenario (`dvafs run bench_sweep`).
pub struct BenchSweep;

impl Scenario for BenchSweep {
    fn id(&self) -> &'static str {
        "bench_sweep"
    }

    fn label(&self) -> &'static str {
        "BENCH sweep"
    }

    fn title(&self) -> &'static str {
        "serial vs parallel wall time per scenario"
    }

    fn fast_note(&self) -> &'static str {
        "runs every timed scenario in its own fast configuration"
    }

    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult {
        let repeats = ctx.repeats.max(1);
        // The baseline is always the *shipping* configuration — bitsliced
        // engine, subword-packed GEMM kernel — regardless of what the
        // invoking context selected (a `--kernel naive` run must not
        // silently relabel the serial_ms/packed_ms columns as naive and
        // flatten kernel_speedup).
        let serial_ctx = ctx
            .serial()
            .with_engine(Engine::Bitsliced)
            .with_kernel(NnKernel::GemmPacked)
            .with_search(SearchStrategy::Incremental);
        // The scalar-oracle run: one thread, scalar netlist engine — the
        // pre-bitslicing baseline every engine_speedup column is against.
        let scalar_ctx = serial_ctx.clone().with_engine(Engine::Scalar);
        // The naive-oracle run: one thread, naive NN MAC kernel — the
        // pre-GEMM baseline every kernel_speedup column is against.
        let naive_ctx = serial_ctx.clone().with_kernel(NnKernel::Naive);
        // The plain-GEMM-oracle run: one thread, unpacked blocked GEMM —
        // the pre-subword-packing baseline every packed_speedup column is
        // against (and a bit-identity check of the packed kernel on every
        // scenario, every run).
        let gemm_ctx = serial_ctx.clone().with_kernel(NnKernel::Gemm);
        // The rescan-oracle run: one thread, full-forward precision-search
        // rescan — the pre-incremental baseline every search_speedup
        // column is against.
        let rescan_ctx = serial_ctx.clone().with_search(SearchStrategy::Rescan);
        // The sample-major-oracle run: one thread, per-sample forward walk
        // — the pre-batching baseline every batch_speedup column is
        // against (and a bit-identity check of the layer-major fused
        // wide-GEMM forward on every scenario, every run).
        let sample_ctx = serial_ctx.clone().with_batch_path(BatchPath::SampleMajor);
        // The parallel run: the shipping configuration on the invoking
        // context's executor when it is actually parallel, otherwise on
        // the host parallelism (never a hardcoded count — a serial
        // `run --all` would otherwise record a "parallel" column that
        // measures nothing).
        let parallel_ctx = if ctx.threads() > 1 {
            ctx.clone()
        } else {
            ctx.clone().with_threads(Executor::host_parallelism())
        }
        .with_engine(Engine::Bitsliced)
        .with_kernel(NnKernel::GemmPacked)
        .with_search(SearchStrategy::Incremental);
        let mut timings = Vec::new();
        let mut r = ScenarioResult::new();

        // Warm the process-wide memoized delay-model calibrations so the
        // first timed run isn't charged their one-time grid searches.
        let _ = dvafs_tech::technology::Technology::lp40();
        let _ = dvafs_tech::technology::Technology::fdsoi28();

        for s in registry() {
            if s.id() == self.id() {
                continue; // timing the timer would recurse
            }
            // Untimed warmup: faults pages, fills caches, and exercises any
            // lazily initialized state before the first measurement.
            let _ = s.run(&serial_ctx);
            let (serial_ms, serial_result) = median_time_ms(repeats, || s.run(&serial_ctx));
            let (parallel_ms, parallel_result) = median_time_ms(repeats, || s.run(&parallel_ctx));
            let (scalar_ms, scalar_result) = median_time_ms(repeats, || s.run(&scalar_ctx));
            let (naive_ms, naive_result) = median_time_ms(repeats, || s.run(&naive_ctx));
            let (gemm_ms, gemm_result) = median_time_ms(repeats, || s.run(&gemm_ctx));
            let (rescan_ms, rescan_result) = median_time_ms(repeats, || s.run(&rescan_ctx));
            let (sample_major_ms, sample_result) = median_time_ms(repeats, || s.run(&sample_ctx));
            assert!(
                serial_result == parallel_result,
                "{}: parallel result diverged from serial",
                s.id()
            );
            assert!(
                scalar_result == serial_result,
                "{}: scalar-engine result diverged from bitsliced",
                s.id()
            );
            assert!(
                naive_result == serial_result,
                "{}: naive-kernel result diverged from packed GEMM",
                s.id()
            );
            assert!(
                gemm_result == serial_result,
                "{}: plain-GEMM result diverged from packed GEMM",
                s.id()
            );
            assert!(
                rescan_result == serial_result,
                "{}: rescan-search result diverged from incremental",
                s.id()
            );
            assert!(
                sample_result == serial_result,
                "{}: sample-major result diverged from layer-major",
                s.id()
            );
            r.line(format_args!(
                "measured {}: serial and parallel runs bit-identical",
                s.id()
            ));
            timings.push(SweepTiming {
                figure: s.id().to_string(),
                serial_ms,
                parallel_ms,
                scalar_ms,
                naive_ms,
                gemm_ms,
                rescan_ms,
                sample_major_ms,
            });
        }

        let mut data = DataTable::new(
            "timings",
            vec![
                "scenario",
                "serial_ms",
                "parallel_ms",
                "speedup",
                "scalar_ms",
                "engine_speedup",
                "naive_ms",
                "kernel_speedup",
                "gemm_ms",
                "packed_speedup",
                "rescan_ms",
                "search_speedup",
                "sample_major_ms",
                "batch_speedup",
            ],
        );
        for t in &timings {
            data.push_row(vec![
                t.figure.clone().into(),
                t.serial_ms.into(),
                t.parallel_ms.into(),
                t.speedup().into(),
                t.scalar_ms.into(),
                t.engine_speedup().into(),
                t.naive_ms.into(),
                t.kernel_speedup().into(),
                t.gemm_ms.into(),
                t.packed_speedup().into(),
                t.rescan_ms.into(),
                t.search_speedup().into(),
                t.sample_major_ms.into(),
                t.batch_speedup().into(),
            ]);
        }
        if parallel_ctx.threads() == 1 {
            // A 1-core host cannot measure thread scaling: the "parallel"
            // run is the serial run again. Flag the column so a
            // checked-in artifact from such a host is not misread.
            r.line("note: parallel run measured at 1 thread — the speedup column is a (1-core artifact)");
        }
        r.push_table(data);
        r.push_artifact(
            "BENCH_sweep.json",
            bench_sweep_json(&timings, parallel_ctx.threads(), ctx.fast, repeats),
        );
        r
    }
}
