//! Layer-wise precision tuning of a CNN and its energy on Envision —
//! the paper's Section IV/V flow end to end.
//!
//! Searches each LeNet-5 layer's minimum precision at 99 % relative
//! accuracy (Fig. 6 methodology), measures the sparsity the tuned
//! network actually exhibits, then runs the layers on the Envision chip
//! model at their individual operating points (Table III style) and
//! compares against all-16-bit execution. Formerly the standalone
//! `cnn_layerwise` example; the example remains as a shim over this
//! scenario.

use super::{DataTable, Scenario, ScenarioCtx, ScenarioResult};
use crate::report::{fmt_f, TextTable};
use dvafs_arith::{Precision, SubwordMode};
use dvafs_envision::chip::EnvisionChip;
use dvafs_envision::workload::LayerRun;
use dvafs_nn::dataset::SyntheticDataset;
use dvafs_nn::models;
use dvafs_nn::network::QuantConfig;
use dvafs_nn::precision::{Operand, PrecisionSearch};
use dvafs_nn::sparsity::{measure_sparsity, prune_to_sparsity};

/// The end-to-end tuning scenario (`dvafs run cnn_layerwise`).
pub struct CnnLayerwise;

impl Scenario for CnnLayerwise {
    fn id(&self) -> &'static str {
        "cnn_layerwise"
    }

    fn label(&self) -> &'static str {
        "Sec. IV/V"
    }

    fn title(&self) -> &'static str {
        "layer-wise CNN precision tuning on Envision"
    }

    fn fast_note(&self) -> &'static str {
        "shrinks the dataset (48->16 samples)"
    }

    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult {
        let exec = ctx.executor();
        let mut r = ScenarioResult::new();
        if ctx.fast {
            r.line("(--fast: reduced dataset, figures not paper-scale)\n");
        }
        let samples = if ctx.fast { 16 } else { 48 };

        // A LeNet-5 with realistic (pruned) weight sparsity.
        let mut net = models::lenet5(ctx.seed + 6)
            .with_kernel(ctx.kernel)
            .with_batch_path(ctx.batch_path)
            .with_batch_size(ctx.batch_size);
        prune_to_sparsity(&mut net, 0.3);
        let data = SyntheticDataset::digits(samples, ctx.seed + 7);
        if dvafs_nn::precision::prediction_diversity(&net, &data) < 3 {
            net.calibrate_logits(&data);
        }

        // Fig. 6-style search: per-layer minimum bits at 99% rel. accuracy.
        let search = PrecisionSearch::new().with_strategy(ctx.search);
        let wreqs = search.search_with(&net, &data, Operand::Weights, exec);
        let areqs = search.search_with(&net, &data, Operand::Activations, exec);

        // Measure per-layer sparsity at the found precisions.
        let cfg = search.to_config(&net, &wreqs, &areqs);
        let sparsity = measure_sparsity(&net, &data, &cfg);

        let chip = EnvisionChip::new();
        let mut t = TextTable::new(vec![
            "layer", "wght[b]", "in[b]", "mode", "f[MHz]", "wsp%", "isp%", "P[mW]", "TOPS/W",
        ]);
        let mut table = DataTable::new(
            "cnn_layerwise",
            vec![
                "layer",
                "weight_bits",
                "input_bits",
                "mode",
                "f_mhz",
                "weight_sparsity",
                "input_sparsity",
                "power_mw",
                "tops_per_w",
            ],
        );
        let mut tuned_energy_mj = 0.0;
        let mut full_energy_mj = 0.0;
        for ((w, a), sp) in wreqs.iter().zip(areqs.iter()).zip(sparsity.iter()) {
            let bits = w.bits.max(a.bits);
            let mode =
                SubwordMode::for_precision(Precision::new(bits).expect("search bits are valid"));
            let f_mhz = 200.0 / mode.lanes() as f64;
            let mmacs = sp.macs_per_input as f64 / 1e6;
            let layer = LayerRun::dense(
                mode,
                f_mhz,
                w.bits.min(mode.lane_bits()),
                a.bits.min(mode.lane_bits()),
                mmacs,
            )
            .named(w.layer_name.clone())
            .with_sparsity(sp.weight_sparsity.min(0.99), sp.input_sparsity.min(0.99))
            .expect("measured sparsities are in range");
            let p = chip.power_mw(&layer);
            t.row(vec![
                w.layer_name.clone(),
                w.bits.to_string(),
                a.bits.to_string(),
                mode.to_string(),
                fmt_f(f_mhz, 0),
                fmt_f(sp.weight_sparsity * 100.0, 0),
                fmt_f(sp.input_sparsity * 100.0, 0),
                fmt_f(p, 1),
                fmt_f(chip.tops_per_w(&layer), 1),
            ]);
            table.push_row(vec![
                w.layer_name.clone().into(),
                w.bits.into(),
                a.bits.into(),
                mode.to_string().into(),
                f_mhz.into(),
                sp.weight_sparsity.into(),
                sp.input_sparsity.into(),
                p.into(),
                chip.tops_per_w(&layer).into(),
            ]);
            tuned_energy_mj += chip.layer_energy_mj(&layer);
            let full = LayerRun::dense(SubwordMode::X1, 200.0, 16, 16, mmacs)
                .named(format!("{}-16b", w.layer_name));
            full_energy_mj += chip.layer_energy_mj(&full);
        }
        r.line(t);

        // Sanity: the tuned configuration still agrees with full precision.
        let full_cfg = QuantConfig::uniform(net.layer_count(), 16, 16);
        let agreement = net.relative_accuracy(&data, &cfg, &full_cfg);
        r.line(format_args!(
            "relative accuracy of the tuned network: {:.1}%",
            agreement * 100.0
        ));
        r.line(format_args!(
            "energy per input: {:.4} mJ tuned vs {:.4} mJ all-16b ({:.1}x saved)",
            tuned_energy_mj,
            full_energy_mj,
            full_energy_mj / tuned_energy_mj
        ));
        r.push_table(table);
        r
    }
}
