//! Fig. 6 at VGG16 scale: per-layer minimum quantization of the paper's
//! deepest network, the workload ROADMAP item 2's incremental search
//! unlocks.
//!
//! The paper's Fig. 6 plots LeNet-5 and AlexNet; its Section V energy
//! discussion extends the same per-layer methodology to VGG16 (13 CONV +
//! 3 FC parameterized layers). A full-forward rescan over 16 layers x 15
//! candidate widths is what made this scenario intractable before the
//! prefix-cached [`SearchStrategy::Incremental`] engine; with it the scan
//! costs one suffix forward per candidate width.
//!
//! Substitution note: as in `fig6`, weights are synthetic pseudo-trained
//! parameters on a synthetic structured set at reduced resolution/width,
//! so absolute bit counts differ from the published trained network; the
//! reproduced claims are (1) the requirement varies layer to layer,
//! (2) it stays far below 16 bits, (3) the 16-layer cascade sustains the
//! per-layer methodology end to end.

use super::{DataTable, Scenario, ScenarioCtx, ScenarioResult};
use crate::report::TextTable;
use dvafs_nn::dataset::SyntheticDataset;
use dvafs_nn::models;
use dvafs_nn::precision::{LayerRequirement, Operand, PrecisionSearch};
#[allow(unused_imports)] // doc link
use dvafs_nn::SearchStrategy;

/// The VGG16-scale Fig. 6 scenario (`dvafs run fig6_vgg`).
pub struct Fig6Vgg;

impl Scenario for Fig6Vgg {
    fn id(&self) -> &'static str {
        "fig6_vgg"
    }

    fn label(&self) -> &'static str {
        "Fig. 6 (VGG16)"
    }

    fn title(&self) -> &'static str {
        "VGG16 per-layer bits @ 99% relative accuracy"
    }

    fn fast_note(&self) -> &'static str {
        "shrinks the VGG16 stand-in (scale 0.125->0.0625) and the dataset (12->6 samples)"
    }

    fn run(&self, ctx: &ScenarioCtx) -> ScenarioResult {
        let exec = ctx.executor();
        // Strategy and kernel come from the context; neither moves a number.
        let search = PrecisionSearch::new().with_strategy(ctx.search);
        let mut r = ScenarioResult::new();

        let fast = ctx.fast;
        if fast {
            r.line("(--fast: reduced dataset/model sizes, figures not paper-scale)\n");
        }
        let input = 32; // minimum resolution the five pooling stages support
        let (scale, samples) = if fast { (0.0625, 6) } else { (0.125, 12) };

        let ensure_diverse = |net: &mut dvafs_nn::Network, data: &SyntheticDataset| {
            if dvafs_nn::precision::prediction_diversity(net, data) < 3 {
                net.calibrate_logits(data);
            }
        };

        let mut vgg = models::vgg16(input, scale, ctx.seed + 4)
            .with_kernel(ctx.kernel)
            .with_batch_path(ctx.batch_path)
            .with_batch_size(ctx.batch_size);
        let images = SyntheticDataset::image_like(samples, input, 10, ctx.seed + 5);
        ensure_diverse(&mut vgg, &images);
        let w = search.search_with(&vgg, &images, Operand::Weights, exec);
        let a = search.search_with(&vgg, &images, Operand::Activations, exec);

        r.line("VGG16 (paper: 1-9 bits across 16 layers)");
        let mut t = TextTable::new(vec!["layer", "weights [bits]", "inputs [bits]"]);
        for (rw, ra) in w.iter().zip(a.iter()) {
            t.row(vec![
                rw.layer_name.clone(),
                rw.bits.to_string(),
                ra.bits.to_string(),
            ]);
        }
        r.line(t);

        let max = |reqs: &[LayerRequirement]| reqs.iter().map(|req| req.bits).max().unwrap_or(16);
        r.line(format_args!(
            "VGG16 max requirement: {}b over {} parameterized layers",
            max(&w).max(max(&a)),
            w.len()
        ));
        r.line("(per-layer precision scales to the paper's deepest network)");

        let mut data = DataTable::new(
            "fig6_vgg",
            vec!["network", "layer", "weight_bits", "input_bits"],
        );
        for (rw, ra) in w.iter().zip(a.iter()) {
            data.push_row(vec![
                "VGG16".into(),
                rw.layer_name.clone().into(),
                rw.bits.into(),
                ra.bits.into(),
            ]);
        }
        r.push_table(data);
        r
    }
}
