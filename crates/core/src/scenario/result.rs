//! The structured value a scenario produces: named data tables of typed
//! cells, the legacy presentation text, and optional file artifacts.
//!
//! A [`ScenarioResult`] separates *data* from *presentation*:
//!
//! * [`DataTable`]s are the machine-readable record — typed columns and
//!   rows that the generic serializer in [`super::render`] turns into
//!   JSON, CSV or a plain text table, all three agreeing on shape and
//!   values (a property the test suite asserts);
//! * the *text body* is the human presentation the original figure
//!   binaries printed (pivoted tables, paper anchors, custom decimal
//!   counts) and is kept byte-identical so the legacy commands and smoke
//!   tests never move;
//! * [`Artifact`]s are files a scenario asks the runner to write (only
//!   `bench_sweep` uses this, for `BENCH_sweep.json`).

use std::fmt::Write as _;

/// One typed cell of a [`DataTable`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string cell (labels, modes, design names).
    Str(String),
    /// An integer cell (bit widths, lane counts).
    Int(i64),
    /// A float cell, serialized with shortest-roundtrip formatting so the
    /// rendering is an exact bit-level record of the computed value.
    Float(f64),
    /// A nested table (Table III's per-layer rows). JSON renders it as an
    /// inline array of row objects; CSV flattens it into the parent rows.
    Nested(DataTable),
}

impl Value {
    /// The cell's scalar text form: `Str` verbatim, `Int` as decimal,
    /// `Float` shortest-roundtrip (as in JSON), `Nested` as a row count.
    #[must_use]
    pub fn to_text(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Float(v) => crate::report::json::num(*v),
            Value::Nested(t) => format!("[{} rows]", t.rows().len()),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i64::try_from(i).expect("cell index fits i64"))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

/// A named table of typed rows — the machine-readable data of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DataTable {
    key: String,
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl DataTable {
    /// Creates an empty table with a key (its name in multi-table JSON
    /// objects and CSV section headers) and column names.
    #[must_use]
    pub fn new<S: Into<String>>(key: &str, columns: Vec<S>) -> Self {
        DataTable {
            key: key.to_string(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count does not match the column count — a
    /// ragged table cannot serialize to a consistent shape.
    pub fn push_row(&mut self, cells: Vec<Value>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "table {}: row has {} cells for {} columns",
            self.key,
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// The table's key.
    #[must_use]
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The column names.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The data rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Whether any cell is a [`Value::Nested`] table.
    #[must_use]
    pub fn has_nested(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.iter().any(|c| matches!(c, Value::Nested(_))))
    }
}

/// A file a scenario asks the runner to write (name + full contents).
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// File name (written under `--out DIR`, or the working directory).
    pub name: String,
    /// Full file contents.
    pub contents: String,
}

/// What a scenario run produced: data tables, presentation text, and
/// optional file artifacts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioResult {
    tables: Vec<DataTable>,
    text: String,
    artifacts: Vec<Artifact>,
}

impl ScenarioResult {
    /// An empty result (builder start).
    #[must_use]
    pub fn new() -> Self {
        ScenarioResult::default()
    }

    /// Adds a data table.
    pub fn push_table(&mut self, table: DataTable) {
        self.tables.push(table);
    }

    /// Adds a file artifact.
    pub fn push_artifact(&mut self, name: &str, contents: String) {
        self.artifacts.push(Artifact {
            name: name.to_string(),
            contents,
        });
    }

    /// Appends one line (plus newline) to the presentation text — the
    /// equivalent of the original binaries' `println!`.
    pub fn line(&mut self, line: impl std::fmt::Display) {
        let _ = writeln!(self.text, "{line}");
    }

    /// Appends a blank line to the presentation text.
    pub fn blank(&mut self) {
        self.text.push('\n');
    }

    /// The data tables.
    #[must_use]
    pub fn tables(&self) -> &[DataTable] {
        &self.tables
    }

    /// The presentation text body (everything the legacy binary printed
    /// after its banner).
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The file artifacts.
    #[must_use]
    pub fn artifacts(&self) -> &[Artifact] {
        &self.artifacts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_text_forms() {
        assert_eq!(Value::from("x").to_text(), "x");
        assert_eq!(Value::from(3u32).to_text(), "3");
        assert_eq!(Value::from(0.5f64).to_text(), "0.5");
        assert_eq!(
            Value::Nested(DataTable::new("t", vec!["a"])).to_text(),
            "[0 rows]"
        );
    }

    #[test]
    #[should_panic(expected = "row has 1 cells for 2 columns")]
    fn ragged_rows_are_rejected() {
        let mut t = DataTable::new("t", vec!["a", "b"]);
        t.push_row(vec![Value::Int(1)]);
    }

    #[test]
    fn result_text_accumulates_lines() {
        let mut r = ScenarioResult::new();
        r.line("hello");
        r.blank();
        r.line(format_args!("{}-{}", 1, 2));
        assert_eq!(r.text(), "hello\n\n1-2\n");
    }
}
