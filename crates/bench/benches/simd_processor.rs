//! Criterion benchmarks of the SIMD processor simulator (Fig. 4 /
//! Table II engine): cycle-level execution of the convolution kernel in
//! each scaling regime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvafs_simd::energy::SimdEnergyModel;
use dvafs_simd::kernels::ConvKernel;
use dvafs_simd::processor::{ProcConfig, Processor};
use dvafs_tech::scaling::ScalingMode;
use std::hint::black_box;

fn bench_kernel_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_kernel");
    let model = SimdEnergyModel::new();
    let kernel = ConvKernel::random(9, 512, 42);
    for (label, scaling, bits) in [
        ("das_16b", ScalingMode::Das, 16u32),
        ("dvas_4b", ScalingMode::Dvas, 4),
        ("dvafs_4x4b", ScalingMode::Dvafs, 4),
    ] {
        group.bench_with_input(BenchmarkId::new("sw8", label), &(), |b, ()| {
            let cfg = ProcConfig::new(8, scaling, bits).expect("valid");
            let proc = Processor::with_model(cfg, model.clone());
            b.iter(|| black_box(proc.run_kernel(&kernel).expect("runs")));
        });
    }
    group.bench_function("sw64_dvafs_4x4b", |b| {
        let cfg = ProcConfig::new(64, ScalingMode::Dvafs, 4).expect("valid");
        let proc = Processor::with_model(cfg, model.clone());
        let kernel = ConvKernel::random(9, 1024, 43);
        b.iter(|| black_box(proc.run_kernel(&kernel).expect("runs")));
    });
    group.finish();
}

criterion_group!(benches, bench_kernel_execution);
criterion_main!(benches);
