//! `gemm_vs_naive`: the NN MAC-kernel micro-benchmark.
//!
//! Times full-network forward passes (LeNet-5 and the fig6-sized AlexNet
//! stand-in) on all three MAC kernels — the retained naive oracle, the
//! im2col + blocked-GEMM path, and the default subword-packed GEMM — via
//! the criterion harness, then re-times them with plain wall clocks and
//! writes the per-workload medians to `BENCH_nn_kernels.csv` (CI uploads
//! it next to `BENCH_sweep.json`). All kernels are bit-identical by
//! construction (asserted here too), so the CSV is a pure wall-time
//! record.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvafs::report::median_time_ms;
use dvafs_nn::dataset::SyntheticDataset;
use dvafs_nn::kernel::{NnKernel, Scratch};
use dvafs_nn::models;
use dvafs_nn::network::{Network, QuantConfig};
use std::hint::black_box;

/// The benchmarked workloads: name, network, dataset.
fn workloads() -> Vec<(&'static str, Network, SyntheticDataset)> {
    vec![
        (
            "lenet5_28px",
            models::lenet5(1),
            SyntheticDataset::digits(4, 2),
        ),
        (
            "alexnet_67px_s0.125",
            models::alexnet(67, 0.125, 3),
            SyntheticDataset::image_like(2, 67, 10, 4),
        ),
    ]
}

fn forward_all(net: &Network, data: &SyntheticDataset, cfg: &QuantConfig, scratch: &mut Scratch) {
    for img in data.images() {
        black_box(
            net.forward_with(img, cfg, scratch)
                .expect("forward succeeds"),
        );
    }
}

fn bench_gemm_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_vs_naive");
    for (name, net, data) in workloads() {
        let cfg = QuantConfig::uniform(net.layer_count(), 8, 8);
        for kernel in NnKernel::ALL {
            let net = net.clone().with_kernel(kernel);
            group.bench_with_input(BenchmarkId::new(name, kernel), &cfg, |b, cfg| {
                let mut scratch = Scratch::new();
                b.iter(|| forward_all(&net, &data, cfg, &mut scratch));
            });
        }
    }
    group.finish();
}

/// Writes `BENCH_nn_kernels.csv`: one row per workload with the naive,
/// GEMM and packed medians (the same [`median_time_ms`] primitive
/// `bench_sweep` uses, so the two artifacts share one definition of
/// "median wall time") and the speedups, after asserting all three
/// kernels return identical predictions.
fn write_kernel_csv() {
    let mut csv =
        String::from("workload,bits,naive_ms,gemm_ms,packed_ms,kernel_speedup,packed_speedup\n");
    for (name, net, data) in workloads() {
        let cfg = QuantConfig::uniform(net.layer_count(), 8, 8);
        let naive_net = net.clone().with_kernel(NnKernel::Naive);
        let gemm_net = net.clone().with_kernel(NnKernel::Gemm);
        let packed_net = net.clone().with_kernel(NnKernel::GemmPacked);
        let mut scratch = Scratch::new();
        let naive_out = naive_net
            .evaluate_batch(data.images(), &cfg, &mut scratch)
            .expect("naive inference");
        assert_eq!(
            naive_out,
            gemm_net
                .evaluate_batch(data.images(), &cfg, &mut scratch)
                .expect("gemm inference"),
            "{name}: gemm kernel disagrees with naive"
        );
        assert_eq!(
            naive_out,
            packed_net
                .evaluate_batch(data.images(), &cfg, &mut scratch)
                .expect("packed inference"),
            "{name}: packed kernel disagrees with naive"
        );
        // Warm caches and buffers, then take medians.
        forward_all(&naive_net, &data, &cfg, &mut scratch);
        forward_all(&gemm_net, &data, &cfg, &mut scratch);
        forward_all(&packed_net, &data, &cfg, &mut scratch);
        let (naive_ms, ()) =
            median_time_ms(5, || forward_all(&naive_net, &data, &cfg, &mut scratch));
        let (gemm_ms, ()) = median_time_ms(5, || forward_all(&gemm_net, &data, &cfg, &mut scratch));
        let (packed_ms, ()) =
            median_time_ms(5, || forward_all(&packed_net, &data, &cfg, &mut scratch));
        let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
        let speedup = ratio(naive_ms, packed_ms);
        let packed_speedup = ratio(gemm_ms, packed_ms);
        csv.push_str(&format!(
            "{name},8,{naive_ms:.3},{gemm_ms:.3},{packed_ms:.3},{speedup:.3},{packed_speedup:.3}\n"
        ));
        println!("kernel {name:<24} naive {naive_ms:>9.3} ms  gemm {gemm_ms:>9.3} ms  packed {packed_ms:>9.3} ms  speedup {speedup:.2}x  packed_speedup {packed_speedup:.2}x");
    }
    // Benches run with the package directory as cwd; the CSV belongs at
    // the workspace root, next to BENCH_sweep.json (CI uploads both).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nn_kernels.csv");
    std::fs::write(path, csv).expect("write BENCH_nn_kernels.csv");
    println!("wrote {path}");
}

fn bench_with_csv(c: &mut Criterion) {
    bench_gemm_vs_naive(c);
    write_kernel_csv();
}

criterion_group!(benches, bench_with_csv);
criterion_main!(benches);
