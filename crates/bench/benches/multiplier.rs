//! Criterion micro-benchmarks of the gate-level multiplier simulation —
//! the engine behind Table I / Fig. 2 / Fig. 3a extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvafs_arith::multiplier::{build_booth_wallace, DvafsMultiplier};
use dvafs_arith::netlist::Simulator;
use dvafs_arith::subword::SubwordMode;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_netlist_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist_eval");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let pairs: Vec<(u16, u16)> = (0..64).map(|_| (rng.gen(), rng.gen())).collect();

    let m = DvafsMultiplier::new();
    for mode in SubwordMode::ALL {
        group.bench_with_input(
            BenchmarkId::new("subword_multiplier", mode.to_string()),
            &mode,
            |b, &mode| {
                let mut sim = Simulator::new(m.build_netlist());
                b.iter(|| {
                    for &(x, y) in &pairs {
                        black_box(
                            sim.eval(&DvafsMultiplier::stimulus(x, y, mode))
                                .expect("stimulus fits"),
                        );
                    }
                });
            },
        );
    }

    group.bench_function("booth_wallace_16b", |b| {
        let mut sim = Simulator::new(build_booth_wallace(16));
        b.iter(|| {
            for &(x, y) in &pairs {
                let mut inputs = dvafs_arith::netlist::to_bits(u64::from(x), 16);
                inputs.extend(dvafs_arith::netlist::to_bits(u64::from(y), 16));
                black_box(sim.eval(&inputs).expect("stimulus fits"));
            }
        });
    });
    group.finish();
}

fn bench_activity_extraction(c: &mut Criterion) {
    c.bench_function("extract_dvafs_profile_50", |b| {
        b.iter(|| black_box(dvafs_arith::activity::extract_dvafs_profile(50, 7)));
    });
}

fn bench_behavioral_mul(c: &mut Criterion) {
    let m = DvafsMultiplier::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let pairs: Vec<(u16, u16)> = (0..1024).map(|_| (rng.gen(), rng.gen())).collect();
    c.bench_function("behavioral_packed_x4_1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, y) in &pairs {
                acc = acc.wrapping_add(u64::from(m.mul_packed(x, y, SubwordMode::X4)));
            }
            black_box(acc)
        });
    });
}

criterion_group!(
    benches,
    bench_netlist_eval,
    bench_activity_extraction,
    bench_behavioral_mul
);
criterion_main!(benches);
