//! Criterion benchmarks of fixed-point CNN inference (the Fig. 6 engine):
//! LeNet-5 forward passes at several quantization settings, and the
//! Envision chip-model sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvafs_envision::chip::EnvisionChip;
use dvafs_envision::measure::table3;
use dvafs_nn::dataset::SyntheticDataset;
use dvafs_nn::models;
use dvafs_nn::network::QuantConfig;
use std::hint::black_box;

fn bench_lenet_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("lenet5_forward");
    let net = models::lenet5(1);
    let data = SyntheticDataset::digits(4, 2);
    for bits in [16u32, 8, 4] {
        group.bench_with_input(BenchmarkId::new("uniform", bits), &bits, |b, &bits| {
            let cfg = QuantConfig::uniform(net.layer_count(), bits, bits);
            b.iter(|| {
                for img in data.images() {
                    black_box(net.forward(img, &cfg).expect("forward succeeds"));
                }
            });
        });
    }
    group.finish();
}

fn bench_envision_table3(c: &mut Criterion) {
    c.bench_function("envision_table3", |b| {
        let chip = EnvisionChip::new();
        b.iter(|| black_box(table3(&chip)));
    });
}

criterion_group!(benches, bench_lenet_forward, bench_envision_table3);
criterion_main!(benches);
