//! The `dvafs` command-line front-end over the scenario registry.
//!
//! ```text
//! dvafs list
//! dvafs run <id>... [--all] [--format text|json|csv] [--out DIR]
//!                   [--threads N] [--fast] [--kernel naive|gemm|packed]
//!                   [--search rescan|incremental] [--repeats N]
//!                   [--batch-path sample|layer] [--batch-size N]
//! ```
//!
//! `list` prints every registered scenario (id, artefact, title, and what
//! `--fast` shrinks). `run` executes scenarios in registry order and
//! either prints each rendering to stdout or, with `--out DIR`, writes
//! one `<id>.<ext>` file per scenario (plus any scenario artifacts, e.g.
//! `bench_sweep`'s `BENCH_sweep.json`). A JSON file written this way is
//! byte-comparable to the golden fixtures under `tests/golden/`.
//!
//! Unlike the legacy shims, the CLI **warns on stderr about flags it does
//! not recognize** and hard-errors when `--out`, `--format` or
//! `--threads` is missing its value.

use dvafs::nn::{BatchPath, NnKernel, SearchStrategy, DEFAULT_BATCH_SIZE};
use dvafs::scenario::{self, Format, Scenario, ScenarioCtx};
use dvafs::Executor;
use std::path::Path;

/// A parsed `dvafs run` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOpts {
    /// Scenario ids to run, in registry order (resolved from `--all` or
    /// the explicit id list).
    pub ids: Vec<String>,
    /// Output format (`--format`, default text).
    pub format: Format,
    /// Output directory (`--out DIR`); `None` prints to stdout.
    pub out: Option<String>,
    /// Worker count (`--threads`, default environment/host).
    pub threads: usize,
    /// Reduced problem sizes (`--fast`).
    pub fast: bool,
    /// NN MAC kernel (`--kernel naive|gemm|packed`, default packed).
    /// Never changes a number — only wall time.
    pub kernel: NnKernel,
    /// Precision-search strategy (`--search rescan|incremental`, default
    /// incremental). Never changes a number — only wall time.
    pub search: SearchStrategy,
    /// Timed repeats per `bench_sweep` measurement (`--repeats`, default 3).
    pub repeats: usize,
    /// NN batch path (`--batch-path sample|layer`, default layer).
    /// Never changes a number — only wall time.
    pub batch_path: BatchPath,
    /// Samples per layer-major chunk (`--batch-size N`, default 16).
    pub batch_size: usize,
}

/// A parsed `dvafs serve` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// TCP listen address (`--listen ADDR`); `None` serves stdio.
    pub listen: Option<String>,
    /// Requests executed concurrently (`--threads`, default
    /// environment/host). The reply stream is byte-identical for any
    /// value — worker count is an execution choice, like `--kernel`.
    pub threads: usize,
    /// In-flight request bound (`--queue`, default
    /// [`dvafs::serve::DEFAULT_QUEUE`]).
    pub queue: usize,
    /// Per-request wall deadline for run/predict in milliseconds
    /// (`--deadline-ms`); `None` disables the check.
    pub deadline_ms: Option<u64>,
    /// Session request cap (`--max-requests`); `None` serves until
    /// EOF/shutdown.
    pub max_requests: Option<usize>,
    /// TCP per-connection read timeout in milliseconds
    /// (`--idle-timeout-ms`, 0 disables; default
    /// [`dvafs::serve::DEFAULT_IDLE_TIMEOUT_MS`]).
    pub idle_timeout_ms: Option<u64>,
    /// Deterministic fault injection (`--fault-plan SPEC`, test-only;
    /// falls back to the `DVAFS_FAULT_PLAN` environment variable).
    pub fault_plan: Option<dvafs::faultplan::FaultPlan>,
}

/// A parsed top-level CLI command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `dvafs list`.
    List,
    /// `dvafs run ...`.
    Run(RunOpts),
    /// `dvafs serve ...`.
    Serve(ServeArgs),
}

const USAGE: &str = "usage: dvafs <command>\n\n\
commands:\n  \
  list                       list registered scenarios\n  \
  run <id>... [options]      run scenarios (or `run --all`)\n  \
  serve [options]            newline-delimited JSON request/reply service\n\n\
run options:\n  \
  --all                      run every registered scenario\n  \
  --format text|json|csv     output format (default text)\n  \
  --out DIR                  write one file per scenario instead of stdout\n  \
  --threads N                worker count (default: DVAFS_THREADS or host)\n  \
  --fast                     reduced problem sizes (see `dvafs list`)\n  \
  --kernel naive|gemm|packed NN MAC kernel (default packed; results identical)\n  \
  --search rescan|incremental  precision-search strategy (default incremental; results identical)\n  \
  --repeats N                timed repeats per bench_sweep measurement (default 3)\n  \
  --batch-path sample|layer  NN batch forward path (default layer; results identical)\n  \
  --batch-size N             samples per layer-major chunk (default 16)\n\n\
serve options:\n  \
  --listen ADDR              serve TCP on ADDR (e.g. 127.0.0.1:7017) instead of stdio\n  \
  --threads N                requests executed concurrently (default: DVAFS_THREADS or host)\n  \
  --queue N                  in-flight request bound / backpressure window (default 32)\n  \
  --deadline-ms N            per-request wall deadline for run/predict; overruns are\n                             discarded and answered with an error reply (default: off)\n  \
  --max-requests N           close the session cleanly after N requests (default: off)\n  \
  --idle-timeout-ms N        TCP read timeout per connection, 0 disables (default 30000)\n  \
  --fault-plan SPEC          testing only: deterministic fault injection, e.g.\n                             panic@3,delay@5:40,oversize@7 (env: DVAFS_FAULT_PLAN)\n\n\
any --flag VALUE may also be written --flag=VALUE (required when the\n\
value itself begins with \"--\")";

/// Fetches a flag's value: the inline `--flag=VALUE` part when present,
/// otherwise the next argument. A next argument beginning with `--` is
/// *not* consumed — it is almost always a forgotten value, and the
/// `--flag=VALUE` spelling exists precisely for the rare legitimate case
/// (`--out=./--odd-dir`), so the error says so instead of misreporting.
fn take_value(
    args: &[String],
    i: &mut usize,
    inline: Option<&str>,
    flag: &str,
) -> Result<String, String> {
    if let Some(v) = inline {
        if v.is_empty() {
            return Err(format!("{flag} requires a value ({flag}= is empty)"));
        }
        return Ok(v.to_string());
    }
    *i += 1;
    match args.get(*i) {
        Some(v) if !v.starts_with("--") => Ok(v.clone()),
        _ => Err(format!(
            "{flag} requires a value (write {flag}=VALUE for values beginning with \"--\")"
        )),
    }
}

/// Splits `--flag=VALUE` into the flag and its inline value; anything
/// else (including positionals containing `=`) passes through unchanged.
fn split_flag(arg: &str) -> (&str, Option<&str>) {
    match arg.split_once('=') {
        Some((flag, value)) if flag.starts_with("--") => (flag, Some(value)),
        _ => (arg, None),
    }
}

/// Parses the arguments after the program name. Returns the command plus
/// any unknown-flag warnings (the caller decides where to surface them).
///
/// # Errors
///
/// Returns a user-facing message for an unknown command, an unknown
/// scenario id, a missing flag value, an unparseable `--threads`, or an
/// unknown `--format`.
pub fn parse(args: &[String]) -> Result<(Command, Vec<String>), String> {
    match args.first().map(String::as_str) {
        None | Some("--help" | "help") => Err(USAGE.to_string()),
        Some("list") => Ok((Command::List, Vec::new())),
        Some("run") => {
            let mut opts = RunOpts {
                ids: Vec::new(),
                format: Format::Text,
                out: None,
                threads: Executor::from_env().threads(),
                fast: false,
                kernel: NnKernel::default(),
                search: SearchStrategy::default(),
                repeats: 3,
                batch_path: BatchPath::default(),
                batch_size: DEFAULT_BATCH_SIZE,
            };
            let mut all = false;
            let mut warnings = Vec::new();
            let mut i = 1;
            while i < args.len() {
                let (flag, inline) = split_flag(args[i].as_str());
                if inline.is_some() && matches!(flag, "--all" | "--fast") {
                    warnings.push(format!(
                        "warning: {flag} takes no value; ignoring {:?}",
                        inline.unwrap_or_default()
                    ));
                }
                match flag {
                    "--all" => all = true,
                    "--fast" => opts.fast = true,
                    "--format" => {
                        opts.format =
                            Format::parse(&take_value(args, &mut i, inline, "--format")?)?;
                    }
                    "--out" => opts.out = Some(take_value(args, &mut i, inline, "--out")?),
                    "--threads" => {
                        let v = take_value(args, &mut i, inline, "--threads")?;
                        opts.threads =
                            v.parse::<usize>().ok().filter(|&t| t > 0).ok_or_else(|| {
                                format!("--threads requires a positive integer, got {v:?}")
                            })?;
                    }
                    "--kernel" => {
                        opts.kernel =
                            NnKernel::parse(&take_value(args, &mut i, inline, "--kernel")?)?;
                    }
                    "--search" => {
                        opts.search =
                            SearchStrategy::parse(&take_value(args, &mut i, inline, "--search")?)?;
                    }
                    "--repeats" => {
                        let v = take_value(args, &mut i, inline, "--repeats")?;
                        opts.repeats =
                            v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                                format!("--repeats requires a positive integer, got {v:?}")
                            })?;
                    }
                    "--batch-path" => {
                        opts.batch_path =
                            BatchPath::parse(&take_value(args, &mut i, inline, "--batch-path")?)?;
                    }
                    "--batch-size" => {
                        let v = take_value(args, &mut i, inline, "--batch-size")?;
                        opts.batch_size =
                            v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                                format!("--batch-size requires a positive integer, got {v:?}")
                            })?;
                    }
                    flag if flag.starts_with("--") => {
                        warnings.push(format!("warning: ignoring unrecognized flag {flag}"));
                    }
                    id => {
                        scenario::find(id).ok_or_else(|| {
                            let known: Vec<&str> =
                                scenario::registry().iter().map(|s| s.id()).collect();
                            format!(
                                "unknown scenario {id:?} — available: {} (see `dvafs list`)",
                                known.join(", ")
                            )
                        })?;
                        // A repeated id runs once: rendering the same
                        // scenario twice in one invocation is never what
                        // the caller wanted (and doubles minutes of
                        // gate-level simulation), so dedupe and warn.
                        if opts.ids.iter().any(|queued| queued == id) {
                            warnings.push(format!(
                                "warning: scenario {id:?} given more than once; running it once"
                            ));
                        } else {
                            opts.ids.push(id.to_string());
                        }
                    }
                }
                i += 1;
            }
            if all {
                opts.ids = scenario::registry()
                    .iter()
                    .map(|s| s.id().to_string())
                    .collect();
            }
            if opts.ids.is_empty() {
                return Err("run: no scenarios given (pass ids or --all)".to_string());
            }
            Ok((Command::Run(opts), warnings))
        }
        Some("serve") => {
            let mut serve = ServeArgs {
                listen: None,
                threads: Executor::from_env().threads(),
                queue: dvafs::serve::DEFAULT_QUEUE,
                deadline_ms: None,
                max_requests: None,
                idle_timeout_ms: Some(dvafs::serve::DEFAULT_IDLE_TIMEOUT_MS),
                fault_plan: None,
            };
            let mut warnings = Vec::new();
            let mut i = 1;
            while i < args.len() {
                let (flag, inline) = split_flag(args[i].as_str());
                match flag {
                    "--listen" => {
                        serve.listen = Some(take_value(args, &mut i, inline, "--listen")?);
                    }
                    "--threads" => {
                        let v = take_value(args, &mut i, inline, "--threads")?;
                        serve.threads =
                            v.parse::<usize>().ok().filter(|&t| t > 0).ok_or_else(|| {
                                format!("--threads requires a positive integer, got {v:?}")
                            })?;
                    }
                    "--queue" => {
                        let v = take_value(args, &mut i, inline, "--queue")?;
                        serve.queue =
                            v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                                format!("--queue requires a positive integer, got {v:?}")
                            })?;
                    }
                    "--deadline-ms" => {
                        let v = take_value(args, &mut i, inline, "--deadline-ms")?;
                        serve.deadline_ms =
                            Some(v.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                                format!("--deadline-ms requires a positive integer, got {v:?}")
                            })?);
                    }
                    "--max-requests" => {
                        let v = take_value(args, &mut i, inline, "--max-requests")?;
                        serve.max_requests =
                            Some(v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                                format!("--max-requests requires a positive integer, got {v:?}")
                            })?);
                    }
                    "--idle-timeout-ms" => {
                        // 0 is meaningful here: it disables the timeout.
                        let v = take_value(args, &mut i, inline, "--idle-timeout-ms")?;
                        let ms = v.parse::<u64>().map_err(|_| {
                            format!(
                                "--idle-timeout-ms requires a non-negative integer \
                                 (0 disables), got {v:?}"
                            )
                        })?;
                        serve.idle_timeout_ms = (ms > 0).then_some(ms);
                    }
                    "--fault-plan" => {
                        let v = take_value(args, &mut i, inline, "--fault-plan")?;
                        serve.fault_plan = Some(dvafs::faultplan::FaultPlan::parse(&v)?);
                    }
                    flag if flag.starts_with("--") => {
                        warnings.push(format!("warning: ignoring unrecognized flag {flag}"));
                    }
                    other => {
                        return Err(format!(
                            "serve takes no positional arguments, got {other:?} \
                             (requests arrive on stdin or --listen)"
                        ));
                    }
                }
                i += 1;
            }
            Ok((Command::Serve(serve), warnings))
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

/// Renders the `dvafs list` output.
#[must_use]
pub fn list_text() -> String {
    let mut t = dvafs::report::TextTable::new(vec!["id", "artefact", "title", "--fast"]);
    for s in scenario::registry() {
        t.row(vec![
            s.id().to_string(),
            s.label().to_string(),
            s.title().to_string(),
            s.fast_note().to_string(),
        ]);
    }
    format!(
        "registered scenarios (run with `dvafs run <id>`, machine-readable \
         via `--format json|csv`):\n\n{t}"
    )
}

/// Runs one scenario and returns what should go to stdout for it.
///
/// # Errors
///
/// Returns a message when an output file cannot be written.
fn run_one(s: &'static dyn Scenario, opts: &RunOpts) -> Result<String, String> {
    let ctx = ScenarioCtx::new()
        .with_threads(opts.threads)
        .with_fast(opts.fast)
        .with_kernel(opts.kernel)
        .with_search(opts.search)
        .with_repeats(opts.repeats)
        .with_batch_path(opts.batch_path)
        .with_batch_size(opts.batch_size);
    let result = s.run(&ctx);
    let rendered = scenario::render(s.label(), s.title(), &result, opts.format);
    let mut stdout = String::new();
    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        let path = Path::new(dir).join(format!("{}.{}", s.id(), opts.format.extension()));
        std::fs::write(&path, &rendered)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        stdout.push_str(&format!("wrote {}\n", path.display()));
    } else {
        stdout.push_str(&rendered);
        if !rendered.ends_with('\n') {
            stdout.push('\n');
        }
    }
    // Scenario artifacts (bench_sweep's BENCH_sweep.json) always land on
    // disk: under --out DIR, or the working directory otherwise. Without
    // --out, stdout carries the rendering itself, so the write notice goes
    // to stderr — `dvafs run bench_sweep --format json | jq` must stay
    // parseable.
    for artifact in result.artifacts() {
        let path = match &opts.out {
            Some(dir) => Path::new(dir).join(&artifact.name),
            None => Path::new(&artifact.name).to_path_buf(),
        };
        std::fs::write(&path, &artifact.contents)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        if opts.out.is_some() {
            stdout.push_str(&format!("wrote {}\n", path.display()));
        } else {
            eprintln!("dvafs: wrote {}", path.display());
        }
    }
    Ok(stdout)
}

/// Runs the `serve` command until EOF, a `shutdown` request, or a fatal
/// socket error. Replies stream directly to stdout (stdio mode) or the
/// client socket (TCP mode), so the returned stdout text is empty.
fn run_serve(args: &ServeArgs) -> Result<String, String> {
    // The test-only injection hook: the explicit flag wins; otherwise the
    // environment variable (so chaos harnesses can wrap an unmodified
    // invocation). A plan that fails to parse is a hard error — silently
    // serving *without* the faults a test asked for would pass vacuously.
    let fault_plan = match &args.fault_plan {
        Some(plan) => Some(plan.clone()),
        None => match std::env::var(dvafs::faultplan::FAULT_PLAN_ENV) {
            Ok(raw) if !raw.trim().is_empty() => Some(
                dvafs::faultplan::FaultPlan::parse(&raw)
                    .map_err(|e| format!("{}: {e}", dvafs::faultplan::FAULT_PLAN_ENV))?,
            ),
            _ => None,
        },
    };
    if let Some(plan) = &fault_plan {
        eprintln!("dvafs: serve: FAULT INJECTION ACTIVE ({plan}) — testing only");
    }
    let opts = dvafs::serve::ServeOpts {
        threads: args.threads,
        queue: args.queue,
        deadline_ms: args.deadline_ms,
        max_requests: args.max_requests,
        idle_timeout_ms: args.idle_timeout_ms,
        fault_plan,
    };
    match &args.listen {
        None => {
            let state = dvafs::serve::ServeState::new();
            let reader = std::io::BufReader::new(std::io::stdin());
            let mut writer = std::io::stdout();
            let outcome = dvafs::serve::serve_session(reader, &mut writer, &opts, &state)
                .map_err(|e| format!("serve: {e}"))?;
            eprintln!("dvafs: serve: answered {} request(s)", outcome.served);
            Ok(String::new())
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| format!("serve: cannot bind {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| format!("serve: {e}"))?;
            // The bound address goes to stderr (stdout belongs to replies
            // in stdio mode; keeping stderr for logs in both modes lets
            // scripts bind port 0 and scrape the ephemeral port).
            eprintln!("dvafs: serving on {local}");
            dvafs::serve::serve_tcp(&listener, &opts).map_err(|e| format!("serve: {e}"))?;
            Ok(String::new())
        }
    }
}

/// Executes a parsed command, returning the full stdout text.
///
/// # Errors
///
/// Returns a user-facing message when a scenario fails to write output
/// or the serve socket/stdio fails.
pub fn execute(cmd: &Command) -> Result<String, String> {
    match cmd {
        Command::List => Ok(list_text()),
        Command::Run(opts) => {
            let mut stdout = String::new();
            for id in &opts.ids {
                let s = scenario::find(id).expect("ids validated during parsing");
                stdout.push_str(&run_one(s, opts)?);
            }
            Ok(stdout)
        }
        Command::Serve(args) => run_serve(args),
    }
}

/// The whole CLI: parse, surface warnings on stderr, execute, print.
/// Returns the process exit code.
#[must_use]
pub fn main_with_args(args: &[String]) -> i32 {
    match parse(args) {
        Ok((cmd, warnings)) => {
            for w in &warnings {
                eprintln!("dvafs: {w}");
            }
            match execute(&cmd) {
                Ok(stdout) => {
                    print!("{stdout}");
                    0
                }
                Err(e) => {
                    eprintln!("dvafs: {e}");
                    1
                }
            }
        }
        Err(usage) => {
            eprintln!("{usage}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parse_list_and_help() {
        assert_eq!(parse(&argv(&["list"])).unwrap().0, Command::List);
        assert!(parse(&argv(&[])).is_err());
        assert!(parse(&argv(&["bogus"]))
            .unwrap_err()
            .contains("unknown command"));
    }

    #[test]
    fn parse_run_flags() {
        let (cmd, warnings) = parse(&argv(&[
            "run",
            "fig2",
            "table3",
            "--format",
            "csv",
            "--threads",
            "2",
            "--fast",
            "--kernel",
            "naive",
            "--search",
            "rescan",
            "--repeats",
            "5",
            "--batch-path",
            "sample",
            "--batch-size",
            "4",
        ]))
        .unwrap();
        assert!(warnings.is_empty());
        let Command::Run(opts) = cmd else {
            panic!("expected run")
        };
        assert_eq!(opts.ids, ["fig2", "table3"]);
        assert_eq!(opts.format, Format::Csv);
        assert_eq!(opts.threads, 2);
        assert!(opts.fast && opts.out.is_none());
        assert_eq!(opts.kernel, NnKernel::Naive);
        assert_eq!(opts.search, SearchStrategy::Rescan);
        assert_eq!(opts.repeats, 5);
        assert_eq!(opts.batch_path, BatchPath::SampleMajor);
        assert_eq!(opts.batch_size, 4);
    }

    #[test]
    fn kernel_and_repeats_default_sensibly() {
        let (Command::Run(opts), _) = parse(&argv(&["run", "fig2"])).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(opts.kernel, NnKernel::GemmPacked);
        assert_eq!(opts.search, SearchStrategy::Incremental);
        assert_eq!(opts.repeats, 3);
        assert_eq!(opts.batch_path, BatchPath::LayerMajor);
        assert_eq!(opts.batch_size, DEFAULT_BATCH_SIZE);
        // And the explicit spelling round-trips.
        let (Command::Run(opts), _) = parse(&argv(&["run", "fig2", "--kernel", "packed"])).unwrap()
        else {
            panic!("expected run")
        };
        assert_eq!(opts.kernel, NnKernel::GemmPacked);
    }

    #[test]
    fn parse_run_all_resolves_registry_order() {
        let (Command::Run(opts), _) = parse(&argv(&["run", "--all"])).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(opts.ids.len(), 13);
        assert_eq!(opts.ids[0], "fig2");
        assert!(opts.ids.contains(&"cnn_layerwise".to_string()));
        assert_eq!(opts.ids.last().unwrap(), "bench_sweep");
    }

    #[test]
    fn unknown_flags_warn_but_do_not_fail() {
        let (_, warnings) = parse(&argv(&["run", "fig2", "--bogus"])).unwrap();
        assert_eq!(warnings, ["warning: ignoring unrecognized flag --bogus"]);
    }

    #[test]
    fn repeated_ids_run_once_and_warn() {
        // `dvafs run fig2 fig2` must run fig2 once, not render it twice.
        let (cmd, warnings) = parse(&argv(&["run", "fig2", "fig2", "table3", "fig2"])).unwrap();
        let Command::Run(opts) = cmd else {
            panic!("expected run")
        };
        assert_eq!(opts.ids, ["fig2", "table3"]);
        assert_eq!(
            warnings,
            [
                "warning: scenario \"fig2\" given more than once; running it once",
                "warning: scenario \"fig2\" given more than once; running it once",
            ]
        );
        // A repeated unknown id still hard-errors before deduplication.
        assert!(parse(&argv(&["run", "fig2", "fig2", "fig99"]))
            .unwrap_err()
            .contains("unknown scenario"));
    }

    #[test]
    fn missing_values_and_bad_ids_hard_error() {
        assert!(parse(&argv(&["run", "fig2", "--out"]))
            .unwrap_err()
            .contains("--out requires a value"));
        assert!(parse(&argv(&["run", "fig2", "--out", "--fast"]))
            .unwrap_err()
            .contains("--out requires a value"));
        assert!(parse(&argv(&["run", "--threads", "zero"]))
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&argv(&["run", "fig99"]))
            .unwrap_err()
            .contains("unknown scenario"));
        assert!(parse(&argv(&["run", "fig2", "--format", "yaml"]))
            .unwrap_err()
            .contains("unknown format"));
        assert!(parse(&argv(&["run", "fig2", "--kernel", "fast"]))
            .unwrap_err()
            .contains("naive|gemm|packed"));
        assert!(parse(&argv(&["run", "fig2", "--kernel"]))
            .unwrap_err()
            .contains("--kernel requires a value"));
        assert!(parse(&argv(&["run", "fig2", "--search", "magic"]))
            .unwrap_err()
            .contains("rescan|incremental"));
        assert!(parse(&argv(&["run", "fig2", "--search"]))
            .unwrap_err()
            .contains("--search requires a value"));
        assert!(parse(&argv(&["run", "fig2", "--repeats", "0"]))
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&argv(&["run", "fig2", "--batch-path", "wide"]))
            .unwrap_err()
            .contains("sample|layer"));
        assert!(parse(&argv(&["run", "fig2", "--batch-path"]))
            .unwrap_err()
            .contains("--batch-path requires a value"));
        assert!(parse(&argv(&["run", "fig2", "--batch-size", "0"]))
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&argv(&["run"])).unwrap_err().contains("no scenarios"));
    }

    #[test]
    fn inline_flag_values_parse_and_escape_double_dash() {
        // The bugfix case: a legitimate value beginning with `--` used to
        // be misreported as "requires a value"; `--flag=VALUE` carries it.
        let (Command::Run(opts), warnings) = parse(&argv(&[
            "run",
            "fig2",
            "--out=./--odd-dir",
            "--format=json",
            "--threads=2",
        ]))
        .unwrap() else {
            panic!("expected run")
        };
        assert!(warnings.is_empty());
        assert_eq!(opts.out.as_deref(), Some("./--odd-dir"));
        assert_eq!(opts.format, Format::Json);
        assert_eq!(opts.threads, 2);
        // The space-separated spelling still refuses `--`-leading values,
        // but the error now names the escape hatch.
        let err = parse(&argv(&["run", "fig2", "--out", "--odd-dir"])).unwrap_err();
        assert!(err.contains("--out requires a value"), "{err}");
        assert!(err.contains("--out=VALUE"), "{err}");
        // Empty inline values are still missing values.
        assert!(parse(&argv(&["run", "fig2", "--out="]))
            .unwrap_err()
            .contains("--out requires a value"));
        // A positional containing `=` is not treated as a flag.
        assert!(parse(&argv(&["run", "fig2=3"]))
            .unwrap_err()
            .contains("unknown scenario"));
    }

    #[test]
    fn inline_values_on_boolean_and_unknown_flags_warn() {
        let (Command::Run(opts), warnings) =
            parse(&argv(&["run", "fig2", "--fast=1", "--bogus=x"])).unwrap()
        else {
            panic!("expected run")
        };
        assert!(opts.fast);
        assert_eq!(
            warnings,
            [
                "warning: --fast takes no value; ignoring \"1\"",
                "warning: ignoring unrecognized flag --bogus",
            ]
        );
    }

    #[test]
    fn parse_serve_flags_and_defaults() {
        let (cmd, warnings) = parse(&argv(&["serve"])).unwrap();
        let Command::Serve(opts) = cmd else {
            panic!("expected serve")
        };
        assert!(warnings.is_empty());
        assert!(opts.listen.is_none());
        assert!(opts.threads >= 1);
        assert_eq!(opts.queue, dvafs::serve::DEFAULT_QUEUE);
        assert_eq!(opts.deadline_ms, None);
        assert_eq!(opts.max_requests, None);
        assert_eq!(
            opts.idle_timeout_ms,
            Some(dvafs::serve::DEFAULT_IDLE_TIMEOUT_MS)
        );
        assert!(opts.fault_plan.is_none());

        let (cmd, _) = parse(&argv(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--threads=3",
            "--queue",
            "8",
            "--deadline-ms",
            "250",
            "--max-requests=100",
            "--idle-timeout-ms",
            "5000",
            "--fault-plan",
            "panic@2,delay@4:10",
        ]))
        .unwrap();
        let Command::Serve(opts) = cmd else {
            panic!("expected serve")
        };
        assert_eq!(opts.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.queue, 8);
        assert_eq!(opts.deadline_ms, Some(250));
        assert_eq!(opts.max_requests, Some(100));
        assert_eq!(opts.idle_timeout_ms, Some(5000));
        let plan = opts.fault_plan.expect("fault plan parsed");
        assert_eq!(plan.to_string(), "panic@2,delay@4:10");

        // 0 disables the idle timeout (it is the one zero-meaningful knob).
        let (Command::Serve(opts), _) = parse(&argv(&["serve", "--idle-timeout-ms", "0"])).unwrap()
        else {
            panic!("expected serve")
        };
        assert_eq!(opts.idle_timeout_ms, None);
    }

    #[test]
    fn serve_rejects_bad_invocations() {
        assert!(parse(&argv(&["serve", "--listen"]))
            .unwrap_err()
            .contains("--listen requires a value"));
        assert!(parse(&argv(&["serve", "--threads", "0"]))
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&argv(&["serve", "--queue", "none"]))
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&argv(&["serve", "--deadline-ms", "0"]))
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&argv(&["serve", "--max-requests", "0"]))
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&argv(&["serve", "--idle-timeout-ms", "soon"]))
            .unwrap_err()
            .contains("non-negative integer"));
        assert!(parse(&argv(&["serve", "--fault-plan", "explode@1"]))
            .unwrap_err()
            .contains("unknown kind"));
        assert!(parse(&argv(&["serve", "fig2"]))
            .unwrap_err()
            .contains("no positional arguments"));
        let (_, warnings) = parse(&argv(&["serve", "--bogus"])).unwrap();
        assert_eq!(warnings, ["warning: ignoring unrecognized flag --bogus"]);
    }

    #[test]
    fn unknown_scenario_error_lists_available_ids() {
        // Satellite fix: the error names every registered id, not just the
        // bad one — `fig99` typos become self-correcting.
        let err = parse(&argv(&["run", "fig99"])).unwrap_err();
        assert!(err.contains("unknown scenario \"fig99\""), "{err}");
        for s in scenario::registry() {
            assert!(err.contains(s.id()), "error omits {}: {err}", s.id());
        }
    }

    #[test]
    fn list_covers_every_scenario_id() {
        let text = list_text();
        for s in scenario::registry() {
            assert!(text.contains(s.id()), "list missing {}", s.id());
        }
    }
}
